//! Sharded-queue lifecycle and semantics (ISSUE 4):
//!
//! * a sharded handle holds one memoized segment binding *per shard*, and
//!   every binding follows forced segment growth (tiny `ring_order = 4`
//!   segments) without losing values;
//! * dropping the handle releases its record slot on every shard;
//! * work stealing: one consumer drains values enqueued on every shard;
//! * the full seeded stress oracle holds for both sharded kinds — this file
//!   is the `cargo test -q --test sharded` CI smoke.
//!
//! (`!Send`-ness of `ShardedWcqHandle` is enforced at compile time by its
//! `compile_fail` doctest in `wcq-unbounded`.)

// The deprecated ad-hoc stats accessors stay covered until they are removed
// (their replacement is the `CountingInstrument` metrics snapshot).
#![allow(deprecated)]

use std::collections::HashSet;

use wcq::{ShardPolicy, ShardedWcq, WaitFreeQueue};
use wcq_harness::{QueueKind, StressPlan};

const SHARDS: usize = 4;

fn tiny_segments(policy: ShardPolicy, threads: usize) -> ShardedWcq<u64> {
    // ring_order = 4: 16-slot segments, so a few hundred values force
    // growth, closing, retirement and recycling on every shard.
    wcq::builder()
        .capacity_order(4)
        .threads(threads)
        .shards(SHARDS)
        .shard_policy(policy)
        .build_sharded()
}

#[test]
fn every_shard_binding_follows_forced_segment_growth() {
    let q = tiny_segments(ShardPolicy::RoundRobin, 2);
    let mut h = q.handle();
    // 400 round-robin values: 100 per 16-slot-segment shard, so every shard
    // crosses several segments while its binding chases the tail.
    for i in 0..400 {
        h.enqueue(i);
    }
    for shard in 0..SHARDS {
        assert!(
            h.shard_rebinds(shard) > 1,
            "shard {shard} must have rebound across growth: {h:?}"
        );
    }
    let mut seen = HashSet::new();
    while let Some(v) = h.dequeue() {
        assert!(seen.insert(v), "duplicated {v}");
    }
    assert_eq!(seen.len(), 400, "growth must not lose values");
    h.flush_reclamation();
    drop(h);
    for (i, shard) in q.shards().iter().enumerate() {
        assert_eq!(
            shard.segments_live(),
            1,
            "shard {i} must shrink back to one live segment"
        );
    }
}

#[test]
fn handle_drop_releases_every_shard_slot() {
    let q = tiny_segments(ShardPolicy::Pinned, 2);
    let mut h1 = q.handle();
    // Touch every shard so each inner handle holds a live segment binding —
    // drop must release bindings *and* slots.
    for shard in 0..SHARDS as u64 {
        h1.enqueue(shard);
    }
    let _h2 = q.handle();
    assert!(q.register().is_none(), "both slots taken on every shard");
    drop(h1);
    assert!(
        q.register().is_some(),
        "drop must release one slot on every shard"
    );
    // Underneath, each shard individually has a free slot again.
    drop(_h2);
    let handles: Vec<_> = q
        .shards()
        .iter()
        .map(|s| s.register().expect("slot free after drops"))
        .collect();
    drop(handles);
}

#[test]
fn one_consumer_steals_from_every_shard() {
    const PER_SHARD: u64 = 200;
    let q = tiny_segments(ShardPolicy::RoundRobin, 3);
    std::thread::scope(|s| {
        // One producer spreads values across all shards (round-robin)...
        s.spawn(|| {
            let mut h = q.handle();
            for i in 0..SHARDS as u64 * PER_SHARD {
                h.enqueue(i);
            }
        });
    });
    // ...and every shard really holds a share.
    for (i, shard) in q.shards().iter().enumerate() {
        assert_eq!(shard.len_hint(), PER_SHARD as usize, "shard {i} share");
    }
    // A single consumer (whose home shard is just one of the four) must
    // recover every value by stealing from the other three.
    let mut consumer = q.handle();
    let mut seen = HashSet::new();
    while let Some(v) = consumer.dequeue() {
        assert!(seen.insert(v), "duplicated {v}");
    }
    assert_eq!(seen.len(), (SHARDS as u64 * PER_SHARD) as usize);
    assert!(q.is_empty_hint(), "drained queue hints empty");
}

#[test]
fn pinned_producers_preserve_per_producer_fifo_through_stealing() {
    const PRODUCERS: usize = 3;
    const PER_PRODUCER: u64 = 2_000;
    let q = tiny_segments(ShardPolicy::Pinned, PRODUCERS + 1);
    std::thread::scope(|s| {
        for p in 0..PRODUCERS as u64 {
            let q = &q;
            s.spawn(move || {
                let mut h = q.handle();
                for i in 0..PER_PRODUCER {
                    h.enqueue(p * PER_PRODUCER + i);
                }
            });
        }
        let q = &q;
        s.spawn(move || {
            let mut h = q.handle();
            let mut last = [0u64; PRODUCERS];
            let mut got = 0u64;
            while got < PRODUCERS as u64 * PER_PRODUCER {
                if let Some(v) = h.dequeue() {
                    let producer = (v / PER_PRODUCER) as usize;
                    let seq = v % PER_PRODUCER + 1;
                    assert!(
                        seq > last[producer],
                        "producer {producer}: seq {seq} after {}",
                        last[producer]
                    );
                    last[producer] = seq;
                    got += 1;
                } else {
                    std::thread::yield_now();
                }
            }
        });
    });
}

#[test]
fn stress_oracle_holds_for_sharded_kinds_under_forced_growth() {
    // The CI sharded-stress smoke: both hardware models, tiny segments, the
    // full loss/duplication/invention/pinned-producer-FIFO oracle.
    for kind in [QueueKind::WcqSharded, QueueKind::WcqShardedLlsc] {
        let mut plan = StressPlan::from_seed(kind, 0x5AAD_ED01);
        plan.ring_order = 4; // 16-slot segments << ops_per_producer
        assert!(plan.pin_producers, "sharded plans pin by default");
        plan.assert_holds();
    }
}

#[test]
fn stress_oracle_holds_for_adaptive_routing_under_forced_growth() {
    // The adaptive kind runs unpinned by construction (the active-prefix
    // router deliberately spreads producers), so the oracle checks
    // loss/duplication/invention while the prefix grows and shrinks across
    // tiny 16-slot segments.
    let mut plan = StressPlan::from_seed(QueueKind::WcqShardedAdaptive, 0x5AAD_ED03);
    plan.ring_order = 4;
    assert!(
        !plan.pin_producers,
        "adaptive plans are unpinned by construction"
    );
    plan.assert_holds();
}

#[test]
fn stress_oracle_relaxed_variant_spreads_producers() {
    // The unpinned plan variant: round-robin routing spreads each producer
    // across shards; loss/duplication/invention still hold (FIFO is
    // deliberately out of contract — see StressPlan::pin_producers).
    let mut plan = StressPlan::from_seed(QueueKind::WcqSharded, 0x5AAD_ED02);
    plan.pin_producers = false;
    plan.ring_order = 4;
    plan.assert_holds();
}
