//! Close-semantics integration suite for the channel endpoints (ISSUE 5).
//!
//! The acceptance claim: `build_channel::<u64>()` works over the bounded,
//! unbounded and sharded backends, every pre-close send is drained exactly
//! once, and post-close sends fail with `Closed`.  The seeded
//! [`ChannelStressPlan`] packages the concurrent version of that claim (the
//! close racing live consumers); the direct tests below pin down the
//! single-threaded corners and the cross-thread endpoint ergonomics the
//! channel API exists for.

use wcq::channel::{RecvError, TryRecvError, TrySendError};
use wcq::ChannelBackend;
use wcq_harness::{all_channel_backends, ChannelStressPlan};

fn pair_over(backend: ChannelBackend) -> (wcq::Sender<u64>, wcq::Receiver<u64>) {
    wcq::builder()
        .capacity_order(6)
        .threads(6)
        .shards(if backend == ChannelBackend::Sharded {
            4
        } else {
            1
        })
        // Pinned routing is the policy under which a sharded channel keeps
        // per-producer FIFO (each endpoint stays on its home shard); the
        // spreading policies deliberately trade that order away.
        .shard_policy(wcq::ShardPolicy::Pinned)
        .backend(backend)
        .build_channel::<u64>()
}

#[test]
fn seeded_close_oracle_holds_on_every_backend() {
    // Both close modes (explicit close and last-sender-drop) appear across
    // the seeds; assert_holds replays the exact plan on failure.
    for backend in all_channel_backends() {
        for seed in 0..4u64 {
            ChannelStressPlan::from_seed(backend, seed).assert_holds();
        }
    }
}

#[test]
fn every_backend_round_trips_and_reports_its_name() {
    for backend in all_channel_backends() {
        let (mut tx, mut rx) = pair_over(backend);
        assert!(tx.same_channel(&rx));
        for i in 0..50 {
            tx.send(i).unwrap();
        }
        for i in 0..50 {
            assert_eq!(rx.recv(), Ok(i), "backend {backend:?} keeps FIFO");
        }
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        assert!(!tx.backend_name().is_empty());
        assert_eq!(tx.backend_name(), rx.backend_name());
    }
}

#[test]
fn pre_close_values_drain_exactly_once_then_closed_on_every_backend() {
    for backend in all_channel_backends() {
        let (mut tx, mut rx) = pair_over(backend);
        for i in 0..20 {
            tx.send(i).unwrap();
        }
        tx.close();
        assert_eq!(
            tx.try_send(99),
            Err(TrySendError::Closed(99)),
            "backend {backend:?}: post-close sends fail fast"
        );
        let drained: Vec<u64> = (&mut rx).collect();
        assert_eq!(
            drained,
            (0..20).collect::<Vec<_>>(),
            "backend {backend:?}: every pre-close send drained exactly once"
        );
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Closed));
    }
}

#[test]
fn endpoints_fan_out_across_plain_spawned_threads() {
    // The ergonomic point of the channel layer: endpoints are Send + 'static,
    // so plain `thread::spawn` works — no scoped threads, no manual
    // registration, no `Arc<Queue>` plumbing.
    const PRODUCERS: u64 = 4;
    const PER_PRODUCER: u64 = 5_000;
    let (tx, rx) = wcq::builder().threads(8).build_channel::<u64>();

    let mut workers = Vec::new();
    for p in 0..PRODUCERS {
        let mut tx = tx.clone();
        workers.push(std::thread::spawn(move || {
            for i in 0..PER_PRODUCER {
                tx.send(p * PER_PRODUCER + i).unwrap();
            }
        }));
    }
    drop(tx); // workers' clones keep the channel open

    let mut consumers = Vec::new();
    for _ in 0..2 {
        let mut rx = rx.clone();
        consumers.push(std::thread::spawn(move || {
            let mut got = Vec::new();
            while let Ok(v) = rx.recv() {
                got.push(v);
            }
            got
        }));
    }
    drop(rx);

    for w in workers {
        w.join().unwrap();
    }
    let mut all: Vec<u64> = consumers
        .into_iter()
        .flat_map(|c| c.join().unwrap())
        .collect();
    all.sort_unstable();
    assert_eq!(all, (0..PRODUCERS * PER_PRODUCER).collect::<Vec<_>>());
}

#[test]
fn receiver_side_close_fails_producers_fast() {
    let (mut tx, rx) = pair_over(ChannelBackend::Unbounded);
    tx.send(1).unwrap();
    rx.close();
    assert!(tx.send(2).is_err(), "producers observe a consumer shutdown");
    // The pre-close value remains drainable by the closing side.
    let mut rx = rx;
    assert_eq!(rx.recv(), Ok(1));
    assert_eq!(rx.recv(), Err(RecvError));
}

#[test]
fn bounded_backend_backpressure_resolves_through_a_consumer() {
    let (mut tx, mut rx) = wcq::builder()
        .capacity_order(2) // capacity 4: producers really block
        .threads(3)
        .backend(ChannelBackend::Bounded)
        .build_channel::<u64>();
    for i in 0..4 {
        tx.try_send(i).unwrap();
    }
    assert!(matches!(tx.try_send(4), Err(TrySendError::Full(4))));
    let producer = std::thread::spawn(move || {
        let mut tx = tx;
        // Blocks on the full queue until the consumer below drains.
        for i in 4..200 {
            tx.send(i).unwrap();
        }
    });
    for i in 0..200 {
        assert_eq!(rx.recv(), Ok(i));
    }
    producer.join().unwrap();
}

#[test]
fn llsc_hardware_model_channels_work_end_to_end() {
    wcq::atomics::llsc::set_spurious_failure_rate(0.0);
    let (tx, mut rx) = wcq::builder()
        .capacity_order(5)
        .threads(4)
        .llsc()
        .build_channel::<u64>();
    let mut tx = tx;
    assert_eq!(tx.backend_name(), "wLSCQ (LL/SC)");
    for i in 0..300 {
        tx.send(i).unwrap(); // crosses segments: 300 values through 32-slot rings
    }
    drop(tx);
    assert_eq!((&mut rx).collect::<Vec<_>>(), (0..300).collect::<Vec<_>>());
}

#[test]
fn counting_backends_hint_empty_after_a_drain() {
    for backend in [ChannelBackend::Unbounded, ChannelBackend::Sharded] {
        let (mut tx, mut rx) = pair_over(backend);
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        assert!(!rx.is_empty_hint(), "backend {backend:?}: holds 100 values");
        for _ in 0..100 {
            rx.recv().unwrap();
        }
        assert!(rx.is_empty_hint(), "backend {backend:?}: drained");
    }
}
