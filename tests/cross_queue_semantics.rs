//! Cross-crate integration tests: every queue in the evaluation is driven
//! through the public `WaitFreeQueue` facade and must satisfy the same
//! MPMC semantics (no loss, no duplication, per-producer FIFO), matching how
//! the paper's benchmark treats all algorithms uniformly.
//!
//! FAA is excluded from the semantic tests — the paper itself labels it "not
//! a true queue algorithm".

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use wcq_harness::{make_queue, QueueKind};

/// Every real queue algorithm (everything except FAA).
fn real_queues() -> Vec<QueueKind> {
    vec![
        QueueKind::Wcq,
        QueueKind::WcqLlsc,
        QueueKind::Scq,
        QueueKind::MsQueue,
        QueueKind::Lcrq,
        QueueKind::Ymc,
        QueueKind::CcQueue,
        QueueKind::CrTurn,
    ]
}

#[test]
fn all_queues_fifo_single_thread() {
    for kind in real_queues() {
        let q = make_queue(kind, 2, 8);
        let mut h = q.handle();
        assert_eq!(h.dequeue(), None, "{kind:?} must start empty");
        for i in 0..200 {
            h.enqueue(i);
        }
        for i in 0..200 {
            assert_eq!(h.dequeue(), Some(i), "{kind:?} FIFO order");
        }
        assert_eq!(h.dequeue(), None, "{kind:?} must end empty");
    }
}

#[test]
fn all_queues_mpmc_no_loss_no_duplication() {
    const PRODUCERS: u64 = 2;
    const CONSUMERS: u64 = 2;
    const PER_PRODUCER: u64 = 4_000;
    for kind in real_queues() {
        let q = make_queue(kind, (PRODUCERS + CONSUMERS) as usize, 10);
        let consumed = Mutex::new(Vec::<u64>::new());
        let done = AtomicU64::new(0);

        std::thread::scope(|s| {
            for p in 0..PRODUCERS {
                let q = q.as_ref();
                s.spawn(move || {
                    let mut h = q.handle();
                    for i in 0..PER_PRODUCER {
                        h.enqueue(p * PER_PRODUCER + i);
                    }
                });
            }
            for _ in 0..CONSUMERS {
                let q = q.as_ref();
                let consumed = &consumed;
                let done = &done;
                s.spawn(move || {
                    let mut h = q.handle();
                    let mut local = Vec::new();
                    loop {
                        if done.load(Ordering::Relaxed) >= PRODUCERS * PER_PRODUCER {
                            break;
                        }
                        match h.dequeue() {
                            Some(v) => {
                                local.push(v);
                                done.fetch_add(1, Ordering::Relaxed);
                            }
                            None => std::thread::yield_now(),
                        }
                    }
                    consumed.lock().unwrap().extend(local);
                });
            }
        });

        let consumed = consumed.into_inner().unwrap();
        assert_eq!(
            consumed.len() as u64,
            PRODUCERS * PER_PRODUCER,
            "{kind:?}: every element consumed exactly once"
        );
        let distinct: HashSet<u64> = consumed.iter().copied().collect();
        assert_eq!(
            distinct.len(),
            consumed.len(),
            "{kind:?}: duplicated element detected"
        );
    }
}

#[test]
fn all_queues_per_producer_order_with_single_consumer() {
    const PER_PRODUCER: u64 = 3_000;
    for kind in real_queues() {
        let q = make_queue(kind, 3, 10);
        std::thread::scope(|s| {
            for p in 0..2u64 {
                let q = q.as_ref();
                s.spawn(move || {
                    let mut h = q.handle();
                    for i in 1..=PER_PRODUCER {
                        h.enqueue(p * 10_000_000 + i);
                    }
                });
            }
            let q = q.as_ref();
            s.spawn(move || {
                let mut h = q.handle();
                let mut last = [0u64; 2];
                let mut got = 0;
                while got < 2 * PER_PRODUCER {
                    if let Some(v) = h.dequeue() {
                        let p = (v / 10_000_000) as usize;
                        let i = v % 10_000_000;
                        assert!(
                            i > last[p],
                            "{kind:?}: per-producer FIFO violated ({i} after {})",
                            last[p]
                        );
                        last[p] = i;
                        got += 1;
                    } else {
                        std::thread::yield_now();
                    }
                }
            });
        });
    }
}
