//! Seeded StressPlan sweep: every real queue algorithm must satisfy the
//! loss/duplication/per-producer-FIFO oracle under randomized (but fully
//! reproducible) thread/op-mix/patience configurations.
//!
//! Each test prints nothing on success; on failure the panic message carries
//! the seed, and `StressPlan::from_seed(kind, seed)` replays the exact run.

use wcq_harness::{all_real_queues, AdaptivePatience, QueueKind, StressPlan, WcqConfig};

/// Two seeds per kind keeps the sweep broad but CI-fast; the seeds are
/// arbitrary and fixed so runs are comparable.  The sweep now covers 13 real
/// kinds, including the sharded wLSCQ pair (pinned producers, so the full
/// per-producer-FIFO oracle applies — the relaxed unpinned variant lives in
/// `tests/sharded.rs`) and the adaptive-routed sharded kind (unpinned by
/// construction: the oracle checks loss/duplication/invention for it).
const SEEDS: [u64; 2] = [0xC0FF_EE00, 0x5EED_0002];

#[test]
fn stress_oracle_holds_for_all_real_queues() {
    for kind in all_real_queues() {
        for seed in SEEDS {
            StressPlan::from_seed(kind, seed).assert_holds();
        }
    }
}

#[test]
fn stress_oracle_holds_with_forced_slow_path() {
    // Override the derived patience so every operation of both wCQ hardware
    // models (bounded, unbounded and sharded) runs the Figure 5-7 slow-path
    // machinery.
    for kind in [
        QueueKind::Wcq,
        QueueKind::WcqLlsc,
        QueueKind::WcqUnbounded,
        QueueKind::WcqUnboundedLlsc,
        QueueKind::WcqSharded,
        QueueKind::WcqShardedLlsc,
        QueueKind::WcqShardedAdaptive,
    ] {
        let mut plan = StressPlan::from_seed(kind, 0xBAD_FA57);
        plan.wcq_config = WcqConfig {
            max_patience_enqueue: 1,
            max_patience_dequeue: 1,
            help_delay: 1,
            catchup_bound: 8,
            ..WcqConfig::default()
        };
        plan.assert_holds();
    }
}

#[test]
fn stress_oracle_holds_for_unbounded_under_forced_segment_growth() {
    // Tiny 16-slot segments with thousands of enqueues per producer: every
    // burst overflows many segments, so the plan constantly appends, closes,
    // retires and recycles segments while the oracle watches for loss,
    // duplication and per-producer FIFO (ISSUE 2 acceptance criterion).
    // Since ISSUE 3 every worker drives the queue through the public facade
    // handle, whose memoized segment binding must chase head/tail across all
    // that churn without dropping a value.
    for kind in [QueueKind::WcqUnbounded, QueueKind::WcqUnboundedLlsc] {
        for seed in SEEDS {
            let mut plan = StressPlan::from_seed(kind, seed);
            plan.ring_order = 4; // 2^4 slots per segment << ops_per_producer
            plan.assert_holds();
        }
    }
}

#[test]
fn stress_oracle_holds_under_injected_llsc_spurious_failures() {
    // The §4 LL/SC construction must stay correct when store-conditionals
    // fail spuriously (weak LL/SC hardware); inject a harsh 25% rate.
    let mut plan = StressPlan::from_seed(QueueKind::WcqLlsc, 0x115C_FA11);
    plan.spurious_rate = 0.25;
    plan.assert_holds();
}

#[test]
fn stress_oracle_holds_with_adaptive_patience_under_llsc_spurious_failures() {
    // Spurious store-conditional failures are extra fast-path attempts, i.e.
    // exactly the signal the adaptive controller's EWMA feeds on — so this
    // is the one deterministic way to drive patience raises on a single-core
    // box while the full oracle watches for loss/duplication/FIFO breaks.
    for kind in [QueueKind::WcqLlsc, QueueKind::WcqUnboundedLlsc] {
        let mut plan = StressPlan::from_seed(kind, 0x115C_ADA7);
        plan.spurious_rate = 0.25;
        plan.wcq_config.adaptive_patience = Some(AdaptivePatience {
            min: 1,
            max: 256,
            sample_every: 16,
        });
        plan.assert_holds();
    }
}

#[test]
fn stress_plans_are_reproducible() {
    for kind in all_real_queues() {
        for seed in [0u64, 7, 0xFFFF_FFFF_FFFF_FFFF] {
            assert_eq!(
                StressPlan::from_seed(kind, seed),
                StressPlan::from_seed(kind, seed),
            );
        }
    }
}

#[test]
fn stress_reports_expose_observations_for_custom_checks() {
    // The report is usable programmatically, not only via assert_holds:
    // future suites can layer extra invariants on the raw observations.
    let mut plan = StressPlan::from_seed(QueueKind::Wcq, 0xD00D);
    plan.ops_per_producer = 800;
    plan.ops_per_mixer = 300;
    let report = plan.run();
    report.verify().expect("oracle must pass");
    assert_eq!(report.total_enqueued(), report.total_consumed());
    assert!(report.total_enqueued() >= 800, "at least one producer ran");
    assert_eq!(
        report.observations.len(),
        plan.consumers + plan.mixers,
        "every consumer and mixer contributes an observation list"
    );
}
