//! Handle-lifecycle coverage for the `wcq` facade (ISSUE 3):
//!
//! * RAII: dropping a handle releases its record slot, and the same thread
//!   re-registers at the same tid in O(1) via the thread-local memo;
//! * exhaustion surfaces through `try_handle`, recovery through drop;
//! * the unbounded handle's memoized segment binding survives forced segment
//!   growth (tiny `ring_order = 4` segments) without losing values, both
//!   through the concrete API and through the boxed facade trait;
//! * all 13 `QueueKind`s hand out working handles through the public trait
//!   (the deeper sharded-handle lifecycle lives in `tests/sharded.rs`).
//!
//! (`!Send`-ness of the handles is enforced at compile time by the
//! `compile_fail` doctests on `WcqQueueHandle` and `UnboundedWcqHandle`.)

// The deprecated ad-hoc stats accessors stay covered until they are removed
// (their replacement is the `CountingInstrument` metrics snapshot).
#![allow(deprecated)]

use wcq::{UnboundedWcq, WcqQueue};
use wcq_harness::{make_queue, QueueKind};

#[test]
fn bounded_handle_drop_releases_the_record_slot() {
    let q: WcqQueue<u64> = wcq::builder().capacity_order(6).threads(2).build_bounded();
    let h1 = q.register().unwrap();
    let h2 = q.register().unwrap();
    let (t1, t2) = (h1.tid(), h2.tid());
    assert_ne!(t1, t2);
    assert!(q.register().is_none(), "both slots taken");
    drop(h1);
    let h3 = q.register().expect("drop must release the slot");
    assert_eq!(h3.tid(), t1, "same thread re-enters at its memoized tid");
    drop(h2);
    drop(h3);
}

#[test]
fn unbounded_handle_drop_releases_the_record_slot() {
    let q: UnboundedWcq<u64> = wcq::builder()
        .capacity_order(6)
        .threads(2)
        .build_unbounded();
    let mut h1 = q.handle();
    h1.enqueue(7); // establish a segment binding before dropping
    let tid = h1.tid();
    let _h2 = q.handle();
    assert!(q.register().is_none());
    drop(h1);
    let h3 = q
        .register()
        .expect("drop must release the slot (and its binding)");
    assert_eq!(h3.tid(), tid);
}

#[test]
fn facade_handles_are_raii_for_every_registration_limited_kind() {
    for kind in [
        QueueKind::Wcq,
        QueueKind::WcqLlsc,
        QueueKind::MsQueue,
        QueueKind::Lcrq,
        QueueKind::CcQueue,
        QueueKind::CrTurn,
        QueueKind::WcqUnbounded,
        QueueKind::WcqUnboundedLlsc,
        QueueKind::WcqSharded,
        QueueKind::WcqShardedLlsc,
    ] {
        let q = make_queue(kind, 1, 8);
        let h = q.try_handle().expect("one slot free");
        assert!(q.try_handle().is_none(), "kind {kind:?}: limit enforced");
        drop(h);
        assert!(q.try_handle().is_some(), "kind {kind:?}: slot released");
    }
}

#[test]
fn all_fourteen_kinds_hand_out_working_trait_handles() {
    let kinds = QueueKind::all();
    assert_eq!(kinds.len(), 14);
    for kind in kinds {
        let q = make_queue(kind, 2, 8);
        let mut h = q.handle();
        h.enqueue(5);
        assert_eq!(h.dequeue(), Some(5), "kind {kind:?}");
    }
}

#[test]
fn segment_memo_survives_forced_growth_without_missing_values() {
    // ring_order = 4: 16-slot segments, so 2_000 values cross ~125 segments
    // while a consumer chases the producer.  The memoized binding must follow
    // head/tail across every transition without losing or reordering values.
    const ITEMS: u64 = 2_000;
    let q: UnboundedWcq<u64> = wcq::builder()
        .capacity_order(4)
        .threads(3)
        .build_unbounded();
    std::thread::scope(|s| {
        s.spawn(|| {
            let mut h = q.handle();
            for i in 0..ITEMS {
                h.enqueue(i);
            }
            assert!(
                h.segment_rebinds() > 1,
                "growth must have moved the producer's binding"
            );
        });
        s.spawn(|| {
            let mut h = q.handle();
            let mut expected = 0u64;
            while expected < ITEMS {
                if let Some(v) = h.dequeue() {
                    assert_eq!(v, expected, "single consumer must observe FIFO");
                    expected += 1;
                } else {
                    std::thread::yield_now();
                }
            }
        });
    });
    let mut h = q.handle();
    assert_eq!(h.dequeue(), None, "fully drained");
    h.flush_reclamation();
    drop(h);
    assert_eq!(
        q.segments_live(),
        1,
        "drained queue returns to one live segment"
    );
}

#[test]
fn segment_memo_amortizes_binding_on_the_stay_in_one_segment_case() {
    let q: UnboundedWcq<u64> = wcq::builder()
        .capacity_order(8)
        .threads(1)
        .build_unbounded();
    let mut h = q.handle();
    for round in 0..50u64 {
        for i in 0..100 {
            h.enqueue(round * 100 + i);
        }
        for i in 0..100 {
            assert_eq!(h.dequeue(), Some(round * 100 + i));
        }
    }
    // 10_000 operations, one 256-slot segment: exactly one bind, ever.
    assert_eq!(h.segment_rebinds(), 1);
}

#[test]
fn empty_hint_is_meaningful_for_counting_kinds_and_conservative_elsewhere() {
    for kind in QueueKind::all() {
        let q = make_queue(kind, 2, 6);
        let counting = kind.has_len_hint();
        if counting {
            assert!(q.is_empty_hint(), "kind {kind:?}: fresh queue hints empty");
        }
        let mut h = q.handle();
        h.enqueue(1);
        assert!(
            !q.is_empty_hint(),
            "kind {kind:?}: a non-empty queue must never hint empty \
             (false is the conservative default for non-counting kinds)"
        );
        assert_eq!(h.dequeue(), Some(1), "kind {kind:?}");
        if counting {
            assert!(
                q.is_empty_hint(),
                "kind {kind:?}: drained queue hints empty"
            );
        }
    }
}

#[test]
fn registration_slot_exhaustion_is_uniform_across_all_kinds() {
    // Satellite (ISSUE 5): for every one of the 13 kinds — `try_handle()`
    // returns `None` at `max_threads`, a dropped handle frees the slot, and
    // the panicking `handle()` names the queue and the limit.  Kinds without
    // registration (`max_threads == usize::MAX`) hand out handles without
    // ever exhausting.
    //
    // The `handle()` panic below is expected; silence the default hook for
    // just that call so the test log stays readable.  The hook is process
    // global (parallel tests in this binary share it), so the blind window
    // is confined to the intentional panic, and an RAII guard restores the
    // hook even if the expected panic fails to materialize.
    type PanicHook = Box<dyn Fn(&std::panic::PanicHookInfo<'_>) + Sync + Send>;
    struct HookGuard(Option<PanicHook>);
    impl Drop for HookGuard {
        fn drop(&mut self) {
            std::panic::set_hook(self.0.take().expect("restored once"));
        }
    }
    fn catch_expected_panic(op: impl FnOnce()) -> std::thread::Result<()> {
        let _guard = HookGuard(Some(std::panic::take_hook()));
        std::panic::set_hook(Box::new(|_| {}));
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(op))
    }
    for kind in QueueKind::all() {
        let q = make_queue(kind, 2, 8);
        if q.max_threads() == usize::MAX {
            // Unregistered kinds: any number of simultaneous handles.
            let _a = q.handle();
            let _b = q.handle();
            let _c = q.handle();
            continue;
        }
        assert_eq!(q.max_threads(), 2, "kind {kind:?}");
        let a = q.try_handle().expect("slot 1 free");
        let b = q.try_handle().expect("slot 2 free");
        assert!(
            q.try_handle().is_none(),
            "kind {kind:?}: exhausted at max_threads"
        );
        let panic_payload = match catch_expected_panic(|| {
            let _ = q.handle();
        }) {
            Err(payload) => payload,
            Ok(()) => panic!("kind {kind:?}: handle() must panic when exhausted"),
        };
        let message = panic_payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(
            message.contains(q.name()) && message.contains("all 2 registration slots"),
            "kind {kind:?}: exhaustion panic must name the queue and the limit, got {message:?}"
        );
        drop(a);
        let a_again = q.try_handle();
        assert!(
            a_again.is_some(),
            "kind {kind:?}: dropped handle frees its slot"
        );
        drop(a_again);
        drop(b);
        // Fully released: both slots reusable.
        let x = q.try_handle().expect("slot free after full release");
        let y = q.try_handle().expect("second slot free after full release");
        drop((x, y));
    }
}

#[test]
fn builder_is_the_single_construction_path_for_both_shapes() {
    // The same builder (with the same knobs) produces both queue shapes, so
    // a config cannot drift between the bounded and the unbounded variant.
    let b = wcq::builder().capacity_order(5).threads(4).patience(8, 32);
    let bounded = b.clone().build_bounded::<u64>();
    let unbounded = b.build_unbounded::<u64>();
    assert_eq!(bounded.capacity(), 32);
    assert_eq!(unbounded.segment_capacity(), 32);
    assert_eq!(bounded.config().max_patience_enqueue, 8);
    assert_eq!(bounded.config().max_patience_dequeue, 32);
    let mut hb = bounded.register().unwrap();
    let mut hu = unbounded.handle();
    hb.enqueue(1).unwrap();
    hu.enqueue(1);
    assert_eq!(hb.dequeue(), Some(1));
    assert_eq!(hu.dequeue(), Some(1));
}
