//! Segment-lifecycle acceptance tests for `wcq-unbounded` (wLSCQ).
//!
//! The unbounded queue's memory story is the whole point of building it from
//! wCQ rings: growth is driven only by real backlog, drained segments are
//! retired through hazard pointers, and the live segment count returns to the
//! steady-state bound (one tail segment) after every drain — unlike LCRQ,
//! whose premature ring closes leak whole rings' worth of capacity
//! (Figure 10a of the paper).

use std::sync::atomic::{AtomicU64, Ordering};

use wcq_core::wcq::{CellFamily, LlscFamily, NativeFamily, WcqConfig};
use wcq_unbounded::{UnboundedWcq, DEFAULT_SEGMENT_CACHE};

/// Enqueue bursts far beyond one segment, drain completely, and require the
/// live segment count to return to 1 (the steady-state bound) with total
/// residency capped by the segment cache.
fn burst_drain_returns_to_steady_state<F: CellFamily>() {
    const SEG_ORDER: u32 = 4; // 16-slot segments
    const BURST: u64 = 200; // >> segment capacity: forces many appends
    let q: UnboundedWcq<u64, F> = UnboundedWcq::new(SEG_ORDER, 2);
    let mut h = q.register().unwrap();

    for round in 0..5u64 {
        for i in 0..BURST {
            h.enqueue(round * BURST + i);
        }
        assert!(
            q.segments_live() as u64 >= BURST / (1 << SEG_ORDER),
            "burst must grow the queue: {:?}",
            q.segment_stats()
        );
        for i in 0..BURST {
            assert_eq!(h.dequeue(), Some(round * BURST + i), "FIFO across segments");
        }
        assert_eq!(h.dequeue(), None);
        h.flush_reclamation();

        let stats = q.segment_stats();
        assert_eq!(
            stats.live, 1,
            "drain must shrink back to one segment: {stats:?}"
        );
        assert_eq!(
            stats.retired_pending, 0,
            "flush reclaims every retired segment: {stats:?}"
        );
        assert!(
            stats.resident() <= 1 + DEFAULT_SEGMENT_CACHE,
            "residency bounded by live + cache: {stats:?}"
        );
    }
    // Across five identical rounds the cache must serve appends: the number
    // of genuine allocations stays far below the number of appends.
    let stats = q.segment_stats();
    assert!(stats.reused_total > 0, "{stats:?}");
}

#[test]
fn burst_drain_returns_to_steady_state_native() {
    burst_drain_returns_to_steady_state::<NativeFamily>();
}

#[test]
fn burst_drain_returns_to_steady_state_llsc() {
    wcq_atomics::llsc::set_spurious_failure_rate(0.0);
    burst_drain_returns_to_steady_state::<LlscFamily>();
}

/// Concurrent producers/consumers over tiny segments: constant segment churn
/// with the forced wCQ slow path, then a full drain returns to the bound.
#[test]
fn concurrent_churn_with_forced_slow_path_returns_to_bound() {
    const PRODUCERS: u64 = 2;
    const CONSUMERS: u64 = 2;
    const PER_PRODUCER: u64 = 4_000;
    let cfg = WcqConfig {
        max_patience_enqueue: 1,
        max_patience_dequeue: 1,
        help_delay: 1,
        catchup_bound: 8,
        ..WcqConfig::default()
    };
    let q: UnboundedWcq<u64> = wcq::builder()
        .capacity_order(4)
        .threads((PRODUCERS + CONSUMERS) as usize)
        .config(cfg)
        .build_unbounded();
    let consumed = AtomicU64::new(0);
    let sum = AtomicU64::new(0);

    std::thread::scope(|s| {
        for p in 0..PRODUCERS {
            let q = &q;
            s.spawn(move || {
                let mut h = q.register().unwrap();
                for i in 0..PER_PRODUCER {
                    h.enqueue(p * PER_PRODUCER + i);
                }
            });
        }
        for _ in 0..CONSUMERS {
            let q = &q;
            let consumed = &consumed;
            let sum = &sum;
            s.spawn(move || {
                let mut h = q.register().unwrap();
                loop {
                    if consumed.load(Ordering::SeqCst) >= PRODUCERS * PER_PRODUCER {
                        break;
                    }
                    match h.dequeue() {
                        Some(v) => {
                            sum.fetch_add(v, Ordering::SeqCst);
                            consumed.fetch_add(1, Ordering::SeqCst);
                        }
                        None => std::thread::yield_now(),
                    }
                }
                h.flush_reclamation();
            });
        }
    });

    let n = PRODUCERS * PER_PRODUCER;
    assert_eq!(consumed.load(Ordering::SeqCst), n);
    assert_eq!(
        sum.load(Ordering::SeqCst),
        n * (n - 1) / 2,
        "no loss, no duplication"
    );

    // Everything was consumed, so after one reclamation pass the queue is
    // back to its steady-state segment bound.
    let mut h = q.register().unwrap();
    assert_eq!(h.dequeue(), None);
    h.flush_reclamation();
    drop(h);
    let stats = q.segment_stats();
    assert_eq!(stats.live, 1, "{stats:?}");
    assert_eq!(
        stats.retired_pending, 0,
        "the final single-threaded flush drains every orphan: {stats:?}"
    );
    assert!(
        stats.resident() <= 1 + DEFAULT_SEGMENT_CACHE,
        "residency bounded by live + cache: {stats:?}"
    );
    assert!(
        stats.allocated_total as u64 <= 2 * n / (1 << 4),
        "allocations bounded by segment churn: {stats:?}"
    );
}
