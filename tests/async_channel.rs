//! Park/wake integration suite for the async channel endpoints (ISSUE 5).
//!
//! The acceptance claims: a parked receiver is woken by an enqueue and by
//! `close()` — *without busy-spinning*, which the tests pin down two ways:
//!
//! * **deterministically**, by hand-polling a future with a counting waker:
//!   `Pending` proves the waker is parked, and the wake count after a send /
//!   close proves exactly who woke it;
//! * **end to end**, through the dependency-free `block_on_counted` executor
//!   shim: a full cross-thread pipeline must finish with poll/wake counts
//!   linear in the item count (a busy-polling receiver shows orders of
//!   magnitude more).

// The deprecated ad-hoc stats accessors stay covered until they are removed
// (their replacement is the `CountingInstrument` metrics snapshot).
#![allow(deprecated)]

use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicU64, Ordering::SeqCst};
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};

use wcq::channel::{RecvError, SendError, TrySendError};
use wcq::ChannelBackend;
use wcq_harness::exec::{block_on, block_on_counted};

/// A waker that only counts; `Pending` + count 0 proves nothing woke us.
struct CountingWake(AtomicU64);

impl Wake for CountingWake {
    fn wake(self: Arc<Self>) {
        self.0.fetch_add(1, SeqCst);
    }
    fn wake_by_ref(self: &Arc<Self>) {
        self.0.fetch_add(1, SeqCst);
    }
}

fn counting_waker() -> (Arc<CountingWake>, Waker) {
    let count = Arc::new(CountingWake(AtomicU64::new(0)));
    (Arc::clone(&count), Waker::from(Arc::clone(&count)))
}

fn async_pair(backend: ChannelBackend) -> (wcq::AsyncSender<u64>, wcq::AsyncReceiver<u64>) {
    wcq::builder()
        .capacity_order(6)
        .threads(6)
        .shards(if backend == ChannelBackend::Sharded {
            4
        } else {
            1
        })
        // Per-producer FIFO for sharded channels needs pinned routing.
        .shard_policy(wcq::ShardPolicy::Pinned)
        .backend(backend)
        .build_async::<u64>()
}

#[test]
fn parked_receiver_is_woken_by_exactly_one_enqueue() {
    for backend in [
        ChannelBackend::Bounded,
        ChannelBackend::Unbounded,
        ChannelBackend::Sharded,
    ] {
        let (mut tx, mut rx) = async_pair(backend);
        let (count, waker) = counting_waker();
        let mut cx = Context::from_waker(&waker);

        let mut fut = rx.recv();
        assert!(
            matches!(Pin::new(&mut fut).poll(&mut cx), Poll::Pending),
            "backend {backend:?}: empty channel parks the receiver"
        );
        assert_eq!(count.0.load(SeqCst), 0, "parked, not spinning");

        tx.try_send(7).unwrap();
        assert_eq!(
            count.0.load(SeqCst),
            1,
            "backend {backend:?}: one enqueue wakes the parked receiver exactly once"
        );
        assert!(matches!(
            Pin::new(&mut fut).poll(&mut cx),
            Poll::Ready(Ok(7))
        ));
        // No further polls, no further wakes.
        assert_eq!(count.0.load(SeqCst), 1);
    }
}

#[test]
fn parked_receiver_is_woken_by_close_and_resolves_closed() {
    let (tx, mut rx) = async_pair(ChannelBackend::Unbounded);
    let (count, waker) = counting_waker();
    let mut cx = Context::from_waker(&waker);

    let mut fut = rx.recv();
    assert!(matches!(Pin::new(&mut fut).poll(&mut cx), Poll::Pending));
    assert_eq!(count.0.load(SeqCst), 0);

    tx.close();
    assert_eq!(count.0.load(SeqCst), 1, "close wakes the parked receiver");
    assert!(matches!(
        Pin::new(&mut fut).poll(&mut cx),
        Poll::Ready(Err(RecvError))
    ));
    drop(fut);
    drop(tx);
}

#[test]
fn close_wakes_every_parked_receiver_send_wakes_one() {
    let (mut tx, rx) = async_pair(ChannelBackend::Unbounded);
    let mut rx_a = rx.clone();
    let mut rx_b = rx;
    let (count_a, waker_a) = counting_waker();
    let (count_b, waker_b) = counting_waker();
    let mut cx_a = Context::from_waker(&waker_a);
    let mut cx_b = Context::from_waker(&waker_b);

    let mut fut_a = rx_a.recv();
    let mut fut_b = rx_b.recv();
    assert!(matches!(
        Pin::new(&mut fut_a).poll(&mut cx_a),
        Poll::Pending
    ));
    assert!(matches!(
        Pin::new(&mut fut_b).poll(&mut cx_b),
        Poll::Pending
    ));

    tx.try_send(1).unwrap();
    let woken = count_a.0.load(SeqCst) + count_b.0.load(SeqCst);
    assert_eq!(woken, 1, "a send wakes one parked receiver, not all");

    tx.close();
    assert_eq!(
        count_a.0.load(SeqCst) + count_b.0.load(SeqCst),
        2,
        "close wakes the remaining parked receiver"
    );
    // Exactly one future gets the value; the other resolves Closed.
    let ra = Pin::new(&mut fut_a).poll(&mut cx_a);
    let rb = Pin::new(&mut fut_b).poll(&mut cx_b);
    let oks = [&ra, &rb]
        .iter()
        .filter(|p| matches!(p, Poll::Ready(Ok(1))))
        .count();
    let closed = [&ra, &rb]
        .iter()
        .filter(|p| matches!(p, Poll::Ready(Err(RecvError))))
        .count();
    assert_eq!((oks, closed), (1, 1), "got {ra:?} / {rb:?}");
}

#[test]
fn parked_sender_on_full_bounded_queue_is_woken_by_a_receive() {
    let (mut tx, mut rx) = wcq::builder()
        .capacity_order(1) // capacity 2, so k ≤ n caps the endpoints at 2
        .threads(2)
        .backend(ChannelBackend::Bounded)
        .build_async::<u64>();
    tx.try_send(1).unwrap();
    tx.try_send(2).unwrap();
    assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));

    let (count, waker) = counting_waker();
    let mut cx = Context::from_waker(&waker);
    let mut fut = tx.send(3);
    assert!(
        matches!(Pin::new(&mut fut).poll(&mut cx), Poll::Pending),
        "full bounded queue parks the sender"
    );
    assert_eq!(count.0.load(SeqCst), 0);

    assert_eq!(rx.try_recv(), Ok(1));
    assert_eq!(count.0.load(SeqCst), 1, "a receive wakes the parked sender");
    assert!(matches!(
        Pin::new(&mut fut).poll(&mut cx),
        Poll::Ready(Ok(()))
    ));
    drop(fut);

    assert_eq!(rx.try_recv(), Ok(2));
    assert_eq!(rx.try_recv(), Ok(3));
}

#[test]
fn parked_sender_is_woken_by_close_and_gets_its_value_back() {
    let (mut tx, rx) = wcq::builder()
        .capacity_order(1) // capacity 2, two endpoints
        .threads(2)
        .backend(ChannelBackend::Bounded)
        .build_async::<u64>();
    tx.try_send(1).unwrap();
    tx.try_send(2).unwrap();

    let (count, waker) = counting_waker();
    let mut cx = Context::from_waker(&waker);
    let mut fut = tx.send(3);
    assert!(matches!(Pin::new(&mut fut).poll(&mut cx), Poll::Pending));

    rx.close();
    assert_eq!(count.0.load(SeqCst), 1, "close wakes the parked sender");
    assert!(matches!(
        Pin::new(&mut fut).poll(&mut cx),
        Poll::Ready(Err(SendError(3)))
    ));
}

#[test]
fn cancelled_recv_future_leaves_no_stale_waker_behind() {
    let (mut tx, mut rx) = async_pair(ChannelBackend::Unbounded);
    let (count, waker) = counting_waker();
    let mut cx = Context::from_waker(&waker);
    {
        let mut fut = rx.recv();
        assert!(matches!(Pin::new(&mut fut).poll(&mut cx), Poll::Pending));
    } // dropped while parked: must unpark itself
    tx.try_send(5).unwrap();
    assert_eq!(
        count.0.load(SeqCst),
        0,
        "the send must not burn its notification on a cancelled future's waker"
    );
    // A fresh future still sees the value immediately.
    assert_eq!(block_on(rx.recv()), Ok(5));
}

#[test]
fn cancelled_future_forwards_a_consumed_notification() {
    // The nasty middle case: a notification *already took* the future's
    // waker when the future is cancelled.  The drop must forward the wake to
    // the other parked receiver, or the sent value sits unobserved forever.
    let (mut tx, rx) = async_pair(ChannelBackend::Unbounded);
    let mut rx1 = rx; // attached first: notify_one picks this slot first
    let mut rx2 = rx1.clone();
    let (count1, waker1) = counting_waker();
    let (count2, waker2) = counting_waker();
    let mut cx1 = Context::from_waker(&waker1);
    let mut cx2 = Context::from_waker(&waker2);

    let mut fut1 = rx1.recv();
    assert!(matches!(Pin::new(&mut fut1).poll(&mut cx1), Poll::Pending));
    let mut fut2 = rx2.recv();
    assert!(matches!(Pin::new(&mut fut2).poll(&mut cx2), Poll::Pending));

    tx.try_send(42).unwrap();
    assert_eq!(count1.0.load(SeqCst), 1, "the send woke the first receiver");
    assert_eq!(count2.0.load(SeqCst), 0);

    // The first receiver's task is cancelled before it re-polls (select! /
    // timeout shape).  Its consumed notification must not be swallowed.
    drop(fut1);
    assert_eq!(
        count2.0.load(SeqCst),
        1,
        "cancelling a notified future forwards the wake to the other parked receiver"
    );
    assert!(matches!(
        Pin::new(&mut fut2).poll(&mut cx2),
        Poll::Ready(Ok(42))
    ));
}

#[test]
fn async_round_trip_works_on_every_backend() {
    for backend in [
        ChannelBackend::Bounded,
        ChannelBackend::Unbounded,
        ChannelBackend::Sharded,
    ] {
        let (tx, rx) = async_pair(backend);
        let (mut tx, mut rx) = (tx, rx);
        block_on(async {
            for i in 0..200 {
                tx.send(i).await.unwrap();
                assert_eq!(rx.recv().await, Ok(i), "backend {backend:?}");
            }
            tx.close();
            assert_eq!(rx.recv().await, Err(RecvError), "backend {backend:?}");
        });
    }
}

#[test]
fn cross_thread_pipeline_has_bounded_poll_and_wake_counts() {
    const ITEMS: u64 = 2_000;
    let (tx, rx) = async_pair(ChannelBackend::Unbounded);

    let producer = std::thread::spawn(move || {
        let mut tx = tx;
        block_on(async move {
            for i in 0..ITEMS {
                tx.send(i).await.unwrap();
            }
            // Dropping tx closes the channel and wakes the consumer out of
            // its final park.
        })
    });

    let (sum, stats) = block_on_counted(async move {
        let mut rx = rx;
        let mut sum = 0u64;
        while let Ok(v) = rx.recv().await {
            sum += v;
        }
        sum
    });
    producer.join().unwrap();

    assert_eq!(
        sum,
        (0..ITEMS).sum::<u64>(),
        "exact drain through the close"
    );
    // Busy-spinning would poll orders of magnitude more often than once per
    // item: each recv takes one poll when a value is ready, plus a park/wake
    // pair when the producer falls behind.  The close adds one final wake.
    let bound = 3 * ITEMS + 16;
    assert!(
        stats.polls <= bound,
        "parked consumer must not busy-poll: {} polls for {ITEMS} items",
        stats.polls
    );
    assert!(
        stats.wakes <= ITEMS + 8,
        "at most one wake per send plus the close: {} wakes",
        stats.wakes
    );
}

#[test]
fn async_batch_round_trip_works_on_every_backend() {
    for backend in [
        ChannelBackend::Bounded,
        ChannelBackend::Unbounded,
        ChannelBackend::Sharded,
    ] {
        let (tx, rx) = async_pair(backend);
        let (mut tx, mut rx) = (tx, rx);
        block_on(async {
            // One task sends then receives, so the whole batch must fit the
            // bounded backend's 2^6 ring — a bigger batch would park the
            // sender with no receiver running.
            assert_eq!(tx.send_iter(0..48).await, Ok(48), "backend {backend:?}");
            let mut out = Vec::new();
            while out.len() < 48 {
                let mut batch = Vec::new();
                let got = rx.recv_many(&mut batch, 16).await.unwrap();
                assert!(got >= 1);
                out.extend(batch);
            }
            assert_eq!(out, (0..48).collect::<Vec<_>>(), "backend {backend:?}");
            tx.close();
            let mut batch = Vec::new();
            assert_eq!(
                rx.recv_many(&mut batch, 16).await,
                Err(RecvError),
                "backend {backend:?}"
            );
        });
    }
}

#[test]
fn parked_recv_many_is_woken_by_a_batch_send() {
    let (mut tx, mut rx) = async_pair(ChannelBackend::Unbounded);
    let (count, waker) = counting_waker();
    let mut cx = Context::from_waker(&waker);

    let mut out = Vec::new();
    let mut fut = rx.recv_many(&mut out, 8);
    assert!(
        matches!(Pin::new(&mut fut).poll(&mut cx), Poll::Pending),
        "empty channel parks the batch receiver"
    );
    assert_eq!(count.0.load(SeqCst), 0, "parked, not spinning");

    block_on(tx.send_iter(0..5)).unwrap();
    assert!(
        count.0.load(SeqCst) >= 1,
        "a batch send wakes the parked batch receiver"
    );
    assert!(matches!(
        Pin::new(&mut fut).poll(&mut cx),
        Poll::Ready(Ok(5))
    ));
    drop(fut);
    assert_eq!(out, vec![0, 1, 2, 3, 4]);
}

#[test]
fn async_send_iter_suspends_on_a_full_bounded_backend() {
    let (mut tx, mut rx) = wcq::builder()
        .capacity_order(1) // capacity 2, two endpoints
        .threads(2)
        .backend(ChannelBackend::Bounded)
        .build_async::<u64>();
    let (count, waker) = counting_waker();
    let mut cx = Context::from_waker(&waker);

    // 6 values through a 2-slot channel: the future must suspend (not spin)
    // every time the backend fills, and resume per receive.
    let mut fut = tx.send_iter(0..6);
    let mut received = Vec::new();
    loop {
        match Pin::new(&mut fut).poll(&mut cx) {
            Poll::Ready(res) => {
                assert_eq!(res, Ok(6));
                break;
            }
            Poll::Pending => {
                let woken_before = count.0.load(SeqCst);
                received.push(rx.try_recv().expect("sender parked on full"));
                assert!(
                    count.0.load(SeqCst) > woken_before,
                    "a receive wakes the parked batch sender"
                );
            }
        }
    }
    drop(fut);
    while let Ok(v) = rx.try_recv() {
        received.push(v);
    }
    assert_eq!(received, (0..6).collect::<Vec<_>>());
}

#[test]
fn async_send_iter_after_close_returns_the_remainder() {
    let (mut tx, rx) = async_pair(ChannelBackend::Unbounded);
    rx.close();
    let err = block_on(tx.send_iter(vec![1, 2, 3])).unwrap_err();
    assert_eq!(err.0, vec![1, 2, 3], "nothing was enqueued post-close");
}

#[test]
fn sync_and_async_endpoints_interoperate() {
    let (tx, rx) = wcq::builder().threads(4).build_channel::<u64>();
    // Upgrade the receiver to async, keep the sender sync.
    let mut arx: wcq::AsyncReceiver<u64> = rx.into();
    let mut tx = tx;
    tx.send(9).unwrap();
    assert_eq!(block_on(arx.recv()), Ok(9));
    // And back down: the async layer strips off without closing the channel.
    let mut rx = arx.into_sync();
    tx.send(10).unwrap();
    assert_eq!(rx.recv(), Ok(10));
    assert!(!rx.is_closed());
}
