//! Integration tests for the unified observability layer (ISSUE 7): a
//! verified stress-oracle drain must balance the instrument's op counters on
//! every counting queue kind, the helping/slow-path accounting must satisfy
//! its structural invariants, injected LL/SC contention must show up in the
//! telemetry, the channel park/wake/close counters must fire on a real
//! park/wake round trip, and the JSON export must carry the rows the CI
//! smoke greps for.
//!
//! Note on what is *not* asserted: organic patience exhaustion (and with it
//! helping traffic) needs a thread to be preempted mid-operation, which a
//! single-core CI box makes vanishingly rare — a 400k-op forced-slow run can
//! legitimately record zero exhaustions here.  The structural invariants
//! (`helping_entries <= total_ring_ops`, `fast + exhausted == total`) hold
//! either way, so those are what the oracle checks; the deterministic
//! nonzero-telemetry checks use the LL/SC spurious-failure injection and the
//! channel layer instead.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering::SeqCst};
use std::sync::Mutex;

use wcq::{
    AdaptivePatience, ChannelBackend, Counter, CountingInstrument, MetricsSnapshot, WcqConfig,
};
use wcq_harness::{block_on_instrumented, make_counting_queue, QueueKind};

/// The queue kinds `make_counting_queue` can instrument — the whole wCQ
/// family, in both hardware models.
const COUNTING_KINDS: &[QueueKind] = &[
    QueueKind::Wcq,
    QueueKind::WcqLlsc,
    QueueKind::WcqUnbounded,
    QueueKind::WcqUnboundedLlsc,
    QueueKind::WcqSharded,
    QueueKind::WcqShardedLlsc,
    QueueKind::WcqShardedAdaptive,
];

const PRODUCERS: usize = 2;
const CONSUMERS: usize = 2;
const PER_PRODUCER: u64 = 3_000;
const TOTAL: u64 = PRODUCERS as u64 * PER_PRODUCER;

/// Patience 1: any fast-path attempt that fails falls straight through to
/// the wait-free slow path.
fn forced_slow() -> WcqConfig {
    WcqConfig {
        max_patience_enqueue: 1,
        max_patience_dequeue: 1,
        help_delay: 1,
        catchup_bound: 8,
        ..WcqConfig::default()
    }
}

/// The LL/SC spurious-failure rate is process-global (it models the
/// hardware), so the tests that set it serialize behind this lock.
static LLSC_RATE_LOCK: Mutex<()> = Mutex::new(());

/// Runs a produce/consume pipeline to a *verified* full drain (no loss, no
/// duplication) and returns the instrument's snapshot.  Worker handles drop
/// inside the scope, so their handle-local op tallies are flushed before the
/// snapshot is taken.
fn verified_drain(kind: QueueKind) -> MetricsSnapshot {
    verified_drain_with(kind, forced_slow())
}

/// [`verified_drain`] with an explicit wait-freedom configuration.
fn verified_drain_with(kind: QueueKind, config: WcqConfig) -> MetricsSnapshot {
    let (queue, instr) = make_counting_queue(kind, PRODUCERS + CONSUMERS, 7, Some(config))
        .unwrap_or_else(|| panic!("{kind:?} must support counting construction"));
    let producers_done = AtomicUsize::new(0);
    let consumed = AtomicU64::new(0);
    let seen = Mutex::new(HashSet::new());
    std::thread::scope(|s| {
        for p in 0..PRODUCERS {
            let queue = queue.as_ref();
            let producers_done = &producers_done;
            s.spawn(move || {
                let mut h = queue.handle();
                for i in 1..=PER_PRODUCER {
                    h.enqueue((p as u64) << 40 | i);
                }
                producers_done.fetch_add(1, SeqCst);
            });
        }
        for _ in 0..CONSUMERS {
            let queue = queue.as_ref();
            let producers_done = &producers_done;
            let consumed = &consumed;
            let seen = &seen;
            s.spawn(move || {
                let mut h = queue.handle();
                let mut local = Vec::new();
                loop {
                    if let Some(v) = h.dequeue() {
                        local.push(v);
                        consumed.fetch_add(1, SeqCst);
                    } else if producers_done.load(SeqCst) == PRODUCERS
                        && consumed.load(SeqCst) >= TOTAL
                    {
                        break;
                    } else {
                        std::thread::yield_now();
                    }
                }
                seen.lock().unwrap().extend(local);
            });
        }
    });
    let seen = seen.into_inner().unwrap();
    assert_eq!(consumed.load(SeqCst), TOTAL, "[{kind:?}] lost values");
    assert_eq!(seen.len() as u64, TOTAL, "[{kind:?}] duplicated values");
    instr.snapshot()
}

#[test]
fn verified_drain_balances_op_counters_for_every_counting_kind() {
    for &kind in COUNTING_KINDS {
        let snap = verified_drain(kind);
        // The drain was verified complete, so the drop-flushed op tallies
        // must agree with it exactly — empty polls don't count as dequeues.
        assert_eq!(
            snap.get(Counter::EnqueuesCompleted),
            TOTAL,
            "[{kind:?}] enqueues_completed"
        );
        assert_eq!(
            snap.get(Counter::DequeuesCompleted),
            TOTAL,
            "[{kind:?}] dequeues_completed"
        );
        // The helping check runs at most once per ring op, so helping
        // entries can never exceed the total ring ops.
        assert!(
            snap.get(Counter::HelpingEntries) <= snap.total_ring_ops(),
            "[{kind:?}] helping entries {} exceed total ring ops {}",
            snap.get(Counter::HelpingEntries),
            snap.total_ring_ops()
        );
        // A data-queue op is at least one ring op, so the ring-level totals
        // must cover the completed values — the fast-path counters are
        // visibly nonzero whenever work ran at all.
        assert!(
            snap.total_ring_ops() >= TOTAL,
            "[{kind:?}] ring ops {} below completed values",
            snap.total_ring_ops()
        );
        assert!(snap.fast_ring_ops() > 0, "[{kind:?}] no fast-path ops");
        // fast + exhausted == total, and the derived fraction stays sane.
        let exhausted = snap.get(Counter::PatienceExhaustedEnqueues)
            + snap.get(Counter::PatienceExhaustedDequeues);
        assert_eq!(
            snap.fast_ring_ops() + exhausted,
            snap.total_ring_ops(),
            "[{kind:?}] fast/slow split does not add up"
        );
        let frac = snap.slow_path_fraction();
        assert!((0.0..=1.0).contains(&frac), "[{kind:?}] fraction {frac}");
    }
}

#[test]
fn llsc_spurious_injection_shows_up_in_contention_telemetry() {
    // The LL/SC hardware model's injected store-conditional failures are the
    // one contention source a single-core box produces deterministically:
    // at a 20% failure rate over thousands of ops, both the process-global
    // spurious tally and the per-queue CAS-failure counter must move.
    let _rate = LLSC_RATE_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    wcq_atomics::llsc::set_spurious_failure_rate(0.2);
    let snap = verified_drain(QueueKind::WcqLlsc);
    wcq_atomics::llsc::set_spurious_failure_rate(0.0);
    assert!(
        snap.get(Counter::SpuriousScFailures) > 0,
        "no spurious SC failures recorded under injection"
    );
    assert!(
        snap.get(Counter::CasFailures) > 0,
        "spurious SC failures never surfaced as CAS failures"
    );
}

#[test]
fn unbounded_kinds_report_segment_traffic() {
    // A small segment order (2^7 capacity) with 6k values forces segment
    // turnover, so the segment counters must move on the segmented kinds.
    let snap = verified_drain(QueueKind::WcqUnbounded);
    assert!(
        snap.get(Counter::SegmentAllocs) > 0,
        "no segments allocated"
    );
    let cache_lookups = snap.get(Counter::SegmentCacheHits) + snap.get(Counter::SegmentCacheMisses);
    assert!(cache_lookups > 0, "segment cache never consulted");
}

#[test]
fn sharded_kinds_report_routing() {
    let snap = verified_drain(QueueKind::WcqSharded);
    assert!(
        snap.get(Counter::ShardRoutes) > 0,
        "no shard routes recorded"
    );
}

#[test]
fn adaptive_patience_raises_show_up_in_telemetry() {
    // Spurious store-conditional failures surface as in-slot CAS retries,
    // which the ring reports to the adaptive controller as extra fast-path
    // attempts.  At a 50% rate every CAS burns one expected retry, so the
    // EWMA converges toward `EWMA_ONE` — past `RAISE_LEVEL` within a few
    // sampling windows, deterministically.
    let _rate = LLSC_RATE_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    wcq_atomics::llsc::set_spurious_failure_rate(0.5);
    let cfg = WcqConfig {
        adaptive_patience: Some(AdaptivePatience {
            min: 1,
            max: 256,
            sample_every: 16,
        }),
        ..WcqConfig::default()
    };
    let snap = verified_drain_with(QueueKind::WcqLlsc, cfg);
    wcq_atomics::llsc::set_spurious_failure_rate(0.0);
    assert!(
        snap.get(Counter::PatienceRaised) >= 1,
        "spurious-failure exhaustion under adaptive patience must record a raise"
    );
    // The structural invariant the counter-balance test checks holds under
    // the adaptive controller too.
    let exhausted =
        snap.get(Counter::PatienceExhaustedEnqueues) + snap.get(Counter::PatienceExhaustedDequeues);
    assert_eq!(snap.fast_ring_ops() + exhausted, snap.total_ring_ops());
}

#[test]
fn batch_only_traffic_drives_the_adaptive_patience_controller() {
    // The batch entry points reserve whole runs of tickets with one F&A and
    // pool the run's retry tally into a single controller observation — they
    // must drive the adaptive patience exactly like single-op traffic does.
    // Injected LL/SC spurious failures make the in-slot CAS retries (and so
    // the raise) deterministic on a single core; switching the injection off
    // lets the EWMA decay and must walk the bound back down.  Both directions
    // of the movement are asserted through the shared counters, under traffic
    // that *only* uses `enqueue_many`/`dequeue_into`.
    let _rate = LLSC_RATE_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    let cfg = WcqConfig {
        adaptive_patience: Some(AdaptivePatience {
            min: 1,
            max: 256,
            sample_every: 16,
        }),
        ..WcqConfig::default()
    };
    let (queue, instr) =
        make_counting_queue(QueueKind::WcqLlsc, 1, 9, Some(cfg)).expect("LLSC kind counts");
    {
        let mut h = queue.handle();
        let mut batch = Vec::new();
        let mut out = Vec::new();
        // Phase 1 — contended batches: at a 50% spurious-failure rate every
        // in-slot CAS burns one expected retry, so each pooled run averages
        // ~EWMA_ONE extra attempts per op and the bound doubles within a few
        // windows.
        wcq_atomics::llsc::set_spurious_failure_rate(0.5);
        for round in 0..100u64 {
            batch.extend((0..32).map(|i| round * 32 + i));
            assert_eq!(h.enqueue_many(&mut batch), 32, "batch must be accepted");
            batch.clear();
            while out.len() < 32 {
                let want = 32 - out.len();
                h.dequeue_into(&mut out, want);
            }
            out.clear();
        }
        // Phase 2 — quiet batches: no injection, no misses; the EWMA decays
        // geometrically below LOWER_LEVEL and the bound halves back down.
        wcq_atomics::llsc::set_spurious_failure_rate(0.0);
        for round in 0..100u64 {
            batch.extend((0..32).map(|i| round * 32 + i));
            assert_eq!(h.enqueue_many(&mut batch), 32, "batch must be accepted");
            batch.clear();
            while out.len() < 32 {
                let want = 32 - out.len();
                h.dequeue_into(&mut out, want);
            }
            out.clear();
        }
    }
    let snap = instr.snapshot();
    assert!(
        snap.get(Counter::PatienceRaised) >= 1,
        "contended batch-only traffic must raise the patience bound"
    );
    assert!(
        snap.get(Counter::PatienceLowered) >= 1,
        "quiet batch-only traffic must lower the patience bound back"
    );
}

#[test]
fn adaptive_shard_set_transitions_show_up_in_telemetry() {
    let (queue, instr) = make_counting_queue(QueueKind::WcqShardedAdaptive, 1, 6, None)
        .expect("adaptive sharded counts");
    {
        let mut h = queue.handle();
        // Undrained backlog widens the active prefix (grown events)...
        for i in 0..3_000u64 {
            h.enqueue(i);
        }
        // ...then a drain plus calm traffic walks it back down (shrunk).
        while h.dequeue().is_some() {}
        for i in 0..300 {
            h.enqueue(i);
            assert!(h.dequeue().is_some());
        }
    }
    let snap = instr.snapshot();
    assert!(
        snap.get(Counter::ShardSetGrown) >= 1,
        "backlog must grow the active shard set"
    );
    assert!(
        snap.get(Counter::ShardSetShrunk) >= 1,
        "a drained queue must shrink the active shard set"
    );
}

#[test]
fn channel_park_wake_close_counters_fire_on_a_real_round_trip() {
    let instr = CountingInstrument::new();
    let (tx, rx) = wcq::builder()
        .capacity_order(4)
        .threads(3)
        .backend(ChannelBackend::Unbounded)
        .instrument(instr.clone())
        .build_async::<u64>();

    let instr_tx = instr.clone();
    let sender = std::thread::spawn(move || {
        let mut tx = tx;
        // Hold the send until the receiver has genuinely parked, so the
        // park → wake round trip is guaranteed rather than racy.
        while instr_tx.counters().get(Counter::ChannelParks) == 0 {
            std::thread::yield_now();
        }
        block_on_instrumented(
            async { tx.send(7).await.expect("receiver alive") },
            &instr_tx,
        );
        // `tx` drops here: the last sender closes the channel.
    });

    let mut rx = rx;
    let instr_rx = CountingInstrument::new();
    let got = block_on_instrumented(async { rx.recv().await }, &instr_rx);
    sender.join().unwrap();
    assert_eq!(got, Ok(7));
    drop(rx);

    let snap = instr.snapshot();
    assert!(
        snap.get(Counter::ChannelParks) >= 1,
        "receiver never parked"
    );
    assert!(
        snap.get(Counter::ChannelWakes) >= 1,
        "the send never woke the parked receiver"
    );
    assert_eq!(
        snap.get(Counter::ChannelCloses),
        1,
        "the sender drop must close the channel exactly once"
    );
    // The receiver-side executor polled at least twice (pend, then wake) and
    // was woken at least once — the "woken by an enqueue, not by spinning"
    // shape, now visible through the unified counters.
    let exec = instr_rx.snapshot();
    assert!(
        exec.get(Counter::ExecPolls) >= 2,
        "receiver never suspended"
    );
    assert!(
        exec.get(Counter::ExecWakes) >= 1,
        "receiver was never woken"
    );
}

#[test]
fn snapshot_json_carries_the_counter_rows() {
    let snap = verified_drain(QueueKind::WcqUnbounded);
    let json = snap.render_json("forced-slow stress snapshot");
    // The FigureTable schema the bench artifacts share.
    assert!(json.contains("\"unit\": \"count\""));
    for series in [
        "ring_enqueues",
        "ring_dequeues",
        "helping_entries",
        "patience_exhausted_enqueues",
        "patience_exhausted_dequeues",
        "enqueues_completed",
        "dequeues_completed",
        "segment_allocs",
        "fast_ring_ops",
    ] {
        assert!(json.contains(&format!("\"{series}\"")), "missing {series}");
    }
    // And it must parse under the same parser bench_diff uses.
    let tables = wcq_bench::diff::parse_bench_json(&json).expect("snapshot JSON parses");
    assert_eq!(tables.len(), 1);
    assert_eq!(tables[0].series["enqueues_completed"][&0], TOTAL as f64);
    assert!(tables[0].series["helping_entries"][&0] >= 0.0);
}
