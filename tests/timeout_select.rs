//! Seeded stress for the timed waits: `Receiver::recv_timeout` and the
//! multi-channel selects (`wcq::recv_any_timeout`, async `wcq::recv_any`)
//! against the close-aware oracle.
//!
//! The claim under test is the one the scenario subsystem leans on: a timed
//! wait that expires is *purely* a retry signal.  Across seeded runs with
//! jittery producers (silent gaps long enough to expire many parked waits),
//! racing sender disconnects and multi-lane consumers, the oracle must hold
//! exactly as it does for the untimed paths:
//!
//! * **no loss** — every accepted send is received exactly once, however
//!   many timeouts interleaved with the deliveries;
//! * **no invention / duplication** — via the shared
//!   [`wcq_harness::verify_observations`] oracle on `encode(worker, seq)`
//!   values;
//! * **close-aware** — `Closed` is only ever the *final* answer, after the
//!   exact drain; a select never reports it while any lane still holds data.
//!
//! The hand-polled no-lost-wake proofs for the select live next to the
//! implementation (`src/select.rs`); this suite is the systems-level
//! complement on real threads and real clocks.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::time::Duration;

use wcq::channel::RecvTimeoutError;
use wcq::{ChannelBackend, Receiver, Sender};
use wcq_harness::exec::block_on;
use wcq_harness::stress::{encode, verify_observations};
use wcq_harness::{all_channel_backends, DetRng};

const PRODUCERS: usize = 3;
const CONSUMERS: usize = 2;
const SENDS_PER_PRODUCER: u64 = 400;
/// Short enough that the producers' injected gaps expire many parked waits.
const WAIT: Duration = Duration::from_micros(200);

fn channel_over(backend: ChannelBackend, slots: usize) -> (Sender<u64>, Receiver<u64>) {
    wcq::builder()
        .capacity_order(7)
        .threads(slots)
        .shards(if backend == ChannelBackend::Sharded {
            4
        } else {
            1
        })
        // Pinned keeps per-producer FIFO on the sharded backend, so the full
        // oracle (including the FIFO clause) applies everywhere.
        .shard_policy(wcq::ShardPolicy::Pinned)
        .backend(backend)
        .build_channel::<u64>()
}

/// Producer body shared by the stress runs: send `encode(worker, 1..=n)`
/// with seeded jitter, including occasional multi-millisecond silences that
/// outlast [`WAIT`] many times over.
fn jittery_produce(tx: &mut Sender<u64>, worker: usize, seed: u64) {
    let mut rng = DetRng::new(seed).stream(worker as u64 + 1);
    for seq in 1..=SENDS_PER_PRODUCER {
        tx.send(encode(worker, seq)).expect("receivers are alive");
        if seq % 97 == 0 {
            // A silent gap: every parked consumer times out a few times.
            std::thread::sleep(Duration::from_millis(1 + rng.next_below(3)));
        } else if rng.chance(0.05) {
            std::thread::yield_now();
        }
    }
}

#[test]
fn recv_timeout_under_jittery_load_times_out_but_never_drops() {
    for backend in all_channel_backends() {
        let (tx, rx) = channel_over(backend, PRODUCERS + CONSUMERS + 2);
        let timeouts = AtomicU64::new(0);
        let observations: Vec<Vec<u64>> = std::thread::scope(|s| {
            for worker in 0..PRODUCERS {
                let mut tx = tx.clone();
                s.spawn(move || jittery_produce(&mut tx, worker, 0xABCD));
            }
            drop(tx); // last producer out closes the channel
            let consumers: Vec<_> = (0..CONSUMERS)
                .map(|_| {
                    let mut rx = rx.clone();
                    let timeouts = &timeouts;
                    s.spawn(move || {
                        let mut got = Vec::new();
                        loop {
                            match rx.recv_timeout(WAIT) {
                                Ok(v) => got.push(v),
                                Err(RecvTimeoutError::Timeout) => {
                                    timeouts.fetch_add(1, Relaxed);
                                }
                                Err(RecvTimeoutError::Closed) => break,
                            }
                        }
                        got
                    })
                })
                .collect();
            drop(rx);
            consumers.into_iter().map(|h| h.join().unwrap()).collect()
        });

        let total: u64 = observations.iter().map(|o| o.len() as u64).sum();
        assert_eq!(
            total,
            (PRODUCERS as u64) * SENDS_PER_PRODUCER,
            "backend {backend:?}: timeouts must not drop accepted sends"
        );
        let counts: HashMap<usize, u64> = (0..PRODUCERS).map(|w| (w, SENDS_PER_PRODUCER)).collect();
        verify_observations(&counts, &observations, true)
            .unwrap_or_else(|e| panic!("backend {backend:?}: {e}"));
        assert!(
            timeouts.load(Relaxed) > 0,
            "backend {backend:?}: the injected gaps must expire some waits"
        );
    }
}

#[test]
fn select_stress_drains_every_lane_exactly_once_through_close() {
    // Three lanes, producers spraying across them by seed, consumers each
    // blocked in ONE recv_any_timeout across all three.  Values hop lanes,
    // so the cross-lane FIFO clause is off; loss/duplication/invention and
    // the close-aware drain stay fully checked.
    const LANES: usize = 3;
    for backend in all_channel_backends() {
        let lanes: Vec<_> = (0..LANES)
            .map(|_| channel_over(backend, PRODUCERS + CONSUMERS + 2))
            .collect();
        let (txs, rxs): (Vec<_>, Vec<_>) = lanes.into_iter().unzip();
        let timeouts = AtomicU64::new(0);
        let observations: Vec<Vec<u64>> = std::thread::scope(|s| {
            for worker in 0..PRODUCERS {
                let mut txs: Vec<_> = txs.iter().map(Sender::clone).collect();
                s.spawn(move || {
                    let mut rng = DetRng::new(0xD1CE).stream(worker as u64 + 1);
                    for seq in 1..=SENDS_PER_PRODUCER {
                        let lane = rng.next_below(LANES as u64) as usize;
                        txs[lane]
                            .send(encode(worker, seq))
                            .expect("receivers are alive");
                        if seq % 101 == 0 {
                            std::thread::sleep(Duration::from_millis(1 + rng.next_below(2)));
                        }
                    }
                });
            }
            drop(txs);
            let consumers: Vec<_> = (0..CONSUMERS)
                .map(|_| {
                    let mut rxs: Vec<_> = rxs.iter().map(Receiver::clone).collect();
                    let timeouts = &timeouts;
                    s.spawn(move || {
                        let mut got = Vec::new();
                        loop {
                            let mut lanes: Vec<&mut Receiver<u64>> = rxs.iter_mut().collect();
                            match wcq::recv_any_timeout(&mut lanes, WAIT) {
                                Ok((lane, v)) => {
                                    assert!(lane < LANES);
                                    got.push(v);
                                }
                                Err(RecvTimeoutError::Timeout) => {
                                    timeouts.fetch_add(1, Relaxed);
                                }
                                // Only once ALL lanes are closed and drained.
                                Err(RecvTimeoutError::Closed) => break,
                            }
                        }
                        got
                    })
                })
                .collect();
            drop(rxs);
            consumers.into_iter().map(|h| h.join().unwrap()).collect()
        });

        let total: u64 = observations.iter().map(|o| o.len() as u64).sum();
        assert_eq!(
            total,
            (PRODUCERS as u64) * SENDS_PER_PRODUCER,
            "backend {backend:?}: select must drain every lane exactly once"
        );
        let counts: HashMap<usize, u64> = (0..PRODUCERS).map(|w| (w, SENDS_PER_PRODUCER)).collect();
        verify_observations(&counts, &observations, false)
            .unwrap_or_else(|e| panic!("backend {backend:?}: {e}"));
        assert!(
            timeouts.load(Relaxed) > 0,
            "backend {backend:?}: the injected gaps must expire some selects"
        );
    }
}

#[test]
fn async_select_stress_matches_the_sync_oracle() {
    // The async twin: one task per consumer blocked in recv_any across both
    // lanes (driven by the harness block_on executor on its own thread),
    // producers on plain threads.  `Err(RecvError)` is the close-aware
    // terminal: all lanes closed and drained.
    const LANES: usize = 2;
    for backend in [ChannelBackend::Unbounded, ChannelBackend::Sharded] {
        let mut pairs: Vec<_> = (0..LANES)
            .map(|_| {
                wcq::builder()
                    .capacity_order(7)
                    .threads(PRODUCERS + CONSUMERS + 2)
                    .shards(if backend == ChannelBackend::Sharded {
                        4
                    } else {
                        1
                    })
                    .shard_policy(wcq::ShardPolicy::Pinned)
                    .backend(backend)
                    .build_async::<u64>()
            })
            .collect();
        let txs: Vec<_> = pairs.iter().map(|(tx, _)| tx.clone()).collect();
        let observations: Vec<Vec<u64>> = std::thread::scope(|s| {
            for worker in 0..PRODUCERS {
                let mut txs = txs.to_vec();
                s.spawn(move || {
                    let mut rng = DetRng::new(0xF00D).stream(worker as u64 + 1);
                    for seq in 1..=SENDS_PER_PRODUCER {
                        let lane = rng.next_below(LANES as u64) as usize;
                        block_on(txs[lane].send(encode(worker, seq))).expect("receivers are alive");
                        if seq % 89 == 0 {
                            std::thread::sleep(Duration::from_millis(1));
                        }
                    }
                });
            }
            drop(txs);
            let consumers: Vec<_> = (0..CONSUMERS)
                .map(|_| {
                    let mut rxs: Vec<_> = pairs.iter().map(|(_, rx)| rx.clone()).collect();
                    s.spawn(move || {
                        block_on(async move {
                            let mut got = Vec::new();
                            loop {
                                let mut lanes: Vec<_> = rxs.iter_mut().collect();
                                match wcq::recv_any(&mut lanes).await {
                                    Ok((lane, v)) => {
                                        assert!(lane < LANES);
                                        got.push(v);
                                    }
                                    Err(_) => break, // all closed and drained
                                }
                            }
                            got
                        })
                    })
                })
                .collect();
            // Drop the original endpoints: the producers' clones (senders)
            // and the consumers' clones (receivers) now own the channels.
            pairs.clear();
            consumers.into_iter().map(|h| h.join().unwrap()).collect()
        });

        let total: u64 = observations.iter().map(|o| o.len() as u64).sum();
        assert_eq!(
            total,
            (PRODUCERS as u64) * SENDS_PER_PRODUCER,
            "backend {backend:?}: async select must drain exactly once"
        );
        let counts: HashMap<usize, u64> = (0..PRODUCERS).map(|w| (w, SENDS_PER_PRODUCER)).collect();
        verify_observations(&counts, &observations, false)
            .unwrap_or_else(|e| panic!("backend {backend:?}: {e}"));
    }
}

#[test]
fn send_timeout_backpressure_expires_then_recovers_without_loss() {
    // Bounded backend, capacity 2^4: a producer pushing far past capacity
    // sees Timeout (value handed back, not dropped) while the consumer
    // stalls, then completes every send once draining resumes.
    let (mut tx, mut rx) = wcq::builder()
        .capacity_order(4)
        .threads(4)
        .backend(ChannelBackend::Bounded)
        .build_channel::<u64>();
    // Fill to capacity: every further timed send must expire.
    let mut accepted = 0u64;
    let mut bounced = Vec::new();
    for i in 0..40u64 {
        match tx.send_timeout(i, Duration::from_micros(100)) {
            Ok(()) => accepted += 1,
            Err(wcq::channel::SendTimeoutError::Timeout(v)) => bounced.push(v),
            Err(wcq::channel::SendTimeoutError::Closed(_)) => unreachable!(),
        }
    }
    assert!(accepted >= 16, "capacity's worth of sends must land");
    assert!(!bounced.is_empty(), "past capacity, timed sends expire");

    // Recovery: a consumer thread drains while the producer retries the
    // bounced values with a generous deadline — nothing is lost or doubled.
    let expected_total = accepted + bounced.len() as u64;
    let drained = std::thread::scope(|s| {
        let consumer = s.spawn(move || {
            let mut got = 0u64;
            while rx.recv_timeout(Duration::from_millis(200)).is_ok() {
                got += 1;
            }
            got
        });
        for v in bounced {
            tx.send_timeout(v, Duration::from_millis(200))
                .expect("drain in progress: timed sends must land");
        }
        drop(tx);
        consumer.join().unwrap()
    });
    assert_eq!(drained, expected_total, "exact drain through close");
}
