//! Integration tests aimed at wCQ's wait-freedom machinery specifically:
//! forcing the slow path, exercising the helping protocol across many
//! registered threads, the LL/SC hardware model with injected spurious
//! failures, and the bounded-memory claim.

use std::sync::atomic::{AtomicU64, Ordering};

use wcq_core::wcq::{LlscFamily, NativeFamily, WcqConfig, WcqQueue};

/// Volume divisor: Miri interprets every atomic, so native-scale op counts
/// take hours there.  Shrinking volume (not threads or configs) preserves
/// what these tests check — the slow-path/helping machinery still engages on
/// every operation under `paranoid_config`.
const SHRINK: u64 = if cfg!(miri) { 50 } else { 1 };

/// A configuration that pushes every operation through the slow path and
/// helps on every operation, maximizing coverage of Figures 5–7.
fn paranoid_config() -> WcqConfig {
    WcqConfig {
        max_patience_enqueue: 1,
        max_patience_dequeue: 1,
        help_delay: 1,
        catchup_bound: 4,
        ..WcqConfig::default()
    }
}

#[test]
fn forced_slow_path_mpmc_preserves_every_element() {
    const THREADS: u64 = 4;
    const PER_THREAD: u64 = 3_000 / SHRINK;
    let q: WcqQueue<u64> = wcq::builder()
        .capacity_order(6)
        .threads(THREADS as usize)
        .config(paranoid_config())
        .build_bounded();
    let sum = AtomicU64::new(0);
    let count = AtomicU64::new(0);
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let q = &q;
            let sum = &sum;
            let count = &count;
            s.spawn(move || {
                let mut h = q.register().unwrap();
                for i in 0..PER_THREAD {
                    let mut v = t * PER_THREAD + i;
                    while let Err(back) = h.enqueue(v) {
                        v = back;
                        std::thread::yield_now();
                    }
                    if let Some(got) = h.dequeue() {
                        sum.fetch_add(got, Ordering::Relaxed);
                        count.fetch_add(1, Ordering::Relaxed);
                    }
                }
                while let Some(got) = h.dequeue() {
                    sum.fetch_add(got, Ordering::Relaxed);
                    count.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    let n = THREADS * PER_THREAD;
    assert_eq!(count.load(Ordering::Relaxed), n);
    assert_eq!(sum.load(Ordering::Relaxed), n * (n - 1) / 2);
}

#[test]
fn llsc_model_with_spurious_failures_is_still_correct() {
    // Inject a 20% spurious SC failure rate: the §4 construction must retry
    // and still never lose or duplicate an element.
    wcq_atomics::llsc::set_spurious_failure_rate(0.2);
    const THREADS: u64 = 2;
    const PER_THREAD: u64 = 2_000 / SHRINK;
    let q: WcqQueue<u64, LlscFamily> = WcqQueue::new(6, THREADS as usize);
    let count = AtomicU64::new(0);
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let q = &q;
            let count = &count;
            s.spawn(move || {
                let mut h = q.register().unwrap();
                for i in 0..PER_THREAD {
                    let mut v = t * PER_THREAD + i;
                    while let Err(back) = h.enqueue(v) {
                        v = back;
                    }
                    if h.dequeue().is_some() {
                        count.fetch_add(1, Ordering::Relaxed);
                    }
                }
                while h.dequeue().is_some() {
                    count.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    wcq_atomics::llsc::set_spurious_failure_rate(0.0);
    assert_eq!(count.load(Ordering::Relaxed), THREADS * PER_THREAD);
}

#[test]
fn many_registered_threads_round_robin_helping() {
    // More threads than the help round-robin period, with aggressive helping.
    const THREADS: usize = 8;
    let q: WcqQueue<u64, NativeFamily> = wcq::builder()
        .capacity_order(8)
        .threads(THREADS)
        .config(paranoid_config())
        .build_bounded();
    let total = AtomicU64::new(0);
    std::thread::scope(|s| {
        for t in 0..THREADS as u64 {
            let q = &q;
            let total = &total;
            s.spawn(move || {
                let mut h = q.register().unwrap();
                for i in 0..1_500u64 / SHRINK {
                    let mut v = t * 10_000 + i;
                    while let Err(back) = h.enqueue(v) {
                        v = back;
                        std::thread::yield_now();
                    }
                    if h.dequeue().is_some() {
                        total.fetch_add(1, Ordering::Relaxed);
                    }
                }
                while h.dequeue().is_some() {
                    total.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    assert_eq!(
        total.load(Ordering::Relaxed),
        THREADS as u64 * (1_500 / SHRINK)
    );
}

#[test]
fn memory_footprint_is_bounded_and_constant() {
    // Theorem 5.8: wCQ never allocates after construction.  Run a heavy
    // enqueue/dequeue churn and check the self-reported footprint does not
    // change (it is a pure function of capacity and max_threads).
    let q: WcqQueue<u64> = WcqQueue::new(10, 4);
    let before = q.memory_footprint();
    std::thread::scope(|s| {
        for _ in 0..2 {
            let q = &q;
            s.spawn(move || {
                let mut h = q.register().unwrap();
                for i in 0..50_000u64 / SHRINK {
                    while h.enqueue(i).is_err() {
                        let _ = h.dequeue();
                    }
                    let _ = h.dequeue();
                }
            });
        }
    });
    assert_eq!(q.memory_footprint(), before);
    // And the footprint is what the geometry says: O(2n entries × 16 bytes ×
    // two rings + data array + per-thread records), well under a megabyte for
    // a 1024-element queue.
    assert!(before < 1_000_000, "footprint {before} unexpectedly large");
}

#[test]
fn handles_can_be_reregistered_many_times() {
    let q: WcqQueue<u64> = WcqQueue::new(4, 2);
    for round in 0..200u64 {
        let mut h = q
            .register()
            .expect("slot must be released by previous drop");
        h.enqueue(round).unwrap();
        assert_eq!(h.dequeue(), Some(round));
    }
}
