//! Regression corpus of checker schedules (tier-1).
//!
//! Each entry is a `(plan_seed, target, sched_seed, depth)` tuple that the
//! `wcq-check` explorer once flagged — either a genuine algorithm bug or a
//! miscompilation — replayed here as a deterministic regression test.  The
//! scheduler serializes execution, so each replay is exact: same
//! interleaving, same oracle observations, every time.
//!
//! To add an entry: take the coordinates a violation prints, confirm the fix
//! with `wcq-check --replay <plan> <target> <seed> <depth>`, then append the
//! tuple with a comment naming the bug it pins down.

use wcq_check::{replay, Target};

/// `(plan_seed, target, sched_seed, depth, what it caught)`
const CORPUS: &[(u64, Target, u64, u32, &str)] = &[
    // Slow-path enqueue treated a dequeuer's `⊥` burn marker on the agreed
    // ticket as "already inserted" and lost the element (missing
    // `Index != ⊥` guard on try_enq_slow's cycle-match branch).  Three
    // targets caught the same bug independently.
    (
        3,
        Target::Bounded,
        0x7,
        4,
        "slow-path enqueue lost element on burned ticket",
    ),
    (
        5,
        Target::BoundedLlsc,
        0x7,
        4,
        "slow-path enqueue lost element (LL/SC model)",
    ),
    (
        3,
        Target::Unbounded,
        0x7,
        4,
        "slow-path enqueue lost element (segmented queue)",
    ),
    // Register-allocation hazard in the cmpxchg16b inline asm: LLVM could
    // place the pointer operand in rbx, which the rbx save/restore xchg
    // clobbers — a null-write segfault in release builds only.  The checker
    // surfaced it by generating enough register pressure; the operands are
    // now pinned (rdi / r8b).
    (
        2,
        Target::Bounded,
        0x3C6E_F372_FE94_F82C,
        1,
        "cmpxchg16b asm operand clobbered by rbx save/restore",
    ),
    // `try_deq_slow` reported a slow dequeue request finished when its FIN
    // CAS *failed* because `slow_faa` had moved the request to a later
    // ticket.  The owner then exited `dequeue_slow`, gathered a stale
    // ticket, and abandoned the live request — after which an in-flight
    // helper finalized it at a freshly deposited ticket nobody gathered,
    // stranding that element forever (19/20 consumed, one value wedged in
    // the ring at an old cycle).  A failed FIN CAS with no FIN bit visible
    // now returns "keep helping".
    (
        2,
        Target::BoundedLlsc,
        0x3C6E_F372_FE94_F836,
        4,
        "owner abandoned live dequeue request on failed FIN CAS",
    ),
    (
        2,
        Target::BoundedLlsc,
        0x3C6E_F372_FE94_F83E,
        16,
        "owner abandoned live dequeue request (secondary schedule)",
    ),
    (
        1,
        Target::Channel,
        0x9E37_79B9_7F4A_7C1B,
        16,
        "stranded element surfaced as channel recv livelock",
    ),
    (
        4,
        Target::Channel,
        0x78DD_E6E5_FD29_F06F,
        4,
        "stranded element surfaced as channel recv livelock (2 producers)",
    ),
    // `Backoff::snooze_or_yield` was not a checkpoint: the segmented queue's
    // dequeue spin-waits on a peer's in-flight enqueue credit, and under the
    // token scheduler the waiter span forever without ever yielding — a hang
    // the step bound could not even see.  The backoff now passes through the
    // checkpoint seam.
    (
        6,
        Target::Unbounded,
        0xB54C_DA58_FBBE_E880,
        16,
        "uninstrumented backoff spin-wait hung the token scheduler",
    ),
    // Pins the adaptive shard router's shrink-vs-drain guarantee rather than
    // a fixed bug: the run forces the active prefix from two shards back to
    // one while consumers are mid-drain, and the oracle proves the full-set
    // dequeue scan recovers every element left behind the prefix under this
    // exact interleaving.  If routing ever consults the active prefix on the
    // dequeue side, this replay is the first to lose elements.
    (
        3,
        Target::ShardedAdaptive,
        0xDAA6_6D2C_7DDF_7443,
        16,
        "shard-set shrink racing a dequeue drain must lose nothing",
    ),
];

#[test]
fn regression_schedules_replay_clean() {
    // Each replay is a few hundred to a few thousand serialized yields;
    // under Miri even one is too slow, and the inline-asm entry cannot
    // execute there at all (Miri routes AtomicDouble to the lock fallback,
    // which is fine, but serialized scheduling is still minutes per run).
    if cfg!(miri) {
        return;
    }
    for &(plan_seed, target, sched_seed, depth, what) in CORPUS {
        if let Err(v) = replay(plan_seed, target, sched_seed, depth) {
            panic!(
                "regression schedule (plan {plan_seed}, {}, seed {sched_seed:#x}, \
                 depth {depth}) failed again — `{what}` has resurfaced:\n{v}",
                target.name()
            );
        }
    }
}
