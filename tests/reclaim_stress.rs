//! Multi-threaded stress coverage for `wcq-reclaim`, driven by the harness'
//! deterministic plan machinery (`DetRng`): thread counts, op counts and the
//! protect/retire mix are all derived from fixed seeds, so any failure is
//! replayable by its seed.
//!
//! This suite lives in the umbrella crate because `wcq-reclaim` cannot
//! dev-depend on `wcq-harness` without a dependency cycle (harness →
//! baselines → reclaim).

use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};
use std::sync::Arc;

use wcq_harness::DetRng;
use wcq_reclaim::HazardDomain;

/// A payload that counts live instances, so the tests can prove every node
/// is freed exactly once and never while it is still protected.
struct Counted {
    payload: u64,
    live: Arc<AtomicUsize>,
}

impl Counted {
    fn boxed(live: &Arc<AtomicUsize>) -> *mut Counted {
        live.fetch_add(1, Ordering::SeqCst);
        Box::into_raw(Box::new(Counted {
            payload: 0xC0FFEE,
            live: Arc::clone(live),
        }))
    }
}

impl Drop for Counted {
    fn drop(&mut self) {
        self.live.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Seeded register/protect/retire stress: several threads hammer a small set
/// of shared cells, each repeatedly protecting (and dereferencing) the
/// current node, swapping in fresh nodes, retiring old ones — and sometimes
/// dropping their handle mid-run to exercise the orphan hand-off.
#[test]
fn hazard_domain_stress_under_seeded_plans() {
    for seed in [0x00DD_5EED_u64, 0xFEED_F00D] {
        let mut rng = DetRng::new(seed);
        let threads = rng.range_inclusive(3, 4) as usize;
        let ops = rng.range_inclusive(1_500, 3_000) / if cfg!(miri) { 50 } else { 1 };
        let cells = rng.range_inclusive(2, 4) as usize;

        let live = Arc::new(AtomicUsize::new(0));
        let dom = HazardDomain::new(threads, 1);
        let shared: Vec<AtomicPtr<Counted>> = (0..cells)
            .map(|_| AtomicPtr::new(Counted::boxed(&live)))
            .collect();

        std::thread::scope(|s| {
            for t in 0..threads {
                let dom = &dom;
                let shared = &shared;
                let live = &live;
                let mut rng = DetRng::new(seed).stream(t as u64 + 1);
                s.spawn(move || {
                    let mut h = dom.register().expect("domain sized for all threads");
                    for _ in 0..ops {
                        let cell = &shared[rng.next_below(cells as u64) as usize];
                        if rng.chance(0.6) {
                            // Reader: protect, dereference, unprotect.
                            let p = h.protect(0, cell);
                            if !p.is_null() {
                                // SAFETY: protected by hazard slot 0.
                                assert_eq!(unsafe { (*p).payload }, 0xC0FFEE);
                            }
                            h.clear();
                        } else {
                            // Writer: install a fresh node, retire the old.
                            let fresh = Counted::boxed(live);
                            let old = cell.swap(fresh, Ordering::SeqCst);
                            if !old.is_null() {
                                // SAFETY: `old` was atomically unlinked and is
                                // retired exactly once, by the swapping thread.
                                unsafe { h.retire(old) };
                            }
                        }
                        if rng.chance(0.002) {
                            // Registration churn: hand pending retirees to the
                            // domain and re-register (same participant count,
                            // so a slot is always available again).
                            drop(h);
                            h = loop {
                                match dom.register() {
                                    Some(fresh) => break fresh,
                                    None => std::thread::yield_now(),
                                }
                            };
                        }
                    }
                    h.flush();
                });
            }
        });

        // Tear down: free the final nodes still installed in the cells.
        for cell in &shared {
            let last = cell.swap(std::ptr::null_mut(), Ordering::SeqCst);
            assert!(!last.is_null());
            // SAFETY: all threads joined; the cell's node is exclusively ours.
            unsafe { drop(Box::from_raw(last)) };
        }
        drop(dom); // frees any orphans left by the registration churn
        assert_eq!(
            live.load(Ordering::SeqCst),
            0,
            "seed {seed:#x}: every node must be reclaimed exactly once"
        );
    }
}

/// Drop hand-off: a handle that drops while one of its retirees is still
/// protected orphans that node to the domain; once the protection clears, a
/// later scan from *another* handle reclaims it, and `reclaimed_total()`
/// catches up to `retired_total()` without dropping the domain.
#[test]
fn reclaimed_total_catches_up_after_handles_drop() {
    let live = Arc::new(AtomicUsize::new(0));
    let dom = HazardDomain::new(2, 1);

    let blocker = dom.register().unwrap();
    let protected = Counted::boxed(&live);
    blocker.protect_raw(0, protected);

    {
        let mut h = dom.register().unwrap();
        for _ in 0..20 {
            let p = Counted::boxed(&live);
            // SAFETY: unreachable, never retired twice.
            unsafe { h.retire(p) };
        }
        // SAFETY: unlinked above; the blocker still protects it.
        unsafe { h.retire(protected) };
        // Handle drops here: unprotected retirees are freed, the protected
        // one is handed to the domain as an orphan.
    }
    assert_eq!(dom.retired_total(), 21);
    assert_eq!(
        dom.reclaimed_total(),
        20,
        "protected node must survive the drop scan"
    );
    assert_eq!(live.load(Ordering::SeqCst), 1);

    // Protection clears; any later scan — here from a fresh handle with its
    // own retiree — must drain the orphan too.
    blocker.clear();
    let mut h = dom.register().unwrap();
    let p = Counted::boxed(&live);
    // SAFETY: unreachable, retired once.
    unsafe { h.retire(p) };
    h.flush();
    assert_eq!(dom.retired_total(), 22);
    assert_eq!(
        dom.reclaimed_total(),
        dom.retired_total(),
        "reclaimed_total must catch up once protections clear"
    );
    assert_eq!(dom.pending(), 0);
    assert_eq!(live.load(Ordering::SeqCst), 0);
}
