//! Bounded-memory regression test (Theorem 5.8).
//!
//! wCQ's headline property is that it never allocates after construction —
//! unlike LCRQ/YMC, whose memory grows with contention (Figure 10a).  This
//! suite installs the harness' counting global allocator and drives the wCQ
//! slow path hard (MAX_PATIENCE = 1 forces it on every operation), asserting
//! that heap usage stays flat across 100k operations.
//!
//! This is its own integration-test binary because `#[global_allocator]`
//! applies process-wide.

// The deprecated ad-hoc stats accessors stay covered until they are removed
// (their replacement is the `CountingInstrument` metrics snapshot).
#![allow(deprecated)]

use std::sync::atomic::{AtomicU64, Ordering};

use wcq::ShardPolicy;
use wcq_core::wcq::{WcqConfig, WcqQueue};
use wcq_harness::memtrack::{self, CountingAllocator};
use wcq_unbounded::UnboundedWcq;

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn forced_slow_path() -> WcqConfig {
    WcqConfig {
        max_patience_enqueue: 1,
        max_patience_dequeue: 1,
        help_delay: 1,
        catchup_bound: 8,
        ..WcqConfig::default()
    }
}

#[test]
fn wcq_slow_path_does_not_allocate_across_100k_ops() {
    const THREADS: u64 = 4;
    const PER_THREAD: u64 = 25_000; // 100k ops total
    let q: WcqQueue<u64> = wcq::builder()
        .capacity_order(8)
        .threads(THREADS as usize)
        .config(forced_slow_path())
        .build_bounded();
    let footprint_before = q.memory_footprint();

    let before = memtrack::snapshot();
    let consumed = AtomicU64::new(0);
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let q = &q;
            let consumed = &consumed;
            s.spawn(move || {
                let mut h = q.register().unwrap();
                for i in 0..PER_THREAD {
                    let mut v = t * PER_THREAD + i;
                    while let Err(back) = h.enqueue(v) {
                        v = back;
                        // Make room when the ring is full; this dequeue
                        // consumes a real element and must be counted too.
                        if h.dequeue().is_some() {
                            consumed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    if h.dequeue().is_some() {
                        consumed.fetch_add(1, Ordering::Relaxed);
                    }
                }
                while h.dequeue().is_some() {
                    consumed.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    let after = memtrack::snapshot();

    assert_eq!(consumed.load(Ordering::Relaxed), THREADS * PER_THREAD);
    // The queue itself is statically allocated: its self-reported footprint
    // is a pure function of the construction parameters.
    assert_eq!(q.memory_footprint(), footprint_before);
    // Live heap must stay flat up to a small slack for std runtime
    // bookkeeping (thread-exit TLS, panic buffers — observed ~150 bytes)...
    let live_growth = after.live_bytes.saturating_sub(before.live_bytes);
    assert!(
        live_growth < 16 * 1024,
        "live heap grew {live_growth} bytes across the run: {before:?} -> {after:?}"
    );
    // ...and the total number of allocations during 100k slow-path ops must
    // be tiny (thread spawning and test bookkeeping only).  A per-operation
    // allocation would show up as >= 100_000 here.
    let allocs = after.total_allocs - before.total_allocs;
    assert!(
        allocs < 1_000,
        "expected no per-operation allocations, saw {allocs} across 100k ops"
    );
}

#[test]
fn wcq_footprint_is_a_function_of_geometry_only() {
    // Two identically configured queues report identical footprints, and the
    // footprint scales with capacity, never with the operation history.
    let a: WcqQueue<u64> = WcqQueue::new(6, 4);
    let b: WcqQueue<u64> = WcqQueue::new(6, 4);
    assert_eq!(a.memory_footprint(), b.memory_footprint());

    let big: WcqQueue<u64> = WcqQueue::new(10, 4);
    assert!(big.memory_footprint() > a.memory_footprint());

    let mut h = a.register().unwrap();
    for i in 0..if cfg!(miri) { 200 } else { 10_000u64 } {
        while h.enqueue(i).is_err() {
            let _ = h.dequeue();
        }
        let _ = h.dequeue();
    }
    drop(h);
    assert_eq!(
        a.memory_footprint(),
        b.memory_footprint(),
        "operation history must not change the footprint"
    );
}

#[test]
fn unbounded_wcq_steady_state_reuses_segments_without_allocating() {
    // The unbounded queue cannot be allocation-free in general — growth *is*
    // allocation — but at steady state (periodic bursts that drain), segment
    // churn must be served from the recycling cache: the number of segments
    // ever allocated stays flat and per-operation heap traffic stays nil.
    const SEG_ORDER: u32 = 4; // 16-slot segments
    const BURST: u64 = 64; // 4 segments of churn per round
    let q: UnboundedWcq<u64> = UnboundedWcq::new(SEG_ORDER, 2);
    let mut h = q.register().unwrap();

    // Warm-up: populate the segment cache through one full burst/drain cycle.
    for i in 0..BURST {
        h.enqueue(i);
    }
    for i in 0..BURST {
        assert_eq!(h.dequeue(), Some(i));
    }
    h.flush_reclamation();

    let allocated_before = q.segments_allocated();
    let before = memtrack::snapshot();
    const ROUNDS: u64 = 50;
    for round in 0..ROUNDS {
        for i in 0..BURST {
            h.enqueue(round * BURST + i);
        }
        for i in 0..BURST {
            assert_eq!(h.dequeue(), Some(round * BURST + i));
        }
        h.flush_reclamation();
    }
    let after = memtrack::snapshot();

    assert_eq!(
        q.segments_allocated(),
        allocated_before,
        "steady-state churn must be served from the cache: {:?}",
        q.segment_stats()
    );
    // 50 rounds * 128 ops with per-op allocation would show up as >= 6400
    // allocations; the only heap traffic allowed is the hazard scan's small
    // bookkeeping on each explicit flush.
    let allocs = after.total_allocs - before.total_allocs;
    assert!(
        allocs < 1_500,
        "expected no per-operation allocations at steady state, saw {allocs}"
    );
    let live_growth = after.live_bytes.saturating_sub(before.live_bytes);
    assert!(
        live_growth < 16 * 1024,
        "live heap grew {live_growth} bytes across steady-state rounds"
    );
}

#[test]
fn sharded_wcq_steady_state_allocates_nothing_on_any_shard() {
    // The sharded queue inherits the steady-state property shard-wise: after
    // a warm-up burst/drain cycle, segment churn on *every* shard is served
    // from that shard's recycling cache — the allocator is never consulted
    // again, and the cache hit/miss counters prove it per shard.
    const SHARDS: usize = 4;
    const SEG_ORDER: u32 = 4; // 16-slot segments
    const BURST: u64 = 256; // 64 values -> 4 segments of churn per shard
    let q = wcq::builder()
        .capacity_order(SEG_ORDER)
        .threads(2)
        .shards(SHARDS)
        .shard_policy(ShardPolicy::RoundRobin)
        .build_sharded::<u64>();
    let mut h = q.handle();

    // Warm-up: populate every shard's segment cache through one full cycle.
    for i in 0..BURST {
        h.enqueue(i);
    }
    while h.dequeue().is_some() {}
    h.flush_reclamation();

    let allocated_before: Vec<usize> = q.shards().iter().map(|s| s.segments_allocated()).collect();
    let misses_before: Vec<usize> = q.shards().iter().map(|s| s.cache_stats().misses).collect();
    let before = memtrack::snapshot();
    const ROUNDS: u64 = 40;
    for round in 0..ROUNDS {
        for i in 0..BURST {
            h.enqueue(round * BURST + i);
        }
        while h.dequeue().is_some() {}
        h.flush_reclamation();
    }
    let after = memtrack::snapshot();

    for (i, shard) in q.shards().iter().enumerate() {
        assert_eq!(
            shard.segments_allocated(),
            allocated_before[i],
            "shard {i} must serve steady-state churn from its cache: {:?}",
            shard.segment_stats()
        );
        let stats = shard.cache_stats();
        assert_eq!(
            stats.misses, misses_before[i],
            "shard {i} cache must not miss at steady state: {stats:?}"
        );
        assert!(
            stats.hits > 0,
            "shard {i} cache must have served the churn: {stats:?}"
        );
    }
    // 40 rounds * 512 ops with per-op allocation would show up as >= 20k
    // allocations; only the hazard scans' small bookkeeping is allowed.
    let allocs = after.total_allocs - before.total_allocs;
    assert!(
        allocs < 2_000,
        "expected no per-operation allocations at steady state, saw {allocs}"
    );
    let live_growth = after.live_bytes.saturating_sub(before.live_bytes);
    assert!(
        live_growth < 16 * 1024,
        "live heap grew {live_growth} bytes across steady-state rounds"
    );
}
