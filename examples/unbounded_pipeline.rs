//! A bursty producer over the unbounded wLSCQ queue (`wcq-unbounded`).
//!
//! Bounded queues force a choice when traffic is bursty: either size the ring
//! for the worst burst (wasting memory) or make producers block at the peak
//! (losing throughput).  `UnboundedWcq` absorbs bursts by linking fresh wCQ
//! segments and gives the memory back afterwards: drained segments are
//! retired through hazard pointers and recycled via a bounded cache.
//!
//! The example runs a producer that alternates bursts and idle phases against
//! slower, steady consumers, then prints the segment statistics: the queue
//! grows during bursts, shrinks back to one live segment after draining, and
//! after the first burst serves segment churn from its cache instead of the
//! allocator.
//!
//! Run with:
//! ```text
//! cargo run --release --example unbounded_pipeline
//! ```

use std::sync::atomic::{AtomicU64, Ordering};

use wcq::atomics::Backoff;
use wcq::UnboundedWcq;

const BURSTS: u64 = 8;
const BURST_SIZE: u64 = 4_096; // each burst spans many 256-slot segments
const CONSUMERS: u64 = 2;

fn main() {
    // 2^8-element segments; 1 producer + 2 consumers + 1 main registration;
    // 8 drained segments kept warm for the next burst.
    let q: UnboundedWcq<u64> = wcq::builder()
        .capacity_order(8)
        .threads(4)
        .segment_cache(8)
        .build_unbounded();
    let consumed = AtomicU64::new(0);
    let peak_live = AtomicU64::new(0);
    let total = BURSTS * BURST_SIZE;

    std::thread::scope(|s| {
        // Bursty producer: emit a full burst as fast as possible, then idle
        // while the consumers catch up.
        let q_ref = &q;
        let peak = &peak_live;
        s.spawn(move || {
            let mut h = q_ref.handle();
            for burst in 0..BURSTS {
                for i in 0..BURST_SIZE {
                    h.enqueue(burst * BURST_SIZE + i);
                }
                peak.fetch_max(q_ref.segments_live() as u64, Ordering::Relaxed);
                // Idle phase: let the consumers drain the backlog.
                while q_ref.segments_live() > 1 {
                    std::thread::yield_now();
                }
            }
        });

        // Steady consumers.
        for _ in 0..CONSUMERS {
            let q_ref = &q;
            let consumed = &consumed;
            s.spawn(move || {
                let mut h = q_ref.handle();
                let mut backoff = Backoff::new();
                while consumed.load(Ordering::Relaxed) < total {
                    match h.dequeue() {
                        Some(_) => {
                            consumed.fetch_add(1, Ordering::Relaxed);
                            backoff.reset();
                        }
                        None => backoff.snooze_or_yield(),
                    }
                }
                h.flush_reclamation();
            });
        }
    });

    assert_eq!(consumed.load(Ordering::Relaxed), total, "no element lost");

    // One reclamation pass from a fresh handle makes the statistics settle.
    let mut h = q.handle();
    assert_eq!(h.dequeue(), None, "queue fully drained");
    h.flush_reclamation();
    drop(h);

    let stats = q.segment_stats();
    println!("moved {total} values through {BURSTS} bursts of {BURST_SIZE}");
    println!(
        "segments: peak live {}, now live {}, cached {}, allocated {}, reused {}",
        peak_live.load(Ordering::Relaxed),
        stats.live,
        stats.cached,
        stats.allocated_total,
        stats.reused_total
    );
    println!("current footprint: {} KiB", q.memory_footprint() / 1024);
    assert_eq!(stats.live, 1, "drained queue returns to one segment");
    assert!(
        stats.reused_total > 0,
        "bursts after the first must reuse cached segments: {stats:?}"
    );
}
