//! Work distribution: an MPMC task pool built on the *sharded* wLSCQ.
//!
//! The paper's introduction motivates fast wait-free queues with "user-space
//! message passing and scheduling".  This example builds a tiny work
//! distribution system on `ShardedWcq`: several producers submit independent
//! tasks (numbers to factor) through **least-loaded routing** — each enqueue
//! goes to the shard with the smallest approximate backlog, so uneven
//! producers cannot pile work onto one shard — and several workers pull from
//! their **home shard first, stealing** from the others once it runs dry, so
//! a worker whose shard empties keeps the whole pool drained.  Completions
//! flow back through a bounded wCQ acting as the completion queue.
//!
//! Run with:
//! ```text
//! cargo run --release --example work_distribution
//! ```

use wcq::{ShardPolicy, ShardedWcq, WcqQueue};

const PRODUCERS: usize = 2;
const WORKERS: usize = 3;
const SHARDS: usize = 4;
const TASKS_PER_PRODUCER: u64 = 20_000;

/// A unit of work: trial-factor `n` and report the smallest prime factor.
#[derive(Debug)]
struct Task {
    id: u64,
    n: u64,
}

#[derive(Debug)]
struct Completion {
    id: u64,
    smallest_factor: u64,
}

fn smallest_factor(n: u64) -> u64 {
    if n < 2 {
        return n;
    }
    let mut d = 2;
    while d * d <= n {
        if n.is_multiple_of(d) {
            return d;
        }
        d += 1;
    }
    n
}

fn main() {
    // The task pool: four unbounded wLSCQ shards, least-loaded enqueue
    // routing, work-stealing dequeue.  Producers and workers all hold one
    // registration slot (on every shard) each.
    let tasks: ShardedWcq<Task> = wcq::builder()
        .capacity_order(8) // per-segment capacity, per shard
        .threads(PRODUCERS + WORKERS + 1)
        .shards(SHARDS)
        .shard_policy(ShardPolicy::LeastLoaded)
        .build_sharded();
    let completions: WcqQueue<Completion> = wcq::builder()
        .capacity_order(10)
        .threads(WORKERS + 2)
        .build_bounded();
    let total_tasks = PRODUCERS as u64 * TASKS_PER_PRODUCER;

    std::thread::scope(|s| {
        // Producers submit tasks; the sharded queue is unbounded, so a
        // submission never fails and never blocks.
        for p in 0..PRODUCERS as u64 {
            let tasks = &tasks;
            s.spawn(move || {
                let mut h = tasks.handle();
                for i in 0..TASKS_PER_PRODUCER {
                    let id = p * TASKS_PER_PRODUCER + i;
                    h.enqueue(Task {
                        id,
                        n: 1_000_003 + id * 7,
                    });
                }
            });
        }

        // Workers drain their home shard, then steal, until the pool stays
        // empty long enough that the producers must be done.
        for _ in 0..WORKERS {
            let tasks = &tasks;
            let completions = &completions;
            s.spawn(move || {
                let mut input = tasks.handle();
                let mut output = completions.register().unwrap();
                let mut idle_spins = 0u32;
                loop {
                    match input.dequeue() {
                        Some(task) => {
                            idle_spins = 0;
                            let mut done = Completion {
                                id: task.id,
                                smallest_factor: smallest_factor(task.n),
                            };
                            while let Err(back) = output.enqueue(done) {
                                done = back;
                                std::thread::yield_now();
                            }
                        }
                        None => {
                            idle_spins += 1;
                            if idle_spins > 10_000 {
                                break; // producers are done and every shard drained
                            }
                            std::thread::yield_now();
                        }
                    }
                }
            });
        }

        // The collector tallies results.
        let completions = &completions;
        let tasks = &tasks;
        s.spawn(move || {
            let mut h = completions.register().unwrap();
            let mut seen = vec![false; total_tasks as usize];
            let mut collected = 0u64;
            let mut prime_inputs = 0u64;
            let mut peak_backlog = 0usize;
            while collected < total_tasks {
                match h.dequeue() {
                    Some(c) => {
                        assert!(!seen[c.id as usize], "task {} completed twice", c.id);
                        seen[c.id as usize] = true;
                        if c.smallest_factor > 1_000 {
                            prime_inputs += 1;
                        }
                        collected += 1;
                        peak_backlog = peak_backlog.max(tasks.len_hint());
                    }
                    None => std::thread::yield_now(),
                }
            }
            println!("collected {collected} completions, every task exactly once");
            println!("{prime_inputs} inputs had no small factor (likely prime)");
            println!("peak task backlog across all {SHARDS} shards: ~{peak_backlog}");
        });
    });

    // Least-loaded routing kept the shards balanced: show the per-shard
    // traffic (allocated segments track each shard's peak backlog).
    for (i, shard) in tasks.shards().iter().enumerate() {
        let stats = shard.segment_stats();
        println!(
            "shard {i}: {} segments allocated, {} reused from cache",
            stats.allocated_total, stats.reused_total
        );
    }
    println!(
        "task pool footprint: {} KiB, completion queue footprint: {} KiB",
        wcq::WaitFreeQueue::memory_footprint(&tasks) / 1024,
        completions.memory_footprint() / 1024
    );
}
