//! Work distribution under open-loop load: the scenario driver on a
//! sharded task pool.
//!
//! The paper's introduction motivates fast wait-free queues with "user-space
//! message passing and scheduling".  Earlier revisions of this example
//! hand-rolled that pipeline (producers, stealing workers, a collector,
//! ad-hoc idle-spin shutdown); all of that machinery now lives in the
//! `wcq-scenario` driver, which adds what the hand-rolled loop could not
//! measure honestly:
//!
//! * **open-loop arrivals** — requests are released on a seeded schedule
//!   whether or not the pool keeps up, so overload shows up as queueing
//!   delay instead of silently slowing the producers (no coordinated
//!   omission: latency is measured from each request's *intended* start);
//! * **connection churn** — a seeded endpoint clone/drop storm races the
//!   close, exercising the exact-drain shutdown instead of an idle-spin
//!   heuristic;
//! * **a built-in oracle** — the run panics unless every request completes
//!   exactly once through the close.
//!
//! The same workload is run twice — steady arrivals, then the same average
//! rate delivered in bursts — to show what burstiness alone does to the
//! tail percentiles of a least-loaded sharded pool.
//!
//! Run with:
//! ```text
//! cargo run --release --example work_distribution
//! ```

use std::time::Duration;

use wcq::{AdaptivePatience, ChannelBackend, PatienceMode, ShardPolicy};
use wcq_scenario::{ArrivalPattern, Scenario, ScenarioConfig, ScenarioReport};

const FRONTENDS: usize = 2;
const WORKERS: usize = 3;
const SHARDS: usize = 4;
const REQUESTS: usize = 40_000;

/// Average offered load for both runs (requests per second) — chosen under
/// the pool's drain capacity so the *steady* run keeps up and the bursty
/// run's tail comes from its bursts, not from plain overload.
const AVG_RATE: f64 = 200_000.0;

fn run(label: &str, pattern: ArrivalPattern) -> ScenarioReport {
    let report = Scenario::new(ScenarioConfig {
        seed: 0x5EED_D157,
        frontends: FRONTENDS,
        workers: WORKERS,
        requests: REQUESTS,
        pattern,
        // The task pool of the old example: unbounded wLSCQ shards behind
        // least-loaded enqueue routing and work-stealing dequeues.
        backend: ChannelBackend::Sharded,
        shards: SHARDS,
        shard_policy: ShardPolicy::LeastLoaded,
        patience: PatienceMode::Adaptive(AdaptivePatience::default()),
        // Simulated service time per request (the old trial-factoring).
        work_ns: 400,
        churn_events: 128,
        worker_timeout: Duration::from_millis(1),
        worker_stall: Duration::ZERO,
    })
    .run();

    // `run` returning at all means the oracle passed: every request was
    // delivered exactly once and the post-close drain was exact.
    assert_eq!(report.completed, REQUESTS as u64);
    println!("{label}:");
    println!(
        "  completed {} requests ({} via the hi-priority lane), {} churn events raced the run",
        report.completed, report.hi_lane, report.churn_executed
    );
    println!(
        "  queue wait (intended start -> worker dequeue): p50 {:>7} ns  p99 {:>9} ns  p999 {:>9} ns",
        report.queue_wait.p50(),
        report.queue_wait.p99(),
        report.queue_wait.p999()
    );
    println!(
        "  end to end (intended start -> collected):      p50 {:>7} ns  p99 {:>9} ns  p999 {:>9} ns",
        report.end_to_end.p50(),
        report.end_to_end.p99(),
        report.end_to_end.p999()
    );
    println!(
        "  send-call time p99: {} ns, expired parked waits: {}",
        report.send_op.p99(),
        report.timeouts
    );
    report
}

fn main() {
    let steady = run(
        "steady arrivals",
        ArrivalPattern::Steady {
            rate_per_sec: AVG_RATE,
        },
    );

    // Same average rate, delivered as 4x bursts with matching silences.
    let bursty = run(
        "bursty arrivals (same average rate)",
        ArrivalPattern::Bursty {
            burst_per_sec: 4.0 * AVG_RATE,
            on_ns: 250_000,
            off_ns: 750_000,
        },
    );

    println!(
        "burstiness alone moved queue-wait p99 from {} ns to {} ns",
        steady.queue_wait.p99(),
        bursty.queue_wait.p99()
    );
}
