//! Work distribution: an MPMC task pool built on wCQ.
//!
//! The paper's introduction motivates fast wait-free queues with "user-space
//! message passing and scheduling".  This example builds a tiny work
//! distribution system: several producers submit independent tasks (numbers
//! to factor), several workers pull tasks and publish results through a
//! second wCQ acting as the completion queue.  Because both queues are
//! wait-free, no producer or worker can be starved by a stalled peer.
//!
//! Run with:
//! ```text
//! cargo run --release --example work_distribution
//! ```

use wcq::WcqQueue;

const PRODUCERS: usize = 2;
const WORKERS: usize = 3;
const TASKS_PER_PRODUCER: u64 = 20_000;

/// A unit of work: trial-factor `n` and report the smallest prime factor.
#[derive(Debug)]
struct Task {
    id: u64,
    n: u64,
}

#[derive(Debug)]
struct Completion {
    id: u64,
    smallest_factor: u64,
}

fn smallest_factor(n: u64) -> u64 {
    if n < 2 {
        return n;
    }
    let mut d = 2;
    while d * d <= n {
        if n.is_multiple_of(d) {
            return d;
        }
        d += 1;
    }
    n
}

fn main() {
    let pool = wcq::builder().capacity_order(10);
    let tasks: WcqQueue<Task> = pool.clone().threads(PRODUCERS + WORKERS + 1).build_bounded();
    let completions: WcqQueue<Completion> = pool.threads(WORKERS + 2).build_bounded();
    let total_tasks = PRODUCERS as u64 * TASKS_PER_PRODUCER;

    std::thread::scope(|s| {
        // Producers submit tasks.
        for p in 0..PRODUCERS as u64 {
            let tasks = &tasks;
            s.spawn(move || {
                let mut h = tasks.register().unwrap();
                for i in 0..TASKS_PER_PRODUCER {
                    let id = p * TASKS_PER_PRODUCER + i;
                    let mut task = Task { id, n: 1_000_003 + id * 7 };
                    while let Err(back) = h.enqueue(task) {
                        task = back;
                        std::thread::yield_now();
                    }
                }
            });
        }

        // Workers process tasks until the expected number of completions has
        // been produced.
        for _ in 0..WORKERS {
            let tasks = &tasks;
            let completions = &completions;
            s.spawn(move || {
                let mut input = tasks.register().unwrap();
                let mut output = completions.register().unwrap();
                let mut idle_spins = 0u32;
                loop {
                    match input.dequeue() {
                        Some(task) => {
                            idle_spins = 0;
                            let mut done = Completion {
                                id: task.id,
                                smallest_factor: smallest_factor(task.n),
                            };
                            while let Err(back) = output.enqueue(done) {
                                done = back;
                                std::thread::yield_now();
                            }
                        }
                        None => {
                            idle_spins += 1;
                            if idle_spins > 10_000 {
                                break; // producers are done and the queue drained
                            }
                            std::thread::yield_now();
                        }
                    }
                }
            });
        }

        // The collector tallies results.
        let completions = &completions;
        s.spawn(move || {
            let mut h = completions.register().unwrap();
            let mut seen = vec![false; total_tasks as usize];
            let mut collected = 0u64;
            let mut prime_inputs = 0u64;
            while collected < total_tasks {
                match h.dequeue() {
                    Some(c) => {
                        assert!(!seen[c.id as usize], "task {} completed twice", c.id);
                        seen[c.id as usize] = true;
                        if c.smallest_factor > 1_000 {
                            prime_inputs += 1;
                        }
                        collected += 1;
                    }
                    None => std::thread::yield_now(),
                }
            }
            println!("collected {collected} completions, every task exactly once");
            println!("{prime_inputs} inputs had no small factor (likely prime)");
        });
    });

    println!(
        "task queue footprint: {} KiB, completion queue footprint: {} KiB",
        tasks.memory_footprint() / 1024,
        completions.memory_footprint() / 1024
    );
}
