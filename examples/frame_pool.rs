//! A DPDK-style network frame pool built on a wait-free index ring.
//!
//! High-speed networking libraries (DPDK, SPDK — cited in the paper's
//! introduction) use ring buffers to recycle fixed-size frame buffers between
//! receive and transmit paths.  The paper's point is that such rings are
//! usually *not* actually non-blocking; wCQ provides the same free-list ring
//! with a real wait-freedom guarantee.
//!
//! This example uses a raw [`wcq_core::wcq::WcqRing`] directly as a free list
//! of frame indices over a preallocated frame arena — exactly the
//! "indirection" pattern of Figure 2 — with RX threads allocating frames,
//! a processing stage, and TX threads releasing them.
//!
//! Run with:
//! ```text
//! cargo run --release --example frame_pool
//! ```

use std::sync::atomic::{AtomicU64, Ordering};

use wcq::{WcqQueue, WcqRing};

/// 2^10 = 1024 frames of 2 KiB each.
const FRAME_ORDER: u32 = 10;
const FRAME_SIZE: usize = 2048;
const PACKETS: u64 = 100_000;
const RX_THREADS: usize = 2;

fn main() {
    let frame_count = 1usize << FRAME_ORDER;
    // The frame arena: plain preallocated memory, never reallocated.
    let arena: Vec<AtomicU64> = (0..frame_count).map(|_| AtomicU64::new(0)).collect();

    // Free list: a wait-free ring of frame indices, initially full.
    let pool = wcq::builder().capacity_order(FRAME_ORDER).threads(8);
    let free_list: WcqRing = pool.build_ring();
    {
        let mut init = free_list.register().unwrap();
        for i in 0..frame_count as u64 {
            init.enqueue(i);
        }
    }

    // RX -> TX hand-off queue carrying (frame index, length) descriptors.
    let rx_to_tx: WcqQueue<(u64, u32)> = pool.build_bounded();
    let transmitted = AtomicU64::new(0);
    let dropped = AtomicU64::new(0);

    std::thread::scope(|s| {
        // RX threads: allocate a frame from the free list, "fill" it, pass a
        // descriptor to TX.
        for rx in 0..RX_THREADS as u64 {
            let free_list = &free_list;
            let rx_to_tx = &rx_to_tx;
            let arena = &arena;
            let dropped = &dropped;
            s.spawn(move || {
                let mut pool = free_list.register().unwrap();
                let mut out = rx_to_tx.register().unwrap();
                for pkt in 0..PACKETS / RX_THREADS as u64 {
                    // Allocate a frame; an empty free list models NIC drops.
                    let Some(frame) = pool.dequeue() else {
                        dropped.fetch_add(1, Ordering::Relaxed);
                        std::thread::yield_now();
                        continue;
                    };
                    // "DMA" the packet payload into the frame.
                    arena[frame as usize].store(rx << 56 | pkt, Ordering::Relaxed);
                    let len = 64 + (pkt % (FRAME_SIZE as u64 - 64)) as u32;
                    let mut desc = (frame, len);
                    while let Err(back) = out.enqueue(desc) {
                        desc = back;
                        std::thread::yield_now();
                    }
                }
            });
        }

        // TX thread: transmit and recycle frames into the free list.
        let free_list = &free_list;
        let rx_to_tx = &rx_to_tx;
        let arena = &arena;
        let transmitted = &transmitted;
        let dropped = &dropped;
        s.spawn(move || {
            let mut pool = free_list.register().unwrap();
            let mut input = rx_to_tx.register().unwrap();
            loop {
                let done = transmitted.load(Ordering::Relaxed) + dropped.load(Ordering::Relaxed);
                if done >= PACKETS {
                    break;
                }
                match input.dequeue() {
                    Some((frame, _len)) => {
                        // "Transmit" (read) the payload, then recycle the frame.
                        let _payload = arena[frame as usize].load(Ordering::Relaxed);
                        pool.enqueue(frame);
                        transmitted.fetch_add(1, Ordering::Relaxed);
                    }
                    None => std::thread::yield_now(),
                }
            }
        });
    });

    let tx = transmitted.load(Ordering::Relaxed);
    let drop_count = dropped.load(Ordering::Relaxed);
    println!("transmitted {tx} packets, dropped {drop_count} (free-list exhaustion)");
    assert_eq!(tx + drop_count, PACKETS);

    // Every frame must be back in the free list (or still unused): no leaks.
    let mut pool = free_list.register().unwrap();
    let mut recovered = 0;
    while pool.dequeue().is_some() {
        recovered += 1;
    }
    println!("{recovered}/{frame_count} frames recovered to the pool");
    assert_eq!(recovered, frame_count, "frame leak detected");
    println!(
        "free-list ring footprint: {} KiB for {frame_count} frames",
        free_list.memory_footprint() / 1024
    );
}
