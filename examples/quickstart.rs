//! Quickstart: the smallest useful wCQ program.
//!
//! Creates a bounded wait-free queue, registers a producer and a consumer
//! thread, and moves a million integers through it while printing the
//! fast-path/slow-path statistics at the end.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::time::Instant;

use wcq_core::wcq::WcqQueue;

const ITEMS: u64 = 1_000_000;

fn main() {
    // Capacity 2^12 = 4096 elements, up to 4 registered threads.
    let queue: WcqQueue<u64> = WcqQueue::new(12, 4);
    let start = Instant::now();

    std::thread::scope(|s| {
        // Producer.
        s.spawn(|| {
            let mut handle = queue.register().expect("a registration slot is free");
            for i in 0..ITEMS {
                let mut item = i;
                // `enqueue` returns the value back when the queue is full —
                // bounded queues make backpressure explicit.
                while let Err(back) = handle.enqueue(item) {
                    item = back;
                    std::thread::yield_now();
                }
            }
        });

        // Consumer.
        s.spawn(|| {
            let mut handle = queue.register().expect("a registration slot is free");
            let mut received = 0u64;
            let mut sum = 0u64;
            while received < ITEMS {
                match handle.dequeue() {
                    Some(v) => {
                        sum += v;
                        received += 1;
                    }
                    None => std::thread::yield_now(),
                }
            }
            assert_eq!(sum, ITEMS * (ITEMS - 1) / 2, "no element lost or duplicated");
            let (aq, fq) = handle.stats();
            println!("consumer done: {received} items, checksum OK");
            println!(
                "  aq ring: {} fast / {} slow dequeues",
                aq.fast_dequeues, aq.slow_dequeues
            );
            println!(
                "  fq ring: {} fast / {} slow enqueues",
                fq.fast_enqueues, fq.slow_enqueues
            );
        });
    });

    let elapsed = start.elapsed();
    println!(
        "moved {ITEMS} items in {:.3} s ({:.2} Mops/s enqueue+dequeue)",
        elapsed.as_secs_f64(),
        2.0 * ITEMS as f64 / elapsed.as_secs_f64() / 1e6
    );
    println!(
        "queue memory footprint: {} KiB (bounded — Theorem 5.8)",
        queue.memory_footprint() / 1024
    );
}
