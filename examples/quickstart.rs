//! Quickstart: the smallest useful wCQ program, through the `wcq` facade.
//!
//! One builder call constructs the queue; `handle()` registers the calling
//! thread (RAII — the record slot is released when the handle drops, and
//! re-registration by the same thread is O(1) through the thread-local tid
//! memo).  The example moves a million integers producer → consumer and
//! prints the fast-path/slow-path statistics at the end.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::time::Instant;

use wcq::WaitFreeQueue;

const ITEMS: u64 = 1_000_000;

fn main() {
    // Capacity 2^12 = 4096 elements, up to 4 registered threads.
    let queue = wcq::builder()
        .capacity_order(12)
        .threads(4)
        .build_bounded::<u64>();
    let start = Instant::now();

    std::thread::scope(|s| {
        // Producer: the trait handle's `enqueue` retries while the bounded
        // queue is full — backpressure without hand-rolled loops.  (Use
        // `try_enqueue` for an explicit full/`Err` signal instead.)
        s.spawn(|| {
            let mut handle = queue.handle();
            for i in 0..ITEMS {
                handle.enqueue(i);
            }
        });

        // Consumer: uses the concrete handle from `register()`, which
        // additionally exposes the per-ring wait-freedom statistics.
        s.spawn(|| {
            let mut handle = queue.register().expect("a registration slot is free");
            let mut received = 0u64;
            let mut sum = 0u64;
            while received < ITEMS {
                match handle.dequeue() {
                    Some(v) => {
                        sum += v;
                        received += 1;
                    }
                    None => std::thread::yield_now(),
                }
            }
            assert_eq!(
                sum,
                ITEMS * (ITEMS - 1) / 2,
                "no element lost or duplicated"
            );
            let (aq, fq) = handle.stats();
            println!("consumer done: {received} items, checksum OK");
            println!(
                "  aq ring: {} fast / {} slow dequeues",
                aq.fast_dequeues, aq.slow_dequeues
            );
            println!(
                "  fq ring: {} fast / {} slow enqueues",
                fq.fast_enqueues, fq.slow_enqueues
            );
        });
    });

    let elapsed = start.elapsed();
    println!(
        "moved {ITEMS} items in {:.3} s ({:.2} Mops/s enqueue+dequeue)",
        elapsed.as_secs_f64(),
        2.0 * ITEMS as f64 / elapsed.as_secs_f64() / 1e6
    );
    println!(
        "queue memory footprint: {} KiB (bounded — Theorem 5.8)",
        WaitFreeQueue::<u64>::memory_footprint(&queue) / 1024
    );
}
