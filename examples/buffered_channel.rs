//! A Go-style buffered-channel pipeline on the wCQ channel endpoints.
//!
//! The paper's introduction points at language runtimes: "Go needs a queue
//! for its buffered channel implementation".  Earlier revisions of this
//! example hand-rolled the channel (closed flag, backoff loops, scoped
//! threads); since ISSUE 5 the library ships it: `build_channel()` over the
//! bounded wCQ *is* a buffered channel — `send` blocks while the buffer is
//! full, `recv` blocks while it is empty, dropping the last `Sender` closes,
//! and receivers drain every pre-close value before observing the closure.
//!
//! The pipeline below is the classic three-stage shape: a generator feeds two
//! parallel squarers over one channel, the squarers feed an accumulator over
//! a second one.  Every endpoint is `Send`, so the stages are plain
//! `thread::spawn`s — no scopes, no `Arc`, no manual registration.
//!
//! Run with:
//! ```text
//! cargo run --release --example buffered_channel
//! ```

use wcq::channel::{Receiver, Sender};
use wcq::ChannelBackend;

const ITEMS: u64 = 200_000;

/// A bounded channel buffering up to `2^order` elements for `endpoints`
/// concurrently live senders + receivers.
fn buffered<T: Send + 'static>(order: u32, endpoints: usize) -> (Sender<T>, Receiver<T>) {
    wcq::builder()
        .capacity_order(order)
        .threads(endpoints)
        .backend(ChannelBackend::Bounded)
        .build_channel::<T>()
}

fn main() {
    // Stage 1 -> Stage 2 -> Stage 3 pipeline, Go-style.
    let (raw_tx, raw_rx) = buffered::<u64>(8, 4);
    let (sq_tx, mut sq_rx) = buffered::<u64>(8, 4);

    // Stage 1: generator.  Dropping the sender at the end of the thread
    // closes the raw channel once both squarers drained it.
    let generator = std::thread::spawn(move || {
        let mut tx = raw_tx;
        for i in 0..ITEMS {
            tx.send(i).expect("squarers alive");
        }
    });

    // Stage 2: two parallel squarers, each with cloned endpoints.
    let squarers: Vec<_> = (0..2)
        .map(|_| {
            let mut rx = raw_rx.clone();
            let mut tx = sq_tx.clone();
            std::thread::spawn(move || {
                // The receiving iterator ends at close-and-drained.
                for v in &mut rx {
                    tx.send(v.wrapping_mul(v)).expect("accumulator alive");
                }
            })
        })
        .collect();
    // The stages own their clones; dropping the originals here arms the
    // close-on-last-drop for both channels.
    drop(raw_rx);
    drop(sq_tx);

    // Stage 3: accumulator (this thread).  No expected count needed — the
    // squared channel closes exactly when both squarers finish.
    let mut count = 0u64;
    let mut checksum = 0u64;
    for v in &mut sq_rx {
        checksum = checksum.wrapping_add(v);
        count += 1;
    }

    generator.join().unwrap();
    for s in squarers {
        s.join().unwrap();
    }

    let expected: u64 = (0..ITEMS).fold(0u64, |acc, i| acc.wrapping_add(i.wrapping_mul(i)));
    assert_eq!(count, ITEMS, "pipeline lost or duplicated items");
    assert_eq!(checksum, expected, "pipeline corrupted items");
    println!("pipeline moved {count} items, checksum OK ({checksum:#x})");
}
