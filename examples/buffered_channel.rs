//! A Go-style buffered channel built on wCQ.
//!
//! The paper's introduction points at language runtimes: "Go needs a queue
//! for its buffered channel implementation".  This example wraps `WcqQueue`
//! in a minimal buffered-channel API (`send` blocks while the buffer is full,
//! `recv` blocks while it is empty, `close` wakes all receivers) and runs a
//! pipeline of three stages connected by two channels.
//!
//! Waiting uses the bounded exponential `Backoff` from `wcq-atomics` — spin
//! briefly with growing delays to ride out short full/empty windows, then
//! fall back to `yield_now` so a stalled peer still gets the CPU.
//!
//! Run with:
//! ```text
//! cargo run --release --example buffered_channel
//! ```

use std::sync::atomic::{AtomicBool, Ordering};

use wcq::atomics::Backoff;
use wcq::{WcqQueue, WcqQueueHandle};

/// A bounded, wait-free buffered channel.
struct Channel<T> {
    queue: WcqQueue<T>,
    closed: AtomicBool,
}

impl<T> Channel<T> {
    /// A channel buffering up to `2^order` elements for `max_threads` users.
    fn new(order: u32, max_threads: usize) -> Self {
        Self {
            queue: wcq::builder()
                .capacity_order(order)
                .threads(max_threads)
                .build_bounded(),
            closed: AtomicBool::new(false),
        }
    }

    fn attach(&self) -> Endpoint<'_, T> {
        Endpoint {
            channel: self,
            handle: self.queue.register().expect("registration slot available"),
        }
    }

    fn close(&self) {
        self.closed.store(true, Ordering::SeqCst);
    }
}

/// A per-thread endpoint (sender and/or receiver).
struct Endpoint<'c, T> {
    channel: &'c Channel<T>,
    handle: WcqQueueHandle<'c, T>,
}

impl<'c, T> Endpoint<'c, T> {
    /// Sends a value, waiting while the buffer is full.  Returns `Err` if the
    /// channel is closed.
    fn send(&mut self, value: T) -> Result<(), T> {
        let mut item = value;
        let mut backoff = Backoff::new();
        loop {
            if self.channel.closed.load(Ordering::SeqCst) {
                return Err(item);
            }
            match self.handle.enqueue(item) {
                Ok(()) => return Ok(()),
                Err(back) => {
                    item = back;
                    backoff.snooze_or_yield();
                }
            }
        }
    }

    /// Receives a value, waiting while the buffer is empty.  Returns `None`
    /// once the channel is closed *and* drained.
    fn recv(&mut self) -> Option<T> {
        let mut backoff = Backoff::new();
        loop {
            if let Some(v) = self.handle.dequeue() {
                return Some(v);
            }
            if self.channel.closed.load(Ordering::SeqCst) {
                // One more look to avoid racing with a send-then-close.
                return self.handle.dequeue();
            }
            backoff.snooze_or_yield();
        }
    }
}

const ITEMS: u64 = 200_000;

fn main() {
    // Stage 1 -> Stage 2 -> Stage 3 pipeline, Go-style.
    let raw: Channel<u64> = Channel::new(8, 4);
    let squared: Channel<u64> = Channel::new(8, 4);

    std::thread::scope(|s| {
        // Stage 1: generator.
        let raw_ref = &raw;
        s.spawn(move || {
            let mut tx = raw_ref.attach();
            for i in 0..ITEMS {
                tx.send(i).expect("channel closed early");
            }
            raw_ref.close();
        });

        // Stage 2: squarer (two parallel workers).
        for _ in 0..2 {
            let raw_ref = &raw;
            let squared_ref = &squared;
            s.spawn(move || {
                let mut rx = raw_ref.attach();
                let mut tx = squared_ref.attach();
                while let Some(v) = rx.recv() {
                    tx.send(v.wrapping_mul(v)).expect("downstream closed early");
                }
            });
        }

        // Stage 3: accumulator.  It knows how many items to expect, then the
        // squared channel gets closed by main after the scope joins stage 2.
        let squared_ref = &squared;
        s.spawn(move || {
            let mut rx = squared_ref.attach();
            let mut count = 0u64;
            let mut checksum = 0u64;
            while count < ITEMS {
                if let Some(v) = rx.recv() {
                    checksum = checksum.wrapping_add(v);
                    count += 1;
                }
            }
            let expected: u64 = (0..ITEMS).fold(0u64, |acc, i| acc.wrapping_add(i.wrapping_mul(i)));
            assert_eq!(checksum, expected, "pipeline lost or duplicated items");
            println!("pipeline moved {count} items, checksum OK ({checksum:#x})");
        });
    });

    println!(
        "channel buffers: raw {} KiB, squared {} KiB",
        raw.queue.memory_footprint() / 1024,
        squared.queue.memory_footprint() / 1024
    );
}
