//! Async channel endpoints: [`AsyncSender`]/[`AsyncReceiver`] over any
//! [`WaitFreeQueue`](crate::WaitFreeQueue) backend.
//!
//! The queue algorithms never block — wLSCQ in particular has no full state
//! at all — which makes them a natural base for an async MPMC channel: the
//! only thing the async layer adds is *parking*.  A receiver that observes an
//! empty channel parks its task waker in a per-endpoint slot of the shared
//! channel core's waker registry;
//! every successful send wakes **one** parked receiver, a close wakes **all**
//! of them, and (symmetrically, for the bounded backend) every successful
//! receive wakes one sender parked on a full queue.  No thread ever spins
//! inside the executor: a future returns `Pending` only after re-checking
//! the queue *with its waker already parked*, so a wake can never be lost.
//!
//! The park decision is gated by
//! [`is_empty_hint`](crate::WaitFreeQueue::is_empty_hint) (the counting
//! backends' approximate length): while the hint says values are present —
//! they may sit in another shard moments from being stolen — the receiver
//! retries the dequeue instead of paying the park/re-check round trip.
//!
//! No executor is required or shipped: the futures are ordinary
//! [`std::future::Future`]s driven by any runtime; this repo's tests and
//! benches use the dependency-free `wcq_harness::exec::block_on` shim.
//!
//! ```
//! let (tx, rx) = wcq::builder().threads(4).build_async::<u64>();
//! let (mut tx, mut rx) = (tx, rx);
//! wcq_harness::exec::block_on(async move {
//!     tx.send(7).await.unwrap();
//!     assert_eq!(rx.recv().await, Ok(7));
//!     tx.close();
//!     assert!(rx.recv().await.is_err(), "closed and drained");
//! });
//! ```

use std::future::Future;
use std::pin::Pin;
use std::task::{Context, Poll};

use wcq_core::metrics::{Instrument, NoopInstrument};

use crate::channel::{Receiver, RecvError, SendError, Sender, TryRecvError, TrySendError};

// --------------------------------------------------------------------------
// AsyncSender
// --------------------------------------------------------------------------

/// The producing endpoint of a channel built by
/// [`build_async`](crate::QueueBuilder::build_async).
///
/// Wraps a [`Sender`] (same close semantics, same typed errors) and adds a
/// parked-waker slot so [`send`](AsyncSender::send) on a full *bounded*
/// backend suspends the task instead of spinning; a receive or a close wakes
/// it.  Unbounded and sharded backends never report full, so their send
/// futures complete on first poll.
pub struct AsyncSender<T: Send + 'static, I: Instrument = NoopInstrument> {
    inner: Sender<T, I>,
    waker_id: u64,
}

impl<T: Send + 'static, I: Instrument> AsyncSender<T, I> {
    /// Sends `value`, suspending while a bounded backend is full.  Resolves
    /// with the value back inside [`SendError`] if the channel closes first.
    pub fn send(&mut self, value: T) -> SendFuture<'_, T, I> {
        SendFuture {
            tx: self,
            value: Some(value),
            parked: false,
        }
    }

    /// Non-blocking send; identical to [`Sender::try_send`].
    pub fn try_send(&mut self, value: T) -> Result<(), TrySendError<T>> {
        self.inner.try_send(value)
    }

    /// Sends every element of `iter`, suspending (rather than spinning) while
    /// a bounded backend is full — the async face of [`Sender::send_iter`],
    /// with the same batch-amortized credit/closed check and the same error
    /// contract: on close the unsent remainder comes back in order inside the
    /// error, and everything else was enqueued pre-close and will drain.
    pub fn send_iter<It>(&mut self, iter: It) -> SendIterFuture<'_, T, I>
    where
        It: IntoIterator<Item = T>,
    {
        let buf: Vec<T> = iter.into_iter().collect();
        let total = buf.len();
        SendIterFuture {
            tx: self,
            buf,
            total,
            parked: false,
        }
    }

    /// Closes the channel (see [`Sender::close`]); wakes every parked task.
    pub fn close(&self) -> bool {
        self.inner.close()
    }

    /// `true` once the channel is closed.
    pub fn is_closed(&self) -> bool {
        self.inner.is_closed()
    }

    /// Display name of the backend queue.
    pub fn backend_name(&self) -> &'static str {
        self.inner.backend_name()
    }

    /// Strips the async layer, keeping the registered endpoint.
    pub fn into_sync(self) -> Sender<T, I> {
        // Clone-then-drop keeps the sender count ≥ 1 throughout, so the
        // conversion can never be the "last drop" that closes the channel.
        let sync = self.inner.clone();
        drop(self);
        sync
    }
}

impl<T: Send + 'static, I: Instrument> From<Sender<T, I>> for AsyncSender<T, I> {
    fn from(inner: Sender<T, I>) -> Self {
        let waker_id = inner.core.send_wakers.attach();
        Self { inner, waker_id }
    }
}

impl<T: Send + 'static, I: Instrument> Clone for AsyncSender<T, I> {
    fn clone(&self) -> Self {
        self.inner.clone().into()
    }
}

impl<T: Send + 'static, I: Instrument> Drop for AsyncSender<T, I> {
    fn drop(&mut self) {
        self.inner.core.send_wakers.detach(self.waker_id);
        // `inner` drops next; the last sender drop closes the channel.
    }
}

impl<T: Send + 'static, I: Instrument> std::fmt::Debug for AsyncSender<T, I> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AsyncSender")
            .field("backend", &self.backend_name())
            .field("closed", &self.is_closed())
            .finish()
    }
}

/// Future of [`AsyncSender::send`].
#[must_use = "futures do nothing unless polled"]
pub struct SendFuture<'a, T: Send + 'static, I: Instrument = NoopInstrument> {
    tx: &'a mut AsyncSender<T, I>,
    /// The value still to be sent; taken on completion.
    value: Option<T>,
    /// Whether the last poll returned `Pending` with the waker parked — the
    /// drop impl uses it to tell a consumed notification from a clean slot.
    parked: bool,
}

// No field is structurally pinned (`poll` only ever takes plain `&mut` to
// them), so the future is `Unpin` regardless of `T`.
impl<T: Send + 'static, I: Instrument> Unpin for SendFuture<'_, T, I> {}

impl<T: Send + 'static, I: Instrument> Future for SendFuture<'_, T, I> {
    type Output = Result<(), SendError<T>>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut(); // SendFuture is Unpin
        let value = this
            .value
            .take()
            .expect("SendFuture polled after completion");
        let value = match this.tx.inner.try_send(value) {
            Ok(()) => return Poll::Ready(this.complete(Ok(()))),
            Err(TrySendError::Closed(v)) => return Poll::Ready(this.complete(Err(SendError(v)))),
            Err(TrySendError::Full(v)) => v,
        };
        // Full: park, then retry once with the waker in place — a dequeue
        // that raced between the attempt above and the park has already
        // consumed its notification, so only this re-check can see it.
        this.tx.inner.core.park_send(this.tx.waker_id, cx.waker());
        this.parked = true;
        match this.tx.inner.try_send(value) {
            Ok(()) => Poll::Ready(this.complete(Ok(()))),
            Err(TrySendError::Closed(v)) => Poll::Ready(this.complete(Err(SendError(v)))),
            Err(TrySendError::Full(v)) => {
                this.value = Some(v);
                Poll::Pending
            }
        }
    }
}

impl<T: Send + 'static, I: Instrument> SendFuture<'_, T, I> {
    /// Completion bookkeeping: clear any waker still parked from an earlier
    /// `Pending` round, so no later `notify_one` burns itself on this
    /// already-finished future.
    fn complete(&mut self, output: Result<(), SendError<T>>) -> Result<(), SendError<T>> {
        if self.parked {
            self.parked = false;
            self.tx.inner.core.send_wakers.unpark(self.tx.waker_id);
        }
        output
    }
}

impl<T: Send + 'static, I: Instrument> Drop for SendFuture<'_, T, I> {
    fn drop(&mut self) {
        // Cancellation safety: never leave a stale waker behind, and never
        // swallow a notification.  If we parked and the waker is *gone*, a
        // notify chose us between the wake and this drop — forward it, or
        // the queue slot it announced goes unobserved by the other parked
        // senders.
        if self.parked && !self.tx.inner.core.send_wakers.unpark(self.tx.waker_id) {
            self.tx.inner.core.wake_send_one();
        }
    }
}

/// Future of [`AsyncSender::send_iter`].
#[must_use = "futures do nothing unless polled"]
pub struct SendIterFuture<'a, T: Send + 'static, I: Instrument = NoopInstrument> {
    tx: &'a mut AsyncSender<T, I>,
    /// The elements still to be sent, drained from the front as batches land.
    buf: Vec<T>,
    total: usize,
    /// Whether the last poll returned `Pending` with the waker parked — the
    /// drop impl uses it to tell a consumed notification from a clean slot.
    parked: bool,
}

impl<T: Send + 'static, I: Instrument> Unpin for SendIterFuture<'_, T, I> {}

impl<T: Send + 'static, I: Instrument> Future for SendIterFuture<'_, T, I> {
    type Output = Result<usize, SendError<Vec<T>>>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut(); // SendIterFuture is Unpin
        let mut parked_now = false;
        loop {
            match this.tx.inner.try_send_batch(&mut this.buf) {
                Err(SendError(())) => {
                    let remainder = std::mem::take(&mut this.buf);
                    return Poll::Ready(this.complete(Err(SendError(remainder))));
                }
                Ok(_) if this.buf.is_empty() => {
                    return Poll::Ready(this.complete(Ok(this.total)));
                }
                Ok(accepted) if accepted > 0 => continue, // partial progress
                Ok(_) => {}
            }
            // Full: park once, then retry with the waker in place (same
            // lost-wake reasoning as `SendFuture`); a second full answer in
            // the same poll suspends.
            if parked_now {
                return Poll::Pending;
            }
            this.tx.inner.core.park_send(this.tx.waker_id, cx.waker());
            this.parked = true;
            parked_now = true;
        }
    }
}

impl<T: Send + 'static, I: Instrument> SendIterFuture<'_, T, I> {
    /// Completion bookkeeping; see [`SendFuture`]'s counterpart.
    fn complete(
        &mut self,
        output: Result<usize, SendError<Vec<T>>>,
    ) -> Result<usize, SendError<Vec<T>>> {
        if self.parked {
            self.parked = false;
            self.tx.inner.core.send_wakers.unpark(self.tx.waker_id);
        }
        output
    }
}

impl<T: Send + 'static, I: Instrument> Drop for SendIterFuture<'_, T, I> {
    fn drop(&mut self) {
        // Cancellation safety: see `SendFuture`'s drop impl.
        if self.parked && !self.tx.inner.core.send_wakers.unpark(self.tx.waker_id) {
            self.tx.inner.core.wake_send_one();
        }
    }
}

// --------------------------------------------------------------------------
// AsyncReceiver
// --------------------------------------------------------------------------

/// The consuming endpoint of a channel built by
/// [`build_async`](crate::QueueBuilder::build_async).
///
/// Wraps a [`Receiver`] and adds the park/wake machinery:
/// [`recv`](AsyncReceiver::recv) on an empty channel parks the task and is
/// woken by the next send (one receiver per send) or by a close (all
/// receivers).  The close-drain guarantee carries over unchanged — a receiver
/// resolves to `Err(`[`RecvError`]`)` only after every pre-close send has
/// been drained by someone.
pub struct AsyncReceiver<T: Send + 'static, I: Instrument = NoopInstrument> {
    inner: Receiver<T, I>,
    waker_id: u64,
}

impl<T: Send + 'static, I: Instrument> AsyncReceiver<T, I> {
    /// Receives the next value, suspending while the channel is empty.
    /// Resolves with `Err(`[`RecvError`]`)` once the channel is closed and
    /// fully drained.
    pub fn recv(&mut self) -> RecvFuture<'_, T, I> {
        RecvFuture {
            rx: self,
            parked: false,
        }
    }

    /// Non-blocking receive; identical to [`Receiver::try_recv`].
    pub fn try_recv(&mut self) -> Result<T, TryRecvError> {
        self.inner.try_recv()
    }

    /// Receives up to `max` values into `out`, suspending while the channel
    /// is empty — the async face of [`Receiver::recv_many`].  Resolves with
    /// the number appended (at least one; fewer than `max` does not mean
    /// empty), or `Err(`[`RecvError`]`)` once the channel is closed and fully
    /// drained.
    pub fn recv_many<'a>(
        &'a mut self,
        out: &'a mut Vec<T>,
        max: usize,
    ) -> RecvManyFuture<'a, T, I> {
        RecvManyFuture {
            rx: self,
            out,
            max,
            parked: false,
        }
    }

    /// Closes the channel (see [`Receiver::close`]); wakes every parked task.
    pub fn close(&self) -> bool {
        self.inner.close()
    }

    /// `true` once the channel is closed.
    pub fn is_closed(&self) -> bool {
        self.inner.is_closed()
    }

    /// The backend's emptiness hint that gates the park decision.
    pub fn is_empty_hint(&self) -> bool {
        self.inner.is_empty_hint()
    }

    /// Whether the backend implements the emptiness hint at all (see
    /// [`Receiver::has_empty_hint`]); without one, the receive futures park
    /// after a single empty answer instead of hint-gated retries.
    pub fn has_empty_hint(&self) -> bool {
        self.inner.has_empty_hint()
    }

    /// Display name of the backend queue.
    pub fn backend_name(&self) -> &'static str {
        self.inner.backend_name()
    }

    /// Strips the async layer, keeping the registered endpoint.
    pub fn into_sync(self) -> Receiver<T, I> {
        let sync = self.inner.clone();
        drop(self);
        sync
    }

    /// Select support ([`crate::select`]): the wrapped sync endpoint and the
    /// endpoint's registry slot, together — the multi-channel wait parks one
    /// waker per participating receiver through these.
    pub(crate) fn select_parts(&mut self) -> (&mut Receiver<T, I>, u64) {
        (&mut self.inner, self.waker_id)
    }
}

impl<T: Send + 'static, I: Instrument> From<Receiver<T, I>> for AsyncReceiver<T, I> {
    fn from(inner: Receiver<T, I>) -> Self {
        let waker_id = inner.core.recv_wakers.attach();
        Self { inner, waker_id }
    }
}

impl<T: Send + 'static, I: Instrument> Clone for AsyncReceiver<T, I> {
    fn clone(&self) -> Self {
        self.inner.clone().into()
    }
}

impl<T: Send + 'static, I: Instrument> Drop for AsyncReceiver<T, I> {
    fn drop(&mut self) {
        self.inner.core.recv_wakers.detach(self.waker_id);
    }
}

impl<T: Send + 'static, I: Instrument> std::fmt::Debug for AsyncReceiver<T, I> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AsyncReceiver")
            .field("backend", &self.backend_name())
            .field("closed", &self.is_closed())
            .finish()
    }
}

/// Future of [`AsyncReceiver::recv`].
#[must_use = "futures do nothing unless polled"]
pub struct RecvFuture<'a, T: Send + 'static, I: Instrument = NoopInstrument> {
    rx: &'a mut AsyncReceiver<T, I>,
    /// Whether the last poll returned `Pending` with the waker parked — the
    /// drop impl uses it to tell a consumed notification from a clean slot.
    parked: bool,
}

impl<T: Send + 'static, I: Instrument> Future for RecvFuture<'_, T, I> {
    type Output = Result<T, RecvError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut(); // RecvFuture is Unpin
                                   // Hint-gated fast path: while the backend's length hint says values
                                   // exist (they may be headed to another shard or segment), a retry is
                                   // cheaper than the park/re-check round trip.  The bound keeps one
                                   // poll finite even if the hint stays stubbornly non-empty.  A backend
                                   // without a real hint reports a constant `false` — "no information",
                                   // not "non-empty" — so retrying on it is never informed: park after
                                   // the first empty answer instead of spinning the extra rounds.
        let hinted = this.rx.inner.has_empty_hint();
        for attempt in 0..3 {
            match this.rx.inner.try_recv() {
                Ok(value) => return Poll::Ready(this.complete(Ok(value))),
                Err(TryRecvError::Closed) => return Poll::Ready(this.complete(Err(RecvError))),
                Err(TryRecvError::Empty) => {}
            }
            if !hinted || (attempt == 0 && this.rx.inner.is_empty_hint()) {
                break; // genuinely empty (or no hint to consult): go park
            }
        }
        // Park, then re-check with the waker in place — an enqueue that raced
        // ahead of the park has already spent its notification on an empty
        // registry, so only this re-check can observe its value.
        this.rx.inner.core.park_recv(this.rx.waker_id, cx.waker());
        this.parked = true;
        match this.rx.inner.try_recv() {
            Ok(value) => Poll::Ready(this.complete(Ok(value))),
            Err(TryRecvError::Closed) => Poll::Ready(this.complete(Err(RecvError))),
            Err(TryRecvError::Empty) => Poll::Pending,
        }
    }
}

impl<T: Send + 'static, I: Instrument> RecvFuture<'_, T, I> {
    /// Completion bookkeeping: clear any waker still parked from an earlier
    /// `Pending` round, so no later `notify_one` burns itself on this
    /// already-finished future.
    fn complete(&mut self, output: Result<T, RecvError>) -> Result<T, RecvError> {
        if self.parked {
            self.parked = false;
            self.rx.inner.core.recv_wakers.unpark(self.rx.waker_id);
        }
        output
    }
}

impl<T: Send + 'static, I: Instrument> Drop for RecvFuture<'_, T, I> {
    fn drop(&mut self) {
        // Cancellation safety: never leave a stale waker behind, and never
        // swallow a notification.  If we parked and the waker is *gone*, a
        // notify chose us between the wake and this drop — forward it, or
        // the value it announced goes unobserved by the other parked
        // receivers.
        if self.parked && !self.rx.inner.core.recv_wakers.unpark(self.rx.waker_id) {
            self.rx.inner.core.wake_recv_one();
        }
    }
}

/// Future of [`AsyncReceiver::recv_many`].
#[must_use = "futures do nothing unless polled"]
pub struct RecvManyFuture<'a, T: Send + 'static, I: Instrument = NoopInstrument> {
    rx: &'a mut AsyncReceiver<T, I>,
    out: &'a mut Vec<T>,
    max: usize,
    /// Whether the last poll returned `Pending` with the waker parked — the
    /// drop impl uses it to tell a consumed notification from a clean slot.
    parked: bool,
}

impl<T: Send + 'static, I: Instrument> Unpin for RecvManyFuture<'_, T, I> {}

impl<T: Send + 'static, I: Instrument> Future for RecvManyFuture<'_, T, I> {
    type Output = Result<usize, RecvError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut(); // RecvManyFuture is Unpin
        if this.max == 0 {
            return Poll::Ready(this.complete(Ok(0)));
        }
        // Hint gating: identical reasoning to `RecvFuture::poll`.
        let hinted = this.rx.inner.has_empty_hint();
        for attempt in 0..3 {
            match this.rx.inner.try_recv_many(this.out, this.max) {
                Ok(got) => return Poll::Ready(this.complete(Ok(got))),
                Err(TryRecvError::Closed) => return Poll::Ready(this.complete(Err(RecvError))),
                Err(TryRecvError::Empty) => {}
            }
            if !hinted || (attempt == 0 && this.rx.inner.is_empty_hint()) {
                break; // genuinely empty (or no hint to consult): go park
            }
        }
        this.rx.inner.core.park_recv(this.rx.waker_id, cx.waker());
        this.parked = true;
        match this.rx.inner.try_recv_many(this.out, this.max) {
            Ok(got) => Poll::Ready(this.complete(Ok(got))),
            Err(TryRecvError::Closed) => Poll::Ready(this.complete(Err(RecvError))),
            Err(TryRecvError::Empty) => Poll::Pending,
        }
    }
}

impl<T: Send + 'static, I: Instrument> RecvManyFuture<'_, T, I> {
    /// Completion bookkeeping; see [`RecvFuture`]'s counterpart.
    fn complete(&mut self, output: Result<usize, RecvError>) -> Result<usize, RecvError> {
        if self.parked {
            self.parked = false;
            self.rx.inner.core.recv_wakers.unpark(self.rx.waker_id);
        }
        output
    }
}

impl<T: Send + 'static, I: Instrument> Drop for RecvManyFuture<'_, T, I> {
    fn drop(&mut self) {
        // Cancellation safety: see `RecvFuture`'s drop impl.
        if self.parked && !self.rx.inner.core.recv_wakers.unpark(self.rx.waker_id) {
            self.rx.inner.core.wake_recv_one();
        }
    }
}
