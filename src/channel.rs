//! Channel-grade endpoints over any [`WaitFreeQueue`]: typed
//! [`Sender`]/[`Receiver`] pairs with close semantics.
//!
//! The queue facade ends at "register, operate through a handle, drop to
//! release" — the shape the paper's evaluation needs.  Applications consume
//! an MPMC queue as a *channel*: distinct producer/consumer endpoints that
//! can be moved into threads, typed full/empty/closed errors instead of
//! `Result<(), T>` / `Option<T>`, and graceful shutdown.  This module layers
//! exactly that on top of the [`WaitFreeQueue`] trait, so every backend the
//! builder produces — the bounded wCQ (where [`TrySendError::Full`] is a real
//! error), the unbounded wLSCQ and the sharded wLSCQ — serves as a channel
//! without touching algorithm code.
//!
//! # Close protocol
//!
//! A channel closes when the last [`Sender`] drops, the last [`Receiver`]
//! drops, or either side calls `close()` explicitly.  After that:
//!
//! * sends fail fast with [`TrySendError::Closed`] / [`SendError`];
//! * receivers **drain every value sent before the close**, then observe
//!   [`TryRecvError::Closed`] / [`RecvError`].
//!
//! The drain guarantee is exact, not best-effort: a send takes an *in-flight
//! credit* before checking the closed flag (mirroring the pre-close enqueue
//! credit wLSCQ segments use), and a receiver only concludes `Closed` after
//! it observes `closed && in-flight == 0` *and* one final empty dequeue — so
//! every enqueue that passed the closed check is visible to some receiver's
//! final drain, and bounded-memory reclamation (Theorem 5.8) keeps running
//! unchanged underneath.
//!
//! # Threading model
//!
//! Endpoints are [`Send`] but not [`Sync`]: move one into a thread (or task)
//! and operate through `&mut self`; clone it to fan out.  Each endpoint lazily
//! registers its own queue handle on the thread that first uses it — and
//! transparently re-registers if the endpoint migrates — so the per-thread
//! record slots the algorithm needs (Figure 4) follow the endpoints around.
//! Size [`crate::QueueBuilder::threads`] for the peak number of endpoints
//! alive at once.
//!
//! ```
//! use wcq::channel::TryRecvError;
//!
//! let (tx, mut rx) = wcq::builder().threads(4).build_channel::<u64>();
//!
//! let mut tx2 = tx.clone();
//! let producer = std::thread::spawn(move || {
//!     for i in 0..100 {
//!         tx2.send(i).expect("receiver alive");
//!     }
//! });
//! drop(tx); // the clone keeps the channel open until the producer finishes
//!
//! let mut sum = 0;
//! loop {
//!     match rx.try_recv() {
//!         Ok(v) => sum += v,
//!         Err(TryRecvError::Empty) => std::thread::yield_now(),
//!         Err(TryRecvError::Closed) => break, // all senders gone and drained
//!     }
//! }
//! producer.join().unwrap();
//! assert_eq!(sum, (0..100).sum());
//! ```

use std::sync::atomic::Ordering::SeqCst;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize};
use std::sync::{Arc, Mutex};
use std::task::Waker;
use std::thread::ThreadId;
use std::time::{Duration, Instant};

use wcq_atomics::Backoff;
use wcq_core::api::{QueueHandle, WaitFreeQueue};
use wcq_core::metrics::{Counter, Instrument, NoopInstrument};

pub use wcq_core::channel::{
    RecvError, RecvTimeoutError, SendError, SendTimeoutError, TryRecvError, TrySendError,
};

/// A [`Waker`] that unparks the calling thread — the bridge that lets the
/// *sync* timeout waits ([`Receiver::recv_timeout`], [`Sender::send_timeout`]
/// and [`crate::select::recv_any_timeout`]) park in the same
/// [`WakerRegistry`] slots the async futures use, so one notify path serves
/// both worlds.
pub(crate) fn thread_waker() -> Waker {
    struct ThreadUnparker(std::thread::Thread);
    impl std::task::Wake for ThreadUnparker {
        fn wake(self: Arc<Self>) {
            self.0.unpark();
        }
        fn wake_by_ref(self: &Arc<Self>) {
            self.0.unpark();
        }
    }
    Waker::from(Arc::new(ThreadUnparker(std::thread::current())))
}

/// Sleeps until `deadline` (or a wake), returning `false` once the deadline
/// has passed.  `None` means "no deadline": park until woken.
pub(crate) fn park_until(deadline: Option<Instant>) -> bool {
    match deadline {
        None => {
            std::thread::park();
            true
        }
        Some(dl) => {
            let now = Instant::now();
            if now >= dl {
                return false;
            }
            std::thread::park_timeout(dl - now);
            true
        }
    }
}

/// `Instant::now() + timeout` with overflow saturating to "no deadline".
pub(crate) fn deadline_after(timeout: Duration) -> Option<Instant> {
    Instant::now().checked_add(timeout)
}

// --------------------------------------------------------------------------
// Waker registry (shared with the async endpoints)
// --------------------------------------------------------------------------

/// A registry of parked task wakers, one slot per attached async endpoint.
///
/// The sync endpoints never park, but they *notify*: every successful send
/// wakes one parked receiver, every successful receive wakes one parked
/// sender, and a close wakes everyone.  When no async endpoint is attached
/// the notify paths cost one relaxed-ish atomic load (`parked == 0`), so the
/// sync channel pays nothing for its async sibling.
#[derive(Debug, Default)]
pub(crate) struct WakerRegistry {
    /// Number of slots currently holding a registered waker (fast path for
    /// the notify calls).
    parked: AtomicUsize,
    /// `(slot id, parked waker)` per attached endpoint.
    slots: Mutex<Vec<(u64, Option<Waker>)>>,
    next_id: AtomicU64,
}

impl WakerRegistry {
    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<(u64, Option<Waker>)>> {
        self.slots
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Adds an empty slot and returns its id.
    pub(crate) fn attach(&self) -> u64 {
        let id = self.next_id.fetch_add(1, SeqCst);
        self.lock().push((id, None));
        id
    }

    /// Removes a slot (dropping any waker still parked in it).
    pub(crate) fn detach(&self, id: u64) {
        let mut slots = self.lock();
        if let Some(pos) = slots.iter().position(|(sid, _)| *sid == id) {
            if slots.remove(pos).1.is_some() {
                self.parked.fetch_sub(1, SeqCst);
            }
        }
    }

    /// Parks `waker` in slot `id`, replacing any previous one.
    pub(crate) fn park(&self, id: u64, waker: &Waker) {
        let mut slots = self.lock();
        if let Some((_, slot)) = slots.iter_mut().find(|(sid, _)| *sid == id) {
            if slot.replace(waker.clone()).is_none() {
                self.parked.fetch_add(1, SeqCst);
            }
        }
    }

    /// Clears slot `id` without waking (the endpoint made progress itself).
    ///
    /// Returns whether a waker was actually removed.  `false` for a slot
    /// that *was* parked means a notification consumed the waker and has not
    /// been acted on yet — a cancelled future must forward it (see the
    /// future `Drop` impls) or another parked endpoint is stranded.
    pub(crate) fn unpark(&self, id: u64) -> bool {
        if self.parked.load(SeqCst) == 0 {
            // Globally nothing parked, so this slot holds no waker either.
            return false;
        }
        let mut slots = self.lock();
        if let Some((_, slot)) = slots.iter_mut().find(|(sid, _)| *sid == id) {
            if slot.take().is_some() {
                self.parked.fetch_sub(1, SeqCst);
                return true;
            }
        }
        false
    }

    /// Wakes one parked endpoint, if any.  Returns whether a task was woken.
    pub(crate) fn notify_one(&self) -> bool {
        if self.parked.load(SeqCst) == 0 {
            return false;
        }
        let woken = {
            let mut slots = self.lock();
            slots.iter_mut().find_map(|(_, slot)| slot.take())
        };
        if let Some(waker) = woken {
            self.parked.fetch_sub(1, SeqCst);
            waker.wake();
            return true;
        }
        false
    }

    /// Wakes every parked endpoint.  Returns how many tasks were woken.
    pub(crate) fn notify_all(&self) -> usize {
        if self.parked.load(SeqCst) == 0 {
            return 0;
        }
        let woken: Vec<Waker> = {
            let mut slots = self.lock();
            slots
                .iter_mut()
                .filter_map(|(_, slot)| slot.take())
                .collect()
        };
        self.parked.fetch_sub(woken.len(), SeqCst);
        let count = woken.len();
        for waker in woken {
            waker.wake();
        }
        count
    }
}

// --------------------------------------------------------------------------
// Shared channel state
// --------------------------------------------------------------------------

/// State shared by every endpoint of one channel.
///
/// The `I` parameter is the compile-time instrumentation strategy (see
/// [`Instrument`]): with the default [`NoopInstrument`] every telemetry call
/// below monomorphizes to nothing, so the uninstrumented channel pays zero
/// cost for the park/wake/close counters.
pub(crate) struct ChannelCore<T: Send + 'static, I: Instrument = NoopInstrument> {
    queue: Box<dyn WaitFreeQueue<T>>,
    /// Compile-time telemetry strategy shared by every endpoint.
    instrument: I,
    /// Set once by the first close; never cleared.
    closed: AtomicBool,
    /// Live `Sender` + `AsyncSender` endpoints; last drop closes the channel.
    senders: AtomicUsize,
    /// Live `Receiver` + `AsyncReceiver` endpoints; last drop closes too, so
    /// senders into an abandoned channel fail instead of filling it forever.
    receivers: AtomicUsize,
    /// Sends that have taken their pre-close credit but not yet completed
    /// (see [`ChannelCore::try_send`]): a receiver only concludes `Closed`
    /// once this is zero.
    inflight: AtomicUsize,
    /// Parked async receivers: one is woken per successful send, all on close.
    pub(crate) recv_wakers: WakerRegistry,
    /// Parked async senders (bounded backend, full): one is woken per
    /// successful receive, all on close.
    pub(crate) send_wakers: WakerRegistry,
}

impl<T: Send + 'static, I: Instrument> ChannelCore<T, I> {
    /// The backend queue (for hints and diagnostics).
    pub(crate) fn queue(&self) -> &dyn WaitFreeQueue<T> {
        &*self.queue
    }

    pub(crate) fn is_closed(&self) -> bool {
        self.closed.load(SeqCst)
    }

    /// Number of sends currently holding a pre-close in-flight credit (see
    /// [`ChannelCore::try_send`]).  Checker introspection only.
    pub(crate) fn inflight_credits(&self) -> usize {
        self.inflight.load(SeqCst)
    }

    /// Parks `waker` in recv-side slot `id`, recording the park.
    pub(crate) fn park_recv(&self, id: u64, waker: &Waker) {
        self.instrument.record(Counter::ChannelParks, 1);
        self.recv_wakers.park(id, waker);
    }

    /// Parks `waker` in send-side slot `id`, recording the park.
    pub(crate) fn park_send(&self, id: u64, waker: &Waker) {
        self.instrument.record(Counter::ChannelParks, 1);
        self.send_wakers.park(id, waker);
    }

    /// Wakes one parked receiver, recording the wake if one was parked.
    pub(crate) fn wake_recv_one(&self) {
        if self.recv_wakers.notify_one() {
            self.instrument.record(Counter::ChannelWakes, 1);
        }
    }

    /// Wakes every parked receiver, recording how many actually woke.
    pub(crate) fn wake_recv_all(&self) {
        let woken = self.recv_wakers.notify_all();
        if woken > 0 {
            self.instrument.record(Counter::ChannelWakes, woken as u64);
        }
    }

    /// Wakes one parked sender, recording the wake if one was parked.
    pub(crate) fn wake_send_one(&self) {
        if self.send_wakers.notify_one() {
            self.instrument.record(Counter::ChannelWakes, 1);
        }
    }

    /// Wakes every parked sender, recording how many actually woke.
    pub(crate) fn wake_send_all(&self) {
        let woken = self.send_wakers.notify_all();
        if woken > 0 {
            self.instrument.record(Counter::ChannelWakes, woken as u64);
        }
    }

    /// Sets the closed flag and wakes everyone.  Returns `true` for the call
    /// that actually performed the transition.
    pub(crate) fn close(&self) -> bool {
        let transitioned = !self.closed.swap(true, SeqCst);
        if transitioned {
            self.instrument.record(Counter::ChannelCloses, 1);
            self.wake_recv_all();
            self.wake_send_all();
        }
        transitioned
    }

    /// The closed-aware non-blocking send (see the module docs for why the
    /// in-flight credit brackets the closed check *and* the enqueue).
    pub(crate) fn try_send(
        &self,
        handle: &mut dyn QueueHandle<T>,
        value: T,
    ) -> Result<(), TrySendError<T>> {
        // Credit first, closed check second: a receiver reads the flags in
        // the opposite order (`closed` then `inflight`), so under the SeqCst
        // total order it either sees our credit and waits for us, or we see
        // the closed flag and fail without enqueuing.
        self.inflight.fetch_add(1, SeqCst);
        if self.closed.load(SeqCst) {
            self.inflight.fetch_sub(1, SeqCst);
            // A parked receiver may be waiting for exactly this credit to
            // clear before it can conclude `Closed`.
            self.wake_recv_all();
            return Err(TrySendError::Closed(value));
        }
        let outcome = handle.try_enqueue(value);
        self.inflight.fetch_sub(1, SeqCst);
        // If a close raced in while our credit was held, every parked
        // receiver may be blocked on exactly this credit clearing (they
        // re-park on `closed && inflight != 0`), and no later send will come
        // to wake them — broadcast, whatever the enqueue outcome.  A lone
        // `notify_one` here would hand the last pre-close value to one
        // receiver and strand the rest on a closed, drained channel.
        let closed_during = self.closed.load(SeqCst);
        match outcome {
            Ok(()) => {
                if closed_during {
                    self.wake_recv_all();
                } else {
                    self.wake_recv_one();
                }
                Ok(())
            }
            Err(back) => {
                if closed_during {
                    self.wake_recv_all();
                }
                Err(TrySendError::Full(back))
            }
        }
    }

    /// Batch counterpart of [`ChannelCore::try_send`]: one in-flight credit
    /// and one closed check cover the whole batch, and the backend's
    /// specialized [`QueueHandle::enqueue_many`] runs under that bracket.
    /// Accepted elements are drained from the front of `values`; `Ok(0)` with
    /// a non-empty `values` means a bounded backend is full.  `Err` means the
    /// channel was closed before anything in this call was enqueued, so
    /// `values` is untouched.
    ///
    /// The exact-drain close guarantee carries over per element: everything
    /// accepted here was enqueued while the credit was held, so a receiver
    /// that observed `closed` waits for the credit to clear before its final
    /// look and cannot miss any of the batch.
    pub(crate) fn try_send_many(
        &self,
        handle: &mut dyn QueueHandle<T>,
        values: &mut Vec<T>,
    ) -> Result<usize, SendError<()>> {
        self.inflight.fetch_add(1, SeqCst);
        if self.closed.load(SeqCst) {
            self.inflight.fetch_sub(1, SeqCst);
            self.wake_recv_all();
            return Err(SendError(()));
        }
        let accepted = handle.enqueue_many(values);
        self.inflight.fetch_sub(1, SeqCst);
        if self.closed.load(SeqCst) {
            // See `try_send`: parked receivers re-park on `closed &&
            // inflight != 0`, and no later send will wake them.
            self.wake_recv_all();
        } else if accepted == 1 {
            self.wake_recv_one();
        } else if accepted > 1 {
            // Several values landed: every parked receiver may have one to
            // take, so a lone wake would strand the rest.
            self.wake_recv_all();
        }
        Ok(accepted)
    }

    /// The closed-aware non-blocking receive.
    pub(crate) fn try_recv(&self, handle: &mut dyn QueueHandle<T>) -> Result<T, TryRecvError> {
        if let Some(value) = handle.dequeue() {
            self.wake_send_one();
            return Ok(value);
        }
        if self.closed.load(SeqCst) {
            if self.inflight.load(SeqCst) != 0 {
                // A pre-close send is still completing; its value must not be
                // missed, so this is still `Empty`, not `Closed`.
                return Err(TryRecvError::Empty);
            }
            // Final look: every send that passed the closed check finished
            // before the in-flight count we just read hit zero.
            return match handle.dequeue() {
                Some(value) => {
                    self.wake_send_one();
                    Ok(value)
                }
                None => Err(TryRecvError::Closed),
            };
        }
        Err(TryRecvError::Empty)
    }

    /// Batch counterpart of [`ChannelCore::try_recv`]: pulls up to `max`
    /// values through the backend's specialized [`QueueHandle::dequeue_into`]
    /// with one closed/in-flight decision for the whole batch.  Returns the
    /// number appended to `out`; the `Empty`/`Closed` distinction is exactly
    /// the single-op one (`Closed` only after `closed && inflight == 0` and
    /// one final empty look).
    pub(crate) fn try_recv_many(
        &self,
        handle: &mut dyn QueueHandle<T>,
        out: &mut Vec<T>,
        max: usize,
    ) -> Result<usize, TryRecvError> {
        let got = handle.dequeue_into(out, max);
        if got > 0 {
            if got == 1 {
                self.wake_send_one();
            } else {
                self.wake_send_all();
            }
            return Ok(got);
        }
        if self.closed.load(SeqCst) {
            if self.inflight.load(SeqCst) != 0 {
                return Err(TryRecvError::Empty);
            }
            return match handle.dequeue_into(out, max) {
                0 => {
                    // A batch `0` may be a racy observation on some backends
                    // (a run of abandoned tickets can all miss while elements
                    // remain); only the single-op `dequeue`'s `None` — the
                    // authoritative emptiness verdict the exact-drain close
                    // guarantee is built on — may upgrade `Empty` to
                    // `Closed`.
                    match handle.dequeue() {
                        Some(value) => {
                            out.push(value);
                            self.wake_send_one();
                            Ok(1)
                        }
                        None => Err(TryRecvError::Closed),
                    }
                }
                got => {
                    self.wake_send_all();
                    Ok(got)
                }
            };
        }
        Err(TryRecvError::Empty)
    }
}

impl<T: Send + 'static, I: Instrument> std::fmt::Debug for ChannelCore<T, I> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChannelCore")
            .field("backend", &self.queue.name())
            .field("closed", &self.closed)
            .field("senders", &self.senders)
            .field("receivers", &self.receivers)
            .finish()
    }
}

// --------------------------------------------------------------------------
// Lazily-bound per-endpoint queue handle
// --------------------------------------------------------------------------

/// An endpoint's registered queue handle, bound to the thread that last used
/// the endpoint.
///
/// The boxed handle borrows the queue inside the endpoint's
/// `Arc<ChannelCore>`; the lifetime is erased to `'static` so the endpoint
/// can own both.  Soundness rests on two invariants, upheld structurally:
///
/// * endpoints declare the slot field *before* the `Arc`, so the handle drops
///   first and never dangles;
/// * the slot is private and never leaves the endpoint, so the handle cannot
///   outlive the `Arc` through any other path (`mem::forget` leaks both
///   together, which is safe).
struct HandleSlot<T: Send + 'static> {
    bound: Option<(ThreadId, Box<dyn QueueHandle<T> + 'static>)>,
}

impl<T: Send + 'static> HandleSlot<T> {
    const fn new() -> Self {
        Self { bound: None }
    }

    /// Returns the handle bound to the current thread, (re-)registering if
    /// the endpoint is fresh or migrated here from another thread.
    ///
    /// # Panics
    /// Panics when every registration slot of the backend is taken (size
    /// `QueueBuilder::threads` for the peak number of live endpoints); the
    /// message names the backend queue.
    fn bind<'s, I: Instrument>(
        &'s mut self,
        core: &Arc<ChannelCore<T, I>>,
    ) -> &'s mut (dyn QueueHandle<T> + 'static) {
        let me = std::thread::current().id();
        if let Some((owner, _)) = &self.bound {
            if *owner != me {
                // The endpoint migrated: release the old registration (all
                // handle state is tid-keyed shared atomics, so a cross-thread
                // drop is fine) and re-register on this thread.
                self.bound = None;
            }
        }
        if self.bound.is_none() {
            let handle: Box<dyn QueueHandle<T> + '_> = core.queue.handle();
            // SAFETY: lifetime erasure only — see the type-level comment.
            // The handle borrows `core.queue`, which the endpoint's `Arc`
            // keeps alive strictly longer than this slot.
            let handle: Box<dyn QueueHandle<T> + 'static> = unsafe { std::mem::transmute(handle) };
            self.bound = Some((me, handle));
        }
        &mut **self.bound.as_mut().map(|(_, h)| h).expect("just bound")
    }
}

// --------------------------------------------------------------------------
// Sender
// --------------------------------------------------------------------------

/// The producing endpoint of a channel built by
/// [`build_channel`](crate::QueueBuilder::build_channel).
///
/// Cloning re-acquires a registration slot lazily, so every clone can run on
/// its own thread.  Dropping the last sender closes the channel: receivers
/// drain the remaining values, then observe
/// [`Closed`](TryRecvError::Closed).
///
/// ```
/// let (tx, mut rx) = wcq::builder().threads(4).build_channel::<String>();
/// let mut tx = tx; // send takes &mut self
/// tx.send("over any backend".to_string()).unwrap();
/// drop(tx); // last sender gone -> channel closes after the drain
/// assert_eq!(rx.recv().as_deref(), Ok("over any backend"));
/// assert!(rx.recv().is_err(), "closed and drained");
/// ```
pub struct Sender<T: Send + 'static, I: Instrument = NoopInstrument> {
    // Declared before `core`: fields drop in order, so the lifetime-erased
    // handle dies before the Arc that keeps its queue alive.
    slot: HandleSlot<T>,
    /// Lazily-attached `send_wakers` slot used by [`Sender::send_timeout`];
    /// detached on drop.  `None` until the first timed wait.
    timeout_slot: Option<u64>,
    pub(crate) core: Arc<ChannelCore<T, I>>,
}

// SAFETY: the slot's type-erased handle only ever wraps handles of the
// workspace's queues (the safe constructors guarantee it; `from_queue`
// forwards the obligation to its caller), whose entire state is tid-keyed
// shared atomics — the thread-locals involved (tid memo, LL/SC reservation)
// are per-operation hints that tolerate migration.  `&mut self` on every
// operation serializes use, and `bind` re-registers after a migration.
// The instrument is `Send + Sync` by the `Instrument` trait bound.
unsafe impl<T: Send + 'static, I: Instrument> Send for Sender<T, I> {}

impl<T: Send + 'static, I: Instrument> Sender<T, I> {
    /// Attempts to send without waiting.
    ///
    /// Fails with [`TrySendError::Full`] when a *bounded* backend is at
    /// capacity (the unbounded and sharded backends never report it) and with
    /// [`TrySendError::Closed`] once the channel is closed.
    pub fn try_send(&mut self, value: T) -> Result<(), TrySendError<T>> {
        let Self { slot, core, .. } = self;
        let handle = slot.bind(core);
        core.try_send(handle, value)
    }

    /// Sends `value`, waiting (bounded spin, then yielding) while a bounded
    /// backend is full.  Fails only when the channel closes first; the value
    /// comes back inside the error.
    pub fn send(&mut self, value: T) -> Result<(), SendError<T>> {
        let mut item = value;
        let mut backoff = Backoff::new();
        loop {
            match self.try_send(item) {
                Ok(()) => return Ok(()),
                Err(TrySendError::Closed(v)) => return Err(SendError(v)),
                Err(TrySendError::Full(v)) => {
                    item = v;
                    backoff.snooze_or_yield();
                }
            }
        }
    }

    /// Sends every element of `iter`, paying the handle bind, in-flight
    /// credit, and closed check **once per batch** instead of once per
    /// element — the channel face of [`QueueHandle::enqueue_many`].
    ///
    /// Returns the number sent (the whole iterator on success).  When the
    /// channel closes first, the error carries the unsent remainder in order;
    /// everything *not* in the remainder was enqueued before the close and
    /// will be drained by receivers (the exact-drain guarantee is per
    /// element, not per batch).  Like [`Sender::send`], this waits (bounded
    /// spin, then yielding) while a bounded backend is full.
    pub fn send_iter<It>(&mut self, iter: It) -> Result<usize, SendError<Vec<T>>>
    where
        It: IntoIterator<Item = T>,
    {
        let mut buf: Vec<T> = iter.into_iter().collect();
        let total = buf.len();
        if total == 0 {
            return Ok(0);
        }
        let mut backoff = Backoff::new();
        loop {
            let Self { slot, core, .. } = self;
            let handle = slot.bind(core);
            match core.try_send_many(handle, &mut buf) {
                Err(SendError(())) => return Err(SendError(buf)),
                Ok(_) if buf.is_empty() => return Ok(total),
                Ok(accepted) => {
                    if accepted == 0 {
                        // Bounded backend full: let receivers catch up.
                        backoff.snooze_or_yield();
                    } else {
                        backoff = Backoff::new();
                    }
                }
            }
        }
    }

    /// Non-blocking batch send used by `send_iter` and the async variant: one
    /// credit + closed check, then the backend's `enqueue_many`.
    pub(crate) fn try_send_batch(&mut self, values: &mut Vec<T>) -> Result<usize, SendError<()>> {
        let Self { slot, core, .. } = self;
        let handle = slot.bind(core);
        core.try_send_many(handle, values)
    }

    /// Sends `value`, waiting at most `timeout` while a bounded backend is
    /// full.
    ///
    /// Unlike [`Sender::send`]'s spin-then-yield loop, the wait here *parks*:
    /// the sender deposits a thread-unparking waker in the same
    /// `send_wakers` registry slot the async sender uses, so the receive
    /// path's existing wake hook ends the wait with no polling.  The value
    /// always comes back inside the error — a timed-out send has **not**
    /// enqueued it (there is no accepted-but-also-returned state), so
    /// retrying cannot duplicate.
    ///
    /// A zero `timeout` degrades to [`Sender::try_send`] with `Full` mapped
    /// to `Timeout`.
    pub fn send_timeout(&mut self, value: T, timeout: Duration) -> Result<(), SendTimeoutError<T>> {
        let mut item = match self.try_send(value) {
            Ok(()) => return Ok(()),
            Err(TrySendError::Closed(v)) => return Err(SendTimeoutError::Closed(v)),
            Err(TrySendError::Full(v)) => v,
        };
        let deadline = deadline_after(timeout);
        let id = self.send_slot_id();
        let waker = thread_waker();
        let outcome = loop {
            // Park the waker *before* re-checking: a receive that races in
            // between consumes the waker and unparks this thread, so the
            // park below returns immediately instead of losing the wake.
            self.core.park_send(id, &waker);
            match self.try_send(item) {
                Ok(()) => break Ok(()),
                Err(TrySendError::Closed(v)) => break Err(SendTimeoutError::Closed(v)),
                Err(TrySendError::Full(v)) => item = v,
            }
            if !park_until(deadline) {
                break Err(SendTimeoutError::Timeout(item));
            }
        };
        // Settle the slot: `false` after the unconditional park above means
        // a notification consumed our waker since the last look.  Its free
        // capacity may belong to another parked sender now, so forward it —
        // a spurious wake is harmless, a swallowed one strands a peer.
        if !self.core.send_wakers.unpark(id) {
            self.core.wake_send_one();
        }
        outcome
    }

    /// The endpoint's cached `send_wakers` slot, attached on first use.
    fn send_slot_id(&mut self) -> u64 {
        *self
            .timeout_slot
            .get_or_insert_with(|| self.core.send_wakers.attach())
    }

    /// Closes the channel: all senders fail fast from now on, receivers drain
    /// what was sent before the close and then observe `Closed`.  Returns
    /// `true` for the call that actually closed (idempotent otherwise).
    pub fn close(&self) -> bool {
        self.core.close()
    }

    /// `true` once the channel is closed (by any endpoint, or by the last
    /// endpoint of either class dropping).
    pub fn is_closed(&self) -> bool {
        self.core.is_closed()
    }

    /// Display name of the backend queue (e.g. `"wLSCQ"`).
    pub fn backend_name(&self) -> &'static str {
        self.core.queue().name()
    }

    /// `true` when `other` is an endpoint of the same channel.
    pub fn same_channel(&self, other: &Receiver<T, I>) -> bool {
        Arc::ptr_eq(&self.core, &other.core)
    }
}

impl<T: Send + 'static, I: Instrument> Clone for Sender<T, I> {
    fn clone(&self) -> Self {
        self.core.senders.fetch_add(1, SeqCst);
        Self {
            slot: HandleSlot::new(),
            timeout_slot: None,
            core: Arc::clone(&self.core),
        }
    }
}

impl<T: Send + 'static, I: Instrument> Drop for Sender<T, I> {
    fn drop(&mut self) {
        if let Some(id) = self.timeout_slot.take() {
            // `send_timeout` settles its waker before returning, so the slot
            // is empty here — this only releases the registry entry.
            self.core.send_wakers.detach(id);
        }
        if self.core.senders.fetch_sub(1, SeqCst) == 1 {
            self.core.close();
        }
    }
}

impl<T: Send + 'static, I: Instrument> std::fmt::Debug for Sender<T, I> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sender")
            .field("backend", &self.core.queue.name())
            .field("closed", &self.core.is_closed())
            .finish()
    }
}

// --------------------------------------------------------------------------
// Receiver
// --------------------------------------------------------------------------

/// The consuming endpoint of a channel built by
/// [`build_channel`](crate::QueueBuilder::build_channel).
///
/// Channels are MPMC: receivers clone just like senders, and every value goes
/// to exactly one receiver.  After a close, receivers drain all remaining
/// pre-close values before reporting [`TryRecvError::Closed`] — the queue's
/// bounded-memory reclamation keeps running through the drain.
///
/// ```
/// let (tx, rx) = wcq::builder().threads(4).build_channel::<u64>();
/// let (mut tx, mut rx) = (tx, rx);
/// tx.send(1).unwrap();
/// tx.send(2).unwrap();
/// tx.close();
/// assert!(tx.send(3).is_err(), "post-close sends fail fast");
/// // The receiver still drains everything sent before the close...
/// assert_eq!((&mut rx).collect::<Vec<_>>(), vec![1, 2]);
/// // ...and only then reports the closure.
/// assert!(rx.recv().is_err());
/// ```
pub struct Receiver<T: Send + 'static, I: Instrument = NoopInstrument> {
    // Field order: see `Sender`.
    slot: HandleSlot<T>,
    /// Lazily-attached `recv_wakers` slot used by [`Receiver::recv_timeout`]
    /// and [`crate::select::recv_any_timeout`]; detached on drop.
    timeout_slot: Option<u64>,
    pub(crate) core: Arc<ChannelCore<T, I>>,
}

// SAFETY: identical argument to `Sender`'s impl.
unsafe impl<T: Send + 'static, I: Instrument> Send for Receiver<T, I> {}

impl<T: Send + 'static, I: Instrument> Receiver<T, I> {
    /// Attempts to receive without waiting.  [`TryRecvError::Empty`] means a
    /// later attempt can succeed; [`TryRecvError::Closed`] is final.
    pub fn try_recv(&mut self) -> Result<T, TryRecvError> {
        let Self { slot, core, .. } = self;
        let handle = slot.bind(core);
        core.try_recv(handle)
    }

    /// Receives a value, waiting (bounded spin, then yielding) while the
    /// channel is empty.  Fails only once the channel is closed *and* fully
    /// drained.
    pub fn recv(&mut self) -> Result<T, RecvError> {
        let mut backoff = Backoff::new();
        loop {
            match self.try_recv() {
                Ok(value) => return Ok(value),
                Err(TryRecvError::Closed) => return Err(RecvError),
                Err(TryRecvError::Empty) => backoff.snooze_or_yield(),
            }
        }
    }

    /// Receives a value, waiting at most `timeout` while the channel is
    /// empty.
    ///
    /// Unlike [`Receiver::recv`]'s spin-then-yield loop, the wait here
    /// *parks*: the receiver deposits a thread-unparking waker in the same
    /// `recv_wakers` registry slot the async receiver uses, so the send
    /// path's existing wake hook (and close's wake-all) ends the wait with
    /// no polling.  Three outcomes:
    ///
    /// * `Ok(value)` — a value arrived within the deadline;
    /// * [`RecvTimeoutError::Timeout`] — the deadline passed with the channel
    ///   still empty.  **No element was consumed**: a timed-out receive never
    ///   dequeues-and-drops, so the exact-drain close guarantee survives any
    ///   number of timeouts racing the traffic;
    /// * [`RecvTimeoutError::Closed`] — closed *and* fully drained.  Pending
    ///   pre-close values are always handed out first, deadline or not.
    ///
    /// A zero `timeout` degrades to [`Receiver::try_recv`] with `Empty`
    /// mapped to `Timeout`.
    pub fn recv_timeout(&mut self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        match self.try_recv() {
            Ok(v) => return Ok(v),
            Err(TryRecvError::Closed) => return Err(RecvTimeoutError::Closed),
            Err(TryRecvError::Empty) => {}
        }
        let deadline = deadline_after(timeout);
        let id = self.recv_slot_id();
        let waker = thread_waker();
        let outcome = loop {
            // Park the waker *before* re-checking: a send that races in
            // between consumes the waker and unparks this thread, so the
            // park below returns immediately instead of losing the wake.
            self.core.park_recv(id, &waker);
            match self.try_recv() {
                Ok(v) => break Ok(v),
                Err(TryRecvError::Closed) => break Err(RecvTimeoutError::Closed),
                Err(TryRecvError::Empty) => {}
            }
            if !park_until(deadline) {
                break Err(RecvTimeoutError::Timeout);
            }
        };
        // Settle the slot: `false` after the unconditional park above means
        // a notification consumed our waker since the last look.  The value
        // it announced may belong to another parked receiver, so forward it
        // — a spurious wake is harmless, a swallowed one strands a peer.
        if !self.core.recv_wakers.unpark(id) {
            self.core.wake_recv_one();
        }
        outcome
    }

    /// The endpoint's cached `recv_wakers` slot, attached on first use.
    /// Shared with the multi-channel select (`crate::select`), which parks
    /// one waker per participating receiver through this same slot.
    pub(crate) fn recv_slot_id(&mut self) -> u64 {
        *self
            .timeout_slot
            .get_or_insert_with(|| self.core.recv_wakers.attach())
    }

    /// Receives up to `max` values into `out` with one handle bind and one
    /// closed/in-flight decision per batch — the channel face of
    /// [`QueueHandle::dequeue_into`].
    ///
    /// Blocks like [`Receiver::recv`] until at least one value is available,
    /// then returns however many the backend yielded in one batch (at most
    /// `max`; fewer does **not** mean the channel is empty).  Fails only once
    /// the channel is closed *and* fully drained.  `max == 0` returns `Ok(0)`
    /// immediately.
    pub fn recv_many(&mut self, out: &mut Vec<T>, max: usize) -> Result<usize, RecvError> {
        if max == 0 {
            return Ok(0);
        }
        let mut backoff = Backoff::new();
        loop {
            let Self { slot, core, .. } = self;
            let handle = slot.bind(core);
            match core.try_recv_many(handle, out, max) {
                Ok(got) => return Ok(got),
                Err(TryRecvError::Closed) => return Err(RecvError),
                Err(TryRecvError::Empty) => backoff.snooze_or_yield(),
            }
        }
    }

    /// Closes the channel from the consuming side (e.g. a worker pool
    /// shutting down): senders fail fast, and the remaining pre-close values
    /// stay drainable.  Returns `true` for the transitioning call.
    pub fn close(&self) -> bool {
        self.core.close()
    }

    /// `true` once the channel is closed.
    pub fn is_closed(&self) -> bool {
        self.core.is_closed()
    }

    /// Non-blocking batch receive: pulls up to `max` values into `out` with
    /// one closed/in-flight decision for the whole batch.  Returns the number
    /// appended; [`TryRecvError::Empty`] means a later attempt can succeed,
    /// [`TryRecvError::Closed`] is final (closed *and* drained).
    pub fn try_recv_many(&mut self, out: &mut Vec<T>, max: usize) -> Result<usize, TryRecvError> {
        if max == 0 {
            return Ok(0);
        }
        let Self { slot, core, .. } = self;
        let handle = slot.bind(core);
        core.try_recv_many(handle, out, max)
    }

    /// Cheap, racy emptiness hint of the backend queue (see
    /// [`WaitFreeQueue::is_empty_hint`]); the async receiver uses it to
    /// decide whether parking is worthwhile.
    pub fn is_empty_hint(&self) -> bool {
        self.core.queue().is_empty_hint()
    }

    /// Whether the backend actually implements the emptiness hint (see
    /// [`WaitFreeQueue::has_empty_hint`]).  When `false`,
    /// [`Receiver::is_empty_hint`] is a constant conservative `false` — "no
    /// information", not "non-empty" — and the async receiver parks without
    /// hint-gated retries.
    pub fn has_empty_hint(&self) -> bool {
        self.core.queue().has_empty_hint()
    }

    /// Display name of the backend queue (e.g. `"wLSCQ"`).
    pub fn backend_name(&self) -> &'static str {
        self.core.queue().name()
    }

    /// Checker/test introspection: the number of sends currently holding a
    /// pre-close in-flight credit.  The close protocol's balance invariant
    /// says this must be zero once every send call has returned — the
    /// `wcq-check` explorer asserts it after quiescence.  Not part of the
    /// stable API.
    #[doc(hidden)]
    pub fn debug_inflight_credits(&self) -> usize {
        self.core.inflight_credits()
    }
}

impl<T: Send + 'static, I: Instrument> Clone for Receiver<T, I> {
    fn clone(&self) -> Self {
        self.core.receivers.fetch_add(1, SeqCst);
        Self {
            slot: HandleSlot::new(),
            timeout_slot: None,
            core: Arc::clone(&self.core),
        }
    }
}

impl<T: Send + 'static, I: Instrument> Drop for Receiver<T, I> {
    fn drop(&mut self) {
        if let Some(id) = self.timeout_slot.take() {
            // The timed waits settle their waker before returning, so the
            // slot is empty here — this only releases the registry entry.
            self.core.recv_wakers.detach(id);
        }
        if self.core.receivers.fetch_sub(1, SeqCst) == 1 {
            // No receiver can ever drain the channel again: close it so
            // senders fail fast instead of filling an abandoned queue.
            self.core.close();
        }
    }
}

/// Receivers iterate the channel to completion: the iterator blocks like
/// [`Receiver::recv`] and ends when the channel is closed and drained.
impl<T: Send + 'static, I: Instrument> Iterator for &mut Receiver<T, I> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.recv().ok()
    }
}

impl<T: Send + 'static, I: Instrument> std::fmt::Debug for Receiver<T, I> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Receiver")
            .field("backend", &self.core.queue.name())
            .field("closed", &self.core.is_closed())
            .finish()
    }
}

// --------------------------------------------------------------------------
// Construction
// --------------------------------------------------------------------------

/// Internal safe constructor: the builder finishers call this with the
/// workspace's own queues, whose handles satisfy the migration contract.
pub(crate) fn channel_over<T: Send + 'static>(
    queue: Box<dyn WaitFreeQueue<T>>,
) -> (Sender<T>, Receiver<T>) {
    channel_over_instrumented(queue, NoopInstrument)
}

/// [`channel_over`] with an explicit instrumentation strategy: the
/// instrumented builder finisher calls this so the channel layer records
/// park/wake/close events into the same counter set as the queue underneath.
pub(crate) fn channel_over_instrumented<T: Send + 'static, I: Instrument>(
    queue: Box<dyn WaitFreeQueue<T>>,
    instrument: I,
) -> (Sender<T, I>, Receiver<T, I>) {
    let core = Arc::new(ChannelCore {
        queue,
        instrument,
        closed: AtomicBool::new(false),
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
        inflight: AtomicUsize::new(0),
        recv_wakers: WakerRegistry::default(),
        send_wakers: WakerRegistry::default(),
    });
    (
        Sender {
            slot: HandleSlot::new(),
            timeout_slot: None,
            core: Arc::clone(&core),
        },
        Receiver {
            slot: HandleSlot::new(),
            timeout_slot: None,
            core,
        },
    )
}

/// Builds a channel over an arbitrary [`WaitFreeQueue`] implementation.
///
/// Prefer [`build_channel`](crate::QueueBuilder::build_channel), which covers
/// every queue this workspace ships.  This is the extension point for
/// third-party implementors of the trait.
///
/// # Safety
/// The endpoints are [`Send`], so the caller must guarantee that every handle
/// `queue` hands out remains valid when *moved* between threads — used by at
/// most one thread at a time, possibly dropped on a thread other than the
/// registering one.  Handles whose state lives in tid-keyed shared memory
/// (every queue in this workspace) qualify; handles relying on genuinely
/// thread-bound state (e.g. `Rc` internals or OS TLS keyed by the registering
/// thread) do not.
pub unsafe fn from_queue<T: Send + 'static>(
    queue: Box<dyn WaitFreeQueue<T>>,
) -> (Sender<T>, Receiver<T>) {
    channel_over(queue)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unbounded_pair() -> (Sender<u64>, Receiver<u64>) {
        crate::builder()
            .capacity_order(4)
            .threads(4)
            .build_channel::<u64>()
    }

    #[test]
    fn round_trip_and_empty() {
        let (mut tx, mut rx) = unbounded_pair();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx.try_send(9).unwrap();
        assert_eq!(rx.try_recv(), Ok(9));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn last_sender_drop_closes_after_drain() {
        let (mut tx, mut rx) = unbounded_pair();
        tx.send(1).unwrap();
        let mut tx2 = tx.clone();
        drop(tx);
        // A live clone keeps the channel open.
        assert!(!rx.is_closed());
        tx2.send(2).unwrap();
        drop(tx2);
        assert!(rx.is_closed());
        // Both pre-close values drain before Closed appears.
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Closed));
    }

    #[test]
    fn explicit_close_fails_senders_fast() {
        let (mut tx, mut rx) = unbounded_pair();
        tx.send(1).unwrap();
        assert!(rx.close(), "first close transitions");
        assert!(!tx.close(), "second close is idempotent");
        assert_eq!(tx.try_send(2), Err(TrySendError::Closed(2)));
        assert_eq!(tx.send(3), Err(SendError(3)));
        assert_eq!(rx.recv(), Ok(1), "pre-close value still drains");
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn last_receiver_drop_closes_for_senders() {
        let (mut tx, rx) = unbounded_pair();
        let rx2 = rx.clone();
        drop(rx);
        assert!(!tx.is_closed());
        drop(rx2);
        assert!(tx.is_closed());
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn bounded_backend_reports_full_then_recovers() {
        let (mut tx, mut rx) = crate::builder()
            .capacity_order(1) // capacity 2
            .threads(2)
            .backend(crate::ChannelBackend::Bounded)
            .build_channel::<u64>();
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        let err = tx.try_send(3).unwrap_err();
        assert!(matches!(err, TrySendError::Full(3)));
        assert!(!err.is_closed());
        assert_eq!(rx.try_recv(), Ok(1));
        tx.try_send(3).unwrap();
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Ok(3));
    }

    #[test]
    fn endpoints_move_between_threads_and_rebind() {
        let (tx, mut rx) = unbounded_pair();
        let handle = std::thread::spawn(move || {
            let mut tx = tx;
            tx.send(7).unwrap();
            // Moving back out proves the endpoint is a plain Send value.
            tx
        });
        let mut tx = handle.join().unwrap();
        assert_eq!(rx.recv(), Ok(7));
        tx.send(8).unwrap(); // re-binds on this thread after the migration
        assert_eq!(rx.recv(), Ok(8));
    }

    #[test]
    fn receiver_iterates_to_close() {
        let (mut tx, mut rx) = unbounded_pair();
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        drop(tx);
        assert_eq!((&mut rx).collect::<Vec<_>>(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn send_iter_and_recv_many_round_trip() {
        let (mut tx, mut rx) = unbounded_pair();
        assert_eq!(tx.send_iter(0..10), Ok(10));
        assert_eq!(tx.send_iter(std::iter::empty()), Ok(0));
        let mut out = Vec::new();
        let mut got = 0;
        while got < 10 {
            got += rx.recv_many(&mut out, 4).unwrap();
        }
        assert_eq!(out, (0..10).collect::<Vec<_>>(), "batches preserve FIFO");
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn send_iter_after_close_returns_the_whole_batch() {
        let (mut tx, rx) = unbounded_pair();
        rx.close();
        let err = tx.send_iter(vec![1, 2, 3]).unwrap_err();
        assert_eq!(err.0, vec![1, 2, 3], "nothing was enqueued post-close");
    }

    #[test]
    fn recv_many_drains_pre_close_batches_exactly_once() {
        let (mut tx, mut rx) = unbounded_pair();
        assert_eq!(tx.send_iter(0..7), Ok(7));
        tx.close();
        let mut out = Vec::new();
        while let Ok(n) = rx.recv_many(&mut out, 3) {
            assert!(n > 0);
        }
        assert_eq!(out, (0..7).collect::<Vec<_>>(), "exact drain, in order");
    }

    #[test]
    fn send_iter_waits_out_a_full_bounded_backend() {
        let (mut tx, mut rx) = crate::builder()
            .capacity_order(2) // capacity 4
            .threads(2)
            .backend(crate::ChannelBackend::Bounded)
            .build_channel::<u64>();
        // 12 values through a 4-slot channel: the sender must block until the
        // consumer thread makes room, batch by batch.
        let consumer = std::thread::spawn(move || {
            let mut out = Vec::new();
            while out.len() < 12 {
                let mut batch = Vec::new();
                match rx.recv_many(&mut batch, 5) {
                    Ok(_) => out.extend(batch),
                    Err(RecvError) => break,
                }
            }
            out
        });
        assert_eq!(tx.send_iter(0..12), Ok(12));
        drop(tx);
        assert_eq!(consumer.join().unwrap(), (0..12).collect::<Vec<_>>());
    }

    #[test]
    fn same_channel_links_the_pair() {
        let (tx, rx) = unbounded_pair();
        let (tx2, rx2) = unbounded_pair();
        assert!(tx.same_channel(&rx));
        assert!(!tx.same_channel(&rx2));
        assert!(!tx2.same_channel(&rx));
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (mut tx, mut rx) = unbounded_pair();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout),
            "empty channel times out without consuming anything"
        );
        tx.send(11).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Ok(11));
        // Zero timeout degrades to a try_recv.
        assert_eq!(
            rx.recv_timeout(Duration::ZERO),
            Err(RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn recv_timeout_is_woken_by_a_racing_send() {
        let (tx, mut rx) = unbounded_pair();
        let sender = std::thread::spawn(move || {
            let mut tx = tx;
            std::thread::sleep(Duration::from_millis(20));
            tx.send(7).unwrap();
        });
        // Far longer than the send delay: a parked receiver must be *woken*,
        // not sit out the deadline.
        let start = Instant::now();
        assert_eq!(rx.recv_timeout(Duration::from_secs(30)), Ok(7));
        assert!(start.elapsed() < Duration::from_secs(10));
        sender.join().unwrap();
    }

    #[test]
    fn recv_timeout_drains_exactly_then_reports_closed() {
        let (mut tx, mut rx) = unbounded_pair();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        // Post-close, pending values come out before Closed — deadline or not.
        assert_eq!(rx.recv_timeout(Duration::ZERO), Ok(1));
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Ok(2));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Closed)
        );
    }

    #[test]
    fn recv_timeout_is_woken_by_close() {
        let (tx, mut rx) = unbounded_pair();
        let closer = std::thread::spawn(move || {
            let tx = tx;
            std::thread::sleep(Duration::from_millis(20));
            drop(tx);
        });
        let start = Instant::now();
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(30)),
            Err(RecvTimeoutError::Closed)
        );
        assert!(start.elapsed() < Duration::from_secs(10));
        closer.join().unwrap();
    }

    #[test]
    fn send_timeout_times_out_full_then_recovers() {
        let (mut tx, mut rx) = crate::builder()
            .capacity_order(1) // capacity 2
            .threads(2)
            .backend(crate::ChannelBackend::Bounded)
            .build_channel::<u64>();
        tx.send_timeout(1, Duration::ZERO).unwrap();
        tx.send_timeout(2, Duration::ZERO).unwrap();
        assert_eq!(
            tx.send_timeout(3, Duration::from_millis(5)),
            Err(SendTimeoutError::Timeout(3)),
            "the value comes back un-enqueued"
        );
        assert_eq!(rx.try_recv(), Ok(1));
        tx.send_timeout(3, Duration::from_millis(5)).unwrap();
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Ok(3));
        rx.close();
        assert_eq!(
            tx.send_timeout(4, Duration::from_millis(5)),
            Err(SendTimeoutError::Closed(4))
        );
    }

    #[test]
    fn send_timeout_is_woken_by_a_racing_receive() {
        let (mut tx, rx) = crate::builder()
            .capacity_order(1) // capacity 2
            .threads(2)
            .backend(crate::ChannelBackend::Bounded)
            .build_channel::<u64>();
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        let receiver = std::thread::spawn(move || {
            let mut rx = rx;
            std::thread::sleep(Duration::from_millis(20));
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.recv(), Ok(3));
        });
        let start = Instant::now();
        tx.send_timeout(3, Duration::from_secs(30)).unwrap();
        assert!(start.elapsed() < Duration::from_secs(10));
        receiver.join().unwrap();
    }

    #[test]
    fn waker_registry_counts_parks_and_notifies() {
        use std::sync::atomic::AtomicUsize;
        use std::task::{Wake, Waker};

        struct CountingWake(AtomicUsize);
        impl Wake for CountingWake {
            fn wake(self: Arc<Self>) {
                self.0.fetch_add(1, SeqCst);
            }
        }

        let reg = WakerRegistry::default();
        let count = Arc::new(CountingWake(AtomicUsize::new(0)));
        let waker = Waker::from(Arc::clone(&count));

        let a = reg.attach();
        let b = reg.attach();
        reg.notify_one(); // nobody parked: no-op
        assert_eq!(count.0.load(SeqCst), 0);

        reg.park(a, &waker);
        reg.park(b, &waker);
        reg.notify_one();
        assert_eq!(count.0.load(SeqCst), 1, "wake one, not all");
        reg.notify_all();
        assert_eq!(count.0.load(SeqCst), 2, "remaining parked waker woken");
        reg.notify_all();
        assert_eq!(count.0.load(SeqCst), 2, "nothing left to wake");

        reg.park(a, &waker);
        reg.unpark(a);
        reg.notify_all();
        assert_eq!(count.0.load(SeqCst), 2, "unpark removes without waking");

        reg.park(b, &waker);
        reg.detach(b);
        reg.notify_all();
        assert_eq!(count.0.load(SeqCst), 2, "detach drops the parked waker");
        reg.detach(a);
    }
}
