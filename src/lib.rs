//! Workspace umbrella crate: hosts runnable examples and cross-crate integration tests.
pub use wcq_core as core_queue;
