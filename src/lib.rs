//! # wcq — the umbrella facade for the wCQ reproduction
//!
//! One crate, one construction path, one queue abstraction:
//!
//! * [`builder`] / [`QueueBuilder`] — the single way applications construct
//!   queues, replacing the per-crate `new` / `with_config` /
//!   `with_config_and_cache` constructor zoo;
//! * [`WaitFreeQueue`] / [`QueueHandle`] — the object-safe trait pair every
//!   queue in the workspace implements (wCQ, wLSCQ, SCQ and the six §6
//!   baselines), re-exported from [`wcq_core::api`];
//! * RAII registration — handles acquired via `queue.handle()` auto-register
//!   the calling thread (O(1) re-entry through a thread-local tid memo) and
//!   release their record slot on drop;
//! * [`channel`] / [`async_channel`] — typed [`Sender`]/[`Receiver`] (and
//!   [`AsyncSender`]/[`AsyncReceiver`]) endpoints with close semantics over
//!   any backend, built by the
//!   [`build_channel`](QueueBuilder::build_channel) /
//!   [`build_async`](QueueBuilder::build_async) finishers.
//!
//! ## Quickstart
//!
//! ```
//! use wcq::{QueueHandle, WaitFreeQueue};
//!
//! // A bounded wait-free queue: capacity 2^8, up to 4 registered threads.
//! let queue = wcq::builder()
//!     .capacity_order(8)
//!     .threads(4)
//!     .build_bounded::<u64>();
//!
//! std::thread::scope(|s| {
//!     s.spawn(|| {
//!         let mut h = queue.handle(); // registers; drop releases the slot
//!         for i in 0..1000 {
//!             h.enqueue(i);
//!         }
//!     });
//!     s.spawn(|| {
//!         let mut h = queue.handle();
//!         let mut got = 0;
//!         while got < 1000 {
//!             if h.dequeue().is_some() {
//!                 got += 1;
//!             }
//!         }
//!     });
//! });
//! ```
//!
//! The same builder produces the unbounded wLSCQ queue (linked wCQ segments
//! with hazard-pointer recycling), its sharded high-thread-count variant and
//! the LL/SC hardware model:
//!
//! ```
//! use wcq::ShardPolicy;
//!
//! let unbounded = wcq::builder()
//!     .capacity_order(8)   // per-segment capacity
//!     .threads(8)
//!     .segment_cache(8)    // drained segments kept for reuse
//!     .build_unbounded::<String>();
//! let mut h = unbounded.handle();
//! h.enqueue("never blocks, never fails".to_string());
//!
//! // Four independent wLSCQ shards behind one facade: least-loaded enqueue
//! // routing, home-shard-first work-stealing dequeue.
//! let sharded = wcq::builder()
//!     .capacity_order(8)
//!     .threads(8)
//!     .shards(4)
//!     .shard_policy(ShardPolicy::LeastLoaded)
//!     .build_sharded::<u64>();
//! # drop(sharded);
//!
//! let ppc = wcq::builder().capacity_order(6).threads(2).llsc().build_bounded::<u64>();
//! # drop(ppc);
//! ```
//!
//! Consumed as a *channel*, the same backends gain `Send` endpoints, typed
//! errors and graceful shutdown — no scoped threads, no manual registration:
//!
//! ```
//! let (tx, rx) = wcq::builder().threads(4).build_channel::<u64>();
//!
//! let mut tx2 = tx.clone();
//! let worker = std::thread::spawn(move || tx2.send(7));
//! drop(tx); // the clone keeps the channel open until the worker is done
//!
//! let mut rx = rx;
//! assert_eq!(rx.recv(), Ok(7));
//! assert!(rx.recv().is_err(), "last sender gone: closed after the drain");
//! worker.join().unwrap().unwrap();
//! ```
//!
//! The async endpoints ([`build_async`](QueueBuilder::build_async)) park the
//! task instead of blocking — a send wakes one parked receiver, a close
//! wakes all — and run on any executor (this repo's tests use the
//! dependency-free `wcq_harness::exec::block_on`).
//!
//! ## Migrating from the constructor zoo
//!
//! | Before (≤ PR 2) | Now |
//! |---|---|
//! | `WcqQueue::new(order, threads)` | `wcq::builder().capacity_order(order).threads(threads).build_bounded()` |
//! | `WcqQueue::with_config(order, threads, cfg)` | `…().config(cfg).build_bounded()` |
//! | `WcqQueue::<_, LlscFamily>::new(order, threads)` | `…().llsc().build_bounded()` |
//! | `UnboundedWcq::new(seg_order, threads)` | `…().build_unbounded()` |
//! | `UnboundedWcq::with_config_and_cache(o, t, cfg, n)` | `…().config(cfg).segment_cache(n).build_unbounded()` |
//! | `WcqRing::new(order, threads)` | `…().build_ring()` |
//! | `queue.register().expect(…)` | `queue.handle()` (RAII, memoized re-entry) |
//! | hand-rolled closed-flag channel over `WcqQueue` | `…().backend(ChannelBackend::Bounded).build_channel()` |
//! | `h.try_enqueue(v) == Err(v)` / `h.dequeue() == None` | `TrySendError::{Full, Closed}` / `TryRecvError::{Empty, Closed}` |
//! | spin-wait for consumers (`Backoff` loops) | `build_async()` + `AsyncReceiver::recv().await` (park/wake) |
//! | hand-tuned `patience(e, d)` per workload | `patience_mode(PatienceMode::Adaptive(AdaptivePatience::default()))` (self-tuning) |
//! | deadline loops over `try_recv()` + `Instant` checks | [`Receiver::recv_timeout`] / [`Sender::send_timeout`] (parked, not polled) |
//! | one thread (or task) per drained channel | [`select::recv_any`] / [`select::recv_any_timeout`] — one waker parked across all lanes |
//!
//! The per-crate constructors remain available inside `wcq-core` /
//! `wcq-unbounded` for the algorithm-level tests, but application code —
//! including this repo's examples, harness and benchmarks — constructs
//! exclusively through the builder.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod async_channel;
pub mod channel;
pub mod select;

pub use wcq_atomics as atomics;
pub use wcq_baselines as baselines;
pub use wcq_core as core_queue;
pub use wcq_reclaim as reclaim;
pub use wcq_unbounded as unbounded;

pub use async_channel::{AsyncReceiver, AsyncSender};
pub use channel::{
    Receiver, RecvError, RecvTimeoutError, SendError, SendTimeoutError, Sender, TryRecvError,
    TrySendError,
};
pub use select::{recv_any, recv_any_timeout, RecvAny};
pub use wcq_core::adaptive::{AdaptivePatience, PatienceMode};
pub use wcq_core::api::{tid_memo, QueueHandle, WaitFreeQueue};
pub use wcq_core::metrics::{
    Counter, CounterSet, CountingInstrument, HistogramSnapshot, Instrument, LatencyHistogram,
    MetricsSnapshot, NoopInstrument,
};
pub use wcq_core::scq::ScqQueue;
pub use wcq_core::wcq::{
    CellFamily, LlscFamily, NativeFamily, WcqConfig, WcqQueue, WcqQueueHandle, WcqRing, WcqStats,
};
pub use wcq_unbounded::{
    CacheStats, SegmentStats, ShardPolicy, ShardedWcq, ShardedWcqHandle, UnboundedWcq,
    UnboundedWcqHandle, DEFAULT_SEGMENT_CACHE,
};

use core::marker::PhantomData;

/// Starts building a queue with the default configuration: capacity
/// 2<sup>10</sup> (per segment for unbounded queues), 8 registration slots,
/// the paper's §6 patience defaults and the native double-width-CAS hardware
/// model.
///
/// ```
/// let q = wcq::builder().capacity_order(12).threads(8).build_bounded::<u64>();
/// assert_eq!(q.capacity(), 4096);
/// ```
pub fn builder() -> QueueBuilder<NativeFamily> {
    QueueBuilder {
        capacity_order: 10,
        threads: 8,
        config: WcqConfig::default(),
        segment_cache: DEFAULT_SEGMENT_CACHE,
        shards: 1,
        shard_policy: ShardPolicy::default(),
        backend: None,
        instr: NoopInstrument,
        _family: PhantomData,
    }
}

/// Which queue shape backs a channel built by
/// [`build_channel`](QueueBuilder::build_channel) /
/// [`build_async`](QueueBuilder::build_async).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelBackend {
    /// The bounded wCQ: fixed capacity, so [`TrySendError::Full`] is a real
    /// error and `send` exerts backpressure.
    Bounded,
    /// The unbounded wLSCQ (the default): sends never report full.
    Unbounded,
    /// The sharded wLSCQ (the default when
    /// [`shards`](QueueBuilder::shards)` > 1`): unbounded, with the builder's
    /// shard count and routing policy.
    Sharded,
}

/// The one construction path for every wCQ-family queue.
///
/// Obtained from [`builder`]; finished with
/// [`build_bounded`](QueueBuilder::build_bounded) (a fixed-capacity
/// [`WcqQueue`], Theorem 5.8's bounded-memory queue),
/// [`build_unbounded`](QueueBuilder::build_unbounded) (the wLSCQ
/// [`UnboundedWcq`] of linked segments),
/// [`build_sharded`](QueueBuilder::build_sharded) (a [`ShardedWcq`] of
/// [`shards`](QueueBuilder::shards) independent wLSCQ shards with
/// [`shard_policy`](QueueBuilder::shard_policy) routing) or
/// [`build_ring`](QueueBuilder::build_ring) (a raw index ring, the Figure 2
/// indirection building block).
///
/// The hardware model is part of the builder's type:
/// [`llsc`](QueueBuilder::llsc) switches from the native double-width-CAS
/// family to the emulated LL/SC construction of §4.
///
/// So is the observability strategy:
/// [`instrument`](QueueBuilder::instrument) switches from the default
/// [`NoopInstrument`] (telemetry compiled out entirely) to a live
/// [`CountingInstrument`] whose shared [`CounterSet`] every layer built by
/// the finishers — ring, queue, segments, shards, channel endpoints —
/// records into.  Snapshot it with [`CountingInstrument::snapshot`].
#[derive(Debug)]
pub struct QueueBuilder<F: CellFamily = NativeFamily, I: Instrument = NoopInstrument> {
    capacity_order: u32,
    threads: usize,
    config: WcqConfig,
    segment_cache: usize,
    shards: usize,
    shard_policy: ShardPolicy,
    backend: Option<ChannelBackend>,
    instr: I,
    _family: PhantomData<F>,
}

// Manual impl: `derive(Clone)` would demand `F: Clone`, but the family is a
// pure type-level marker.  (`I: Instrument` already implies `Clone`.)
impl<F: CellFamily, I: Instrument> Clone for QueueBuilder<F, I> {
    fn clone(&self) -> Self {
        Self {
            capacity_order: self.capacity_order,
            threads: self.threads,
            config: self.config,
            segment_cache: self.segment_cache,
            shards: self.shards,
            shard_policy: self.shard_policy,
            backend: self.backend,
            instr: self.instr.clone(),
            _family: PhantomData,
        }
    }
}

impl<I: Instrument> QueueBuilder<NativeFamily, I> {
    /// Selects the emulated LL/SC hardware model of §4 (the "PowerPC"
    /// variant) instead of the native double-width CAS.
    pub fn llsc(self) -> QueueBuilder<LlscFamily, I> {
        QueueBuilder {
            capacity_order: self.capacity_order,
            threads: self.threads,
            config: self.config,
            segment_cache: self.segment_cache,
            shards: self.shards,
            shard_policy: self.shard_policy,
            backend: self.backend,
            instr: self.instr,
            _family: PhantomData,
        }
    }
}

impl<F: CellFamily, I: Instrument> QueueBuilder<F, I> {
    /// Selects the observability strategy, like [`llsc`](QueueBuilder::llsc)
    /// selects the hardware model: pass a [`CountingInstrument`] (keep a
    /// clone!) and every queue, segment, shard and channel endpoint the
    /// finishers build records contention telemetry — fast/slow-path ops,
    /// helping entries, CAS failures, segment lifecycle, shard routing,
    /// channel park/wake — into its shared [`CounterSet`].  The default
    /// [`NoopInstrument`] compiles all of it out (see the [`Instrument`]
    /// zero-overhead contract).
    ///
    /// ```
    /// use wcq::{CountingInstrument, QueueHandle, WaitFreeQueue};
    ///
    /// let instr = CountingInstrument::new();
    /// let q = wcq::builder()
    ///     .capacity_order(6)
    ///     .threads(2)
    ///     .instrument(instr.clone())
    ///     .build_bounded::<u64>();
    /// {
    ///     let mut h = q.handle();
    ///     h.enqueue(7);
    ///     h.dequeue();
    /// } // handle drop flushes its completion tallies
    /// let snap = instr.snapshot();
    /// assert_eq!(snap.get(wcq::Counter::EnqueuesCompleted), 1);
    /// assert_eq!(snap.get(wcq::Counter::DequeuesCompleted), 1);
    /// ```
    pub fn instrument<J: Instrument>(self, instr: J) -> QueueBuilder<F, J> {
        QueueBuilder {
            capacity_order: self.capacity_order,
            threads: self.threads,
            config: self.config,
            segment_cache: self.segment_cache,
            shards: self.shards,
            shard_policy: self.shard_policy,
            backend: self.backend,
            instr,
            _family: PhantomData,
        }
    }
    /// Capacity of the queue (bounded) or of each segment (unbounded):
    /// 2<sup>order</sup> elements.
    pub fn capacity_order(mut self, order: u32) -> Self {
        self.capacity_order = order;
        self
    }

    /// Maximum number of simultaneously registered threads (the paper's `k`;
    /// must not exceed the capacity, `k ≤ n`).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Installs a full wait-freedom configuration (patience bounds, help
    /// delay, catchup bound).  The stress plans use this to force every
    /// operation down the slow path.
    pub fn config(mut self, config: WcqConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets just the fast-path patience bounds (`MAX_PATIENCE`, §6: 16 for
    /// enqueue, 64 for dequeue by default).
    pub fn patience(mut self, enqueue: u32, dequeue: u32) -> Self {
        self.config.max_patience_enqueue = enqueue;
        self.config.max_patience_dequeue = dequeue;
        self
    }

    /// Selects how patience is chosen at runtime:
    /// [`PatienceMode::Fixed`]`(n)` pins both bounds to `n` (equivalent to
    /// [`patience`](QueueBuilder::patience)`(n, n)`), while
    /// [`PatienceMode::Adaptive`] installs a handle-local controller that
    /// widens patience under CAS contention and shrinks it toward the
    /// configured minimum when the fast path is succeeding — each handle
    /// self-tunes from its own operation tallies, never from shared counters,
    /// so the hot path stays coordination-free and wait-freedom is untouched
    /// (patience is always clamped to the configured `[min, max]`).
    ///
    /// ```
    /// use wcq::{AdaptivePatience, PatienceMode, QueueHandle, WaitFreeQueue};
    ///
    /// let q = wcq::builder()
    ///     .capacity_order(6)
    ///     .threads(4)
    ///     .patience_mode(PatienceMode::Adaptive(AdaptivePatience::default()))
    ///     .build_bounded::<u64>();
    /// let mut h = q.handle();
    /// h.enqueue(7);
    /// assert_eq!(h.dequeue(), Some(7));
    /// ```
    pub fn patience_mode(mut self, mode: PatienceMode) -> Self {
        match mode {
            PatienceMode::Fixed(bound) => {
                self.config.max_patience_enqueue = bound;
                self.config.max_patience_dequeue = bound;
                self.config.adaptive_patience = None;
            }
            PatienceMode::Adaptive(cfg) => {
                self.config.adaptive_patience = Some(cfg);
            }
        }
        self
    }

    /// How many drained segments an unbounded queue keeps for reuse instead
    /// of freeing (ignored by [`build_bounded`](QueueBuilder::build_bounded)).
    pub fn segment_cache(mut self, segments: usize) -> Self {
        self.segment_cache = segments;
        self
    }

    /// Number of independent shards for
    /// [`build_sharded`](QueueBuilder::build_sharded) (default 1; ignored by
    /// the other finishers).  Each shard is a full unbounded wLSCQ with the
    /// builder's geometry, so total steady-state memory scales with
    /// `shards × (live segments + segment cache)`.
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Enqueue-routing policy for
    /// [`build_sharded`](QueueBuilder::build_sharded): round-robin (default),
    /// least-loaded (two-choice sampled), pinned or adaptive (a handle-local
    /// active prefix that grows under contention and shrinks when load is
    /// light).  Pinned keeps each producer's values on its home shard, which
    /// is the only policy that preserves per-producer FIFO order across the
    /// whole queue.
    pub fn shard_policy(mut self, policy: ShardPolicy) -> Self {
        self.shard_policy = policy;
        self
    }

    /// Selects the queue shape backing [`build_channel`](QueueBuilder::build_channel)
    /// / [`build_async`](QueueBuilder::build_async) (ignored by the queue
    /// finishers, which each name their shape).  Without this, channels are
    /// backed by the sharded wLSCQ when [`shards`](QueueBuilder::shards)` > 1`
    /// and by the plain unbounded wLSCQ otherwise; `Bounded` must be opted
    /// into, because it changes semantics ([`TrySendError::Full`] appears and
    /// `send` blocks on a full queue).
    pub fn backend(mut self, backend: ChannelBackend) -> Self {
        self.backend = Some(backend);
        self
    }

    /// The channel backend in effect: the explicit
    /// [`backend`](QueueBuilder::backend) choice, or the shard-count-derived
    /// default.
    fn effective_backend(&self) -> ChannelBackend {
        self.backend.unwrap_or(if self.shards > 1 {
            ChannelBackend::Sharded
        } else {
            ChannelBackend::Unbounded
        })
    }

    /// Builds the queue shape selected by [`backend`](QueueBuilder::backend)
    /// behind the type-erased facade — the construction path shared by both
    /// channel finishers.
    fn build_backend<T: Send + 'static>(&self) -> Box<dyn WaitFreeQueue<T>> {
        match self.effective_backend() {
            ChannelBackend::Bounded => Box::new(self.build_bounded::<T>()),
            ChannelBackend::Unbounded => Box::new(self.build_unbounded::<T>()),
            ChannelBackend::Sharded => Box::new(self.build_sharded::<T>()),
        }
    }

    /// Builds a channel: typed [`Sender`]/[`Receiver`] endpoints with close
    /// semantics over the backend selected by
    /// [`backend`](QueueBuilder::backend).  Endpoints are `Send`, clonable
    /// (MPMC) and lazily register on the thread using them; size
    /// [`threads`](QueueBuilder::threads) for the peak number of live
    /// endpoints.
    ///
    /// Per-sender FIFO order holds on the bounded and unbounded backends
    /// unconditionally; a *sharded* channel keeps it only under
    /// [`ShardPolicy::Pinned`] routing ([`shard_policy`](QueueBuilder::shard_policy))
    /// — the spreading policies trade that order for load balance, exactly as
    /// they do on the raw queue.
    ///
    /// ```
    /// let (tx, mut rx) = wcq::builder().threads(2).build_channel::<u64>();
    /// let mut tx = tx;
    /// tx.send(1).unwrap();
    /// drop(tx); // last sender: channel closes once drained
    /// assert_eq!(rx.recv(), Ok(1));
    /// assert!(rx.recv().is_err());
    /// ```
    pub fn build_channel<T: Send + 'static>(
        &self,
    ) -> (channel::Sender<T, I>, channel::Receiver<T, I>) {
        channel::channel_over_instrumented(self.build_backend::<T>(), self.instr.clone())
    }

    /// Builds an async channel: [`AsyncSender`]/[`AsyncReceiver`] endpoints
    /// whose futures park the task instead of blocking — a send wakes one
    /// parked receiver, a close wakes all (see [`async_channel`]).  Runs on
    /// any executor; none is bundled.
    pub fn build_async<T: Send + 'static>(
        &self,
    ) -> (
        async_channel::AsyncSender<T, I>,
        async_channel::AsyncReceiver<T, I>,
    ) {
        let (tx, rx) = self.build_channel::<T>();
        (tx.into(), rx.into())
    }

    /// Builds the bounded wait-free queue of the paper (Figures 4–7): fixed
    /// capacity, fixed memory, wait-free enqueue and dequeue.
    pub fn build_bounded<T>(&self) -> WcqQueue<T, F> {
        WcqQueue::with_config_counters(
            self.capacity_order,
            self.threads,
            self.config,
            self.instr.counter_set(),
        )
    }

    /// Builds the unbounded wLSCQ queue (this repo's extension of §2.3's LSCQ
    /// recipe): wait-free within each segment, segments linked and recycled
    /// through hazard pointers.
    pub fn build_unbounded<T>(&self) -> UnboundedWcq<T, F> {
        UnboundedWcq::with_config_cache_counters(
            self.capacity_order,
            self.threads,
            self.config,
            self.segment_cache,
            self.instr.counter_set(),
        )
    }

    /// Builds a raw wait-free ring of indices `0..2^order` — the free-list /
    /// indirection building block of Figure 2 (see the `frame_pool` example).
    pub fn build_ring(&self) -> WcqRing<F> {
        WcqRing::with_config_counters(
            self.capacity_order,
            self.threads,
            self.config,
            self.instr.counter_set(),
        )
    }

    /// Builds the sharded unbounded queue: [`shards`](QueueBuilder::shards)
    /// independent wLSCQ shards behind one [`WaitFreeQueue`] facade, with
    /// [`shard_policy`](QueueBuilder::shard_policy) enqueue routing and a
    /// home-shard-first work-stealing dequeue — the high-thread-count shape
    /// that breaks the single head/tail hot spots.
    pub fn build_sharded<T>(&self) -> ShardedWcq<T, F> {
        ShardedWcq::with_config_cache_counters(
            self.shards,
            self.capacity_order,
            self.threads,
            self.config,
            self.segment_cache,
            self.shard_policy,
            self.instr.counter_set(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_builds_bounded_with_requested_geometry() {
        let q = builder()
            .capacity_order(5)
            .threads(3)
            .build_bounded::<u64>();
        assert_eq!(q.capacity(), 32);
        assert_eq!(WcqQueue::max_threads(&q), 3);
    }

    #[test]
    fn builder_builds_unbounded_with_cache_hook() {
        let q = builder()
            .capacity_order(4)
            .threads(2)
            .segment_cache(2)
            .build_unbounded::<u64>();
        assert_eq!(q.segment_capacity(), 16);
        let mut h = q.handle();
        for i in 0..100 {
            h.enqueue(i);
        }
        for i in 0..100 {
            assert_eq!(h.dequeue(), Some(i));
        }
        h.flush_reclamation();
        let stats = q.segment_stats();
        assert!(
            stats.cached <= 2,
            "segment_cache(2) must bound the reuse cache: {stats:?}"
        );
    }

    #[test]
    fn builder_config_reaches_the_rings() {
        let cfg = WcqConfig {
            max_patience_enqueue: 1,
            max_patience_dequeue: 1,
            help_delay: 1,
            catchup_bound: 8,
            ..WcqConfig::default()
        };
        let q = builder()
            .capacity_order(4)
            .threads(1)
            .config(cfg)
            .build_bounded::<u64>();
        assert_eq!(*q.config(), cfg, "builder config must reach the rings");
        let mut h = q.register().expect("one slot free");
        h.enqueue(9).unwrap();
        assert_eq!(h.dequeue(), Some(9));
    }

    #[test]
    fn builder_patience_shorthand_sets_the_bounds() {
        let q = builder().patience(2, 3).build_bounded::<u64>();
        let _ = q; // construction is the assertion: no panic, k <= n holds
    }

    #[test]
    fn builder_llsc_switches_the_hardware_model() {
        wcq_atomics::llsc::set_spurious_failure_rate(0.0);
        let q = builder()
            .capacity_order(4)
            .threads(2)
            .llsc()
            .build_bounded::<u64>();
        assert_eq!(WaitFreeQueue::<u64>::name(&q), "wCQ (LL/SC)");
        let mut h = q.handle(); // the facade trait's RAII registration
        h.enqueue(5);
        assert_eq!(h.dequeue(), Some(5));
    }

    #[test]
    fn builder_builds_sharded_with_requested_geometry_and_policy() {
        let q = builder()
            .capacity_order(4)
            .threads(2)
            .shards(4)
            .shard_policy(ShardPolicy::Pinned)
            .build_sharded::<u64>();
        assert_eq!(q.shard_count(), 4);
        assert_eq!(q.policy(), ShardPolicy::Pinned);
        assert_eq!(ShardedWcq::max_threads(&q), 2);
        assert_eq!(q.shards()[0].segment_capacity(), 16);
        let mut h = q.handle();
        for i in 0..100 {
            h.enqueue(i);
        }
        // Pinned routing: FIFO holds end to end for a single producer.
        for i in 0..100 {
            assert_eq!(h.dequeue(), Some(i));
        }
    }

    #[test]
    fn builder_defaults_to_one_round_robin_shard() {
        let q = builder()
            .capacity_order(4)
            .threads(2)
            .build_sharded::<u64>();
        assert_eq!(q.shard_count(), 1);
        assert_eq!(q.policy(), ShardPolicy::RoundRobin);
    }

    #[test]
    fn builder_patience_mode_fixed_and_adaptive_reach_the_config() {
        let q = builder()
            .patience_mode(PatienceMode::Fixed(5))
            .build_bounded::<u64>();
        assert_eq!(q.config().max_patience_enqueue, 5);
        assert_eq!(q.config().max_patience_dequeue, 5);
        assert!(q.config().adaptive_patience.is_none());

        let ap = AdaptivePatience {
            min: 2,
            max: 32,
            sample_every: 16,
        };
        let q = builder()
            .capacity_order(5)
            .threads(2)
            .patience_mode(PatienceMode::Adaptive(ap))
            .build_bounded::<u64>();
        assert_eq!(q.config().adaptive_patience, Some(ap));
        let mut h = q.handle();
        for i in 0..200 {
            h.enqueue(i);
            assert_eq!(h.dequeue(), Some(i));
        }
    }

    #[test]
    fn builder_builds_adaptive_sharded() {
        let q = builder()
            .capacity_order(4)
            .threads(2)
            .shards(4)
            .shard_policy(ShardPolicy::Adaptive)
            .patience_mode(PatienceMode::Adaptive(AdaptivePatience::default()))
            .build_sharded::<u64>();
        assert_eq!(WaitFreeQueue::<u64>::name(&q), "Sharded wLSCQ (adaptive)");
        let mut h = q.handle();
        for i in 0..500 {
            h.enqueue(i);
        }
        let mut got = 0;
        while h.dequeue().is_some() {
            got += 1;
        }
        assert_eq!(got, 500);
    }

    #[test]
    fn builder_builds_rings() {
        let ring = builder().capacity_order(4).threads(2).build_ring();
        let mut h = ring.register().unwrap();
        h.enqueue(7);
        assert_eq!(h.dequeue(), Some(7));
    }
}
