//! Multi-channel receive: wait on several channels at once, resolving with
//! whichever yields a value first.
//!
//! A fan-in server shape — one worker draining a high-priority control lane
//! *and* a bulk request lane — needs to wait on both channels without
//! polling either.  The [`WakerRegistry`](crate::channel) was built for this
//! from the start: a slot holds an arbitrary [`std::task::Waker`], so one
//! task (or one thread-unparking waker) can park a clone of itself in
//! *several* channels' registries and be woken by whichever side fires
//! first.  This module packages that into two faces:
//!
//! * [`recv_any`] — an async future over a set of [`AsyncReceiver`]s.  Each
//!   poll parks one waker clone per channel and upholds the same
//!   no-lost-wake discipline as the single-channel futures: `Pending` is
//!   only ever returned after re-checking every channel *with the wakers
//!   already parked*.
//! * [`recv_any_timeout`] — the sync, deadline-bounded counterpart over
//!   [`Receiver`]s, parking the calling thread.
//!
//! Both scan channels in **slice order**, making the select a *priority*
//! select: when several lanes hold values, the earliest one in the slice
//! wins the tie.  Put the control lane first.
//!
//! Both resolve `Closed` only when **every** participating channel is closed
//! *and* fully drained — a single closed lane never ends the wait while its
//! peers are live.  And both settle their waker slots on the way out: a slot
//! whose waker was consumed by a notification we did not act on has that
//! notification *forwarded* (see the `Drop` impls' comments), so a select
//! that completes on lane A can never swallow lane B's wake.
//!
//! ```
//! use wcq::select::recv_any;
//!
//! let (tx_hi, rx_hi) = wcq::builder().threads(4).build_async::<u32>();
//! let (tx_lo, rx_lo) = wcq::builder().threads(4).build_async::<u32>();
//! let (mut tx_hi, mut rx_hi, mut rx_lo) = (tx_hi, rx_hi, rx_lo);
//! wcq_harness::exec::block_on(async move {
//!     tx_hi.send(7).await.unwrap();
//!     let mut lanes = [&mut rx_hi, &mut rx_lo];
//!     let (lane, value) = recv_any(&mut lanes).await.unwrap();
//!     assert_eq!((lane, value), (0, 7));
//!     drop(lanes);
//!     tx_hi.close();
//!     tx_lo.close();
//!     let mut lanes = [&mut rx_hi, &mut rx_lo];
//!     assert!(recv_any(&mut lanes).await.is_err(), "all lanes closed");
//! });
//! ```

use std::future::Future;
use std::pin::Pin;
use std::task::{Context, Poll};
use std::time::Duration;

use wcq_core::metrics::{Instrument, NoopInstrument};

use crate::async_channel::AsyncReceiver;
use crate::channel::{
    deadline_after, park_until, thread_waker, Receiver, RecvError, RecvTimeoutError, TryRecvError,
};

/// Waits on every receiver in `rxs` at once, resolving with `(index, value)`
/// for whichever channel yields first.
///
/// Resolves with `Err(`[`RecvError`]`)` only when **all** channels are
/// closed and fully drained (an empty `rxs` resolves `Err` immediately:
/// nothing can ever arrive).  Channels are scanned in slice order (priority
/// select).  The future is cancellation-safe: dropping it mid-wait unparks
/// every slot it parked and forwards any notification that had already
/// consumed its waker, exactly like the single-channel futures.
pub fn recv_any<'s, 'r, T: Send + 'static, I: Instrument>(
    rxs: &'s mut [&'r mut AsyncReceiver<T, I>],
) -> RecvAny<'s, 'r, T, I> {
    RecvAny { rxs, parked: false }
}

/// Future of [`recv_any`].
#[must_use = "futures do nothing unless polled"]
pub struct RecvAny<'s, 'r, T: Send + 'static, I: Instrument = NoopInstrument> {
    rxs: &'s mut [&'r mut AsyncReceiver<T, I>],
    /// Whether the last poll returned `Pending` with a waker clone parked in
    /// *every* channel's slot — the settle path walks them all.
    parked: bool,
}

impl<T: Send + 'static, I: Instrument> Unpin for RecvAny<'_, '_, T, I> {}

impl<T: Send + 'static, I: Instrument> RecvAny<'_, '_, T, I> {
    /// One pass over the channels in slice order: the first value wins;
    /// `Err(n)` carries how many channels reported closed-and-drained.
    fn scan(&mut self) -> Result<(usize, T), usize> {
        let mut closed = 0;
        for (i, rx) in self.rxs.iter_mut().enumerate() {
            match rx.try_recv() {
                Ok(value) => return Ok((i, value)),
                Err(TryRecvError::Closed) => closed += 1,
                Err(TryRecvError::Empty) => {}
            }
        }
        Err(closed)
    }

    /// Settles every parked slot.  `winner` is the channel whose value this
    /// future consumed (if any): a consumed notification *there* was spent on
    /// us, while one on any other channel announced a value we did not take —
    /// that wake is forwarded so another parked receiver can claim it.
    fn settle(&mut self, winner: Option<usize>) {
        if !self.parked {
            return;
        }
        self.parked = false;
        for (i, rx) in self.rxs.iter_mut().enumerate() {
            let (inner, id) = rx.select_parts();
            if !inner.core.recv_wakers.unpark(id) && winner != Some(i) {
                inner.core.wake_recv_one();
            }
        }
    }
}

impl<T: Send + 'static, I: Instrument> Future for RecvAny<'_, '_, T, I> {
    type Output = Result<(usize, T), RecvError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut(); // RecvAny is Unpin
        let n = this.rxs.len();
        if n == 0 {
            return Poll::Ready(Err(RecvError));
        }
        match this.scan() {
            Ok((i, value)) => {
                this.settle(Some(i));
                return Poll::Ready(Ok((i, value)));
            }
            Err(closed) if closed == n => {
                this.settle(None);
                return Poll::Ready(Err(RecvError));
            }
            Err(_) => {}
        }
        // Park one clone of the task waker in every channel's slot, then
        // re-check them all — a send that raced ahead of its channel's park
        // has already spent its notification, so only this re-check can see
        // its value.  Closed lanes are parked too: harmless (close already
        // notified), and it keeps the settle path uniform.
        for rx in this.rxs.iter_mut() {
            let (inner, id) = rx.select_parts();
            inner.core.park_recv(id, cx.waker());
        }
        this.parked = true;
        match this.scan() {
            Ok((i, value)) => {
                this.settle(Some(i));
                Poll::Ready(Ok((i, value)))
            }
            Err(closed) if closed == n => {
                this.settle(None);
                Poll::Ready(Err(RecvError))
            }
            Err(_) => Poll::Pending,
        }
    }
}

impl<T: Send + 'static, I: Instrument> Drop for RecvAny<'_, '_, T, I> {
    fn drop(&mut self) {
        // Cancellation safety: no stale waker stays behind in any registry,
        // and no consumed notification is swallowed — with no winner, every
        // consumed slot forwards (see `settle`).
        self.settle(None);
    }
}

/// Synchronous multi-channel receive with a deadline: waits on every
/// receiver in `rxs`, returning `(index, value)` for whichever yields first.
///
/// Channels are scanned in **slice order**, making this a priority select —
/// put the lane that must win ties first.  The deadline semantics match
/// [`Receiver::recv_timeout`]:
///
/// * [`RecvTimeoutError::Timeout`] — the deadline passed with every channel
///   empty; **no element was consumed** anywhere;
/// * [`RecvTimeoutError::Closed`] — every channel is closed *and* fully
///   drained (an empty `rxs` reports this immediately).  A single closed
///   lane never ends the wait while its peers are live.
///
/// The wait parks the calling thread with one thread-unparking waker cloned
/// into each channel's registry slot — the same no-lost-wake park/re-check
/// discipline as the async [`recv_any`], woken by whichever channel sends
/// (or closes) first.
pub fn recv_any_timeout<T: Send + 'static, I: Instrument>(
    rxs: &mut [&mut Receiver<T, I>],
    timeout: Duration,
) -> Result<(usize, T), RecvTimeoutError> {
    let n = rxs.len();
    if n == 0 {
        return Err(RecvTimeoutError::Closed);
    }
    // Priority scan: first value in slice order wins; count closed lanes.
    let scan = |rxs: &mut [&mut Receiver<T, I>]| -> Result<(usize, T), usize> {
        let mut closed = 0;
        for (i, rx) in rxs.iter_mut().enumerate() {
            match rx.try_recv() {
                Ok(value) => return Ok((i, value)),
                Err(TryRecvError::Closed) => closed += 1,
                Err(TryRecvError::Empty) => {}
            }
        }
        Err(closed)
    };
    match scan(rxs) {
        Ok(hit) => return Ok(hit),
        Err(closed) if closed == n => return Err(RecvTimeoutError::Closed),
        Err(_) => {}
    }
    let deadline = deadline_after(timeout);
    let waker = thread_waker();
    let ids: Vec<u64> = rxs.iter_mut().map(|rx| rx.recv_slot_id()).collect();
    let mut winner = None;
    let outcome = loop {
        // Park in every slot first, then re-check every channel: a send
        // racing in between consumes its channel's waker and unparks this
        // thread, so the park below returns immediately.
        for (rx, id) in rxs.iter_mut().zip(&ids) {
            rx.core.park_recv(*id, &waker);
        }
        match scan(rxs) {
            Ok((i, value)) => {
                winner = Some(i);
                break Ok((i, value));
            }
            Err(closed) if closed == n => break Err(RecvTimeoutError::Closed),
            Err(_) => {}
        }
        if !park_until(deadline) {
            break Err(RecvTimeoutError::Timeout);
        }
    };
    // Settle every slot; consumed notifications on non-winning channels are
    // forwarded (same reasoning as the async settle path).
    for (i, (rx, id)) in rxs.iter_mut().zip(&ids).enumerate() {
        if !rx.core.recv_wakers.unpark(*id) && winner != Some(i) {
            rx.core.wake_recv_one();
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::atomic::Ordering::SeqCst;
    use std::sync::Arc;
    use std::task::{Wake, Waker};
    use std::time::Instant;

    fn async_pair() -> (crate::async_channel::AsyncSender<u64>, AsyncReceiver<u64>) {
        crate::builder().threads(4).build_async::<u64>()
    }

    /// A waker that only counts: hand-polling with it makes wake delivery
    /// exactly observable.
    struct CountingWake(AtomicUsize);
    impl Wake for CountingWake {
        fn wake(self: Arc<Self>) {
            self.0.fetch_add(1, SeqCst);
        }
        fn wake_by_ref(self: &Arc<Self>) {
            self.0.fetch_add(1, SeqCst);
        }
    }

    fn counting_waker() -> (Arc<CountingWake>, Waker) {
        let count = Arc::new(CountingWake(AtomicUsize::new(0)));
        let waker = Waker::from(Arc::clone(&count));
        (count, waker)
    }

    fn poll_once<F: Future + Unpin>(fut: &mut F, waker: &Waker) -> Poll<F::Output> {
        let mut cx = Context::from_waker(waker);
        Pin::new(fut).poll(&mut cx)
    }

    #[test]
    fn select_parked_across_two_channels_wakes_exactly_once() {
        let (mut tx_a, rx_a) = async_pair();
        let (mut tx_b, rx_b) = async_pair();
        let (mut rx_a, mut rx_b) = (rx_a, rx_b);
        let (count, waker) = counting_waker();

        let mut lanes = [&mut rx_a, &mut rx_b];
        let mut fut = recv_any(&mut lanes);
        assert!(poll_once(&mut fut, &waker).is_pending());
        assert_eq!(count.0.load(SeqCst), 0, "nothing sent yet");

        // Channel A fires: the parked select is woken exactly once, even
        // though its waker sits in *two* registries.
        tx_a.try_send(41).unwrap();
        assert_eq!(count.0.load(SeqCst), 1, "woken once by the firing side");
        assert_eq!(poll_once(&mut fut, &waker), Poll::Ready(Ok((0, 41))));
        drop(fut);

        // No stale waker lingers in the loser registry: a send on B must
        // not burn its notification on the completed select (the count
        // stays put), and the value stays receivable.
        tx_b.try_send(99).unwrap();
        assert_eq!(
            count.0.load(SeqCst),
            1,
            "completed select left no waker behind in channel B"
        );
        assert_eq!(rx_b.try_recv(), Ok(99));
        drop((tx_a, tx_b));
    }

    #[test]
    fn select_is_woken_by_the_second_lane_too() {
        let (tx_a, rx_a) = async_pair();
        let (mut tx_b, rx_b) = async_pair();
        let (mut rx_a, mut rx_b) = (rx_a, rx_b);
        let (count, waker) = counting_waker();

        let mut lanes = [&mut rx_a, &mut rx_b];
        let mut fut = recv_any(&mut lanes);
        assert!(poll_once(&mut fut, &waker).is_pending());

        // The *non-first* lane fires: same single wake, and the resolved
        // index points at lane 1.
        tx_b.try_send(52).unwrap();
        assert_eq!(count.0.load(SeqCst), 1);
        assert_eq!(poll_once(&mut fut, &waker), Poll::Ready(Ok((1, 52))));
        drop(fut);

        // Lane A's registry holds no leftover from the completed select.
        let mut tx_a = tx_a;
        tx_a.try_send(1).unwrap();
        assert_eq!(count.0.load(SeqCst), 1, "no stale waker in lane A");
        assert_eq!(rx_a.try_recv(), Ok(1));
        drop((tx_a, tx_b));
    }

    #[test]
    fn select_drop_leaves_no_stale_waker_in_either_registry() {
        let (mut tx_a, rx_a) = async_pair();
        let (mut tx_b, rx_b) = async_pair();
        let (mut rx_a, mut rx_b) = (rx_a, rx_b);
        let (count, waker) = counting_waker();

        let mut lanes = [&mut rx_a, &mut rx_b];
        let mut fut = recv_any(&mut lanes);
        assert!(poll_once(&mut fut, &waker).is_pending());
        drop(fut); // cancelled while parked in both registries

        tx_a.try_send(1).unwrap();
        tx_b.try_send(2).unwrap();
        assert_eq!(
            count.0.load(SeqCst),
            0,
            "cancelled select left no waker behind in either channel"
        );
        assert_eq!(rx_a.try_recv(), Ok(1));
        assert_eq!(rx_b.try_recv(), Ok(2));
        drop((tx_a, tx_b));
    }

    #[test]
    fn select_dropped_after_wake_forwards_the_consumed_notification() {
        // A select and an independent single-channel future parked on the
        // SAME channel: the select attached first, so the send's notify
        // consumes the *select's* waker.  Dropping the select before it
        // acts must forward the wake to the sibling, not swallow it.
        let (mut tx, rx) = async_pair();
        let mut rx_a = rx; // attached first: notify_one picks this slot
        let mut rx_c = rx_a.clone(); // attached second: the sibling
        let (select_count, select_waker) = counting_waker();
        let (sibling_count, sibling_waker) = counting_waker();

        let mut sibling = rx_c.recv();
        assert!(poll_once(&mut sibling, &sibling_waker).is_pending());

        let mut lanes = [&mut rx_a];
        let mut fut = recv_any(&mut lanes);
        assert!(poll_once(&mut fut, &select_waker).is_pending());

        tx.try_send(5).unwrap();
        assert_eq!(select_count.0.load(SeqCst), 1, "the select was chosen");
        assert_eq!(sibling_count.0.load(SeqCst), 0);

        // Cancelled with a consumed, un-acted-on notification: forward it.
        drop(fut);
        assert_eq!(
            sibling_count.0.load(SeqCst),
            1,
            "the consumed notification was forwarded to the sibling"
        );
        assert_eq!(poll_once(&mut sibling, &sibling_waker), Poll::Ready(Ok(5)));
        drop(sibling);
        drop(tx);
    }

    #[test]
    fn select_survives_the_close_wakes_all_race() {
        let (tx_a, rx_a) = async_pair();
        let (tx_b, rx_b) = async_pair();
        let (mut rx_a, mut rx_b) = (rx_a, rx_b);
        let (count, waker) = counting_waker();

        let mut lanes = [&mut rx_a, &mut rx_b];
        let mut fut = recv_any(&mut lanes);
        assert!(poll_once(&mut fut, &waker).is_pending());

        // Close lane A: its close-wakes-all consumes our waker there and
        // wakes us exactly once; lane B still holds a clone.
        tx_a.close();
        assert_eq!(count.0.load(SeqCst), 1, "close woke the select once");
        // Re-poll: A is closed-and-drained but B is live, so the select
        // keeps waiting (re-parking everywhere).
        assert!(poll_once(&mut fut, &waker).is_pending());

        // Close lane B too: now every lane is closed — the select resolves.
        tx_b.close();
        assert!(count.0.load(SeqCst) >= 2, "second close woke the select");
        assert_eq!(poll_once(&mut fut, &waker), Poll::Ready(Err(RecvError)));
        drop(fut);
        drop((tx_a, tx_b));
    }

    #[test]
    fn select_drains_closed_lanes_before_reporting_closed() {
        let (mut tx_a, rx_a) = async_pair();
        let (tx_b, rx_b) = async_pair();
        let (mut rx_a, mut rx_b) = (rx_a, rx_b);
        let (_count, waker) = counting_waker();

        tx_a.try_send(1).unwrap();
        tx_a.try_send(2).unwrap();
        tx_a.close();
        tx_b.close();

        // Both lanes closed, but lane A still holds pre-close values: the
        // select hands them out (exact drain) before resolving Closed.
        let mut got = Vec::new();
        loop {
            let mut lanes = [&mut rx_a, &mut rx_b];
            let mut fut = recv_any(&mut lanes);
            match poll_once(&mut fut, &waker) {
                Poll::Ready(Ok((lane, v))) => {
                    assert_eq!(lane, 0);
                    got.push(v);
                }
                Poll::Ready(Err(RecvError)) => break,
                Poll::Pending => panic!("closed lanes never leave a select pending"),
            }
        }
        assert_eq!(got, vec![1, 2]);
        drop((tx_a, tx_b));
    }

    #[test]
    fn async_select_prefers_the_first_lane() {
        let (mut tx_a, rx_a) = async_pair();
        let (mut tx_b, rx_b) = async_pair();
        let (mut rx_a, mut rx_b) = (rx_a, rx_b);
        let (_count, waker) = counting_waker();
        tx_a.try_send(10).unwrap();
        tx_b.try_send(20).unwrap();
        // Both lanes ready: slice order decides, matching the sync select.
        let mut lanes = [&mut rx_a, &mut rx_b];
        let mut fut = recv_any(&mut lanes);
        assert_eq!(poll_once(&mut fut, &waker), Poll::Ready(Ok((0, 10))));
        drop(fut);
        let mut fut = recv_any(&mut lanes);
        assert_eq!(poll_once(&mut fut, &waker), Poll::Ready(Ok((1, 20))));
        drop(fut);
        drop((tx_a, tx_b));
    }

    #[test]
    fn empty_select_resolves_closed_immediately() {
        let (_count, waker) = counting_waker();
        let mut lanes: [&mut AsyncReceiver<u64>; 0] = [];
        let mut fut = recv_any(&mut lanes);
        assert_eq!(poll_once(&mut fut, &waker), Poll::Ready(Err(RecvError)));
        let mut none: [&mut Receiver<u64>; 0] = [];
        assert_eq!(
            recv_any_timeout(&mut none, Duration::ZERO),
            Err(RecvTimeoutError::Closed)
        );
    }

    #[test]
    fn sync_select_prefers_the_first_lane_and_times_out() {
        let (tx_hi, rx_hi) = crate::builder().threads(4).build_channel::<u64>();
        let (tx_lo, rx_lo) = crate::builder().threads(4).build_channel::<u64>();
        let (mut tx_hi, mut tx_lo, mut rx_hi, mut rx_lo) = (tx_hi, tx_lo, rx_hi, rx_lo);

        tx_hi.send(1).unwrap();
        tx_lo.send(2).unwrap();
        // Both ready: slice order decides — the high-priority lane wins.
        assert_eq!(
            recv_any_timeout(&mut [&mut rx_hi, &mut rx_lo], Duration::ZERO),
            Ok((0, 1))
        );
        assert_eq!(
            recv_any_timeout(&mut [&mut rx_hi, &mut rx_lo], Duration::ZERO),
            Ok((1, 2)),
            "hi empty: the low lane serves"
        );
        assert_eq!(
            recv_any_timeout(&mut [&mut rx_hi, &mut rx_lo], Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        // One closed lane does not end the wait...
        drop(tx_hi);
        assert_eq!(
            recv_any_timeout(&mut [&mut rx_hi, &mut rx_lo], Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        // ...but all lanes closed (and drained) does.
        drop(tx_lo);
        assert_eq!(
            recv_any_timeout(&mut [&mut rx_hi, &mut rx_lo], Duration::from_millis(5)),
            Err(RecvTimeoutError::Closed)
        );
    }

    #[test]
    fn sync_select_is_woken_by_whichever_lane_fires() {
        let (tx_a, rx_a) = crate::builder().threads(4).build_channel::<u64>();
        let (tx_b, rx_b) = crate::builder().threads(4).build_channel::<u64>();
        let (mut rx_a, mut rx_b) = (rx_a, rx_b);
        let sender = std::thread::spawn(move || {
            let (_tx_a, mut tx_b) = (tx_a, tx_b);
            std::thread::sleep(Duration::from_millis(20));
            tx_b.send(77).unwrap();
        });
        let start = Instant::now();
        assert_eq!(
            recv_any_timeout(&mut [&mut rx_a, &mut rx_b], Duration::from_secs(30)),
            Ok((1, 77)),
            "the parked select is woken by lane B"
        );
        assert!(start.elapsed() < Duration::from_secs(10));
        sender.join().unwrap();
    }
}
