//! CCQueue — a combining queue (the paper's "CCQueue" baseline).
//!
//! Fatourou & Kallimanis' CC-Synch combining approach: instead of every thread
//! fighting over the queue's head/tail with CAS, threads *publish* their
//! operation in a per-thread announcement slot and a single *combiner* thread
//! applies a whole batch of pending operations to a sequential queue, writing
//! results back into the slots.  The technique is **not** non-blocking (a
//! stalled combiner blocks everyone — which is exactly the distinction the
//! paper draws) but achieves good throughput because the sequential queue is
//! touched by one thread at a time.
//!
//! This reproduction keeps the combining structure (announce → combine →
//! collect) with a mutex electing the combiner, which matches the progress
//! class (blocking, combining) the paper assigns to CCQueue.

use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU8, Ordering::SeqCst};
use std::sync::Mutex;

use wcq_atomics::CachePadded;

/// No operation published.
const IDLE: u8 = 0;
/// An enqueue request is pending.
const ENQ: u8 = 1;
/// A dequeue request is pending.
const DEQ: u8 = 2;
/// The combiner finished the request; the result is available.
const DONE: u8 = 3;

struct Slot<T> {
    state: AtomicU8,
    value: UnsafeCell<Option<T>>,
}

impl<T> Default for Slot<T> {
    fn default() -> Self {
        Self {
            state: AtomicU8::new(IDLE),
            value: UnsafeCell::new(None),
        }
    }
}

/// The combining queue.
///
/// Unbounded FIFO; threads register to obtain a [`CcQueueHandle`] bound to
/// one announcement slot.
pub struct CcQueue<T> {
    slots: Box<[CachePadded<Slot<T>>]>,
    taken: Box<[AtomicU8]>,
    inner: Mutex<VecDeque<T>>,
}

// SAFETY: a slot's `value` cell is only touched by its owning thread while the
// slot state is IDLE/DONE, and only by the combiner while it is ENQ/DEQ; the
// state transitions (SeqCst) order those accesses.
unsafe impl<T: Send> Send for CcQueue<T> {}
unsafe impl<T: Send> Sync for CcQueue<T> {}

impl<T> CcQueue<T> {
    /// Creates a queue with `max_threads` announcement slots.
    pub fn new(max_threads: usize) -> Self {
        assert!(max_threads >= 1);
        Self {
            slots: (0..max_threads)
                .map(|_| CachePadded::new(Slot::default()))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            taken: (0..max_threads)
                .map(|_| AtomicU8::new(0))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            inner: Mutex::new(VecDeque::new()),
        }
    }

    /// Maximum number of simultaneously registered threads.
    pub fn max_threads(&self) -> usize {
        self.taken.len()
    }

    /// Registers the calling thread.
    pub fn register(&self) -> Option<CcQueueHandle<'_, T>> {
        for (tid, flag) in self.taken.iter().enumerate() {
            if flag.compare_exchange(0, 1, SeqCst, SeqCst).is_ok() {
                return Some(CcQueueHandle { queue: self, tid });
            }
        }
        None
    }

    /// Current number of stored elements (approximate under concurrency).
    pub fn len_hint(&self) -> usize {
        // A poisoned lock only means a combiner panicked mid-batch; the
        // VecDeque itself is still structurally valid, so keep serving
        // rather than hanging every other thread.
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .len()
    }

    /// Serve every pending announcement.  Called with the combiner lock held.
    fn combine(&self, inner: &mut VecDeque<T>) {
        for slot in self.slots.iter() {
            match slot.state.load(SeqCst) {
                ENQ => {
                    // SAFETY: the owner published the value and will not touch
                    // the cell until we flip the state to DONE.
                    let value = unsafe { (*slot.value.get()).take() };
                    if let Some(v) = value {
                        inner.push_back(v);
                    }
                    slot.state.store(DONE, SeqCst);
                }
                DEQ => {
                    let result = inner.pop_front();
                    // SAFETY: as above — exclusive access while state is DEQ.
                    unsafe { *slot.value.get() = result };
                    slot.state.store(DONE, SeqCst);
                }
                _ => {}
            }
        }
    }
}

/// Per-thread handle to a [`CcQueue`].
pub struct CcQueueHandle<'q, T> {
    queue: &'q CcQueue<T>,
    tid: usize,
}

impl<'q, T> CcQueueHandle<'q, T> {
    fn run_operation(&mut self, op: u8, value: Option<T>) -> Option<T> {
        let slot = &self.queue.slots[self.tid];
        // Publish the request.
        // SAFETY: the slot is IDLE/DONE, so only this thread touches the cell.
        unsafe { *slot.value.get() = value };
        slot.state.store(op, SeqCst);
        // Either combine ourselves or wait for a combiner to serve us.
        loop {
            if slot.state.load(SeqCst) == DONE {
                break;
            }
            match self.queue.inner.try_lock() {
                Ok(mut inner) => self.queue.combine(&mut inner),
                // Recover from a combiner that panicked while holding the
                // lock: std mutexes poison, and treating Poisoned as "busy"
                // would spin every announcing thread forever.
                Err(std::sync::TryLockError::Poisoned(poisoned)) => {
                    self.queue.combine(&mut poisoned.into_inner());
                }
                Err(std::sync::TryLockError::WouldBlock) => std::hint::spin_loop(),
            }
        }
        slot.state.store(IDLE, SeqCst);
        // SAFETY: state DONE → the combiner has finished writing the cell.
        unsafe { (*slot.value.get()).take() }
    }

    /// Enqueues `value` (unbounded, never fails).
    pub fn enqueue(&mut self, value: T) {
        let _ = self.run_operation(ENQ, Some(value));
    }

    /// Dequeues an element; `None` when the queue was empty at combine time.
    pub fn dequeue(&mut self) -> Option<T> {
        self.run_operation(DEQ, None)
    }
}

impl<'q, T> Drop for CcQueueHandle<'q, T> {
    fn drop(&mut self) {
        self.queue.taken[self.tid].store(0, SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn fifo_single_thread() {
        let q: CcQueue<u64> = CcQueue::new(2);
        let mut h = q.register().unwrap();
        assert_eq!(h.dequeue(), None);
        for i in 0..50 {
            h.enqueue(i);
        }
        for i in 0..50 {
            assert_eq!(h.dequeue(), Some(i));
        }
        assert_eq!(h.dequeue(), None);
    }

    #[test]
    fn registration_limit_and_reuse() {
        let q: CcQueue<u8> = CcQueue::new(1);
        let h = q.register().unwrap();
        assert!(q.register().is_none());
        drop(h);
        assert!(q.register().is_some());
    }

    #[test]
    fn mpmc_stress_sum_preserved() {
        const THREADS: u64 = 4;
        const PER_THREAD: u64 = 5_000;
        let q: CcQueue<u64> = CcQueue::new(THREADS as usize);
        let sum = AtomicU64::new(0);
        let count = AtomicU64::new(0);
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let q = &q;
                let sum = &sum;
                let count = &count;
                s.spawn(move || {
                    let mut h = q.register().unwrap();
                    for i in 0..PER_THREAD {
                        h.enqueue(t * PER_THREAD + i);
                        if let Some(v) = h.dequeue() {
                            sum.fetch_add(v, Ordering::Relaxed);
                            count.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    while let Some(v) = h.dequeue() {
                        sum.fetch_add(v, Ordering::Relaxed);
                        count.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        let n = THREADS * PER_THREAD;
        assert_eq!(count.load(Ordering::Relaxed), n);
        assert_eq!(sum.load(Ordering::Relaxed), n * (n - 1) / 2);
    }
}
