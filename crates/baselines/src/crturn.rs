//! CRTurn — Correia & Ramalhete's turn-based wait-free queue (baseline).
//!
//! CRTurn is the paper's representative of *truly* wait-free queues with
//! built-in (hazard-pointer) memory reclamation: correct and bounded, but slow
//! because every operation may have to help every other thread and because the
//! queue is a single linked list.  The wCQ evaluation uses it to show the
//! price existing wait-free queues pay — wCQ matches SCQ's speed while CRTurn
//! trails far behind.
//!
//! The reproduction keeps CRTurn's structure: per-thread *enqueue request*
//! slots served round-robin starting from the thread that owns the current
//! tail node, and per-thread *dequeue request* slots satisfied by assigning
//! the node after the current head to the next pending dequeuer (the "turn"),
//! with hazard pointers protecting traversal and each thread retiring the node
//! it was previously assigned.  The give-up path for empty queues is slightly
//! simplified relative to the original (a single CAS closes the request); the
//! round-robin turn selection and the retire-previous-request reclamation are
//! as published.
//!
//! Values are `u64` (the benchmark payload); the queue is unbounded.

use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering::SeqCst};

use wcq_reclaim::{HazardDomain, HazardHandle};

const NOIDX: usize = usize::MAX;

/// Sentinel pointer marking an open (pending) dequeue request.
fn pending_sentinel() -> *mut Node {
    // Any non-null, never-allocated, aligned address works as a marker.
    std::ptr::NonNull::<Node>::dangling().as_ptr()
}

struct Node {
    item: u64,
    enq_tid: usize,
    deq_tid: AtomicUsize,
    next: AtomicPtr<Node>,
}

impl Node {
    fn new(item: u64, enq_tid: usize) -> *mut Node {
        Box::into_raw(Box::new(Node {
            item,
            enq_tid,
            deq_tid: AtomicUsize::new(NOIDX),
            next: AtomicPtr::new(std::ptr::null_mut()),
        }))
    }
}

/// The turn-based wait-free queue.
pub struct CrTurnQueue {
    head: AtomicPtr<Node>,
    tail: AtomicPtr<Node>,
    /// Pending enqueue requests: the node thread `i` wants linked.
    enqueuers: Box<[AtomicPtr<Node>]>,
    /// Pending dequeue requests: null = none, sentinel = open, node = served.
    deqreq: Box<[AtomicPtr<Node>]>,
    domain: HazardDomain,
    taken: Box<[AtomicUsize]>,
    /// The very first sentinel, freed on drop (it is never retired).
    initial: *mut Node,
}

unsafe impl Send for CrTurnQueue {}
unsafe impl Sync for CrTurnQueue {}

impl CrTurnQueue {
    /// Creates an empty queue usable by up to `max_threads` registered
    /// threads.
    pub fn new(max_threads: usize) -> Self {
        assert!(max_threads >= 1);
        let sentinel = Node::new(0, 0);
        Self {
            head: AtomicPtr::new(sentinel),
            tail: AtomicPtr::new(sentinel),
            enqueuers: (0..max_threads)
                .map(|_| AtomicPtr::new(std::ptr::null_mut()))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            deqreq: (0..max_threads)
                .map(|_| AtomicPtr::new(std::ptr::null_mut()))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            domain: HazardDomain::new(max_threads, 2),
            taken: (0..max_threads)
                .map(|_| AtomicUsize::new(0))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            initial: sentinel,
        }
    }

    /// Maximum number of simultaneously registered threads.
    pub fn max_threads(&self) -> usize {
        self.taken.len()
    }

    /// Registers the calling thread.
    pub fn register(&self) -> Option<CrTurnHandle<'_>> {
        for (tid, flag) in self.taken.iter().enumerate() {
            if flag.compare_exchange(0, 1, SeqCst, SeqCst).is_ok() {
                return Some(CrTurnHandle {
                    queue: self,
                    hp: self.domain.register()?,
                    tid,
                    prev_assigned: std::ptr::null_mut(),
                });
            }
        }
        None
    }

    /// Nodes retired but not yet reclaimed (memory statistics).
    pub fn reclamation_backlog(&self) -> usize {
        self.domain.pending()
    }

    /// Racy emptiness hint: `head == tail` holds exactly when both point at
    /// the sentinel (empty queue) or while an enqueue's tail swing is still
    /// in flight — a pointer compare, never a dereference, so it needs no
    /// hazard protection.
    pub fn is_empty_hint(&self) -> bool {
        self.head.load(SeqCst) == self.tail.load(SeqCst)
    }
}

impl Drop for CrTurnQueue {
    fn drop(&mut self) {
        // Free everything still reachable from head, then the initial
        // sentinel if head has moved past it.
        let head = self.head.load(SeqCst);
        let mut cur = head;
        while !cur.is_null() {
            // SAFETY: exclusive access during drop.
            let boxed = unsafe { Box::from_raw(cur) };
            cur = boxed.next.load(SeqCst);
        }
        if self.initial != head && !self.initial.is_null() {
            // SAFETY: the initial sentinel is never retired through hazard
            // pointers and is unreachable from `head` once head moved on.
            drop(unsafe { Box::from_raw(self.initial) });
        }
    }
}

/// Per-thread handle to a [`CrTurnQueue`].
pub struct CrTurnHandle<'q> {
    queue: &'q CrTurnQueue,
    hp: HazardHandle<'q>,
    tid: usize,
    /// The node most recently assigned to this thread; retired on the next
    /// successful dequeue (CRTurn's reclamation rule).
    prev_assigned: *mut Node,
}

impl<'q> CrTurnHandle<'q> {
    /// Enqueues `value` at the tail.
    pub fn enqueue(&mut self, value: u64) {
        let n = self.queue.enqueuers.len();
        let node = Node::new(value, self.tid);
        self.queue.enqueuers[self.tid].store(node, SeqCst);
        // Help link pending enqueue requests, round-robin from the owner of
        // the current tail, until our own request has been linked.  The
        // original bounds this loop by NUM_THRDS iterations; we loop until the
        // request flag clears, which the round-robin turn guarantees happens
        // within a bounded number of helping rounds.
        loop {
            if self.queue.enqueuers[self.tid].load(SeqCst).is_null() {
                break;
            }
            let ltail = self.hp.protect(0, &self.queue.tail);
            if ltail != self.queue.tail.load(SeqCst) {
                continue;
            }
            // SAFETY: ltail is hazard-protected.
            let ltail_ref = unsafe { &*ltail };
            // Retire the request flag of the thread whose node is the tail.
            let owner = ltail_ref.enq_tid;
            if self.queue.enqueuers[owner].load(SeqCst) == ltail {
                let _ = self.queue.enqueuers[owner].compare_exchange(
                    ltail,
                    std::ptr::null_mut(),
                    SeqCst,
                    SeqCst,
                );
            }
            // Link the next pending request (turn order: owner + 1, ...).
            if ltail_ref.next.load(SeqCst).is_null() {
                for j in 1..=n {
                    let cand_tid = (owner + j) % n;
                    let cand = self.queue.enqueuers[cand_tid].load(SeqCst);
                    if cand.is_null() {
                        continue;
                    }
                    let _ =
                        ltail_ref
                            .next
                            .compare_exchange(std::ptr::null_mut(), cand, SeqCst, SeqCst);
                    break;
                }
            }
            let lnext = ltail_ref.next.load(SeqCst);
            if !lnext.is_null() {
                let _ = self
                    .queue
                    .tail
                    .compare_exchange(ltail, lnext, SeqCst, SeqCst);
            }
        }
        self.hp.clear();
    }

    /// Dequeues a value; `None` when the queue is empty.
    pub fn dequeue(&mut self) -> Option<u64> {
        let n = self.queue.deqreq.len();
        let pending = pending_sentinel();
        self.queue.deqreq[self.tid].store(pending, SeqCst);
        loop {
            if self.queue.deqreq[self.tid].load(SeqCst) != pending {
                break; // Our request was served.
            }
            let lhead = self.hp.protect(0, &self.queue.head);
            if lhead != self.queue.head.load(SeqCst) {
                continue;
            }
            // SAFETY: lhead is hazard-protected and validated.
            let lhead_ref = unsafe { &*lhead };
            let lnext = self.hp.protect(1, &lhead_ref.next);
            if lhead != self.queue.head.load(SeqCst) {
                continue;
            }
            if lnext.is_null() {
                // Empty: close our request unless someone served it meanwhile.
                if self.queue.deqreq[self.tid]
                    .compare_exchange(pending, std::ptr::null_mut(), SeqCst, SeqCst)
                    .is_ok()
                {
                    self.hp.clear();
                    return None;
                }
                break; // Served concurrently; fall through to collect it.
            }
            // SAFETY: lnext was protected before the head re-validation; while
            // head == lhead, lnext cannot have been retired.
            let lnext_ref = unsafe { &*lnext };
            let mut assigned = lnext_ref.deq_tid.load(SeqCst);
            if assigned == NOIDX {
                // The turn: start scanning from the thread after the one the
                // current sentinel was assigned to.
                let start = match lhead_ref.deq_tid.load(SeqCst) {
                    NOIDX => 0,
                    v => (v + 1) % n,
                };
                for j in 0..n {
                    let cand = (start + j) % n;
                    if self.queue.deqreq[cand].load(SeqCst) == pending {
                        let _ = lnext_ref
                            .deq_tid
                            .compare_exchange(NOIDX, cand, SeqCst, SeqCst);
                        break;
                    }
                }
                assigned = lnext_ref.deq_tid.load(SeqCst);
            }
            if assigned != NOIDX {
                // Serve the assigned dequeuer, then advance the head.
                let _ =
                    self.queue.deqreq[assigned].compare_exchange(pending, lnext, SeqCst, SeqCst);
                let _ = self
                    .queue
                    .head
                    .compare_exchange(lhead, lnext, SeqCst, SeqCst);
            }
        }
        // Collect the node assigned to us.
        let node = self.queue.deqreq[self.tid].swap(std::ptr::null_mut(), SeqCst);
        debug_assert!(!node.is_null() && node != pending);
        // Make sure the head has advanced past our node before we retire the
        // previously assigned one (CRTurn's final step).
        let lhead = self.hp.protect(0, &self.queue.head);
        if lhead == self.queue.head.load(SeqCst) {
            // SAFETY: lhead protected and validated.
            if unsafe { (*lhead).next.load(SeqCst) } == node {
                let _ = self
                    .queue
                    .head
                    .compare_exchange(lhead, node, SeqCst, SeqCst);
            }
        }
        // SAFETY: `node` is assigned exclusively to us; it stays valid until
        // *we* retire it (on our next dequeue or when the handle drops).
        let value = unsafe { (*node).item };
        self.hp.clear();
        let prev = std::mem::replace(&mut self.prev_assigned, node);
        if !prev.is_null() {
            // SAFETY: `prev` was assigned to us, the head has since moved past
            // it, and only we retire it.
            unsafe { self.hp.retire(prev) };
        }
        Some(value)
    }
}

impl<'q> Drop for CrTurnHandle<'q> {
    fn drop(&mut self) {
        // The last node assigned to this thread may still be the queue's
        // sentinel (head); in that case ownership stays with the queue, which
        // frees it on drop.  Retiring it here as well would double-free.
        if !self.prev_assigned.is_null() && self.prev_assigned != self.queue.head.load(SeqCst) {
            // SAFETY: same argument as in `dequeue`; the node is strictly
            // behind the head, hence unreachable.
            unsafe { self.hp.retire(self.prev_assigned) };
        }
        self.queue.taken[self.tid].store(0, SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn fifo_single_thread() {
        let q = CrTurnQueue::new(2);
        let mut h = q.register().unwrap();
        assert_eq!(h.dequeue(), None);
        for i in 0..100 {
            h.enqueue(i);
        }
        for i in 0..100 {
            assert_eq!(h.dequeue(), Some(i));
        }
        assert_eq!(h.dequeue(), None);
    }

    #[test]
    fn empty_then_refill_cycles() {
        let q = CrTurnQueue::new(1);
        let mut h = q.register().unwrap();
        for round in 0..50u64 {
            assert_eq!(h.dequeue(), None);
            h.enqueue(round);
            assert_eq!(h.dequeue(), Some(round));
        }
    }

    #[test]
    fn registration_limit_and_reuse() {
        let q = CrTurnQueue::new(1);
        let h = q.register().unwrap();
        assert!(q.register().is_none());
        drop(h);
        assert!(q.register().is_some());
    }

    #[test]
    fn mpmc_stress_sum_preserved() {
        const THREADS: u64 = 4;
        const PER_THREAD: u64 = 3_000;
        let q = CrTurnQueue::new(THREADS as usize);
        let sum = AtomicU64::new(0);
        let count = AtomicU64::new(0);
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let q = &q;
                let sum = &sum;
                let count = &count;
                s.spawn(move || {
                    let mut h = q.register().unwrap();
                    for i in 0..PER_THREAD {
                        h.enqueue(t * PER_THREAD + i);
                        if let Some(v) = h.dequeue() {
                            sum.fetch_add(v, Ordering::Relaxed);
                            count.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    while let Some(v) = h.dequeue() {
                        sum.fetch_add(v, Ordering::Relaxed);
                        count.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        let n = THREADS * PER_THREAD;
        assert_eq!(count.load(Ordering::Relaxed), n);
        assert_eq!(sum.load(Ordering::Relaxed), n * (n - 1) / 2);
    }

    #[test]
    fn per_producer_order_preserved() {
        const PER_PRODUCER: u64 = 2_000;
        let q = CrTurnQueue::new(3);
        std::thread::scope(|s| {
            for p in 0..2u64 {
                let q = &q;
                s.spawn(move || {
                    let mut h = q.register().unwrap();
                    for i in 1..=PER_PRODUCER {
                        h.enqueue(p * 1_000_000 + i);
                    }
                });
            }
            let q = &q;
            s.spawn(move || {
                let mut h = q.register().unwrap();
                let mut last = [0u64; 2];
                let mut got = 0;
                while got < 2 * PER_PRODUCER {
                    if let Some(v) = h.dequeue() {
                        let p = (v / 1_000_000) as usize;
                        let i = v % 1_000_000;
                        assert!(i > last[p], "per-producer FIFO violated");
                        last[p] = i;
                        got += 1;
                    } else {
                        std::thread::yield_now();
                    }
                }
            });
        });
    }
}
