//! Michael & Scott's lock-free FIFO queue (the paper's "MSQueue" baseline).
//!
//! The classic two-pointer linked-list queue: enqueue appends at `tail` with a
//! CAS on the last node's `next` pointer, dequeue advances `head` with a CAS.
//! It is correct and portable but slow under contention because both CAS loops
//! hammer a single cache line — which is exactly why the paper uses it as the
//! "well-known but not very performant" baseline.
//!
//! Memory reclamation uses the hazard-pointer domain from `wcq-reclaim`, as in
//! the paper's benchmark ("hazard pointers elsewhere (LCRQ, MSQueue,
//! CRTurn)").

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicPtr, Ordering::SeqCst};

use wcq_reclaim::{HazardDomain, HazardHandle};

struct Node<T> {
    item: UnsafeCell<Option<T>>,
    next: AtomicPtr<Node<T>>,
}

impl<T> Node<T> {
    fn new(item: Option<T>) -> *mut Self {
        Box::into_raw(Box::new(Self {
            item: UnsafeCell::new(item),
            next: AtomicPtr::new(std::ptr::null_mut()),
        }))
    }
}

/// Michael & Scott lock-free MPMC queue with hazard-pointer reclamation.
///
/// Unbounded: every enqueue allocates one node.  Threads register to obtain a
/// [`MsQueueHandle`] (the registration bound is the hazard-pointer domain
/// size).
pub struct MsQueue<T> {
    head: AtomicPtr<Node<T>>,
    tail: AtomicPtr<Node<T>>,
    domain: HazardDomain,
}

// SAFETY: nodes are only freed through the hazard-pointer domain after they
// become unreachable; item ownership transfers with head advancement.
unsafe impl<T: Send> Send for MsQueue<T> {}
unsafe impl<T: Send> Sync for MsQueue<T> {}

impl<T> MsQueue<T> {
    /// Creates an empty queue usable by up to `max_threads` registered
    /// threads.
    pub fn new(max_threads: usize) -> Self {
        let sentinel = Node::new(None);
        Self {
            head: AtomicPtr::new(sentinel),
            tail: AtomicPtr::new(sentinel),
            domain: HazardDomain::new(max_threads, 2),
        }
    }

    /// Maximum number of simultaneously registered threads.
    pub fn max_threads(&self) -> usize {
        self.domain.max_threads()
    }

    /// Registers the calling thread.
    pub fn register(&self) -> Option<MsQueueHandle<'_, T>> {
        Some(MsQueueHandle {
            queue: self,
            hp: self.domain.register()?,
        })
    }

    /// Number of nodes retired but not yet freed (memory benchmark).
    pub fn reclamation_backlog(&self) -> usize {
        self.domain.pending()
    }

    /// Racy emptiness hint: `head == tail` holds exactly when both point at
    /// the sentinel (empty queue) or while an enqueue's tail swing is still
    /// in flight — a pointer compare, never a dereference, so it needs no
    /// hazard protection.
    pub fn is_empty_hint(&self) -> bool {
        self.head.load(SeqCst) == self.tail.load(SeqCst)
    }
}

impl<T> Drop for MsQueue<T> {
    fn drop(&mut self) {
        // Walk the remaining list, dropping items and nodes.
        let mut cur = self.head.load(SeqCst);
        while !cur.is_null() {
            // SAFETY: exclusive access in Drop; each node freed exactly once.
            let boxed = unsafe { Box::from_raw(cur) };
            cur = boxed.next.load(SeqCst);
        }
    }
}

/// Per-thread handle to an [`MsQueue`].
pub struct MsQueueHandle<'q, T> {
    queue: &'q MsQueue<T>,
    hp: HazardHandle<'q>,
}

impl<'q, T> MsQueueHandle<'q, T> {
    /// Enqueues `value` at the tail.
    pub fn enqueue(&mut self, value: T) {
        let node = Node::new(Some(value));
        loop {
            let ltail = self.hp.protect(0, &self.queue.tail);
            // SAFETY: ltail is protected, hence not freed.
            let next = unsafe { (*ltail).next.load(SeqCst) };
            if ltail != self.queue.tail.load(SeqCst) {
                continue;
            }
            if !next.is_null() {
                // Help swing the tail forward.
                let _ = self
                    .queue
                    .tail
                    .compare_exchange(ltail, next, SeqCst, SeqCst);
                continue;
            }
            // SAFETY: ltail protected; CAS publishes our node.
            if unsafe { &(*ltail).next }
                .compare_exchange(std::ptr::null_mut(), node, SeqCst, SeqCst)
                .is_ok()
            {
                let _ = self
                    .queue
                    .tail
                    .compare_exchange(ltail, node, SeqCst, SeqCst);
                self.hp.clear();
                return;
            }
        }
    }

    /// Dequeues from the head; `None` when empty.
    pub fn dequeue(&mut self) -> Option<T> {
        loop {
            let lhead = self.hp.protect(0, &self.queue.head);
            // SAFETY: lhead protected.
            let next = self.hp.protect(1, unsafe { &(*lhead).next });
            if lhead != self.queue.head.load(SeqCst) {
                continue;
            }
            if next.is_null() {
                self.hp.clear();
                return None;
            }
            let ltail = self.queue.tail.load(SeqCst);
            if lhead == ltail {
                // Tail is lagging; help it forward and retry.
                let _ = self
                    .queue
                    .tail
                    .compare_exchange(ltail, next, SeqCst, SeqCst);
                continue;
            }
            if self
                .queue
                .head
                .compare_exchange(lhead, next, SeqCst, SeqCst)
                .is_ok()
            {
                // SAFETY: we won the CAS, so `next` is the new sentinel and we
                // are the only thread allowed to take its item; `next` is
                // protected by hazard slot 1.
                let value = unsafe { (*(*next).item.get()).take() };
                self.hp.clear();
                // SAFETY: lhead is now unreachable from the queue and was
                // produced by Box::into_raw; retired exactly once by the CAS
                // winner.
                unsafe { self.hp.retire(lhead) };
                return value;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn fifo_single_thread() {
        let q: MsQueue<u64> = MsQueue::new(2);
        let mut h = q.register().unwrap();
        assert_eq!(h.dequeue(), None);
        for i in 0..100 {
            h.enqueue(i);
        }
        for i in 0..100 {
            assert_eq!(h.dequeue(), Some(i));
        }
        assert_eq!(h.dequeue(), None);
    }

    #[test]
    fn registration_limit() {
        let q: MsQueue<u64> = MsQueue::new(1);
        let h = q.register().unwrap();
        assert!(q.register().is_none());
        drop(h);
        assert!(q.register().is_some());
    }

    #[test]
    fn drop_frees_remaining_nodes() {
        use std::sync::Arc;
        let probe = Arc::new(());
        {
            let q: MsQueue<Arc<()>> = MsQueue::new(1);
            let mut h = q.register().unwrap();
            for _ in 0..10 {
                h.enqueue(Arc::clone(&probe));
            }
            drop(h);
        }
        assert_eq!(Arc::strong_count(&probe), 1);
    }

    #[test]
    fn mpmc_stress_sum_preserved() {
        const THREADS: u64 = 4;
        const PER_THREAD: u64 = 5_000;
        let q: MsQueue<u64> = MsQueue::new(THREADS as usize);
        let sum = AtomicU64::new(0);
        let count = AtomicU64::new(0);
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let q = &q;
                let sum = &sum;
                let count = &count;
                s.spawn(move || {
                    let mut h = q.register().unwrap();
                    for i in 0..PER_THREAD {
                        h.enqueue(t * PER_THREAD + i);
                        if let Some(v) = h.dequeue() {
                            sum.fetch_add(v, Ordering::Relaxed);
                            count.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    // Drain whatever remains.
                    while let Some(v) = h.dequeue() {
                        sum.fetch_add(v, Ordering::Relaxed);
                        count.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        let n = THREADS * PER_THREAD;
        assert_eq!(count.load(Ordering::Relaxed), n);
        assert_eq!(sum.load(Ordering::Relaxed), n * (n - 1) / 2);
    }
}
