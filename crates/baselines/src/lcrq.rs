//! LCRQ — Morrison & Afek's linked concurrent ring queue (baseline).
//!
//! LCRQ layers a Michael&Scott-style outer list on top of livelock-prone but
//! very fast F&A-based rings (CRQs).  A CRQ that becomes full (or on which an
//! enqueuer repeatedly fails) is *closed*; enqueuers then append a fresh CRQ
//! to the outer list.  This is what gives LCRQ its high throughput *and* its
//! poor memory efficiency (Figure 10a): every premature close wastes a whole
//! ring.
//!
//! The reproduction stores `u64` values (`u64::MAX` is reserved as the empty
//! sentinel), uses the `wcq-atomics` double-width CAS for the per-slot
//! `(index/safe, value)` pairs — LCRQ genuinely requires CAS2, which is why
//! the paper omits it on PowerPC — and reclaims drained rings with hazard
//! pointers as in the paper's benchmark setup.

use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering::SeqCst};

use wcq_atomics::{AtomicDouble, CachePadded};
use wcq_reclaim::{HazardDomain, HazardHandle};

/// Reserved "empty slot" value; user values must be smaller.
pub const EMPTY: u64 = u64::MAX;

const CLOSED_BIT: u64 = 1 << 63;
const SAFE_BIT: u64 = 1 << 63;
const IDX_MASK: u64 = SAFE_BIT - 1;

/// A single closed-able ring (CRQ).
struct Crq {
    head: CachePadded<AtomicU64>,
    /// Bit 63 is the CLOSED flag.
    tail: CachePadded<AtomicU64>,
    next: AtomicPtr<Crq>,
    /// Slot `lo` = safe bit | index, `hi` = value (or [`EMPTY`]).
    slots: Box<[AtomicDouble]>,
    mask: u64,
}

impl Crq {
    fn new(order: u32) -> Self {
        let size = 1u64 << order;
        Self {
            head: CachePadded::new(AtomicU64::new(0)),
            tail: CachePadded::new(AtomicU64::new(0)),
            next: AtomicPtr::new(std::ptr::null_mut()),
            slots: (0..size)
                .map(|i| AtomicDouble::new(SAFE_BIT | i, EMPTY))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            mask: size - 1,
        }
    }

    /// A fresh ring already holding `value` (used when appending after a
    /// close, so the element that triggered the append is not lost).
    fn new_with(order: u32, value: u64) -> Self {
        let crq = Self::new(order);
        crq.slots[0]
            .compare_exchange((SAFE_BIT, EMPTY), (SAFE_BIT, value))
            .expect("fresh ring slot 0 must be empty");
        crq.tail.store(1, SeqCst);
        crq
    }

    fn close(&self) {
        self.tail.fetch_or(CLOSED_BIT, SeqCst);
    }

    /// Attempts to enqueue; `Err(())` means the ring is closed.
    fn enqueue(&self, value: u64) -> Result<(), ()> {
        // Bounded patience before closing the ring ourselves: this is LCRQ's
        // anti-livelock measure.
        let mut patience = 12 * self.slots.len() as u64;
        loop {
            let t_raw = self.tail.fetch_add(1, SeqCst);
            if t_raw & CLOSED_BIT != 0 {
                return Err(());
            }
            let t = t_raw;
            let slot = &self.slots[(t & self.mask) as usize];
            let (lo, val) = slot.load();
            let idx = lo & IDX_MASK;
            let safe = lo & SAFE_BIT != 0;
            if val == EMPTY
                && idx <= t
                && (safe || self.head.load(SeqCst) <= t)
                && slot.cas2((lo, val), (SAFE_BIT | t, value))
            {
                return Ok(());
            }
            let h = self.head.load(SeqCst);
            if t.wrapping_sub(h) >= self.slots.len() as u64 || patience == 0 {
                self.close();
                return Err(());
            }
            patience = patience.saturating_sub(1);
        }
    }

    /// Attempts to dequeue; `None` means the ring was observed empty.
    fn dequeue(&self) -> Option<u64> {
        loop {
            let h = self.head.fetch_add(1, SeqCst);
            let slot = &self.slots[(h & self.mask) as usize];
            loop {
                let (lo, val) = slot.load();
                let idx = lo & IDX_MASK;
                let safe_bit = lo & SAFE_BIT;
                if val != EMPTY {
                    if idx == h {
                        // Our element: consume and advance the slot index by a
                        // full ring so late enqueuers of this cycle fail.
                        if slot.cas2((lo, val), (safe_bit | (h + self.slots.len() as u64), EMPTY)) {
                            return Some(val);
                        }
                    } else {
                        // An element of an older cycle: mark the slot unsafe.
                        if slot.cas2((lo, val), (idx, val)) {
                            break;
                        }
                    }
                } else {
                    // Empty slot: advance its index so the matching (late)
                    // enqueuer cannot use it anymore.
                    if slot.cas2((lo, val), (safe_bit | (h + self.slots.len() as u64), EMPTY)) {
                        break;
                    }
                }
            }
            // Empty check.
            let t = self.tail.load(SeqCst) & !CLOSED_BIT;
            if t <= h + 1 {
                self.fix_state();
                return None;
            }
        }
    }

    /// Pull the tail forward after dequeuers overshot (bounded catch-up).
    fn fix_state(&self) {
        for _ in 0..64 {
            let t_raw = self.tail.load(SeqCst);
            let h = self.head.load(SeqCst);
            if (t_raw & !CLOSED_BIT) >= h {
                return;
            }
            if self
                .tail
                .compare_exchange(t_raw, (t_raw & CLOSED_BIT) | h, SeqCst, SeqCst)
                .is_ok()
            {
                return;
            }
        }
    }
}

/// The linked queue of CRQs.
///
/// Stores `u64` values smaller than [`EMPTY`].  Threads register to obtain an
/// [`LcrqHandle`] (the bound is the hazard-pointer domain size).
pub struct Lcrq {
    head: AtomicPtr<Crq>,
    tail: AtomicPtr<Crq>,
    domain: HazardDomain,
    ring_order: u32,
    rings_allocated: AtomicUsize,
    rings_live: AtomicUsize,
}

unsafe impl Send for Lcrq {}
unsafe impl Sync for Lcrq {}

impl Lcrq {
    /// Creates an LCRQ whose rings hold `2^ring_order` slots, usable by up to
    /// `max_threads` registered threads.
    pub fn new(ring_order: u32, max_threads: usize) -> Self {
        let first = Box::into_raw(Box::new(Crq::new(ring_order)));
        Self {
            head: AtomicPtr::new(first),
            tail: AtomicPtr::new(first),
            domain: HazardDomain::new(max_threads, 1),
            ring_order,
            rings_allocated: AtomicUsize::new(1),
            rings_live: AtomicUsize::new(1),
        }
    }

    /// Maximum number of simultaneously registered threads.
    pub fn max_threads(&self) -> usize {
        self.domain.max_threads()
    }

    /// Registers the calling thread.
    pub fn register(&self) -> Option<LcrqHandle<'_>> {
        Some(LcrqHandle {
            queue: self,
            hp: self.domain.register()?,
        })
    }

    /// Total rings ever allocated (memory-growth statistic for Figure 10a).
    pub fn rings_allocated(&self) -> usize {
        self.rings_allocated.load(SeqCst)
    }

    /// Rings currently allocated and not yet reclaimed.
    pub fn rings_live(&self) -> usize {
        self.rings_live.load(SeqCst) + self.domain.pending()
    }

    /// Approximate bytes currently held by live rings.
    pub fn memory_footprint(&self) -> usize {
        let per_ring = std::mem::size_of::<Crq>()
            + (1usize << self.ring_order) * std::mem::size_of::<AtomicDouble>();
        std::mem::size_of::<Self>() + self.rings_live() * per_ring
    }
}

impl Drop for Lcrq {
    fn drop(&mut self) {
        let mut cur = self.head.load(SeqCst);
        while !cur.is_null() {
            // SAFETY: exclusive access during drop.
            let boxed = unsafe { Box::from_raw(cur) };
            cur = boxed.next.load(SeqCst);
        }
    }
}

/// Per-thread handle to an [`Lcrq`].
pub struct LcrqHandle<'q> {
    queue: &'q Lcrq,
    hp: HazardHandle<'q>,
}

impl<'q> LcrqHandle<'q> {
    /// Enqueues `value` (must be `< EMPTY`).
    pub fn enqueue(&mut self, value: u64) {
        assert!(value < EMPTY, "u64::MAX is reserved as the empty sentinel");
        loop {
            let ltail = self.hp.protect(0, &self.queue.tail);
            // SAFETY: protected by hazard slot 0.
            let ltail_ref = unsafe { &*ltail };
            let next = ltail_ref.next.load(SeqCst);
            if !next.is_null() {
                let _ = self
                    .queue
                    .tail
                    .compare_exchange(ltail, next, SeqCst, SeqCst);
                continue;
            }
            if ltail_ref.enqueue(value).is_ok() {
                self.hp.clear();
                return;
            }
            // The ring closed under us: append a fresh ring carrying `value`.
            let fresh = Box::into_raw(Box::new(Crq::new_with(self.queue.ring_order, value)));
            self.queue.rings_allocated.fetch_add(1, SeqCst);
            self.queue.rings_live.fetch_add(1, SeqCst);
            if ltail_ref
                .next
                .compare_exchange(std::ptr::null_mut(), fresh, SeqCst, SeqCst)
                .is_ok()
            {
                let _ = self
                    .queue
                    .tail
                    .compare_exchange(ltail, fresh, SeqCst, SeqCst);
                self.hp.clear();
                return;
            }
            // Somebody else appended first; discard our ring and retry (the
            // value is still ours to enqueue).
            self.queue.rings_allocated.fetch_sub(1, SeqCst);
            self.queue.rings_live.fetch_sub(1, SeqCst);
            // SAFETY: `fresh` was never published.
            drop(unsafe { Box::from_raw(fresh) });
        }
    }

    /// Dequeues a value; `None` when the whole queue is empty.
    pub fn dequeue(&mut self) -> Option<u64> {
        loop {
            let lhead = self.hp.protect(0, &self.queue.head);
            // SAFETY: protected by hazard slot 0.
            let lhead_ref = unsafe { &*lhead };
            if let Some(v) = lhead_ref.dequeue() {
                self.hp.clear();
                return Some(v);
            }
            let next = lhead_ref.next.load(SeqCst);
            if next.is_null() {
                self.hp.clear();
                return None;
            }
            // Drained ring with a successor: advance the outer head and retire
            // the drained ring.
            if self
                .queue
                .head
                .compare_exchange(lhead, next, SeqCst, SeqCst)
                .is_ok()
            {
                self.queue.rings_live.fetch_sub(1, SeqCst);
                self.hp.clear();
                // SAFETY: the ring is unreachable from the queue; retired once
                // by the CAS winner.
                unsafe { self.hp.retire(lhead) };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn fifo_single_thread() {
        let q = Lcrq::new(4, 2);
        let mut h = q.register().unwrap();
        assert_eq!(h.dequeue(), None);
        for i in 0..100 {
            h.enqueue(i);
        }
        for i in 0..100 {
            assert_eq!(h.dequeue(), Some(i));
        }
        assert_eq!(h.dequeue(), None);
    }

    #[test]
    fn overflow_allocates_new_rings() {
        let q = Lcrq::new(2, 1); // tiny 4-slot rings
        let mut h = q.register().unwrap();
        for i in 0..64 {
            h.enqueue(i);
        }
        assert!(
            q.rings_allocated() > 1,
            "small rings must have been closed/linked"
        );
        for i in 0..64 {
            assert_eq!(h.dequeue(), Some(i));
        }
        assert_eq!(h.dequeue(), None);
    }

    #[test]
    fn crq_dequeue_on_empty_returns_none_and_recovers() {
        let q = Lcrq::new(3, 1);
        let mut h = q.register().unwrap();
        for _ in 0..10 {
            assert_eq!(h.dequeue(), None);
        }
        h.enqueue(5);
        assert_eq!(h.dequeue(), Some(5));
    }

    #[test]
    fn mpmc_stress_sum_preserved() {
        const THREADS: u64 = 4;
        const PER_THREAD: u64 = 5_000;
        let q = Lcrq::new(6, THREADS as usize);
        let sum = AtomicU64::new(0);
        let count = AtomicU64::new(0);
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let q = &q;
                let sum = &sum;
                let count = &count;
                s.spawn(move || {
                    let mut h = q.register().unwrap();
                    for i in 0..PER_THREAD {
                        h.enqueue(t * PER_THREAD + i);
                        if let Some(v) = h.dequeue() {
                            sum.fetch_add(v, Ordering::Relaxed);
                            count.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    while let Some(v) = h.dequeue() {
                        sum.fetch_add(v, Ordering::Relaxed);
                        count.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        let n = THREADS * PER_THREAD;
        assert_eq!(count.load(Ordering::Relaxed), n);
        assert_eq!(sum.load(Ordering::Relaxed), n * (n - 1) / 2);
    }
}
