//! The "FAA" pseudo-queue: a theoretical performance upper bound.
//!
//! The paper (§6): "FAA (fetch-and-add), which is not a true queue algorithm;
//! it simply atomically increments Head and Tail when calling Dequeue and
//! Enqueue respectively.  FAA is only shown to provide a theoretical
//! performance 'upper bound' for F&A-based queues."
//!
//! The reproduction does exactly that: an enqueue is one `fetch_add` on the
//! tail counter plus a plain (racy, overwriting) slot store; a dequeue is one
//! `fetch_add` on the head counter plus a slot read.  No FIFO, loss, or
//! duplication guarantees are made — this type exists solely so the benchmark
//! harness can plot the same upper-bound series the paper plots.

use std::sync::atomic::{AtomicU64, Ordering::SeqCst};

use wcq_atomics::CachePadded;

/// The fetch-and-add upper-bound pseudo-queue.
///
/// Stores `u64` "values" in a fixed ring with no synchronization beyond the
/// two counters.  **Not a correct queue** — benchmark use only.
pub struct FaaQueue {
    head: CachePadded<AtomicU64>,
    tail: CachePadded<AtomicU64>,
    slots: Box<[AtomicU64]>,
    mask: u64,
}

impl FaaQueue {
    /// Creates a pseudo-queue with `2^order` slots.
    pub fn new(order: u32) -> Self {
        let size = 1u64 << order;
        Self {
            head: CachePadded::new(AtomicU64::new(0)),
            tail: CachePadded::new(AtomicU64::new(0)),
            slots: (0..size)
                .map(|_| AtomicU64::new(0))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            mask: size - 1,
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Racy emptiness hint: the head counter has caught up with the tail
    /// counter.  Two counter loads.
    pub fn is_empty_hint(&self) -> bool {
        self.head.load(SeqCst) >= self.tail.load(SeqCst)
    }

    /// "Enqueues" a value: one F&A plus one store.
    #[inline]
    pub fn enqueue(&self, value: u64) {
        let t = self.tail.fetch_add(1, SeqCst);
        self.slots[(t & self.mask) as usize].store(value, SeqCst);
    }

    /// "Dequeues" a value: one F&A plus one load.  Returns `None` when the
    /// head counter has caught up with the tail counter.
    #[inline]
    pub fn dequeue(&self) -> Option<u64> {
        let h = self.head.fetch_add(1, SeqCst);
        if h >= self.tail.load(SeqCst) {
            return None;
        }
        Some(self.slots[(h & self.mask) as usize].load(SeqCst))
    }

    /// Bytes occupied (for the memory benchmark).
    pub fn memory_footprint(&self) -> usize {
        std::mem::size_of::<Self>() + self.slots.len() * std::mem::size_of::<AtomicU64>()
    }
}

impl std::fmt::Debug for FaaQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaaQueue")
            .field("capacity", &self.capacity())
            .field("head", &self.head.load(SeqCst))
            .field("tail", &self.tail.load(SeqCst))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_advance_per_operation() {
        let q = FaaQueue::new(4);
        q.enqueue(7);
        q.enqueue(8);
        assert_eq!(q.dequeue(), Some(7));
        assert_eq!(q.dequeue(), Some(8));
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn single_thread_in_order_when_uncontended() {
        let q = FaaQueue::new(6);
        for i in 0..32 {
            q.enqueue(i);
        }
        for i in 0..32 {
            assert_eq!(q.dequeue(), Some(i));
        }
    }

    #[test]
    fn concurrent_ops_never_panic() {
        // The point of FAA is raw counter throughput; we only check it is
        // memory-safe under concurrency, not that it is a correct queue.
        let q = std::sync::Arc::new(FaaQueue::new(8));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let q = std::sync::Arc::clone(&q);
                s.spawn(move || {
                    for i in 0..10_000u64 {
                        q.enqueue(i);
                        let _ = q.dequeue();
                    }
                });
            }
        });
    }
}
