//! [`WaitFreeQueue`]/[`QueueHandle`] facade implementations for every
//! baseline, so the harness, the figures and applications can drive the whole
//! §6 evaluation set through the one public trait pair of `wcq_core::api`.
//!
//! Payloads: MSQueue and CCQueue are generic like the wCQ queues; LCRQ,
//! CRTurn, YMC and FAA move `u64` sequence numbers, exactly as the paper's
//! benchmark does (it enqueues small integers / pointers), so their facades
//! are `WaitFreeQueue<u64>`.

use wcq_core::api::{QueueHandle, WaitFreeQueue};

use crate::ccqueue::{CcQueue, CcQueueHandle};
use crate::crturn::{CrTurnHandle, CrTurnQueue};
use crate::faa::FaaQueue;
use crate::lcrq::{Lcrq, LcrqHandle};
use crate::msqueue::{MsQueue, MsQueueHandle};
use crate::ymc::YmcQueue;

// --------------------------------------------------------------------------
// MSQueue (lock-free list queue; unbounded, so try_enqueue never fails)
// --------------------------------------------------------------------------

impl<T: Send> QueueHandle<T> for MsQueueHandle<'_, T> {
    fn try_enqueue(&mut self, value: T) -> Result<(), T> {
        MsQueueHandle::enqueue(self, value);
        Ok(())
    }
    fn dequeue(&mut self) -> Option<T> {
        MsQueueHandle::dequeue(self)
    }
}

impl<T: Send> WaitFreeQueue<T> for MsQueue<T> {
    fn name(&self) -> &'static str {
        "MSQueue"
    }
    fn try_handle(&self) -> Option<Box<dyn QueueHandle<T> + '_>> {
        self.register().map(|h| Box::new(h) as _)
    }
    fn max_threads(&self) -> usize {
        MsQueue::max_threads(self)
    }
    fn memory_footprint(&self) -> usize {
        std::mem::size_of::<Self>()
    }
    fn is_empty_hint(&self) -> bool {
        MsQueue::is_empty_hint(self)
    }
    fn has_empty_hint(&self) -> bool {
        true
    }
}

// --------------------------------------------------------------------------
// CCQueue (flat combining; unbounded)
// --------------------------------------------------------------------------

impl<T: Send> QueueHandle<T> for CcQueueHandle<'_, T> {
    fn try_enqueue(&mut self, value: T) -> Result<(), T> {
        CcQueueHandle::enqueue(self, value);
        Ok(())
    }
    fn dequeue(&mut self) -> Option<T> {
        CcQueueHandle::dequeue(self)
    }
}

impl<T: Send> WaitFreeQueue<T> for CcQueue<T> {
    fn name(&self) -> &'static str {
        "CCQueue"
    }
    fn try_handle(&self) -> Option<Box<dyn QueueHandle<T> + '_>> {
        self.register().map(|h| Box::new(h) as _)
    }
    fn max_threads(&self) -> usize {
        CcQueue::max_threads(self)
    }
    fn memory_footprint(&self) -> usize {
        std::mem::size_of::<Self>()
    }
    fn is_empty_hint(&self) -> bool {
        self.len_hint() == 0
    }
    fn has_empty_hint(&self) -> bool {
        true
    }
}

// --------------------------------------------------------------------------
// LCRQ (ring queues on an outer list; unbounded)
// --------------------------------------------------------------------------

impl QueueHandle<u64> for LcrqHandle<'_> {
    fn try_enqueue(&mut self, value: u64) -> Result<(), u64> {
        LcrqHandle::enqueue(self, value);
        Ok(())
    }
    fn dequeue(&mut self) -> Option<u64> {
        LcrqHandle::dequeue(self)
    }
}

impl WaitFreeQueue<u64> for Lcrq {
    fn name(&self) -> &'static str {
        "LCRQ"
    }
    fn try_handle(&self) -> Option<Box<dyn QueueHandle<u64> + '_>> {
        self.register().map(|h| Box::new(h) as _)
    }
    fn max_threads(&self) -> usize {
        Lcrq::max_threads(self)
    }
    fn memory_footprint(&self) -> usize {
        Lcrq::memory_footprint(self)
    }
    // No emptiness hint: deciding emptiness needs the head ring's counters,
    // and reading them from an unregistered `&self` would dereference a ring
    // that a concurrent dequeuer may retire at any moment.  The default
    // `has_empty_hint() == false` tells the async park path "no information"
    // — it parks after one empty answer instead of spinning on retries.
}

// --------------------------------------------------------------------------
// CRTurn (turn-based wait-free queue; unbounded)
// --------------------------------------------------------------------------

impl QueueHandle<u64> for CrTurnHandle<'_> {
    fn try_enqueue(&mut self, value: u64) -> Result<(), u64> {
        CrTurnHandle::enqueue(self, value);
        Ok(())
    }
    fn dequeue(&mut self) -> Option<u64> {
        CrTurnHandle::dequeue(self)
    }
}

impl WaitFreeQueue<u64> for CrTurnQueue {
    fn name(&self) -> &'static str {
        "CRTurn"
    }
    fn try_handle(&self) -> Option<Box<dyn QueueHandle<u64> + '_>> {
        self.register().map(|h| Box::new(h) as _)
    }
    fn max_threads(&self) -> usize {
        CrTurnQueue::max_threads(self)
    }
    fn memory_footprint(&self) -> usize {
        std::mem::size_of::<Self>()
    }
    fn is_empty_hint(&self) -> bool {
        CrTurnQueue::is_empty_hint(self)
    }
    fn has_empty_hint(&self) -> bool {
        true
    }
}

// --------------------------------------------------------------------------
// YMC and FAA need no registration: a handle is shared access to the queue.
// --------------------------------------------------------------------------

impl QueueHandle<u64> for &YmcQueue {
    fn try_enqueue(&mut self, value: u64) -> Result<(), u64> {
        YmcQueue::enqueue(self, value);
        Ok(())
    }
    fn dequeue(&mut self) -> Option<u64> {
        YmcQueue::dequeue(self)
    }
}

impl WaitFreeQueue<u64> for YmcQueue {
    fn name(&self) -> &'static str {
        "YMC (bug)"
    }
    fn try_handle(&self) -> Option<Box<dyn QueueHandle<u64> + '_>> {
        Some(Box::new(self))
    }
    fn max_threads(&self) -> usize {
        usize::MAX
    }
    fn memory_footprint(&self) -> usize {
        YmcQueue::memory_footprint(self)
    }
    fn is_empty_hint(&self) -> bool {
        YmcQueue::is_empty_hint(self)
    }
    fn has_empty_hint(&self) -> bool {
        true
    }
}

impl QueueHandle<u64> for &FaaQueue {
    fn try_enqueue(&mut self, value: u64) -> Result<(), u64> {
        FaaQueue::enqueue(self, value);
        Ok(())
    }
    fn dequeue(&mut self) -> Option<u64> {
        FaaQueue::dequeue(self)
    }
}

impl WaitFreeQueue<u64> for FaaQueue {
    fn name(&self) -> &'static str {
        "FAA"
    }
    fn try_handle(&self) -> Option<Box<dyn QueueHandle<u64> + '_>> {
        Some(Box::new(self))
    }
    fn max_threads(&self) -> usize {
        usize::MAX
    }
    fn memory_footprint(&self) -> usize {
        FaaQueue::memory_footprint(self)
    }
    fn is_empty_hint(&self) -> bool {
        FaaQueue::is_empty_hint(self)
    }
    fn has_empty_hint(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(queue: &dyn WaitFreeQueue<u64>) {
        let mut h = queue.handle();
        h.enqueue(41);
        assert_eq!(h.try_enqueue(42), Ok(()), "{}", queue.name());
        assert_eq!(h.dequeue(), Some(41), "{}", queue.name());
        assert_eq!(h.dequeue(), Some(42), "{}", queue.name());
        assert!(queue.memory_footprint() > 0);
    }

    #[test]
    fn every_baseline_round_trips_through_the_facade() {
        round_trip(&MsQueue::<u64>::new(2));
        round_trip(&CcQueue::<u64>::new(2));
        round_trip(&Lcrq::new(6, 2));
        round_trip(&CrTurnQueue::new(2));
        round_trip(&YmcQueue::new());
        round_trip(&FaaQueue::new(6));
    }

    #[test]
    fn emptiness_hints_are_truthful_when_advertised() {
        fn check(queue: &dyn WaitFreeQueue<u64>) {
            if !queue.has_empty_hint() {
                return; // constant-false hint; nothing to verify
            }
            assert!(
                queue.is_empty_hint(),
                "{}: fresh queue is empty",
                queue.name()
            );
            let mut h = queue.handle();
            h.enqueue(7);
            assert!(
                !queue.is_empty_hint(),
                "{}: hint sees the quiescent element",
                queue.name()
            );
            assert_eq!(h.dequeue(), Some(7));
            assert!(
                queue.is_empty_hint(),
                "{}: hint clears after the drain",
                queue.name()
            );
        }
        check(&MsQueue::<u64>::new(2));
        check(&CcQueue::<u64>::new(2));
        check(&CrTurnQueue::new(2));
        check(&YmcQueue::new());
        check(&FaaQueue::new(6));
        // LCRQ deliberately reports "no hint" — emptiness would need a
        // hazard-protected ring dereference.
        assert!(!WaitFreeQueue::<u64>::has_empty_hint(&Lcrq::new(6, 2)));
    }

    #[test]
    fn registration_limits_surface_through_try_handle() {
        let q = MsQueue::<u64>::new(1);
        let dynq: &dyn WaitFreeQueue<u64> = &q;
        let h = dynq.try_handle().expect("one slot");
        assert!(dynq.try_handle().is_none());
        drop(h);
        assert!(dynq.try_handle().is_some());
        assert_eq!(dynq.max_threads(), 1);
    }

    #[test]
    fn unregistered_baselines_hand_out_unlimited_handles() {
        let q = YmcQueue::new();
        let dynq: &dyn WaitFreeQueue<u64> = &q;
        assert_eq!(dynq.max_threads(), usize::MAX);
        let _a = dynq.handle();
        let _b = dynq.handle();
    }
}
