//! YMC — Yang & Mellor-Crummey's wait-free queue (reproduced shape).
//!
//! YMC implements the "infinite array queue" (Figure 1 of the wCQ paper) with
//! fetch-and-add tickets over a linked list of fixed-size segments, plus a
//! helping scheme for wait-freedom.  The wCQ paper's role for YMC is twofold:
//! it is the fast F&A-based competitor, and it is the cautionary tale — its
//! memory reclamation is flawed ("strictly described, forfeits wait-freedom")
//! and its memory usage grows with the number of segments.
//!
//! ## Reproduction scope (documented simplification)
//!
//! This reproduction keeps the parts of YMC that the paper's evaluation
//! actually exercises:
//!
//! * the F&A ticket dispensers over an unbounded, segment-linked infinite
//!   array (throughput shape), and
//! * unbounded segment allocation with no mid-run reclamation (memory-growth
//!   shape, Figure 10a; the original's reclamation is the very part the paper
//!   calls flawed — here segments are reclaimed only when the queue drops,
//!   which makes the growth explicit and measurable).
//!
//! The peer-helping machinery that patches the infinite-array livelock is
//! *not* reproduced; like the original Figure 1 queue, pathological schedules
//! can livelock.  DESIGN.md lists this as a substitution; the benchmarks only
//! rely on the throughput/memory shape.

use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering::SeqCst};

use wcq_atomics::CachePadded;

/// Reserved sentinel: slot never written by an enqueuer.
const SLOT_EMPTY: u64 = u64::MAX;
/// Reserved sentinel: slot invalidated by a dequeuer that arrived early.
const SLOT_TAKEN: u64 = u64::MAX - 1;
/// Largest enqueueable value.
pub const MAX_VALUE: u64 = u64::MAX - 2;

/// Number of cells per segment (the original uses 1024-cell segments).
const SEGMENT_CELLS: u64 = 1024;

struct Segment {
    id: u64,
    cells: Box<[AtomicU64]>,
    next: AtomicPtr<Segment>,
}

impl Segment {
    fn new(id: u64) -> *mut Segment {
        Box::into_raw(Box::new(Segment {
            id,
            cells: (0..SEGMENT_CELLS)
                .map(|_| AtomicU64::new(SLOT_EMPTY))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            next: AtomicPtr::new(std::ptr::null_mut()),
        }))
    }
}

/// The YMC-shaped segment queue of `u64` values.
///
/// Unbounded; does not require registration (no per-thread state is needed for
/// the reproduced subset).
pub struct YmcQueue {
    head_ticket: CachePadded<AtomicU64>,
    tail_ticket: CachePadded<AtomicU64>,
    /// First segment ever allocated (segments are only freed on drop).
    first: AtomicPtr<Segment>,
    /// Hints that usually point close to the segments in use.
    head_hint: AtomicPtr<Segment>,
    tail_hint: AtomicPtr<Segment>,
    segments_allocated: AtomicUsize,
}

unsafe impl Send for YmcQueue {}
unsafe impl Sync for YmcQueue {}

impl YmcQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        let first = Segment::new(0);
        Self {
            head_ticket: CachePadded::new(AtomicU64::new(0)),
            tail_ticket: CachePadded::new(AtomicU64::new(0)),
            first: AtomicPtr::new(first),
            head_hint: AtomicPtr::new(first),
            tail_hint: AtomicPtr::new(first),
            segments_allocated: AtomicUsize::new(1),
        }
    }

    /// Total segments ever allocated (the Figure 10a growth statistic).
    pub fn segments_allocated(&self) -> usize {
        self.segments_allocated.load(SeqCst)
    }

    /// Racy emptiness hint: the dequeue ticket has caught up with the
    /// enqueue ticket.  Two counter loads, no segment access.
    pub fn is_empty_hint(&self) -> bool {
        self.head_ticket.load(SeqCst) >= self.tail_ticket.load(SeqCst)
    }

    /// Approximate bytes held by the queue's segments.
    pub fn memory_footprint(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.segments_allocated()
                * (std::mem::size_of::<Segment>()
                    + SEGMENT_CELLS as usize * std::mem::size_of::<AtomicU64>())
    }

    /// Finds (allocating on demand) the segment containing `ticket`, starting
    /// from `hint`.
    fn find_cell<'a>(&'a self, hint: &AtomicPtr<Segment>, ticket: u64) -> &'a AtomicU64 {
        let seg_id = ticket / SEGMENT_CELLS;
        let mut cur = hint.load(SeqCst);
        // The hint may be stale (pointing to an earlier segment) but never
        // dangling: segments are only freed when the queue drops.
        // SAFETY: see above.
        unsafe {
            if (*cur).id > seg_id {
                cur = self.first.load(SeqCst);
            }
            while (*cur).id < seg_id {
                let mut next = (*cur).next.load(SeqCst);
                if next.is_null() {
                    let fresh = Segment::new((*cur).id + 1);
                    match (*cur)
                        .next
                        .compare_exchange(std::ptr::null_mut(), fresh, SeqCst, SeqCst)
                    {
                        Ok(_) => {
                            self.segments_allocated.fetch_add(1, SeqCst);
                            next = fresh;
                        }
                        Err(existing) => {
                            drop(Box::from_raw(fresh));
                            next = existing;
                        }
                    }
                }
                cur = next;
            }
            hint.store(cur, SeqCst);
            &(*cur).cells[(ticket % SEGMENT_CELLS) as usize]
        }
    }

    /// Enqueues `value` (must be `<= MAX_VALUE`).
    pub fn enqueue(&self, value: u64) {
        assert!(
            value <= MAX_VALUE,
            "the two largest u64 values are reserved"
        );
        loop {
            let t = self.tail_ticket.fetch_add(1, SeqCst);
            let cell = self.find_cell(&self.tail_hint, t);
            // The infinite-array XCHG: succeed if the dequeuer did not get
            // here first (Figure 1 of the wCQ paper).
            if cell.swap(value, SeqCst) == SLOT_EMPTY {
                return;
            }
        }
    }

    /// Dequeues a value; `None` when the queue is empty.
    pub fn dequeue(&self) -> Option<u64> {
        loop {
            let h = self.head_ticket.fetch_add(1, SeqCst);
            let cell = self.find_cell(&self.head_hint, h);
            let v = cell.swap(SLOT_TAKEN, SeqCst);
            if v != SLOT_EMPTY && v != SLOT_TAKEN {
                return Some(v);
            }
            if self.tail_ticket.load(SeqCst) <= h + 1 {
                return None;
            }
        }
    }
}

impl Default for YmcQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for YmcQueue {
    fn drop(&mut self) {
        let mut cur = self.first.load(SeqCst);
        while !cur.is_null() {
            // SAFETY: exclusive access during drop; each segment freed once.
            let seg = unsafe { Box::from_raw(cur) };
            cur = seg.next.load(SeqCst);
        }
    }
}

impl std::fmt::Debug for YmcQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("YmcQueue")
            .field("head", &self.head_ticket.load(SeqCst))
            .field("tail", &self.tail_ticket.load(SeqCst))
            .field("segments", &self.segments_allocated())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64 as StdAtomicU64, Ordering};

    #[test]
    fn fifo_single_thread() {
        let q = YmcQueue::new();
        assert_eq!(q.dequeue(), None);
        for i in 0..100 {
            q.enqueue(i);
        }
        for i in 0..100 {
            assert_eq!(q.dequeue(), Some(i));
        }
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn segments_grow_with_usage() {
        let q = YmcQueue::new();
        for i in 0..(3 * SEGMENT_CELLS) {
            q.enqueue(i % 1000);
        }
        assert!(q.segments_allocated() >= 3);
        // Memory is not reclaimed mid-run — that is the reproduced YMC flaw.
        while q.dequeue().is_some() {}
        assert!(q.segments_allocated() >= 3);
    }

    #[test]
    fn empty_dequeues_after_churn_return_none() {
        let q = YmcQueue::new();
        for round in 0..50 {
            q.enqueue(round);
            assert_eq!(q.dequeue(), Some(round));
            assert_eq!(q.dequeue(), None);
        }
    }

    #[test]
    fn mpmc_stress_sum_preserved() {
        const THREADS: u64 = 4;
        const PER_THREAD: u64 = 5_000;
        let q = YmcQueue::new();
        let sum = StdAtomicU64::new(0);
        let count = StdAtomicU64::new(0);
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let q = &q;
                let sum = &sum;
                let count = &count;
                s.spawn(move || {
                    for i in 0..PER_THREAD {
                        q.enqueue(t * PER_THREAD + i);
                        if let Some(v) = q.dequeue() {
                            sum.fetch_add(v, Ordering::Relaxed);
                            count.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    while let Some(v) = q.dequeue() {
                        sum.fetch_add(v, Ordering::Relaxed);
                        count.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        let n = THREADS * PER_THREAD;
        assert_eq!(count.load(Ordering::Relaxed), n);
        assert_eq!(sum.load(Ordering::Relaxed), n * (n - 1) / 2);
    }
}
