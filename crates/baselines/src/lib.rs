//! # wcq-baselines
//!
//! The baseline concurrent queues used in the wCQ paper's evaluation (§6).
//! Every algorithm the paper compares against is reproduced here so the
//! benchmark harness can regenerate each figure:
//!
//! | Module | Paper baseline | Progress | Notes |
//! |---|---|---|---|
//! | [`faa`] | FAA | n/a | not a real queue; the theoretical F&A upper bound |
//! | [`msqueue`] | MSQueue | lock-free | Michael & Scott list queue + hazard pointers |
//! | [`ccqueue`] | CCQueue | blocking (combining) | flat-combining queue |
//! | [`lcrq`] | LCRQ | lock-free | CRQ rings linked by an MS-style outer list |
//! | [`ymc`] | YMC | "wait-free" (flawed reclamation) | segment-based F&A queue; see module docs for the reproduced simplifications |
//! | [`crturn`] | CRTurn | wait-free | turn-based wait-free queue with hazard pointers |
//!
//! All queues follow the same registration-based usage model as `wcq-core`
//! (per-thread handles), because the hazard-pointer domain and the helping
//! arrays are sized for a fixed maximum number of threads — exactly how the
//! paper's benchmark configures them.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod ccqueue;
pub mod crturn;
pub mod faa;
mod facade;
pub mod lcrq;
pub mod msqueue;
pub mod ymc;

pub use ccqueue::CcQueue;
pub use crturn::CrTurnQueue;
pub use faa::FaaQueue;
pub use lcrq::Lcrq;
pub use msqueue::MsQueue;
pub use ymc::YmcQueue;
