//! `CheckedFamily`: the third hardware model — native double-width cells
//! wrapped with scheduler yield points.
//!
//! Structurally this is [`NativeFamily`](wcq_core::wcq::NativeFamily) (every
//! operation maps to the same [`AtomicDouble`] primitive), but each
//! `EntryCell`/`GlobalCtr` operation first passes through
//! [`maybe_yield`], handing the cooperative token scheduler a preemption
//! point *before* the hardware instruction executes.  Because the scheduler
//! serializes execution, a queue instantiated at `WcqQueue<T, CheckedFamily>`
//! runs the exact §3 algorithm while the explorer enumerates interleavings
//! of its atomic steps.  (The instrumented `AtomicDouble` itself adds a
//! second yield per operation via the `wcq-atomics` checkpoint seam; more
//! preemption points only widen the explored space.)
//!
//! Under the `check-mutations` feature one documented site is deliberately
//! broken — see [`GlobalCtr::fetch_add_cnt`] below — so the test-suite can
//! prove the explorer detects a real interleaving bug with a replayable
//! seed.

use wcq_atomics::AtomicDouble;
use wcq_core::wcq::cells::{CellFamily, EntryCell, GlobalCtr};

use crate::sched::maybe_yield;

/// Hardware model for checking: native CAS2 cells with scheduler yield
/// points at every operation.
pub struct CheckedFamily;

/// Entry cell backed by [`AtomicDouble`] with a yield point per operation.
pub struct CheckedEntry(AtomicDouble);

impl EntryCell for CheckedEntry {
    fn new(value: u64, note: u64) -> Self {
        Self(AtomicDouble::new(value, note))
    }
    #[inline]
    fn load(&self) -> (u64, u64) {
        maybe_yield("entry.load");
        self.0.load()
    }
    #[inline]
    fn load_value(&self) -> u64 {
        maybe_yield("entry.load_value");
        self.0.load_lo()
    }
    #[inline]
    fn cas_value(&self, expected: u64, new: u64) -> bool {
        maybe_yield("entry.cas_value");
        self.0.cas_lo(expected, new)
    }
    #[inline]
    fn or_value(&self, bits: u64) -> u64 {
        maybe_yield("entry.or_value");
        self.0.fetch_or_lo(bits)
    }
    #[inline]
    fn cas2_value(&self, expected: (u64, u64), new_value: u64) -> bool {
        maybe_yield("entry.cas2_value");
        self.0.cas2_lo(expected, new_value)
    }
    #[inline]
    fn cas2_note(&self, expected: (u64, u64), new_note: u64) -> bool {
        maybe_yield("entry.cas2_note");
        self.0.cas2_hi(expected, new_note)
    }
}

/// Head/Tail counter backed by [`AtomicDouble`] with a yield point per
/// operation — and, under `check-mutations`, a deliberately torn fast-path
/// F&A.
pub struct CheckedCtr(AtomicDouble);

impl GlobalCtr for CheckedCtr {
    fn new(init: u64) -> Self {
        Self(AtomicDouble::new(init, 0))
    }
    #[inline]
    fn load(&self) -> (u64, u64) {
        maybe_yield("ctr.load");
        self.0.load()
    }
    #[inline]
    fn load_cnt(&self) -> u64 {
        maybe_yield("ctr.load_cnt");
        self.0.load_lo()
    }
    #[inline]
    fn fetch_add_cnt(&self) -> u64 {
        maybe_yield("ctr.faa");
        #[cfg(feature = "check-mutations")]
        {
            // MUTATION (check-mutations): models downgrading the Head/Tail
            // counter F&A from one SeqCst read-modify-write to the weaker
            // access the algorithm must NOT use.  A memory-ordering downgrade
            // alone is invisible under a serialized sequentially-consistent
            // explorer, so the mutation realizes the concrete outcome the
            // downgrade licenses: the RMW is torn into a load and a blind
            // store with a schedule point in between, letting two threads
            // claim the same ring ticket.  The oracle then reports the
            // resulting duplicate/lost value with a replayable seed.
            let prev = self.0.load_lo();
            maybe_yield("ctr.faa.torn");
            self.0.store_lo(prev.wrapping_add(1));
            return prev;
        }
        #[cfg(not(feature = "check-mutations"))]
        self.0.fetch_add_lo(1)
    }
    #[inline]
    fn fetch_add_cnt_n(&self, n: u64) -> u64 {
        maybe_yield("ctr.faa_n");
        self.0.fetch_add_lo(n)
    }
    #[inline]
    fn cas(&self, expected: (u64, u64), new: (u64, u64)) -> bool {
        maybe_yield("ctr.cas");
        self.0.cas2(expected, new)
    }
    #[inline]
    fn cas_cnt_weak(&self, expected_cnt: u64, new_cnt: u64) -> bool {
        maybe_yield("ctr.cas_cnt");
        self.0.cas_lo(expected_cnt, new_cnt)
    }
}

impl CellFamily for CheckedFamily {
    type Entry = CheckedEntry;
    type Ctr = CheckedCtr;
    const NAME: &'static str = "checked-cas2";
}

#[cfg(test)]
mod tests {
    use super::*;

    // The same contract sequences `wcq-core` runs against Native/Llsc cells;
    // with no scheduler registered every yield point is a no-op, so the
    // checked family must behave exactly like the native one.  The torn-F&A
    // mutation is single-thread-equivalent, so the contract holds under
    // `check-mutations` too — by design: only *interleavings* expose it.

    #[test]
    fn entry_contract_matches_native() {
        let c = CheckedEntry::new(5, 0);
        assert_eq!(c.load(), (5, 0));
        assert_eq!(c.load_value(), 5);
        assert!(c.cas_value(5, 6));
        assert!(!c.cas_value(5, 7));
        assert_eq!(c.or_value(0b1000), 6);
        assert!(!c.cas2_value((0b1110, 99), 1));
        assert!(c.cas2_value((0b1110, 0), 1));
        assert!(c.cas2_note((1, 0), 7));
        assert_eq!(c.load(), (1, 7));
    }

    #[test]
    fn ctr_contract_matches_native() {
        let c = CheckedCtr::new(100);
        assert_eq!(c.load(), (100, 0));
        assert_eq!(c.fetch_add_cnt(), 100);
        assert_eq!(c.fetch_add_cnt(), 101);
        assert_eq!(c.load_cnt(), 102);
        assert!(c.cas((102, 0), (103, 5)));
        assert_eq!(c.fetch_add_cnt_n(3), 103);
        assert_eq!(c.load(), (106, 5));
        assert!(c.cas((106, 5), (106, 0)));
        assert!(c.cas_cnt_weak(106, 110));
        assert_eq!(c.load_cnt(), 110);
    }
}
