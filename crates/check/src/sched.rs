//! Cooperative token scheduler: the heart of the schedule explorer.
//!
//! A checked run serializes its worker threads: exactly one registered thread
//! holds the *token* at any moment and all others block on a condition
//! variable.  Before every instrumented atomic operation (and once per driver
//! loop iteration) the running thread passes through [`maybe_yield`], where a
//! seeded [`DetRng`] decides whether the token moves and to whom.  Because
//! every scheduling decision is drawn from the PRNG and execution between
//! yield points is single-threaded, the entire run — every interleaving,
//! every oracle observation — is a pure function of the
//! ([`Schedule::seed`], [`Schedule::depth`]) pair and can be replayed
//! exactly.
//!
//! `depth` controls preemption density in the spirit of probabilistic
//! concurrency testing: at each yield point the token switches to a uniformly
//! random runnable thread with probability `1/depth`.  `depth = 1` re-draws
//! the running thread at every atomic step (the finest interleavings);
//! larger depths produce longer bursts, covering coarser context-switch
//! patterns.  Unlike strict-priority PCT the switch is probabilistic, which
//! keeps the driver's spin loops (a consumer polling an empty queue) live:
//! any runnable thread is re-picked with probability 1 in finitely many
//! yields, so a schedule can never starve the thread that would unblock the
//! spinner.
//!
//! Threads register with an explicit *logical id* chosen by the driver.  The
//! PRNG is consulted only while holding the token (or by the final
//! registrant, whoever that is), so OS-level registration races cannot leak
//! into the schedule.
//!
//! A step bound ([`STEP_BOUND`]) converts any residual livelock into a
//! deterministic panic carrying the schedule pair, rather than a hung test.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering::SeqCst};
use std::sync::{Arc, Condvar, Mutex, Once};

use wcq_harness::DetRng;

/// Abort bound on yield points per run.  The largest smoke plan (4 threads,
/// 64 operations, forced slow path) finishes in a few thousand yields; a run
/// still spinning at ten times that is stuck, not slow.  The bound does not
/// consume PRNG state, so raising it never changes an interleaving — only
/// where a livelocked run is cut off.
pub const STEP_BOUND: u64 = 50_000;

/// A replayable schedule identity: everything the scheduler ever randomizes
/// derives from this pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Schedule {
    /// PRNG seed for every scheduling decision.
    pub seed: u64,
    /// Expected burst length: the token switches with probability `1/depth`
    /// at each yield point (`depth >= 1`; `1` = switch every step).
    pub depth: u32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Slot {
    Vacant,
    Runnable,
    Finished,
}

struct State {
    rng: DetRng,
    depth: u64,
    slots: Vec<Slot>,
    registered: usize,
    started: bool,
    current: Option<usize>,
    steps: u64,
    max_steps: u64,
    aborted: bool,
}

/// The cooperative token scheduler for one checked run.
///
/// Create one per run with [`Scheduler::new`], have every worker thread call
/// [`Scheduler::register`] with a distinct logical id before touching the
/// structure under test, and drop the returned [`Registration`] when the
/// worker is done.  The run begins once all expected threads have
/// registered.
pub struct Scheduler {
    state: Mutex<State>,
    cv: Condvar,
    /// Mirror of `state.steps` readable without the lock after the run.
    steps_mirror: AtomicU64,
}

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Scheduler>, usize)>> = const { RefCell::new(None) };
}

/// The process-global checkpoint dispatcher: routes an instrumented atomic
/// operation to the scheduler the calling thread registered with, and is a
/// no-op on unregistered threads (other tests in the same process, the
/// driver's main thread).
fn dispatcher(op: &'static str) {
    let entry = CURRENT.with(|c| c.borrow().clone());
    if let Some((sched, id)) = entry {
        sched.yield_point(id, op);
    }
}

fn install_global_hook() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        assert!(
            wcq_atomics::checkpoint::install(dispatcher),
            "a foreign checkpoint hook is already installed in this process"
        );
    });
}

/// Explicit yield point for driver loops and `CheckedFamily` operations.
/// No-op unless the calling thread holds a live [`Registration`].
#[inline]
pub fn maybe_yield(op: &'static str) {
    dispatcher(op);
}

/// RAII registration of the calling thread with a [`Scheduler`].  Dropping it
/// (normally or during a panic unwind) marks the thread finished and passes
/// the token on, so one worker's assertion failure cannot wedge the rest.
pub struct Registration {
    sched: Arc<Scheduler>,
    id: usize,
}

impl Drop for Registration {
    fn drop(&mut self) {
        CURRENT.with(|c| *c.borrow_mut() = None);
        self.sched.finish(self.id);
    }
}

/// Picks the next thread to run among runnable slots, excluding `exclude`
/// when an alternative exists.  Consumes PRNG state only when there is a
/// real choice, keeping replay stable across slot counts.
fn pick_next(st: &mut State, exclude: Option<usize>) -> Option<usize> {
    let mut candidates: [usize; 64] = [0; 64];
    let mut n = 0;
    for (i, s) in st.slots.iter().enumerate() {
        if *s == Slot::Runnable && Some(i) != exclude {
            candidates[n] = i;
            n += 1;
        }
    }
    if n == 0 {
        return exclude.filter(|&e| st.slots[e] == Slot::Runnable);
    }
    if n == 1 {
        return Some(candidates[0]);
    }
    Some(candidates[st.rng.next_below(n as u64) as usize])
}

impl Scheduler {
    /// Creates a scheduler expecting exactly `threads` registrations.
    pub fn new(threads: usize, schedule: Schedule) -> Arc<Self> {
        assert!((1..=64).contains(&threads), "1..=64 worker threads");
        Arc::new(Self {
            state: Mutex::new(State {
                rng: DetRng::new(schedule.seed ^ 0x5CED_0123_4567_89AB),
                depth: schedule.depth.max(1) as u64,
                slots: vec![Slot::Vacant; threads],
                registered: 0,
                started: false,
                current: None,
                steps: 0,
                max_steps: STEP_BOUND,
                aborted: false,
            }),
            cv: Condvar::new(),
            steps_mirror: AtomicU64::new(0),
        })
    }

    /// Total yield points passed during the run (deterministic per schedule;
    /// the determinism tests compare it across replays).
    pub fn steps(&self) -> u64 {
        self.steps_mirror.load(SeqCst)
    }

    /// Registers the calling thread under logical id `id` and blocks until
    /// the schedule grants it the token for the first time.  Panics if `id`
    /// is already taken or out of range.
    pub fn register(self: &Arc<Self>, id: usize) -> Registration {
        install_global_hook();
        let mut st = self.state.lock().unwrap();
        assert!(
            st.slots[id] == Slot::Vacant,
            "logical thread id {id} registered twice"
        );
        st.slots[id] = Slot::Runnable;
        st.registered += 1;
        if st.registered == st.slots.len() {
            st.started = true;
            st.current = pick_next(&mut st, None);
            self.cv.notify_all();
        }
        while !(st.aborted || st.started && st.current == Some(id)) {
            st = self.cv.wait(st).unwrap();
        }
        let aborted = st.aborted;
        drop(st);
        if aborted {
            panic!("schedule aborted before thread {id} first ran");
        }
        CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(self), id)));
        Registration {
            sched: Arc::clone(self),
            id,
        }
    }

    fn yield_point(&self, id: usize, op: &'static str) {
        let mut st = self.state.lock().unwrap();
        if st.aborted {
            drop(st);
            panic!("schedule aborted (step bound hit elsewhere) at {op}");
        }
        debug_assert_eq!(
            st.current,
            Some(id),
            "yield from a thread without the token"
        );
        st.steps += 1;
        self.steps_mirror.store(st.steps, SeqCst);
        if st.steps > st.max_steps {
            st.aborted = true;
            self.cv.notify_all();
            let steps = st.steps;
            drop(st);
            panic!(
                "scheduler step bound exceeded ({steps} yields) at {op}: \
                 livelock under this schedule"
            );
        }
        let depth = st.depth;
        let switch = depth <= 1 || st.rng.next_below(depth) == 0;
        if switch {
            if let Some(next) = pick_next(&mut st, Some(id)) {
                if next != id {
                    st.current = Some(next);
                    self.cv.notify_all();
                    while !st.aborted && st.current != Some(id) {
                        st = self.cv.wait(st).unwrap();
                    }
                    if st.aborted {
                        drop(st);
                        panic!("schedule aborted while {op} waited for the token");
                    }
                }
            }
        }
    }

    fn finish(&self, id: usize) {
        let mut st = self.state.lock().unwrap();
        st.slots[id] = Slot::Finished;
        if st.current == Some(id) {
            st.current = pick_next(&mut st, Some(id));
            self.cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    /// N threads append their id at every loop turn; the interleaving string
    /// must be identical across replays of the same schedule and (almost
    /// always) differ across seeds.
    fn trace(seed: u64, depth: u32) -> Vec<usize> {
        let sched = Scheduler::new(3, Schedule { seed, depth });
        let log = Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for id in 0..3 {
                let sched = &sched;
                let log = &log;
                s.spawn(move || {
                    let _reg = sched.register(id);
                    for _ in 0..40 {
                        maybe_yield("test.step");
                        log.lock().unwrap().push(id);
                    }
                });
            }
        });
        log.into_inner().unwrap()
    }

    #[test]
    fn replays_are_identical() {
        for depth in [1, 4, 16] {
            let a = trace(0xABCD, depth);
            let b = trace(0xABCD, depth);
            assert_eq!(a, b, "same (seed, depth) must replay identically");
            assert_eq!(a.len(), 120);
        }
    }

    #[test]
    fn different_seeds_explore_different_interleavings() {
        let distinct: std::collections::HashSet<Vec<usize>> =
            (0..8u64).map(|s| trace(s, 2)).collect();
        assert!(distinct.len() > 1, "seeds must vary the interleaving");
    }

    #[test]
    fn token_sections_are_mutually_exclusive() {
        // After maybe_yield returns, the thread holds the token until its
        // next yield point; no other registered thread may run in between.
        let owner = AtomicU64::new(u64::MAX);
        let sched = Scheduler::new(4, Schedule { seed: 7, depth: 1 });
        std::thread::scope(|s| {
            for id in 0..4u64 {
                let sched = &sched;
                let owner = &owner;
                s.spawn(move || {
                    let _reg = sched.register(id as usize);
                    for _ in 0..200 {
                        maybe_yield("test.enter");
                        owner.store(id, SeqCst);
                        std::hint::black_box(owner);
                        assert_eq!(
                            owner.load(SeqCst),
                            id,
                            "another thread ran inside a token-held section"
                        );
                    }
                });
            }
        });
    }

    #[test]
    fn torn_read_modify_write_is_exposed_by_some_schedule() {
        // read -> yield -> write is exactly the torn-RMW shape the
        // `check-mutations` mode injects; the explorer's value lies in some
        // schedule interleaving two threads inside the window and losing an
        // increment.
        let mut lost_somewhere = false;
        for seed in 0..16u64 {
            let counter = AtomicU64::new(0);
            let sched = Scheduler::new(4, Schedule { seed, depth: 1 });
            std::thread::scope(|s| {
                for id in 0..4 {
                    let sched = &sched;
                    let counter = &counter;
                    s.spawn(move || {
                        let _reg = sched.register(id);
                        for _ in 0..50 {
                            maybe_yield("test.read");
                            let v = counter.load(SeqCst);
                            maybe_yield("test.write");
                            counter.store(v + 1, SeqCst);
                        }
                    });
                }
            });
            if counter.load(SeqCst) < 200 {
                lost_somewhere = true;
            }
        }
        assert!(
            lost_somewhere,
            "no schedule interleaved the torn RMW window; the explorer lost its teeth"
        );
    }

    #[test]
    fn single_thread_never_blocks() {
        let sched = Scheduler::new(1, Schedule { seed: 1, depth: 1 });
        std::thread::scope(|s| {
            let sched = &sched;
            s.spawn(move || {
                let _reg = sched.register(0);
                for _ in 0..1000 {
                    maybe_yield("solo");
                }
            });
        });
        assert!(sched.steps() >= 1000);
    }
}
