//! Schedule-exploring checker driver.
//!
//! A [`CheckPlan`] is a deliberately *tiny* stress shape (1–2 producers,
//! 1–2 consumers, tens of operations over an 8–16 slot ring) derived from a
//! seed exactly like [`StressPlan::from_seed`](wcq_harness::StressPlan)
//! derives the big ones.  Small shapes matter: under the serializing
//! scheduler each run explores one interleaving, so coverage comes from
//! running *thousands of schedules*, not thousands of operations.
//!
//! Every run drives one [`Target`] — the bounded queue under the
//! [`CheckedFamily`] native-CAS2 model or the instrumented LL/SC model, the
//! unbounded wLSCQ, or the channel close protocol — under one
//! [`Schedule`], then feeds the observations to the shared
//! no-loss/no-duplication/per-producer-FIFO oracle
//! ([`verify_observations`]) plus the
//! invariant probes the big stress suite cannot sample deterministically:
//!
//! * **threshold monotonicity bound** — both ring thresholds never exceed
//!   the §5 `3n - 1` bound, sampled by every consumer on every poll;
//! * **close-credit balance** — after a channel run quiesces, zero senders
//!   still hold a pre-close in-flight credit;
//! * **segment residency** — after a drained unbounded run flushes
//!   reclamation, resident segments stay within the Theorem 5.8-style
//!   `live + cache + hazard` bound.
//!
//! A failing run becomes a [`Violation`] carrying its full replay
//! coordinates; [`replay`] re-executes exactly that run, which is how the
//! regression corpus in `tests/check_schedules.rs` pins fixed bugs forever.

use std::collections::HashMap;
use std::mem::ManuallyDrop;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering::SeqCst};
use std::sync::Arc;

use wcq::{builder, ChannelBackend, TryRecvError, TrySendError};
use wcq_core::adaptive::AdaptivePatience;
use wcq_core::wcq::cells::CellFamily;
use wcq_core::wcq::{LlscFamily, WcqConfig, WcqQueue};
use wcq_harness::{decode, encode, verify_observations, DetRng};
use wcq_unbounded::{ShardPolicy, ShardedWcq, UnboundedWcq, DEFAULT_SEGMENT_CACHE};

use crate::family::CheckedFamily;
use crate::sched::{maybe_yield, Schedule, Scheduler};

/// Which structure a checked run drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Target {
    /// Bounded `WcqQueue<u64, CheckedFamily>` — the native-CAS2 model with a
    /// yield point at every cell operation.
    Bounded,
    /// Bounded `WcqQueue<u64, LlscFamily>` — the LL/SC emulation, preempted
    /// through the instrumented `Granule` seam in `wcq-atomics`.  (The
    /// packed `LlscCtr` counter is a plain atomic and is *not* a preemption
    /// point; coverage there comes from the `Bounded` model, whose counter
    /// is fully instrumented.)
    BoundedLlsc,
    /// Unbounded wLSCQ over [`CheckedFamily`] segments, plus the segment
    /// residency probe.
    Unbounded,
    /// The channel close protocol over an LL/SC bounded backend, plus the
    /// in-flight close-credit probe.
    Channel,
    /// Two-shard adaptive [`ShardedWcq`] over [`CheckedFamily`] segments,
    /// with adaptive patience enabled and a *forced* active-prefix shrink
    /// placed mid-run, racing the consumers' drain — proving the full-set
    /// dequeue scan recovers every element a shrink leaves behind the
    /// prefix, at every explored interleaving.
    ShardedAdaptive,
}

impl Target {
    /// Every target, in the order the explorer sweeps them.
    pub fn all() -> [Target; 5] {
        [
            Target::Bounded,
            Target::BoundedLlsc,
            Target::Unbounded,
            Target::Channel,
            Target::ShardedAdaptive,
        ]
    }

    /// Stable name used by the CLI and replay coordinates.
    pub fn name(&self) -> &'static str {
        match self {
            Target::Bounded => "bounded",
            Target::BoundedLlsc => "bounded-llsc",
            Target::Unbounded => "unbounded",
            Target::Channel => "channel",
            Target::ShardedAdaptive => "sharded-adaptive",
        }
    }

    /// Inverse of [`Target::name`].
    pub fn parse(s: &str) -> Option<Target> {
        Target::all().into_iter().find(|t| t.name() == s)
    }
}

/// A tiny, fully seed-derived stress shape for one checked run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckPlan {
    /// The seed every other field derives from.
    pub seed: u64,
    /// Pure-producer threads (1..=2).
    pub producers: usize,
    /// Pure-consumer threads (1..=2; the channel target always uses 1, the
    /// single `Receiver`).
    pub consumers: usize,
    /// Enqueues per producer (8..=31 — small enough that one schedule stays
    /// in the hundreds of yield points).
    pub ops_per_producer: u64,
    /// Ring order (3..=4: 8 or 16 slots, so Full/empty transitions are hit
    /// constantly).
    pub ring_order: u32,
    /// Whether the wCQ patience knobs force every operation down the §4
    /// wait-free slow path.
    pub force_slow_path: bool,
    /// For the channel target: close the receiver after this many values
    /// (`None` = close by dropping all senders).
    pub close_after: Option<u64>,
}

impl CheckPlan {
    /// Derives a plan from `seed`; the same seed always yields the same plan.
    pub fn from_seed(seed: u64) -> Self {
        let mut rng = DetRng::new(seed ^ 0xC11E_C4ED_0001_5A17);
        let producers = rng.range_inclusive(1, 2) as usize;
        let consumers = rng.range_inclusive(1, 2) as usize;
        let ops_per_producer = 8 + rng.next_below(24);
        let ring_order = rng.range_inclusive(3, 4) as u32;
        let force_slow_path = rng.chance(0.5);
        let close_after = rng
            .chance(0.5)
            .then(|| (producers as u64 * ops_per_producer) / 2);
        Self {
            seed,
            producers,
            consumers,
            ops_per_producer,
            ring_order,
            force_slow_path,
            close_after,
        }
    }

    /// Worker threads the plan registers with the scheduler for `target`.
    pub fn threads(&self, target: Target) -> usize {
        match target {
            Target::Channel => self.producers + 1,
            _ => self.producers + self.consumers,
        }
    }

    fn config(&self) -> WcqConfig {
        if self.force_slow_path {
            WcqConfig {
                max_patience_enqueue: 1,
                max_patience_dequeue: 1,
                help_delay: 1,
                catchup_bound: 8,
                ..WcqConfig::default()
            }
        } else {
            WcqConfig::default()
        }
    }

    /// The sharded-adaptive target's config: the plan's patience shape with
    /// the runtime controller switched on, so schedule exploration also
    /// drives the EWMA bookkeeping.  A forced-slow plan clamps the adaptive
    /// range to `[1, 1]`, preserving the slow-path forcing.
    fn adaptive_config(&self) -> WcqConfig {
        let max = if self.force_slow_path { 1 } else { 64 };
        WcqConfig {
            adaptive_patience: Some(AdaptivePatience {
                min: 1,
                max,
                sample_every: 8,
            }),
            ..self.config()
        }
    }
}

/// One oracle or probe failure, with everything needed to replay it.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Seed of the [`CheckPlan`] that was running.
    pub plan_seed: u64,
    /// Structure under test.
    pub target: Target,
    /// The exact schedule that exposed the failure.
    pub schedule: Schedule,
    /// What the oracle or probe reported (or the panic payload).
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{msg}\n  replay: wcq-check --replay {plan:#x} {target} {seed:#x} {depth}",
            msg = self.message,
            plan = self.plan_seed,
            target = self.target.name(),
            seed = self.schedule.seed,
            depth = self.schedule.depth,
        )
    }
}

/// Outcome of an exploration sweep.
#[derive(Debug, Default)]
pub struct ExploreOutcome {
    /// Schedules executed.
    pub runs: u64,
    /// Total scheduler yield points across all runs.
    pub steps: u64,
    /// Every failure found, in sweep order.
    pub violations: Vec<Violation>,
}

/// Runs one `(plan, target, schedule)` triple and reports the first oracle
/// or probe failure, if any.  Panics inside workers (including the
/// scheduler's livelock step bound) are caught and reported as violations
/// too — a checked run must never take the test process down with it.
pub fn run_one(plan: &CheckPlan, target: Target, schedule: Schedule) -> Result<u64, Violation> {
    let result = catch_unwind(AssertUnwindSafe(|| match target {
        Target::Bounded => run_bounded::<CheckedFamily>(plan, schedule),
        Target::BoundedLlsc => run_bounded::<LlscFamily>(plan, schedule),
        Target::Unbounded => run_unbounded(plan, schedule),
        Target::Channel => run_channel(plan, schedule),
        Target::ShardedAdaptive => run_sharded_adaptive(plan, schedule),
    }));
    let violation = |message: String| Violation {
        plan_seed: plan.seed,
        target,
        schedule,
        message,
    };
    match result {
        Ok(Ok(steps)) => Ok(steps),
        Ok(Err(msg)) => Err(violation(msg)),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".into());
            Err(violation(format!("worker panicked: {msg}")))
        }
    }
}

/// Replays one exact run from its printed coordinates; `Ok` means the
/// schedule passes (the bug it once exposed stays fixed).
pub fn replay(
    plan_seed: u64,
    target: Target,
    sched_seed: u64,
    depth: u32,
) -> Result<u64, Violation> {
    run_one(
        &CheckPlan::from_seed(plan_seed),
        target,
        Schedule {
            seed: sched_seed,
            depth,
        },
    )
}

/// Sweeps `plan_seeds` × all targets × `depths` × `sched_seeds_per`
/// schedules each, collecting every violation (it does not stop at the
/// first: one sweep characterizes a bug's schedule sensitivity).
///
/// Runs execute on a worker pool: each run is fully self-contained (its own
/// [`Scheduler`], its own queue, its own oracle state, thread-local
/// checkpoint registration), so independent runs parallelize freely.  The
/// outcome is indexed by grid position, not completion order, so the result
/// — including violation order — is identical to a sequential sweep.
pub fn explore(plan_seeds: &[u64], depths: &[u32], sched_seeds_per: u64) -> ExploreOutcome {
    let mut jobs = Vec::new();
    for &plan_seed in plan_seeds {
        for target in Target::all() {
            for &depth in depths {
                for s in 0..sched_seeds_per {
                    // Schedule seeds are derived, not dense, so sweeping a
                    // different `sched_seeds_per` still shares a prefix.
                    let schedule = Schedule {
                        seed: plan_seed
                            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                            .wrapping_add(s),
                        depth,
                    };
                    jobs.push((plan_seed, target, schedule));
                }
            }
        }
    }

    let next = std::sync::atomic::AtomicUsize::new(0);
    let results: Vec<std::sync::Mutex<Option<Result<u64, Violation>>>> =
        jobs.iter().map(|_| std::sync::Mutex::new(None)).collect();
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(jobs.len().max(1));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, SeqCst);
                let Some(&(plan_seed, target, schedule)) = jobs.get(i) else {
                    break;
                };
                let plan = CheckPlan::from_seed(plan_seed);
                let r = run_one(&plan, target, schedule);
                *results[i].lock().unwrap() = Some(r);
            });
        }
    });

    let mut out = ExploreOutcome::default();
    for slot in results {
        out.runs += 1;
        match slot
            .into_inner()
            .unwrap()
            .expect("worker pool ran every job")
        {
            Ok(steps) => out.steps += steps,
            Err(v) => out.violations.push(v),
        }
    }
    out
}

/// The bounded CI sweep: a fixed seed batch sized to finish well under a
/// minute while still covering every target, both patience modes and three
/// preemption densities.
pub fn smoke() -> ExploreOutcome {
    explore(&[1, 2, 3, 4, 5, 6], &[1, 4, 16], 30)
}

/// Shared post-run oracle: exact count balance plus
/// no-invention/no-duplication/per-producer-FIFO.
fn verify_counts(
    enqueue_counts: &HashMap<usize, u64>,
    observations: &[Vec<u64>],
) -> Result<(), String> {
    let expected: u64 = enqueue_counts.values().sum();
    let got: u64 = observations.iter().map(|o| o.len() as u64).sum();
    if got != expected {
        return Err(format!(
            "loss or over-consumption: {expected} values enqueued but {got} dequeued"
        ));
    }
    verify_observations(enqueue_counts, observations, true)
}

fn run_bounded<F: CellFamily>(plan: &CheckPlan, schedule: Schedule) -> Result<u64, String> {
    let threads = plan.producers + plan.consumers;
    let sched = Scheduler::new(threads, schedule);
    // `ManuallyDrop`: a violating run (especially under `check-mutations`)
    // can leave the ring corrupt enough that the queue's draining `Drop`
    // panics — and when that happens during the unwind of the worker's
    // original panic, the double panic aborts the whole sweep process.
    // Leak the queue on every non-clean exit; the clean path below still
    // exercises `Drop`.
    let queue: ManuallyDrop<WcqQueue<u64, F>> = ManuallyDrop::new(WcqQueue::with_config(
        plan.ring_order,
        threads,
        plan.config(),
    ));
    let expected = plan.producers as u64 * plan.ops_per_producer;
    let consumed = AtomicU64::new(0);

    let observations = std::thread::scope(|s| {
        let mut handles = Vec::new();
        for wid in 0..plan.producers {
            let sched = Arc::clone(&sched);
            let queue = &queue;
            let ops = plan.ops_per_producer;
            handles.push(s.spawn(move || {
                let _reg = sched.register(wid);
                let mut h = queue.register().expect("producer slot");
                for seq in 1..=ops {
                    let mut v = encode(wid, seq);
                    loop {
                        maybe_yield("driver.enqueue");
                        match h.enqueue(v) {
                            Ok(()) => break,
                            Err(back) => v = back, // ring full: retry
                        }
                    }
                }
                Ok(Vec::new())
            }));
        }
        for c in 0..plan.consumers {
            let sched = Arc::clone(&sched);
            let queue = &queue;
            let consumed = &consumed;
            handles.push(s.spawn(move || -> Result<Vec<u64>, String> {
                let _reg = sched.register(plan.producers + c);
                let mut h = queue.register().expect("consumer slot");
                let mut local = Vec::new();
                while consumed.load(SeqCst) < expected {
                    // The threshold<0 empty fast-exit touches no cell, so the
                    // driver loop itself must be a preemption point or a
                    // polling consumer would hold the token forever.
                    maybe_yield("driver.poll");
                    let (aq, fq, max) = queue.ring_thresholds();
                    if aq > max || fq > max {
                        return Err(format!(
                            "threshold bound violated: aq={aq} fq={fq} exceeds 3n-1={max}"
                        ));
                    }
                    if let Some(v) = h.dequeue() {
                        local.push(v);
                        consumed.fetch_add(1, SeqCst);
                    }
                }
                Ok(local)
            }));
        }
        handles
            .into_iter()
            .map(|h| {
                // Re-raise a worker panic with its original payload so the
                // `catch_unwind` in `run_one` reports the real message (e.g.
                // the scheduler's livelock diagnosis), not a generic one.
                h.join()
                    .unwrap_or_else(|payload| std::panic::resume_unwind(payload))
            })
            .collect::<Result<Vec<_>, String>>()
    })?;

    let enqueue_counts: HashMap<usize, u64> = (0..plan.producers)
        .map(|wid| (wid, plan.ops_per_producer))
        .collect();
    verify_counts(&enqueue_counts, &observations)?;
    if let Some(v) = queue.register().and_then(|mut h| h.dequeue()) {
        let (w, s) = decode(v);
        return Err(format!(
            "value left behind after verified drain: worker {w} seq {s}"
        ));
    }
    drop(ManuallyDrop::into_inner(queue));
    Ok(sched.steps())
}

fn run_unbounded(plan: &CheckPlan, schedule: Schedule) -> Result<u64, String> {
    let threads = plan.producers + plan.consumers;
    let sched = Scheduler::new(threads, schedule);
    // Leaked on non-clean exit for the same double-panic reason as
    // `run_bounded`.
    let queue: ManuallyDrop<UnboundedWcq<u64, CheckedFamily>> = ManuallyDrop::new(
        UnboundedWcq::with_config(plan.ring_order, threads, plan.config()),
    );
    let expected = plan.producers as u64 * plan.ops_per_producer;
    let consumed = AtomicU64::new(0);

    let observations = std::thread::scope(|s| {
        let mut handles = Vec::new();
        for wid in 0..plan.producers {
            let sched = Arc::clone(&sched);
            let queue = &queue;
            let ops = plan.ops_per_producer;
            handles.push(s.spawn(move || {
                let _reg = sched.register(wid);
                let mut h = queue.register().expect("producer slot");
                for seq in 1..=ops {
                    maybe_yield("driver.enqueue");
                    h.enqueue(encode(wid, seq));
                }
                h.flush_reclamation();
                Ok(Vec::new())
            }));
        }
        for c in 0..plan.consumers {
            let sched = Arc::clone(&sched);
            let queue = &queue;
            let consumed = &consumed;
            handles.push(s.spawn(move || -> Result<Vec<u64>, String> {
                let _reg = sched.register(plan.producers + c);
                let mut h = queue.register().expect("consumer slot");
                let mut local = Vec::new();
                while consumed.load(SeqCst) < expected {
                    maybe_yield("driver.poll");
                    if let Some(v) = h.dequeue() {
                        local.push(v);
                        consumed.fetch_add(1, SeqCst);
                    }
                }
                h.flush_reclamation();
                Ok(local)
            }));
        }
        handles
            .into_iter()
            .map(|h| {
                // Re-raise a worker panic with its original payload so the
                // `catch_unwind` in `run_one` reports the real message (e.g.
                // the scheduler's livelock diagnosis), not a generic one.
                h.join()
                    .unwrap_or_else(|payload| std::panic::resume_unwind(payload))
            })
            .collect::<Result<Vec<_>, String>>()
    })?;

    let enqueue_counts: HashMap<usize, u64> = (0..plan.producers)
        .map(|wid| (wid, plan.ops_per_producer))
        .collect();
    verify_counts(&enqueue_counts, &observations)?;

    // Theorem 5.8-style residency probe: after a verified full drain with
    // reclamation flushed, memory must have collapsed back to the live
    // segment, the bounded reuse cache, and at most one hazard-pinned
    // straggler per thread.
    let stats = queue.segment_stats();
    let bound = 1 + DEFAULT_SEGMENT_CACHE + threads;
    if stats.resident() > bound {
        return Err(format!(
            "segment residency bound violated after drain: {resident} resident \
             (live {live} + cached {cached} + retired {retired}) > {bound}",
            resident = stats.resident(),
            live = stats.live,
            cached = stats.cached,
            retired = stats.retired_pending,
        ));
    }
    drop(ManuallyDrop::into_inner(queue));
    Ok(sched.steps())
}

fn run_sharded_adaptive(plan: &CheckPlan, schedule: Schedule) -> Result<u64, String> {
    const SHARDS: usize = 2;
    let threads = plan.producers + plan.consumers;
    let sched = Scheduler::new(threads, schedule);
    // Leaked on non-clean exit for the same double-panic reason as
    // `run_bounded`.
    let queue: ManuallyDrop<ShardedWcq<u64, CheckedFamily>> =
        ManuallyDrop::new(ShardedWcq::with_config_and_cache(
            SHARDS,
            plan.ring_order,
            threads,
            plan.adaptive_config(),
            DEFAULT_SEGMENT_CACHE,
            ShardPolicy::Adaptive,
        ));
    let expected = plan.producers as u64 * plan.ops_per_producer;
    let consumed = AtomicU64::new(0);

    let observations = std::thread::scope(|s| {
        let mut handles = Vec::new();
        for wid in 0..plan.producers {
            let sched = Arc::clone(&sched);
            let queue = &queue;
            let ops = plan.ops_per_producer;
            handles.push(s.spawn(move || {
                let _reg = sched.register(wid);
                let mut h = queue.register().expect("producer slot");
                // First half with the prefix forced wide, so both shards
                // hold elements; then shrink it back to one shard *while
                // the consumers are mid-drain* and keep enqueueing.  The
                // transitions land at whatever points the schedule chooses.
                h.debug_set_active(SHARDS);
                for seq in 1..=ops {
                    if seq == ops / 2 + 1 {
                        h.debug_set_active(1);
                    }
                    maybe_yield("driver.enqueue");
                    h.enqueue(encode(wid, seq));
                }
                h.flush_reclamation();
                Ok(Vec::new())
            }));
        }
        for c in 0..plan.consumers {
            let sched = Arc::clone(&sched);
            let queue = &queue;
            let consumed = &consumed;
            handles.push(s.spawn(move || -> Result<Vec<u64>, String> {
                let _reg = sched.register(plan.producers + c);
                let mut h = queue.register().expect("consumer slot");
                let mut local = Vec::new();
                while consumed.load(SeqCst) < expected {
                    maybe_yield("driver.poll");
                    if let Some(v) = h.dequeue() {
                        local.push(v);
                        consumed.fetch_add(1, SeqCst);
                    }
                }
                h.flush_reclamation();
                Ok(local)
            }));
        }
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|payload| std::panic::resume_unwind(payload))
            })
            .collect::<Result<Vec<_>, String>>()
    })?;

    let enqueue_counts: HashMap<usize, u64> = (0..plan.producers)
        .map(|wid| (wid, plan.ops_per_producer))
        .collect();
    // Count balance (a shrink that strands an element behind the prefix
    // shows up here as loss), no invention, no duplication.  Per-producer
    // FIFO is *not* asserted: adaptive routing deliberately spreads one
    // producer across shards, whose streams may interleave.
    let got: u64 = observations.iter().map(|o| o.len() as u64).sum();
    if got != expected {
        return Err(format!(
            "shrink-vs-drain loss or over-consumption: {expected} values              enqueued but {got} dequeued"
        ));
    }
    verify_observations(&enqueue_counts, &observations, false)?;

    // Per-shard residency probe, composed over the shard set.
    let stats = queue.segment_stats();
    let bound = SHARDS * (1 + DEFAULT_SEGMENT_CACHE + threads);
    if stats.resident() > bound {
        return Err(format!(
            "sharded segment residency bound violated after drain: {resident}              resident (live {live} + cached {cached} + retired {retired}) > {bound}",
            resident = stats.resident(),
            live = stats.live,
            cached = stats.cached,
            retired = stats.retired_pending,
        ));
    }
    drop(ManuallyDrop::into_inner(queue));
    Ok(sched.steps())
}

fn run_channel(plan: &CheckPlan, schedule: Schedule) -> Result<u64, String> {
    let threads = plan.producers + 1;
    let sched = Scheduler::new(threads, schedule);
    // LL/SC cells so the Granule checkpoint seam supplies in-algorithm
    // preemption points; bounded backend so Full and the close-credit
    // hand-off both happen.
    let (tx, mut rx) = builder()
        .llsc()
        .threads(threads)
        .capacity_order(plan.ring_order)
        .config(plan.config())
        .backend(ChannelBackend::Bounded)
        .build_channel::<u64>();
    let close_after = plan.close_after;

    // Clone every producer's sender up front and drop the original *before*
    // any scheduled thread runs.  The driver thread is not registered with
    // the scheduler, so a late `drop(tx)` on it would be an unscheduled
    // liveness dependency: the consumer (scheduled, yielding every poll) can
    // exhaust the step bound waiting for a close signal that only the
    // OS-starved driver thread can deliver — a nondeterministic harness
    // artifact, not an algorithm bug.  After this point the close signal is
    // driven entirely by scheduled producer drops.
    let mut handles: Vec<_> = (0..plan.producers).map(|_| tx.clone()).collect();
    drop(tx);

    let (accepted_counts, consumer) = std::thread::scope(|s| {
        let mut producers = Vec::new();
        for wid in 0..plan.producers {
            let sched = Arc::clone(&sched);
            let mut tx = handles.pop().expect("one sender clone per producer");
            let ops = plan.ops_per_producer;
            producers.push(s.spawn(move || {
                let _reg = sched.register(wid);
                let mut accepted = 0u64;
                'send: for seq in 1..=ops {
                    let mut v = encode(wid, seq);
                    loop {
                        maybe_yield("driver.send");
                        match tx.try_send(v) {
                            Ok(()) => {
                                accepted += 1;
                                break;
                            }
                            Err(TrySendError::Full(back)) => v = back,
                            Err(TrySendError::Closed(_)) => break 'send,
                        }
                    }
                }
                // Drop the sender while this thread is still registered (and
                // thus holds the token): a closure capture would otherwise
                // drop *after* `_reg`, putting the final sender-drop — the
                // close signal the consumer spins on — outside the scheduler
                // again.
                drop(tx);
                (wid, accepted)
            }));
        }
        let consumer = {
            let sched = Arc::clone(&sched);
            s.spawn(move || {
                let _reg = sched.register(plan.producers);
                let mut local = Vec::new();
                loop {
                    maybe_yield("driver.recv");
                    match rx.try_recv() {
                        Ok(v) => {
                            local.push(v);
                            if close_after == Some(local.len() as u64) {
                                rx.close();
                            }
                        }
                        Err(TryRecvError::Empty) => {}
                        Err(TryRecvError::Closed) => break,
                    }
                }
                (local, rx)
            })
        };
        let accepted: Vec<(usize, u64)> = producers
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|payload| std::panic::resume_unwind(payload))
            })
            .collect();
        (
            accepted,
            consumer
                .join()
                .unwrap_or_else(|payload| std::panic::resume_unwind(payload)),
        )
    });
    let (observed, rx) = consumer;

    // Close-credit balance: with every endpoint quiesced, no send may still
    // hold a pre-close in-flight credit — a leaked credit means the close
    // protocol lost track of a straggling send.
    let credits = rx.debug_inflight_credits();
    if credits != 0 {
        return Err(format!(
            "close-credit balance violated: {credits} in-flight credits after quiescence"
        ));
    }

    // Accepted sends form a contiguous per-producer prefix (each producer
    // stops at its first Closed), so the full oracle applies with the
    // accepted counts as the enqueue counts: every *accepted* value must
    // come out exactly once, in order, before Closed was reported.
    let enqueue_counts: HashMap<usize, u64> = accepted_counts.into_iter().collect();
    verify_counts(&enqueue_counts, &[observed])?;
    Ok(sched.steps())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_reproducible() {
        for seed in [0u64, 1, 7, u64::MAX] {
            assert_eq!(CheckPlan::from_seed(seed), CheckPlan::from_seed(seed));
        }
    }

    #[test]
    fn plans_vary_and_stay_tiny() {
        let plans: Vec<_> = (0..32u64).map(CheckPlan::from_seed).collect();
        assert!(plans.iter().any(|p| p.force_slow_path));
        assert!(plans.iter().any(|p| !p.force_slow_path));
        assert!(plans.iter().any(|p| p.close_after.is_some()));
        for p in &plans {
            assert!(p.producers >= 1 && p.producers <= 2);
            assert!(p.consumers >= 1 && p.consumers <= 2);
            assert!(p.ops_per_producer >= 8 && p.ops_per_producer <= 31);
            assert!(p.ring_order == 3 || p.ring_order == 4);
        }
    }

    #[test]
    fn target_names_roundtrip() {
        for t in Target::all() {
            assert_eq!(Target::parse(t.name()), Some(t));
        }
        assert_eq!(Target::parse("nope"), None);
    }

    #[test]
    fn violation_prints_replay_coordinates() {
        let v = Violation {
            plan_seed: 0x2A,
            target: Target::Channel,
            schedule: Schedule {
                seed: 0x1B,
                depth: 4,
            },
            message: "probe failed".into(),
        };
        let s = v.to_string();
        assert!(s.contains("--replay 0x2a channel 0x1b 4"), "{s}");
    }
}
