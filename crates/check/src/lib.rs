//! # wcq-check
//!
//! Deterministic analysis subsystem for the wCQ reproduction: a cooperative
//! token **scheduler** ([`sched`]) that serializes threads and explores
//! interleavings PCT-style from a `(seed, depth)` pair, a third hardware
//! model ([`family::CheckedFamily`]) whose every cell operation is a
//! preemption point, an **explorer** ([`explore()`]) that runs shrunken
//! stress plans under thousands of schedules against the no-loss/no-dup/FIFO
//! oracle plus invariant probes (threshold bound, close-credit balance,
//! segment residency), and a hand-rolled source **lint** ([`lint`]) enforcing
//! `// relaxed:` / `// SAFETY:` justification comments and the hot-path
//! `Mutex` / `static mut` ban.
//!
//! Everything is deterministic and replayable: a failing schedule prints its
//! `(plan_seed, target, sched_seed, depth)` coordinates, and
//! [`explore::replay`] re-runs exactly that execution as a one-line
//! regression test (see `tests/check_schedules.rs` at the workspace root).
//!
//! No external dependencies; the scheduler reuses the workspace's
//! [`DetRng`](wcq_harness::DetRng) and the oracle reuses
//! [`verify_observations`](wcq_harness::verify_observations).

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod explore;
pub mod family;
pub mod lint;
pub mod sched;

pub use explore::{explore, replay, run_one, smoke, CheckPlan, ExploreOutcome, Target, Violation};
pub use family::CheckedFamily;
pub use lint::{lint_source, lint_tree, Finding};
pub use sched::{Schedule, Scheduler};
