//! Hand-rolled source lint for the hot-path crates.
//!
//! Three rules, enforced over `crates/{atomics,core,unbounded}/src` (the
//! crates whose code runs inside enqueue/dequeue):
//!
//! 1. **`relaxed-needs-justification`** — every `Ordering::Relaxed` (or bare
//!    imported `Relaxed`) use must carry a `// relaxed:` comment on the same
//!    line or within the three preceding lines explaining why the weak
//!    ordering is sound at that site.
//! 2. **`unsafe-needs-safety-comment`** — every `unsafe {` block and
//!    `unsafe impl` must carry a `// SAFETY:` comment in the same window.
//!    (`unsafe fn` *declarations* are exempt: with
//!    `deny(unsafe_op_in_unsafe_fn)` their bodies need explicit inner
//!    `unsafe {}` blocks, and those are where the obligations live.)
//! 3. **`no-blocking-in-hot-path`** — `Mutex` and `static mut` are banned
//!    outright: a lock in a wait-free queue silently voids the progress
//!    guarantee the paper proves, and `static mut` is UB-prone shared
//!    mutability the atomics already replace.
//!
//! The scan is a line-oriented token scan, not a parser: `use` statements
//! (including multi-line ones) and comment lines are skipped, trailing
//! comments are stripped before token matching, and everything at or after a
//! `#[cfg(test)]` marker is ignored (test modules sit at the end of files by
//! repo convention and may lock freely).  A justification is accepted on the
//! flagged line, in the `WINDOW` preceding lines, or anywhere in the
//! contiguous comment/attribute block immediately above; consecutive lines
//! carrying the same token (an `unsafe impl Send`/`Sync` pair, a multi-line
//! tuple of `Relaxed` loads) share the first line's justification.  That is
//! crude but dependency-free, fast, and — because it runs in CI over a tree
//! that must stay clean — false positives surface immediately as a red build
//! with a file:line to either justify or fix.

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// How many preceding lines a justification comment may sit above its use.
const WINDOW: usize = 3;

/// One lint rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// File the finding is in (label passed to [`lint_source`]).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Stable rule identifier.
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// True if `haystack` contains `needle` as a whole identifier token.
fn has_token(haystack: &str, needle: &str) -> bool {
    let ident = |c: char| c.is_alphanumeric() || c == '_';
    let mut start = 0;
    while let Some(pos) = haystack[start..].find(needle) {
        let at = start + pos;
        let before_ok = at == 0 || !haystack[..at].chars().next_back().is_some_and(ident);
        let after = at + needle.len();
        let after_ok =
            after >= haystack.len() || !haystack[after..].chars().next().is_some_and(ident);
        if before_ok && after_ok {
            return true;
        }
        start = at + needle.len();
    }
    false
}

/// The code portion of a line: everything before a trailing `//` comment.
/// (Good enough for this tree — string literals containing `//` would fool
/// it, but the linted crates have none on token-bearing lines, and a false
/// *negative* there only means a marker comment is honored early.)
fn code_part(line: &str) -> &str {
    match line.find("//") {
        Some(pos) => &line[..pos],
        None => line,
    }
}

/// True if line `i` carries a `marker` justification: on the line itself, in
/// the `WINDOW` preceding lines, or anywhere in the contiguous
/// comment/attribute/blank block immediately above (long `// SAFETY:`
/// arguments legitimately run past any fixed window).
fn justified(lines: &[&str], i: usize, marker: &str) -> bool {
    if lines[i.saturating_sub(WINDOW)..=i]
        .iter()
        .any(|l| l.contains(marker))
    {
        return true;
    }
    let mut j = i;
    while j > 0 {
        j -= 1;
        let t = lines[j].trim_start();
        if t.starts_with("//") {
            if t.contains(marker) {
                return true;
            }
        } else if !(t.is_empty() || t.starts_with("#[")) {
            break;
        }
    }
    false
}

/// Lints one source file's text.  `file` is only a label for findings.
pub fn lint_source(file: &str, source: &str) -> Vec<Finding> {
    let lines: Vec<&str> = source.lines().collect();
    let mut findings = Vec::new();
    let mut in_use = false;
    // Grouping state: whether the *previous* line carried the token and was
    // accepted, so `unsafe impl Send`/`Sync` pairs and multi-line tuples of
    // `Relaxed` loads share one justification.
    let mut prev_relaxed_ok = false;
    let mut prev_unsafe_ok = false;
    for (i, &raw) in lines.iter().enumerate() {
        let trimmed = raw.trim_start();
        // Test modules sit at the end of files by convention; everything at
        // or after the marker is out of scope for hot-path rules.
        if trimmed.starts_with("#[cfg(test)]") {
            break;
        }
        if trimmed.starts_with("//") {
            continue;
        }
        let code = code_part(raw);
        if trimmed.starts_with("use ") || trimmed.starts_with("pub use ") {
            in_use = true;
        }
        let is_use = in_use;
        if in_use && code.contains(';') {
            in_use = false;
        }

        let this_relaxed = !is_use && has_token(code, "Relaxed");
        if this_relaxed && !justified(&lines, i, "relaxed:") && !prev_relaxed_ok {
            findings.push(Finding {
                file: file.into(),
                line: i + 1,
                rule: "relaxed-needs-justification",
                message: "Ordering::Relaxed without a nearby `// relaxed:` \
                          justification"
                    .into(),
            });
            prev_relaxed_ok = false;
        } else {
            prev_relaxed_ok = this_relaxed;
        }

        let mut this_unsafe_ok = false;
        if has_token(code, "unsafe") {
            let after = code
                .split("unsafe")
                .nth(1)
                .map(str::trim_start)
                .unwrap_or("");
            let is_fn_decl = after.starts_with("fn") || after.starts_with("extern");
            if is_fn_decl {
                this_unsafe_ok = prev_unsafe_ok;
            } else if justified(&lines, i, "SAFETY:") || prev_unsafe_ok {
                this_unsafe_ok = true;
            } else {
                findings.push(Finding {
                    file: file.into(),
                    line: i + 1,
                    rule: "unsafe-needs-safety-comment",
                    message: "unsafe block/impl without a nearby `// SAFETY:` \
                              comment"
                        .into(),
                });
            }
        }
        prev_unsafe_ok = this_unsafe_ok;

        if !is_use && has_token(code, "Mutex") {
            findings.push(Finding {
                file: file.into(),
                line: i + 1,
                rule: "no-blocking-in-hot-path",
                message: "Mutex is forbidden in hot-path crates (voids the \
                          wait-freedom guarantee)"
                    .into(),
            });
        }
        if code.contains("static mut ") {
            findings.push(Finding {
                file: file.into(),
                line: i + 1,
                rule: "no-blocking-in-hot-path",
                message: "static mut is forbidden in hot-path crates".into(),
            });
        }
    }
    findings
}

/// The crates whose `src/` trees the lint covers.
pub const HOT_PATH_CRATES: [&str; 3] = [
    "crates/atomics/src",
    "crates/core/src",
    "crates/unbounded/src",
];

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.path());
    for entry in entries {
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints every `.rs` file under the hot-path crates of the repo at `root`.
/// Returns an error string if a directory is missing (wrong root) rather
/// than silently passing an empty scan.
pub fn lint_tree(root: &Path) -> Result<Vec<Finding>, String> {
    let mut findings = Vec::new();
    for rel in HOT_PATH_CRATES {
        let dir = root.join(rel);
        if !dir.is_dir() {
            return Err(format!(
                "lint root {root:?} has no {rel}/ — not the repository root?"
            ));
        }
        let mut files = Vec::new();
        collect_rs_files(&dir, &mut files).map_err(|e| format!("walking {rel}: {e}"))?;
        for file in files {
            let source = fs::read_to_string(&file).map_err(|e| format!("reading {file:?}: {e}"))?;
            let label = file
                .strip_prefix(root)
                .unwrap_or(&file)
                .display()
                .to_string();
            findings.extend(lint_source(&label, &source));
        }
    }
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules(src: &str) -> Vec<&'static str> {
        lint_source("fixture.rs", src)
            .into_iter()
            .map(|f| f.rule)
            .collect()
    }

    #[test]
    fn clean_source_passes() {
        let src = r#"
// relaxed: counter is monotonic and only read for statistics.
let x = c.load(Ordering::Relaxed);
// SAFETY: pointer was produced by Box::into_raw above.
let y = unsafe { &*p };
"#;
        assert!(rules(src).is_empty());
    }

    #[test]
    fn unjustified_relaxed_is_flagged() {
        assert_eq!(
            rules("let x = c.load(Ordering::Relaxed);"),
            vec!["relaxed-needs-justification"]
        );
        // Bare imported token counts too.
        assert_eq!(
            rules("let x = c.load(Relaxed);"),
            vec!["relaxed-needs-justification"]
        );
        // Same-line trailing justification is accepted.
        assert!(rules("let x = c.load(Relaxed); // relaxed: stats only").is_empty());
    }

    #[test]
    fn relaxed_in_identifier_is_not_flagged() {
        assert!(rules("let RelaxedFoo = 1; let un_Relaxed_x = 2;").is_empty());
    }

    #[test]
    fn unsafe_without_safety_is_flagged() {
        assert_eq!(
            rules("let y = unsafe { &*p };"),
            vec!["unsafe-needs-safety-comment"]
        );
        assert_eq!(
            rules("unsafe impl Send for Foo {}"),
            vec!["unsafe-needs-safety-comment"]
        );
    }

    #[test]
    fn unsafe_fn_declaration_is_exempt() {
        assert!(rules("pub unsafe fn reopen(&self) {").is_empty());
        assert!(rules("unsafe extern \"C\" fn hook() {").is_empty());
    }

    #[test]
    fn safety_comment_must_be_adjacent() {
        let near = "// SAFETY: fine.\n\n\nunsafe { work() };";
        assert!(rules(near).is_empty());
        // A long comment block immediately above counts, even past the
        // fixed window...
        let block = "// SAFETY: a slot index is owned by exactly one thread\n\
                     // at a time; the rings hand it over with SeqCst ops\n\
                     // on either side, ordering the data accesses.\n\
                     // (More prose pushing the marker out of the window.)\n\
                     // (And more.)\n\
                     unsafe impl Send for Foo {}";
        assert!(rules(block).is_empty());
        // ...but an intervening code line breaks the association.
        let broken = "// SAFETY: talks about something else.\nlet x = 1;\n\n\nunsafe { work() };";
        assert_eq!(rules(broken), vec!["unsafe-needs-safety-comment"]);
    }

    #[test]
    fn consecutive_token_lines_share_one_justification() {
        let pair = "// SAFETY: raw pointers only cross with their owner.\n\
                    unsafe impl Send for Foo {}\n\
                    unsafe impl Sync for Foo {}";
        assert!(rules(pair).is_empty());
        let tuple = "// relaxed: serialized under the stripe lock.\n\
                     (\n\
                     a.load(Relaxed),\n\
                     b.load(Relaxed),\n\
                     )";
        assert!(rules(tuple).is_empty());
        // An unjustified first line does not launder the second.
        let bad = "unsafe impl Send for Foo {}\nunsafe impl Sync for Foo {}";
        assert_eq!(
            rules(bad),
            vec!["unsafe-needs-safety-comment", "unsafe-needs-safety-comment"]
        );
    }

    #[test]
    fn multi_line_use_statements_are_skipped() {
        let src =
            "use std::sync::atomic::{\n    AtomicUsize,\n    Ordering::{Relaxed, SeqCst},\n};";
        assert!(rules(src).is_empty());
    }

    #[test]
    fn mutex_and_static_mut_are_banned() {
        assert_eq!(
            rules("let m = Mutex::new(0);"),
            vec!["no-blocking-in-hot-path"]
        );
        assert_eq!(
            rules("static mut COUNTER: u64 = 0;"),
            vec!["no-blocking-in-hot-path"]
        );
    }

    #[test]
    fn use_lines_comments_and_test_modules_are_skipped() {
        assert!(rules("use std::sync::Mutex;").is_empty());
        assert!(rules("// a Mutex would be wrong here").is_empty());
        let test_mod = "#[cfg(test)]\nmod tests {\n    use super::*;\n    fn f() { let m = Mutex::new(0); let _ = unsafe { x() }; }\n}";
        assert!(rules(test_mod).is_empty());
    }

    #[test]
    fn real_tree_is_clean() {
        // The repo-level guarantee the CI step enforces, kept here too so
        // `cargo test -p wcq-check` alone catches a regression.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let findings = lint_tree(&root).expect("workspace root resolves");
        assert!(
            findings.is_empty(),
            "hot-path lint found {} violation(s):\n{}",
            findings.len(),
            findings
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
