//! `wcq-check` — the analysis CLI.
//!
//! ```text
//! wcq-check --lint [ROOT]                  source lint over the hot-path crates
//! wcq-check --smoke                        fixed-seed bounded exploration (CI, <60s)
//! wcq-check --explore [PLANS] [SCHEDS]     wider sweep (default 16 plans x 100 schedules)
//! wcq-check --replay PLAN TARGET SEED DEPTH   re-run one schedule from a violation
//! ```
//!
//! Exit codes: `0` clean, `1` violations/findings, `2` usage or I/O error.
//!
//! The binary installs the harness's counting allocator so exploration can
//! report peak heap alongside the per-run segment-residency probe (library
//! users and the test suites run without it; the probes that need it detect
//! its absence and skip).

use std::path::Path;
use std::process::ExitCode;

use wcq_check::{explore, lint, replay, smoke, CheckPlan, Schedule, Target};
use wcq_harness::memtrack;

#[global_allocator]
static ALLOC: memtrack::CountingAllocator = memtrack::CountingAllocator;

fn usage() -> ExitCode {
    eprintln!(
        "usage: wcq-check --lint [root]\n\
         \x20      wcq-check --smoke\n\
         \x20      wcq-check --explore [plan_count] [sched_seeds_per]\n\
         \x20      wcq-check --replay <plan_seed> <target> <sched_seed> <depth>\n\
         targets: bounded bounded-llsc unbounded channel sharded-adaptive"
    );
    ExitCode::from(2)
}

fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

/// Silences the default panic hook for the duration of a sweep: worker
/// panics (livelock bound, invariant probes) are an expected violation
/// signal, captured by `run_one`'s `catch_unwind` and reported through
/// [`explore::Violation`] — the default hook would print a full backtrace
/// per violating schedule and drown the summary.
fn quiet_panics() {
    std::panic::set_hook(Box::new(|_| {}));
}

fn report(outcome: &explore::ExploreOutcome) -> ExitCode {
    let mem = memtrack::snapshot();
    println!(
        "explored {} schedules ({} yield points), peak heap {} KiB",
        outcome.runs,
        outcome.steps,
        mem.peak_bytes / 1024
    );
    if outcome.violations.is_empty() {
        println!("no violations");
        ExitCode::SUCCESS
    } else {
        println!("{} violation(s):", outcome.violations.len());
        for v in &outcome.violations {
            println!("- {v}");
        }
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let args: Vec<&str> = args.iter().map(String::as_str).collect();
    match args.as_slice() {
        ["--lint"] | ["--lint", _] => {
            let root = args.get(1).copied().unwrap_or(".");
            match lint::lint_tree(Path::new(root)) {
                Err(e) => {
                    eprintln!("wcq-check --lint: {e}");
                    ExitCode::from(2)
                }
                Ok(findings) if findings.is_empty() => {
                    println!("lint clean: {:?}", lint::HOT_PATH_CRATES);
                    ExitCode::SUCCESS
                }
                Ok(findings) => {
                    for f in &findings {
                        println!("{f}");
                    }
                    println!("{} finding(s)", findings.len());
                    ExitCode::FAILURE
                }
            }
        }
        ["--smoke"] => {
            quiet_panics();
            report(&smoke())
        }
        ["--explore", rest @ ..] => {
            let plans = rest.first().and_then(|s| parse_u64(s)).unwrap_or(16);
            let scheds = rest.get(1).and_then(|s| parse_u64(s)).unwrap_or(100);
            if rest.len() > 2 {
                return usage();
            }
            quiet_panics();
            let plan_seeds: Vec<u64> = (1..=plans).collect();
            report(&explore::explore(&plan_seeds, &[1, 4, 16], scheds))
        }
        ["--replay", plan, target, seed, depth] => {
            let (Some(plan_seed), Some(target), Some(sched_seed), Some(depth)) = (
                parse_u64(plan),
                Target::parse(target),
                parse_u64(seed),
                depth.parse::<u32>().ok(),
            ) else {
                return usage();
            };
            println!(
                "replaying plan {:?} on {} under schedule {:?}",
                CheckPlan::from_seed(plan_seed),
                target.name(),
                Schedule {
                    seed: sched_seed,
                    depth
                }
            );
            match replay(plan_seed, target, sched_seed, depth) {
                Ok(steps) => {
                    println!("pass ({steps} yield points)");
                    ExitCode::SUCCESS
                }
                Err(v) => {
                    println!("{v}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => usage(),
    }
}
