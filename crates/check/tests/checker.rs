//! Integration tests for the checker itself: the sweep is clean on the real
//! tree, deterministic run-for-run, and — with the `check-mutations` feature
//! — reliably detects the documented injected bug.
//!
//! The clean-sweep and mutation-detection tests are feature-complementary:
//! `cargo test -p wcq-check` runs the former, `cargo test -p wcq-check
//! --features check-mutations` the latter.  CI runs both.

use wcq_check::{explore, run_one, CheckPlan, Schedule, Target};

/// A reduced grid (subset of `smoke()`'s): enough schedules to hit the
/// torn-F&A window reliably, small enough for a test binary.
fn mini_sweep() -> explore::ExploreOutcome {
    explore::explore(&[1, 2, 3], &[1, 4], 10)
}

#[cfg(not(feature = "check-mutations"))]
#[test]
fn mini_sweep_is_clean_on_the_real_tree() {
    if cfg!(miri) {
        return; // serialized schedule replays are interpreter-hostile
    }
    let out = mini_sweep();
    assert!(out.runs >= 240, "sweep shrank: {} runs", out.runs);
    assert!(
        out.violations.is_empty(),
        "clean tree produced violations:\n{}",
        out.violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[cfg(feature = "check-mutations")]
#[test]
fn mutation_is_detected_and_coordinates_are_stable() {
    if cfg!(miri) {
        return;
    }
    // The torn Head/Tail F&A must be caught by the fixed-seed sweep...
    let first = mini_sweep();
    assert!(
        !first.violations.is_empty(),
        "the injected torn-F&A mutation survived {} schedules undetected",
        first.runs
    );
    // ...and a second identical sweep must flag the *same* schedules: the
    // explorer is a pure function of its seeds, mutations included.
    let second = mini_sweep();
    let coords = |o: &explore::ExploreOutcome| {
        o.violations
            .iter()
            .map(|v| (v.plan_seed, v.target, v.schedule))
            .collect::<Vec<_>>()
    };
    assert_eq!(
        coords(&first),
        coords(&second),
        "mutation detection must be deterministic"
    );
}

#[test]
fn run_one_is_deterministic() {
    if cfg!(miri) {
        return;
    }
    // Same (plan, target, schedule) ⇒ same verdict and same yield count —
    // the property the replay workflow and the regression corpus rest on.
    let plan = CheckPlan::from_seed(3);
    for target in Target::all() {
        for depth in [1, 4] {
            let schedule = Schedule {
                seed: 0xDE7_E12,
                depth,
            };
            let a = run_one(&plan, target, schedule);
            let b = run_one(&plan, target, schedule);
            match (a, b) {
                (Ok(sa), Ok(sb)) => assert_eq!(
                    sa,
                    sb,
                    "yield counts diverged on {} depth {depth}",
                    target.name()
                ),
                (Err(va), Err(vb)) => assert_eq!(
                    va.message,
                    vb.message,
                    "violation messages diverged on {} depth {depth}",
                    target.name()
                ),
                (a, b) => panic!(
                    "verdicts diverged on {} depth {depth}: {a:?} vs {b:?}",
                    target.name()
                ),
            }
        }
    }
}
