//! # wcq-reclaim
//!
//! Hazard-pointer based safe memory reclamation.
//!
//! The wCQ paper's evaluation (§6) uses hazard pointers for the dynamically
//! allocating baseline queues: "we use customized reclamation for YMC and
//! hazard pointers elsewhere (LCRQ, MSQueue, CRTurn)".  wCQ itself never needs
//! reclamation — that is the whole point of the paper — but reproducing the
//! evaluation requires the baselines, and the baselines require this
//! substrate.
//!
//! The implementation is a classical Michael-style hazard pointer scheme with
//! a statically bounded number of participants:
//!
//! * a [`HazardDomain`] owns `max_threads × hazards_per_thread` hazard slots,
//! * each participating thread registers once and obtains a
//!   [`HazardHandle`], which it uses to publish protections and to retire
//!   nodes,
//! * retired nodes are buffered per thread and freed during a `scan` once the
//!   buffer exceeds a threshold proportional to the total number of hazard
//!   slots, guaranteeing a bounded number of unreclaimed nodes at any time,
//! * when a handle is dropped its remaining retired nodes are handed to the
//!   domain and freed either by a later scan or when the domain itself drops.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod hazard;

pub use hazard::{HazardDomain, HazardHandle};
