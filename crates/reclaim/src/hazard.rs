//! Michael-style hazard pointers with a fixed number of participants.
//!
//! The scheme is deliberately classical so the baseline queues behave the way
//! the paper's benchmark configured them:
//!
//! 1. Before dereferencing a shared node, a thread *publishes* the pointer in
//!    one of its hazard slots and re-validates the source ([`HazardHandle::protect`]).
//! 2. A node removed from the data structure is *retired*
//!    ([`HazardHandle::retire`]) rather than freed.
//! 3. When a thread has accumulated enough retired nodes, it *scans* all
//!    hazard slots and frees every retired node that no thread protects.
//!
//! The number of unreclaimed retired nodes is bounded by
//! `threshold × max_threads`, so memory usage of the *reclamation layer* is
//! bounded; whether the queue built on top is memory-bounded is a property of
//! the queue (LCRQ is not — that is Figure 10a of the paper).

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicUsize, Ordering};
use std::sync::Mutex;

use wcq_atomics::CachePadded;

/// A retired allocation awaiting reclamation.
struct Retired {
    ptr: *mut u8,
    drop_fn: unsafe fn(*mut u8),
}

// SAFETY: a retired node is exclusively owned by the reclamation machinery;
// the raw pointer is only dereferenced (dropped) once, by whichever thread
// performs the freeing scan.
unsafe impl Send for Retired {}

impl Retired {
    fn new<T>(ptr: *mut T) -> Self {
        unsafe fn drop_box<T>(p: *mut u8) {
            // SAFETY: `p` was produced by `Box::into_raw::<T>` and is dropped
            // exactly once.
            drop(unsafe { Box::from_raw(p.cast::<T>()) });
        }
        Self {
            ptr: ptr.cast(),
            drop_fn: drop_box::<T>,
        }
    }

    fn with_reclaimer<T>(ptr: *mut T, reclaim_fn: unsafe fn(*mut u8)) -> Self {
        Self {
            ptr: ptr.cast(),
            drop_fn: reclaim_fn,
        }
    }

    /// Frees the allocation.
    fn reclaim(self) {
        // SAFETY: per construction, `ptr` is a valid, uniquely owned
        // allocation of the type captured in `drop_fn`.
        unsafe { (self.drop_fn)(self.ptr) };
    }
}

/// A hazard-pointer domain shared by all threads operating on one (or more)
/// data structures.
///
/// `max_threads` participants may be registered simultaneously; each gets
/// `hazards_per_thread` hazard slots (LCRQ needs 1, MSQueue 2, CRTurn 3 — the
/// baselines ask for what they need).
pub struct HazardDomain {
    /// Flat `max_threads × hazards_per_thread` array of published pointers.
    slots: Box<[CachePadded<AtomicPtr<u8>>]>,
    /// Which participant slots are currently taken.
    in_use: Box<[AtomicBool]>,
    hazards_per_thread: usize,
    /// Retire-buffer length that triggers a scan.
    scan_threshold: usize,
    /// Registration free-slot hint: next participant index worth probing.
    /// Keeps [`HazardDomain::register`] O(1) amortized under handle churn.
    reg_hint: AtomicUsize,
    /// Nodes abandoned by de-registered threads; freed by later scans or on
    /// domain drop.
    orphans: Mutex<Vec<Retired>>,
    /// Statistics: total number of nodes ever retired / reclaimed.
    retired_count: AtomicUsize,
    reclaimed_count: AtomicUsize,
}

// SAFETY: all interior state is atomics or mutex-protected; raw pointers are
// only stored, never dereferenced except during reclamation of owned nodes.
unsafe impl Send for HazardDomain {}
unsafe impl Sync for HazardDomain {}

impl std::fmt::Debug for HazardDomain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HazardDomain")
            .field("max_threads", &self.in_use.len())
            .field("hazards_per_thread", &self.hazards_per_thread)
            .field("retired", &self.retired_count.load(Ordering::Relaxed))
            .field("reclaimed", &self.reclaimed_count.load(Ordering::Relaxed))
            .finish()
    }
}

impl HazardDomain {
    /// Creates a domain for up to `max_threads` concurrent participants, each
    /// owning `hazards_per_thread` hazard slots.
    pub fn new(max_threads: usize, hazards_per_thread: usize) -> Self {
        assert!(max_threads > 0, "need at least one participant");
        assert!(
            hazards_per_thread > 0,
            "need at least one hazard per thread"
        );
        let total = max_threads * hazards_per_thread;
        let slots = (0..total)
            .map(|_| CachePadded::new(AtomicPtr::new(std::ptr::null_mut())))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        let in_use = (0..max_threads)
            .map(|_| AtomicBool::new(false))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Self {
            slots,
            in_use,
            hazards_per_thread,
            // Classical choice: scan when the retire buffer is ~2× the number
            // of hazard slots in the whole domain.
            scan_threshold: (2 * total).max(8),
            reg_hint: AtomicUsize::new(0),
            orphans: Mutex::new(Vec::new()),
            retired_count: AtomicUsize::new(0),
            reclaimed_count: AtomicUsize::new(0),
        }
    }

    /// Maximum number of simultaneously registered participants.
    pub fn max_threads(&self) -> usize {
        self.in_use.len()
    }

    /// Number of hazard slots owned by each participant.
    pub fn hazards_per_thread(&self) -> usize {
        self.hazards_per_thread
    }

    /// Total nodes retired so far (statistics for the memory benchmark).
    pub fn retired_total(&self) -> usize {
        self.retired_count.load(Ordering::Relaxed)
    }

    /// Total nodes reclaimed (freed) so far.
    pub fn reclaimed_total(&self) -> usize {
        self.reclaimed_count.load(Ordering::Relaxed)
    }

    /// Nodes retired but not yet reclaimed (live garbage).
    pub fn pending(&self) -> usize {
        self.retired_total().saturating_sub(self.reclaimed_total())
    }

    /// Registers the calling thread, returning a handle with exclusive use of
    /// one participant slot.  Returns `None` when all participant slots are
    /// taken.
    pub fn register(&self) -> Option<HazardHandle<'_>> {
        let n = self.in_use.len();
        let start = self.reg_hint.load(Ordering::Relaxed).min(n - 1);
        (0..n).find_map(|i| {
            let tid = (start + i) % n;
            let handle = self.register_at(tid)?;
            self.reg_hint.store((tid + 1) % n, Ordering::Relaxed);
            Some(handle)
        })
    }

    /// Registers the calling thread at a *specific* participant slot with a
    /// single CAS, or `None` when `tid` is out of range or the slot is taken.
    /// Callers that memoize their participant id (e.g. the facade's
    /// thread-local tid memo) use this for O(1) re-registration.
    pub fn register_at(&self, tid: usize) -> Option<HazardHandle<'_>> {
        let flag = self.in_use.get(tid)?;
        flag.compare_exchange(false, true, Ordering::AcqRel, Ordering::Relaxed)
            .ok()?;
        Some(HazardHandle {
            domain: self,
            tid,
            retired: Vec::new(),
        })
    }

    #[inline]
    fn slot(&self, tid: usize, idx: usize) -> &AtomicPtr<u8> {
        &self.slots[tid * self.hazards_per_thread + idx]
    }

    /// Collects the set of currently protected raw pointers.
    fn protected_set(&self) -> HashSet<*mut u8> {
        self.slots
            .iter()
            .map(|s| s.load(Ordering::SeqCst))
            .filter(|p| !p.is_null())
            .collect()
    }

    /// Frees every node in `buffer` that is not protected; unprotected-but-
    /// kept nodes remain in the buffer.
    fn scan(&self, buffer: &mut Vec<Retired>) {
        let protected = self.protected_set();
        // Also try to drain orphans while we are here.
        if let Ok(mut orphans) = self.orphans.try_lock() {
            buffer.append(&mut orphans);
        }
        let mut kept = Vec::with_capacity(buffer.len());
        for node in buffer.drain(..) {
            if protected.contains(&node.ptr) {
                kept.push(node);
            } else {
                node.reclaim();
                self.reclaimed_count.fetch_add(1, Ordering::Relaxed);
            }
        }
        *buffer = kept;
    }
}

impl Drop for HazardDomain {
    fn drop(&mut self) {
        // All handles borrow the domain, so none can be alive here; every
        // orphaned retired node is safe to free.
        let mut orphans = self.orphans.lock().unwrap();
        for node in orphans.drain(..) {
            node.reclaim();
            self.reclaimed_count.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Per-thread handle to a [`HazardDomain`].
///
/// Dropping the handle releases the participant slot and hands any remaining
/// retired nodes back to the domain.
pub struct HazardHandle<'d> {
    domain: &'d HazardDomain,
    tid: usize,
    retired: Vec<Retired>,
}

impl<'d> std::fmt::Debug for HazardHandle<'d> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HazardHandle")
            .field("tid", &self.tid)
            .field("retired_pending", &self.retired.len())
            .finish()
    }
}

impl<'d> HazardHandle<'d> {
    /// The participant index of this handle within its domain.
    pub fn tid(&self) -> usize {
        self.tid
    }

    /// Publishes `ptr` in hazard slot `idx` without validation.  The caller
    /// must re-check the source pointer itself (the CRTurn baseline uses this
    /// "protectPtr" shape).
    #[inline]
    pub fn protect_raw<T>(&self, idx: usize, ptr: *mut T) -> *mut T {
        self.domain
            .slot(self.tid, idx)
            .store(ptr.cast(), Ordering::SeqCst);
        ptr
    }

    /// Publishes the pointer currently stored in `src` in hazard slot `idx`,
    /// retrying until the published value matches a re-read of `src`
    /// (Michael's validated protect).  Returns the protected pointer, which is
    /// safe to dereference until the slot is cleared or overwritten.
    #[inline]
    pub fn protect<T>(&self, idx: usize, src: &AtomicPtr<T>) -> *mut T {
        let mut ptr = src.load(Ordering::SeqCst);
        loop {
            self.protect_raw(idx, ptr);
            let again = src.load(Ordering::SeqCst);
            if again == ptr {
                return ptr;
            }
            ptr = again;
        }
    }

    /// Clears a single hazard slot.
    #[inline]
    pub fn clear_one(&self, idx: usize) {
        self.domain
            .slot(self.tid, idx)
            .store(std::ptr::null_mut(), Ordering::SeqCst);
    }

    /// Clears all hazard slots owned by this handle (the paper's `hp.clear()`).
    #[inline]
    pub fn clear(&self) {
        for idx in 0..self.domain.hazards_per_thread {
            self.clear_one(idx);
        }
    }

    /// Retires a node previously removed from the data structure.  The node
    /// is freed by a later scan once no thread protects it.
    ///
    /// # Safety
    /// `ptr` must have been produced by `Box::into_raw`, must not be reachable
    /// by new readers, and must not be retired twice.
    pub unsafe fn retire<T>(&mut self, ptr: *mut T) {
        self.push_retired(Retired::new(ptr));
    }

    /// Like [`HazardHandle::retire`], but the node is handed to `reclaim_fn`
    /// instead of being freed once no thread protects it.  This lets callers
    /// recycle memory (e.g. return a drained queue segment to a free-list)
    /// rather than release it.
    ///
    /// # Safety
    /// `ptr` must have been produced by `Box::into_raw`, must not be reachable
    /// by new readers, and must not be retired twice.  `reclaim_fn` receives
    /// the erased pointer exactly once and becomes its owner; it must free or
    /// re-own the allocation without dereferencing anything else unsafely.
    pub unsafe fn retire_with<T>(&mut self, ptr: *mut T, reclaim_fn: unsafe fn(*mut u8)) {
        self.push_retired(Retired::with_reclaimer(ptr, reclaim_fn));
    }

    fn push_retired(&mut self, node: Retired) {
        self.domain.retired_count.fetch_add(1, Ordering::Relaxed);
        self.retired.push(node);
        if self.retired.len() >= self.domain.scan_threshold {
            self.domain.scan(&mut self.retired);
        }
    }

    /// Forces a scan of this handle's retire buffer right now (used by tests
    /// and by the memory benchmark between measurement phases).
    pub fn flush(&mut self) {
        self.domain.scan(&mut self.retired);
    }

    /// Number of nodes this handle has retired but not yet freed.
    pub fn pending(&self) -> usize {
        self.retired.len()
    }
}

impl<'d> Drop for HazardHandle<'d> {
    fn drop(&mut self) {
        self.clear();
        // One last attempt to free what we can, then orphan the rest.
        self.domain.scan(&mut self.retired);
        if !self.retired.is_empty() {
            let mut orphans = self.domain.orphans.lock().unwrap();
            orphans.append(&mut self.retired);
        }
        self.domain.in_use[self.tid].store(false, Ordering::Release);
        self.domain.reg_hint.store(self.tid, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    /// A payload that counts how many instances are alive, so tests can prove
    /// nodes are freed exactly once and only when unprotected.
    struct Counted {
        _payload: u64,
        live: Arc<AtomicUsize>,
    }

    impl Counted {
        fn boxed(live: &Arc<AtomicUsize>) -> *mut Counted {
            live.fetch_add(1, Ordering::SeqCst);
            Box::into_raw(Box::new(Counted {
                _payload: 42,
                live: Arc::clone(live),
            }))
        }
    }

    impl Drop for Counted {
        fn drop(&mut self) {
            self.live.fetch_sub(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn register_respects_max_threads() {
        let dom = HazardDomain::new(2, 1);
        let h1 = dom.register().unwrap();
        let h2 = dom.register().unwrap();
        assert!(dom.register().is_none());
        assert_ne!(h1.tid(), h2.tid());
        drop(h1);
        // Slot becomes reusable after the handle drops.
        let h3 = dom.register().unwrap();
        assert_ne!(h3.tid(), h2.tid());
    }

    #[test]
    fn register_at_targets_an_exact_participant_slot() {
        let dom = HazardDomain::new(3, 1);
        let h = dom.register_at(1).unwrap();
        assert_eq!(h.tid(), 1);
        assert!(dom.register_at(1).is_none(), "slot 1 is taken");
        assert!(dom.register_at(5).is_none(), "out of range");
        drop(h);
        // The drop hint points registration back at the freed slot.
        assert_eq!(dom.register().unwrap().tid(), 1);
    }

    #[test]
    fn unprotected_nodes_are_freed_by_scan() {
        let live = Arc::new(AtomicUsize::new(0));
        let dom = HazardDomain::new(2, 2);
        let mut h = dom.register().unwrap();
        for _ in 0..100 {
            let p = Counted::boxed(&live);
            unsafe { h.retire(p) };
        }
        h.flush();
        assert_eq!(live.load(Ordering::SeqCst), 0);
        assert_eq!(dom.retired_total(), 100);
        assert_eq!(dom.reclaimed_total(), 100);
    }

    #[test]
    fn protected_node_survives_scan_until_cleared() {
        let live = Arc::new(AtomicUsize::new(0));
        let dom = HazardDomain::new(2, 1);
        let mut owner = dom.register().unwrap();
        let reader = dom.register().unwrap();

        let p = Counted::boxed(&live);
        let shared = AtomicPtr::new(p);
        let protected = reader.protect(0, &shared);
        assert_eq!(protected, p);

        // Owner unlinks and retires the node while the reader protects it.
        shared.store(std::ptr::null_mut(), Ordering::SeqCst);
        unsafe { owner.retire(p) };
        owner.flush();
        assert_eq!(
            live.load(Ordering::SeqCst),
            1,
            "protected node must survive"
        );

        reader.clear();
        owner.flush();
        assert_eq!(
            live.load(Ordering::SeqCst),
            0,
            "freed after protection cleared"
        );
    }

    #[test]
    fn protect_revalidates_when_source_changes() {
        let live = Arc::new(AtomicUsize::new(0));
        let dom = HazardDomain::new(1, 1);
        let h = dom.register().unwrap();
        let a = Counted::boxed(&live);
        let shared = AtomicPtr::new(a);
        let got = h.protect(0, &shared);
        assert_eq!(got, a);
        unsafe {
            drop(Box::from_raw(a));
        }
        assert_eq!(live.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn dropped_handle_orphans_are_freed_by_domain_drop() {
        let live = Arc::new(AtomicUsize::new(0));
        {
            let dom = HazardDomain::new(2, 1);
            let blocker = dom.register().unwrap();
            let p = Counted::boxed(&live);
            // Protect p from another handle so the dropping handle cannot free it.
            blocker.protect_raw(0, p);
            {
                let mut h = dom.register().unwrap();
                unsafe { h.retire(p) };
                // h drops here; p is still protected, so it becomes an orphan.
            }
            assert_eq!(live.load(Ordering::SeqCst), 1);
            drop(blocker);
            // Domain drop reclaims orphans.
        }
        assert_eq!(live.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn concurrent_stress_no_leaks_and_no_use_after_free() {
        const THREADS: usize = 4;
        const OPS: usize = 2_000;
        let live = Arc::new(AtomicUsize::new(0));
        let dom = Arc::new(HazardDomain::new(THREADS, 1));
        // A single shared cell that threads repeatedly swap out and retire.
        let init = Counted::boxed(&live);
        let shared = Arc::new(AtomicPtr::new(init));

        std::thread::scope(|s| {
            for _ in 0..THREADS {
                let dom = Arc::clone(&dom);
                let shared = Arc::clone(&shared);
                let live = Arc::clone(&live);
                s.spawn(move || {
                    let mut h = dom.register().unwrap();
                    for _ in 0..OPS {
                        // Read side: protect and touch the payload.
                        let p = h.protect(0, &shared);
                        if !p.is_null() {
                            // SAFETY: protected by hazard slot 0.
                            let val = unsafe { (*p)._payload };
                            assert_eq!(val, 42);
                        }
                        h.clear();
                        // Write side: install a new node, retire the old one.
                        let fresh = Counted::boxed(&live);
                        let old = shared.swap(fresh, Ordering::SeqCst);
                        if !old.is_null() {
                            unsafe { h.retire(old) };
                        }
                    }
                    h.flush();
                });
            }
        });

        // Free the final node.
        let last = shared.swap(std::ptr::null_mut(), Ordering::SeqCst);
        unsafe { drop(Box::from_raw(last)) };
        drop(shared);
        drop(dom);
        assert_eq!(
            live.load(Ordering::SeqCst),
            0,
            "every node reclaimed exactly once"
        );
    }
}
