//! Close-aware channel stress: the [`stress`](crate::stress) oracle's
//! semantics, extended with the channel layer's shutdown guarantee.
//!
//! The channel endpoints (`wcq::channel`) promise more than the queue facade
//! underneath them: after a close — explicit `close()` or the last sender
//! dropping — **every value sent before the close is drained exactly once**
//! before any receiver observes `Closed`, and every post-close send fails
//! fast.  This module packages that claim as a seed-reproducible plan, the
//! same shape as [`StressPlan`](crate::StressPlan):
//!
//! ```no_run
//! use wcq::ChannelBackend;
//! use wcq_harness::ChannelStressPlan;
//! ChannelStressPlan::from_seed(ChannelBackend::Unbounded, 0xC10_5E).assert_holds();
//! ```
//!
//! Producers send a fixed per-producer quota through cloned [`Sender`]s and
//! drop them; consumers `recv()` through cloned [`Receiver`]s until the
//! channel reports closed-and-drained.  Depending on the seed, the close is
//! either the organic last-sender-drop or an explicit `close()` by a
//! coordinator that then proves post-close sends fail with `Closed`.  The
//! oracle then checks no loss, no duplication, no invention and per-producer
//! FIFO over the union of all observations — and, for the counting backends,
//! that `is_empty_hint()` agrees the drained channel is empty.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering::SeqCst};
use std::sync::Mutex;

use wcq::channel::{Receiver, SendError, Sender, TrySendError};
use wcq::ChannelBackend;

use crate::queues::HARNESS_SHARDS;
use crate::rng::DetRng;
use crate::stress::encode;

/// A fully seed-derived close-semantics stress configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelStressPlan {
    /// The seed every other field was derived from.
    pub seed: u64,
    /// Queue shape behind the channel.  Sharded channels run with pinned
    /// routing, the policy under which per-producer FIFO holds end to end
    /// (the relaxed round-robin ordering is covered by the queue-level
    /// [`StressPlan`](crate::StressPlan)).
    pub backend: ChannelBackend,
    /// Number of producer endpoints (≥ 1), each a `Sender` clone.
    pub producers: usize,
    /// Number of consumer endpoints (≥ 1), each a `Receiver` clone.
    pub consumers: usize,
    /// Values each producer sends before dropping its endpoint.
    pub sends_per_producer: u64,
    /// Capacity order of the backend (bounded: total capacity 2^order, so
    /// producers really block on a full queue; unbounded: segment size).
    pub capacity_order: u32,
    /// `true`: a coordinator explicitly closes after the producers finish and
    /// proves a post-close send fails; `false`: the close is the organic
    /// last-sender-drop.
    pub explicit_close: bool,
    /// Batch size for the producer and consumer endpoints.  `1` keeps the
    /// per-value `send`/`recv` loops; larger values send through
    /// [`Sender::send_iter`] in chunks of this size and drain through
    /// [`Receiver::recv_many`], exercising the batched close-check paths
    /// against the same exact-drain oracle.
    pub send_batch: usize,
    /// `true` (batched plans only): the coordinator closes the channel
    /// *while* producers are still inside `send_iter`, once a fraction of the
    /// quota has drained.  Producers then report exactly how many values the
    /// channel accepted before `Closed` — `send_iter` accepts a FIFO prefix
    /// and returns the rest in its error — and the oracle checks that every
    /// accepted element drains exactly once.  Overrides [`explicit_close`]:
    /// the racing close is always explicit.
    ///
    /// [`explicit_close`]: ChannelStressPlan::explicit_close
    pub racing_close: bool,
}

impl ChannelStressPlan {
    /// Derives a complete plan from `seed`; the same `(backend, seed)` pair
    /// always yields the same plan.
    pub fn from_seed(backend: ChannelBackend, seed: u64) -> Self {
        let mut rng = DetRng::new(seed ^ 0xC1_05ED_C4A7);
        let producers = rng.range_inclusive(1, 3) as usize;
        let consumers = rng.range_inclusive(1, 3) as usize;
        let sends_per_producer = rng.range_inclusive(1_000, 4_000);
        // Small enough that the bounded backend exercises real Full
        // backpressure mid-run.
        let capacity_order = rng.range_inclusive(5, 7) as u32;
        let explicit_close = rng.chance(0.5);
        // Drawn last so the batch dimensions never perturb the older fields.
        let send_batch = if rng.chance(0.5) {
            rng.range_inclusive(2, 32) as usize
        } else {
            1
        };
        let racing_close = send_batch > 1 && rng.chance(0.5);
        Self {
            seed,
            backend,
            producers,
            consumers,
            sends_per_producer,
            capacity_order,
            explicit_close,
            send_batch,
            racing_close,
        }
    }

    /// Builds the channel pair this plan runs over.
    fn make_channel(&self) -> (Sender<u64>, Receiver<u64>) {
        let mut builder = wcq::builder()
            .capacity_order(self.capacity_order)
            // Endpoints register lazily, one slot each: producers + consumers
            // + the coordinator's sender + a drained-state probe receiver.
            .threads(self.producers + self.consumers + 2)
            .backend(self.backend);
        if self.backend == ChannelBackend::Sharded {
            builder = builder
                .shards(HARNESS_SHARDS)
                .shard_policy(wcq::ShardPolicy::Pinned);
        }
        builder.build_channel::<u64>()
    }

    /// Executes the plan and gathers every observation.
    pub fn run(&self) -> ChannelStressReport {
        assert!(self.producers >= 1 && self.consumers >= 1);
        let (tx, rx) = self.make_channel();
        // Kept outside the worker set: answers `is_empty_hint` after the
        // drain without re-opening the channel (receivers never hold it open).
        let hint_probe = rx.clone();

        let observations = Mutex::new(Vec::<Vec<u64>>::new());
        // producer id → values the channel actually accepted pre-close
        // (always the full quota except under a racing close).
        let accepted_counts = Mutex::new(HashMap::<usize, u64>::new());
        let received_total = AtomicU64::new(0);
        let mut post_close_send_failed = None;

        std::thread::scope(|s| {
            let mut producer_joins = Vec::new();
            for wid in 0..self.producers {
                let mut tx = tx.clone();
                let quota = self.sends_per_producer;
                let batch = self.send_batch.max(1);
                let racing = self.racing_close;
                let accepted_counts = &accepted_counts;
                producer_joins.push(s.spawn(move || {
                    let mut accepted = 0u64;
                    if batch == 1 {
                        for seq in 1..=quota {
                            match tx.send(encode(wid, seq)) {
                                Ok(()) => accepted += 1,
                                Err(_) if racing => break,
                                Err(_) => {
                                    panic!("channel closed before the pre-close quota was sent")
                                }
                            }
                        }
                    } else {
                        let mut next_seq = 1u64;
                        while next_seq <= quota {
                            let n = batch.min((quota - next_seq + 1) as usize);
                            let chunk: Vec<u64> =
                                (0..n).map(|k| encode(wid, next_seq + k as u64)).collect();
                            next_seq += n as u64;
                            match tx.send_iter(chunk) {
                                Ok(sent) => accepted += sent as u64,
                                // `send_iter` accepts a FIFO prefix of the
                                // chunk and hands back the unsent suffix, so
                                // this producer's accepted set is exactly
                                // seqs 1..=accepted.
                                Err(SendError(remainder)) => {
                                    assert!(
                                        racing,
                                        "channel closed before the pre-close quota was sent"
                                    );
                                    accepted += (n - remainder.len()) as u64;
                                    break;
                                }
                            }
                        }
                    }
                    accepted_counts
                        .lock()
                        .unwrap_or_else(|poisoned| poisoned.into_inner())
                        .insert(wid, accepted);
                    // `tx` drops here; in the last-drop mode the final
                    // producer's drop is what closes the channel.
                }));
            }
            for _ in 0..self.consumers {
                let mut rx = rx.clone();
                let observations = &observations;
                let received_total = &received_total;
                let batch = self.send_batch.max(1);
                s.spawn(move || {
                    let mut local = Vec::new();
                    // Blocking recv until closed *and* drained — the
                    // channel's own definition of the end of the stream.
                    if batch == 1 {
                        while let Ok(value) = rx.recv() {
                            received_total.fetch_add(1, SeqCst);
                            local.push(value);
                        }
                    } else {
                        let mut grab = Vec::with_capacity(batch);
                        while let Ok(got) = rx.recv_many(&mut grab, batch) {
                            received_total.fetch_add(got as u64, SeqCst);
                            local.append(&mut grab);
                        }
                    }
                    observations
                        .lock()
                        .unwrap_or_else(|poisoned| poisoned.into_inner())
                        .push(local);
                });
            }
            let mut tx = tx;
            if self.racing_close {
                // Close mid-stream: wait only until a quarter of the quota
                // has drained (or the producers outran us), then cut the
                // senders off inside their `send_iter` loops.
                let threshold = (self.producers as u64 * self.sends_per_producer) / 4;
                while received_total.load(SeqCst) < threshold
                    && !producer_joins.iter().all(|j| j.is_finished())
                {
                    std::thread::yield_now();
                }
                tx.close();
                post_close_send_failed = Some(matches!(
                    tx.try_send(u64::MAX),
                    Err(TrySendError::Closed(_))
                ));
                for join in producer_joins {
                    join.join().expect("producer panicked");
                }
            } else {
                // The coordinator holds the original `tx`, keeping the
                // channel open until every producer finished its quota.
                for join in producer_joins {
                    join.join().expect("producer panicked");
                }
                if self.explicit_close {
                    tx.close();
                    post_close_send_failed = Some(matches!(
                        tx.try_send(u64::MAX),
                        Err(TrySendError::Closed(_))
                    ));
                }
            }
            drop(tx); // last sender: closes organically in the drop mode
            drop(rx);
        });

        let empty_hint_after_drain = match self.backend {
            // Bounded wCQ's hint is derived from the data ring's tail−head
            // distance, which slow-path retries inflate — sound as a
            // scheduling hint (wrong only toward "non-empty"), but not a
            // drain oracle, so the post-drain equality is only asserted for
            // the unbounded kinds' maintained counters.
            ChannelBackend::Bounded => None,
            ChannelBackend::Unbounded | ChannelBackend::Sharded => Some(hint_probe.is_empty_hint()),
        };

        ChannelStressReport {
            plan: self.clone(),
            sent_per_producer: accepted_counts
                .into_inner()
                .unwrap_or_else(|poisoned| poisoned.into_inner()),
            observations: observations
                .into_inner()
                .unwrap_or_else(|poisoned| poisoned.into_inner()),
            post_close_send_failed,
            empty_hint_after_drain,
        }
    }

    /// Runs the plan and panics (with the seed in the message) unless every
    /// oracle check passes.
    pub fn assert_holds(&self) {
        if let Err(violation) = self.run().verify() {
            panic!(
                "channel close oracle violated for {:?} (replay with \
                 ChannelStressPlan::from_seed({:?}, {:#x})): {violation}\nplan: {self:?}",
                self.backend, self.backend, self.seed
            );
        }
    }
}

/// Everything a [`ChannelStressPlan::run`] observed.
#[derive(Debug)]
pub struct ChannelStressReport {
    /// The plan that produced this report.
    pub plan: ChannelStressPlan,
    /// producer id → values the channel accepted from that producer before
    /// the close (the full quota except under a racing close, where it is
    /// the FIFO prefix `send_iter` reported as accepted).
    pub sent_per_producer: HashMap<usize, u64>,
    /// Per-consumer observation sequences, in local order.
    pub observations: Vec<Vec<u64>>,
    /// Outcome of the coordinator's post-close send probe:
    /// `Some(true)` = failed with `Closed` as required, `Some(false)` = was
    /// accepted (a bug), `None` = plan used the last-drop close (no sender
    /// left to probe with).
    pub post_close_send_failed: Option<bool>,
    /// `is_empty_hint()` observed after the full drain, for the counting
    /// backends (`None` for the bounded backend, whose facade hint is the
    /// conservative `false`).
    pub empty_hint_after_drain: Option<bool>,
}

impl ChannelStressReport {
    /// Runs the close-semantics oracle: exact drain (no loss / duplication /
    /// invention), per-producer FIFO per observer, post-close sends rejected,
    /// and a truthful emptiness hint after the drain.
    pub fn verify(&self) -> Result<(), String> {
        let expected: u64 = self.sent_per_producer.values().sum();
        let got: u64 = self.observations.iter().map(|o| o.len() as u64).sum();
        if got != expected {
            return Err(format!(
                "close drain violated: {expected} values sent pre-close but {got} received"
            ));
        }
        // The per-observation half — invention / duplication / per-producer
        // FIFO — is the queue-level oracle, shared verbatim; channel plans
        // always pin sharded routing, so the FIFO clause always applies.
        crate::stress::verify_observations(&self.sent_per_producer, &self.observations, true)?;
        if self.post_close_send_failed == Some(false) {
            return Err("a post-close send was accepted instead of failing Closed".into());
        }
        if self.empty_hint_after_drain == Some(false) {
            return Err(
                "is_empty_hint() returned false after a verified full drain \
                 (the approximate length counter drifted)"
                    .into(),
            );
        }
        Ok(())
    }
}

/// Every channel backend, in a stable order — the set the close-semantics
/// integration tests sweep.
pub fn all_channel_backends() -> Vec<ChannelBackend> {
    vec![
        ChannelBackend::Bounded,
        ChannelBackend::Unbounded,
        ChannelBackend::Sharded,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn plans_are_reproducible_and_vary_with_the_seed() {
        for backend in all_channel_backends() {
            let a = ChannelStressPlan::from_seed(backend, 11);
            let b = ChannelStressPlan::from_seed(backend, 11);
            assert_eq!(a, b);
        }
        let shapes: HashSet<_> = (0..16u64)
            .map(|s| {
                let p = ChannelStressPlan::from_seed(ChannelBackend::Unbounded, s);
                (
                    p.producers,
                    p.consumers,
                    p.sends_per_producer,
                    p.explicit_close,
                )
            })
            .collect();
        assert!(shapes.len() > 1, "seeds must vary the plan shape");
    }

    #[test]
    fn oracle_catches_a_lost_pre_close_value() {
        let plan = ChannelStressPlan::from_seed(ChannelBackend::Unbounded, 3);
        let report = ChannelStressReport {
            plan,
            sent_per_producer: HashMap::from([(0, 2)]),
            observations: vec![vec![encode(0, 1)]],
            post_close_send_failed: None,
            empty_hint_after_drain: Some(true),
        };
        assert!(report.verify().unwrap_err().contains("drain violated"));
    }

    #[test]
    fn oracle_catches_an_accepted_post_close_send() {
        let plan = ChannelStressPlan::from_seed(ChannelBackend::Unbounded, 3);
        let report = ChannelStressReport {
            plan,
            sent_per_producer: HashMap::from([(0, 1)]),
            observations: vec![vec![encode(0, 1)]],
            post_close_send_failed: Some(false),
            empty_hint_after_drain: Some(true),
        };
        assert!(report.verify().unwrap_err().contains("post-close"));
    }

    #[test]
    fn oracle_catches_a_drifted_empty_hint() {
        let plan = ChannelStressPlan::from_seed(ChannelBackend::Sharded, 3);
        let report = ChannelStressReport {
            plan,
            sent_per_producer: HashMap::from([(0, 1)]),
            observations: vec![vec![encode(0, 1)]],
            post_close_send_failed: Some(true),
            empty_hint_after_drain: Some(false),
        };
        assert!(report.verify().unwrap_err().contains("is_empty_hint"));
    }

    #[test]
    fn oracle_catches_fifo_and_duplication() {
        let plan = ChannelStressPlan::from_seed(ChannelBackend::Bounded, 3);
        let reordered = ChannelStressReport {
            plan: plan.clone(),
            sent_per_producer: HashMap::from([(0, 2)]),
            observations: vec![vec![encode(0, 2), encode(0, 1)]],
            post_close_send_failed: None,
            empty_hint_after_drain: None,
        };
        assert!(reordered.verify().unwrap_err().contains("FIFO"));
        let duplicated = ChannelStressReport {
            plan,
            sent_per_producer: HashMap::from([(0, 2)]),
            observations: vec![vec![encode(0, 1)], vec![encode(0, 1)]],
            post_close_send_failed: None,
            empty_hint_after_drain: None,
        };
        assert!(duplicated.verify().unwrap_err().contains("duplicated"));
    }

    #[test]
    fn smoke_run_one_backend() {
        // A tiny end-to-end run; the full backend sweep lives in
        // `tests/channel.rs`.
        let mut plan = ChannelStressPlan::from_seed(ChannelBackend::Unbounded, 7);
        plan.sends_per_producer = 300;
        plan.send_batch = 1;
        plan.racing_close = false;
        plan.assert_holds();
    }

    #[test]
    fn seed_derivation_covers_batched_and_racing_plans() {
        let plans: Vec<_> = (0..32u64)
            .map(|s| ChannelStressPlan::from_seed(ChannelBackend::Unbounded, s))
            .collect();
        assert!(plans.iter().any(|p| p.send_batch == 1));
        assert!(plans.iter().any(|p| p.send_batch > 1));
        assert!(plans.iter().any(|p| p.racing_close));
        assert!(plans.iter().all(|p| !p.racing_close || p.send_batch > 1));
    }

    #[test]
    fn batched_sends_drain_exactly_once() {
        let mut plan = ChannelStressPlan::from_seed(ChannelBackend::Unbounded, 7);
        plan.sends_per_producer = 300;
        plan.send_batch = 16;
        plan.racing_close = false;
        plan.assert_holds();
    }

    #[test]
    fn send_iter_racing_close_drains_every_accepted_element_exactly_once() {
        // The close lands while producers are mid-`send_iter`; the oracle
        // then holds over exactly the accepted prefixes.  (On a loaded box
        // the race may degenerate to closing after the quota — the oracle is
        // the same either way.)
        let mut plan = ChannelStressPlan::from_seed(ChannelBackend::Unbounded, 7);
        plan.sends_per_producer = 400;
        plan.send_batch = 8;
        plan.racing_close = true;
        plan.assert_holds();
    }
}
