//! Deterministic, seed-reproducible correctness stress driver.
//!
//! The wCQ paper's central claims are *semantic*: no element is lost or
//! duplicated and per-producer FIFO order holds, even when every operation is
//! forced down the wait-free slow path or the LL/SC emulation fails
//! spuriously.  This module packages those assertions behind one helper so
//! every future change can re-verify paper-level semantics with a single
//! call:
//!
//! ```no_run
//! use wcq_harness::{QueueKind, StressPlan};
//! StressPlan::from_seed(QueueKind::Wcq, 0xC0FFEE).assert_holds();
//! ```
//!
//! A [`StressPlan`] is *derived entirely from a seed*: thread counts, per-role
//! operation counts, the mixer op mix, the wCQ patience configuration
//! (sometimes forcing the slow path) and the injected LL/SC spurious-failure
//! rate are all pseudo-random but reproducible.  When an assertion fails, the
//! panic message carries the seed; re-running `from_seed` with it replays the
//! exact same plan.
//!
//! ## Thread roles
//!
//! * **producers** enqueue a fixed number of tagged values,
//! * **consumers** dequeue until every enqueued value has been consumed,
//! * **mixers** interleave enqueues and dequeues with a seeded bias —
//!   covering the enqueue/dequeue helping interactions that pure pipelines
//!   miss.
//!
//! Every enqueued value encodes `(worker id, sequence number)` so the oracle
//! can decode provenance without any side channel.
//!
//! ## The oracle
//!
//! [`StressReport::verify`] checks, over the union of all dequeue
//! observations:
//!
//! 1. **no loss** — every enqueued value was dequeued exactly once in total,
//! 2. **no duplication** — no value appears twice,
//! 3. **no invention** — every dequeued value decodes to a real enqueue,
//! 4. **per-producer FIFO** — within each observer thread, values from one
//!    producer appear in strictly increasing sequence order (a necessary
//!    linearizability condition that needs no global clock).
//!
//! `FAA` is deliberately rejected: the paper itself labels it "not a true
//! queue algorithm", and it fails all of the above by design.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering::SeqCst};
use std::sync::Mutex;

use wcq_core::adaptive::AdaptivePatience;
use wcq_core::wcq::WcqConfig;

use crate::queues::{make_queue_with_policy, QueueKind, ShardPolicy};
use crate::rng::DetRng;

/// Bits reserved for the per-worker sequence number inside an encoded value.
const SEQ_BITS: u32 = 40;
const SEQ_MASK: u64 = (1 << SEQ_BITS) - 1;

/// Encodes a `(worker id, sequence number)` pair into one tagged value —
/// the provenance scheme every stress oracle (and the `wcq-check` explorer)
/// decodes to verify no-loss/no-duplication/FIFO without a side channel.
#[inline]
pub fn encode(worker: usize, seq: u64) -> u64 {
    debug_assert!(seq <= SEQ_MASK);
    ((worker as u64) << SEQ_BITS) | seq
}

/// Inverse of [`encode`].
#[inline]
pub fn decode(value: u64) -> (usize, u64) {
    ((value >> SEQ_BITS) as usize, value & SEQ_MASK)
}

/// A fully seed-derived stress configuration (see the module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct StressPlan {
    /// The seed every other field was derived from.
    pub seed: u64,
    /// Queue algorithm under test.  Must not be [`QueueKind::Faa`].
    pub kind: QueueKind,
    /// Number of pure-producer threads (≥ 1).
    pub producers: usize,
    /// Number of pure-consumer threads (≥ 1).
    pub consumers: usize,
    /// Number of mixed enqueue/dequeue threads.
    pub mixers: usize,
    /// Enqueues performed by each producer.
    pub ops_per_producer: u64,
    /// Operations (enqueue or dequeue) performed by each mixer.
    pub ops_per_mixer: u64,
    /// Probability that a mixer operation is an enqueue.
    pub mixer_enqueue_bias: f64,
    /// Ring order for the bounded queues.
    pub ring_order: u32,
    /// wCQ wait-freedom knobs; `max_patience = 1` forces the slow path.
    /// Ignored by non-wCQ kinds.
    pub wcq_config: WcqConfig,
    /// Injected LL/SC spurious store-conditional failure rate, applied only
    /// to the LL/SC-emulated kinds ([`QueueKind::WcqLlsc`],
    /// [`QueueKind::WcqUnboundedLlsc`]).  The underlying knob is a
    /// process-global (it models the hardware), so [`StressPlan::run`]
    /// serializes LL/SC plans behind an internal lock; spurious failures
    /// never affect correctness, only how often retry paths run.
    pub spurious_rate: f64,
    /// Whether the sharded kinds route every producer's enqueues to its home
    /// shard ([`ShardPolicy::Pinned`]).  Pinning keeps each producer's
    /// values in one per-shard FIFO stream, so the full oracle — including
    /// per-producer FIFO — applies; unpinned plans use round-robin routing,
    /// which spreads a producer across shards and deliberately gives up that
    /// order, so [`StressReport::verify`] checks only loss / duplication /
    /// invention for them.  Ignored by non-sharded kinds (their FIFO check
    /// always applies).  `from_seed` pins sharded plans by default.
    pub pin_producers: bool,
    /// Batch size for producer enqueues and consumer dequeues.  `1` runs the
    /// original per-operation loops; larger values route through
    /// [`QueueHandle::enqueue_many`]/[`QueueHandle::dequeue_into`] so the
    /// batched paths face the same no-loss / no-duplication / per-producer
    /// FIFO oracle as the singles (a producer's batch is one FIFO run, so
    /// the ordering clause is unchanged).  Mixers always run per-op: they
    /// exist to interleave helping, not to amortize.
    ///
    /// [`QueueHandle::enqueue_many`]: wcq_core::api::QueueHandle::enqueue_many
    /// [`QueueHandle::dequeue_into`]: wcq_core::api::QueueHandle::dequeue_into
    pub batch: usize,
}

impl StressPlan {
    /// Derives a complete plan from `seed`.  The same `(kind, seed)` pair
    /// always yields the same plan.
    pub fn from_seed(kind: QueueKind, seed: u64) -> Self {
        assert!(
            kind != QueueKind::Faa,
            "FAA is not a real queue; the paper excludes it from semantic tests"
        );
        let mut rng = DetRng::new(seed ^ 0x5712_E55C_0DE5);
        let producers = rng.range_inclusive(1, 3) as usize;
        let consumers = rng.range_inclusive(1, 3) as usize;
        let mixers = rng.range_inclusive(0, 2) as usize;
        // One op count per plan keeps runtime bounded while the seed sweep
        // still covers many shapes.
        let ops_per_producer = rng.range_inclusive(1_000, 4_000);
        let ops_per_mixer = rng.range_inclusive(500, 2_000);
        let mixer_enqueue_bias = 0.3 + (rng.next_below(41) as f64) / 100.0; // 0.30..=0.70
        let ring_order = rng.range_inclusive(6, 9) as u32;
        // Half the plans run the paper's default patience; the other half
        // force every operation through the slow path (Figures 5-7 coverage).
        let wcq_config = if rng.chance(0.5) {
            WcqConfig::default()
        } else {
            WcqConfig {
                max_patience_enqueue: 1,
                max_patience_dequeue: 1,
                help_delay: 1,
                catchup_bound: 8,
                ..WcqConfig::default()
            }
        };
        let spurious_rate = if kind.is_llsc() && rng.chance(0.5) {
            (rng.range_inclusive(5, 30) as f64) / 100.0 // 0.05..=0.30
        } else {
            0.0
        };
        // Half the plans stress the batched entry points (drawn last so the
        // batch dimension never perturbs the older fields' derivations).
        let batch = if rng.chance(0.5) {
            rng.range_inclusive(2, 16) as usize
        } else {
            1
        };
        // Half the plans additionally self-tune patience at runtime (drawn
        // after `batch` so the older fields' derivations are unchanged for a
        // given seed).  When the plan forces the slow path, the adaptive
        // clamps collapse to [1, 1], preserving that forcing while still
        // exercising the controller's bookkeeping.
        let wcq_config = {
            let mut cfg = wcq_config;
            if rng.chance(0.5) {
                let forced_slow = cfg.max_patience_enqueue == 1;
                cfg.adaptive_patience = Some(if forced_slow {
                    AdaptivePatience {
                        min: 1,
                        max: 1,
                        sample_every: 32,
                    }
                } else {
                    AdaptivePatience {
                        min: 1,
                        max: 256,
                        sample_every: 32,
                    }
                });
            }
            cfg
        };
        // Under Miri every atomic op costs ~1000x native, so shrink the op
        // counts ~50x after *all* fields are drawn — the PRNG stream (and
        // hence every other derived field) is identical to a native run of
        // the same seed, only the volume differs.
        let (ops_per_producer, ops_per_mixer) = if cfg!(miri) {
            (ops_per_producer / 50, ops_per_mixer / 50)
        } else {
            (ops_per_producer, ops_per_mixer)
        };
        Self {
            seed,
            kind,
            producers,
            consumers,
            mixers,
            ops_per_producer,
            ops_per_mixer,
            mixer_enqueue_bias,
            ring_order,
            wcq_config,
            spurious_rate,
            // Adaptive-routed plans run unpinned by construction: the
            // active-prefix router deliberately spreads a producer, so the
            // oracle's per-producer FIFO clause does not apply to them.
            pin_producers: matches!(kind, QueueKind::WcqSharded | QueueKind::WcqShardedLlsc),
            batch,
        }
    }

    /// Total worker threads the plan spawns.
    pub fn threads(&self) -> usize {
        self.producers + self.consumers + self.mixers
    }

    /// Executes the plan and gathers every dequeue observation.
    pub fn run(&self) -> StressReport {
        assert!(self.producers >= 1 && self.consumers >= 1);
        // The LL/SC spurious-failure rate is process-global (it models the
        // hardware).  Serialize LL/SC plans so parallel test threads cannot
        // reset the rate out from under an in-flight injection run.
        static LLSC_RATE_LOCK: Mutex<()> = Mutex::new(());
        let _llsc_guard = self.kind.is_llsc().then(|| {
            let guard = LLSC_RATE_LOCK
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            wcq_atomics::llsc::set_spurious_failure_rate(self.spurious_rate);
            guard
        });
        let shard_policy = if self.pin_producers {
            ShardPolicy::Pinned
        } else {
            ShardPolicy::RoundRobin
        };
        let queue = make_queue_with_policy(
            self.kind,
            self.threads(),
            self.ring_order,
            Some(self.wcq_config),
            shard_policy,
        );

        let enqueued_total = AtomicU64::new(0);
        let consumed_total = AtomicU64::new(0);
        let feeders_done = AtomicUsize::new(0);
        let feeders = self.producers + self.mixers;
        // worker id -> number of values that worker enqueued.
        let enqueue_counts = Mutex::new(HashMap::<usize, u64>::new());
        // One observation list per thread that dequeued anything.
        let observations = Mutex::new(Vec::<Vec<u64>>::new());

        std::thread::scope(|s| {
            // Producers: worker ids 0..producers.
            for wid in 0..self.producers {
                let queue = queue.as_ref();
                let enqueued_total = &enqueued_total;
                let feeders_done = &feeders_done;
                let enqueue_counts = &enqueue_counts;
                let ops = self.ops_per_producer;
                let batch = self.batch.max(1);
                s.spawn(move || {
                    let mut h = queue.handle();
                    if batch == 1 {
                        for seq in 1..=ops {
                            h.enqueue(encode(wid, seq));
                            enqueued_total.fetch_add(1, SeqCst);
                        }
                    } else {
                        let mut buf = Vec::with_capacity(batch);
                        let mut next_seq = 1u64;
                        while next_seq <= ops || !buf.is_empty() {
                            while buf.len() < batch && next_seq <= ops {
                                buf.push(encode(wid, next_seq));
                                next_seq += 1;
                            }
                            let accepted = h.enqueue_many(&mut buf);
                            enqueued_total.fetch_add(accepted as u64, SeqCst);
                            if accepted == 0 {
                                // Bounded backend full: let consumers run.
                                std::thread::yield_now();
                            }
                        }
                    }
                    enqueue_counts
                        .lock()
                        .unwrap_or_else(|poisoned| poisoned.into_inner())
                        .insert(wid, ops);
                    feeders_done.fetch_add(1, SeqCst);
                });
            }
            // Mixers: worker ids producers..producers+mixers.
            for m in 0..self.mixers {
                let wid = self.producers + m;
                let queue = queue.as_ref();
                let enqueued_total = &enqueued_total;
                let consumed_total = &consumed_total;
                let feeders_done = &feeders_done;
                let enqueue_counts = &enqueue_counts;
                let observations = &observations;
                let ops = self.ops_per_mixer;
                let bias = self.mixer_enqueue_bias;
                let mut rng = DetRng::new(self.seed).stream(wid as u64 + 1);
                s.spawn(move || {
                    let mut h = queue.handle();
                    let mut seq = 0u64;
                    let mut local = Vec::new();
                    for _ in 0..ops {
                        if rng.chance(bias) {
                            seq += 1;
                            h.enqueue(encode(wid, seq));
                            enqueued_total.fetch_add(1, SeqCst);
                        } else if let Some(v) = h.dequeue() {
                            local.push(v);
                            consumed_total.fetch_add(1, SeqCst);
                        }
                    }
                    enqueue_counts
                        .lock()
                        .unwrap_or_else(|poisoned| poisoned.into_inner())
                        .insert(wid, seq);
                    feeders_done.fetch_add(1, SeqCst);
                    observations
                        .lock()
                        .unwrap_or_else(|poisoned| poisoned.into_inner())
                        .push(local);
                });
            }
            // Consumers: drain until every enqueued value is accounted for.
            for _ in 0..self.consumers {
                let queue = queue.as_ref();
                let enqueued_total = &enqueued_total;
                let consumed_total = &consumed_total;
                let feeders_done = &feeders_done;
                let observations = &observations;
                let batch = self.batch.max(1);
                s.spawn(move || {
                    let mut h = queue.handle();
                    let mut local = Vec::new();
                    let mut grab = Vec::with_capacity(batch);
                    loop {
                        let done = feeders_done.load(SeqCst) == feeders;
                        // `enqueued_total` is only final once all feeders are
                        // done; reading it after the done flag makes the exit
                        // check sound.
                        if done && consumed_total.load(SeqCst) >= enqueued_total.load(SeqCst) {
                            break;
                        }
                        if batch == 1 {
                            match h.dequeue() {
                                Some(v) => {
                                    local.push(v);
                                    consumed_total.fetch_add(1, SeqCst);
                                }
                                None => std::thread::yield_now(),
                            }
                        } else {
                            let got = h.dequeue_into(&mut grab, batch);
                            if got > 0 {
                                consumed_total.fetch_add(got as u64, SeqCst);
                                local.append(&mut grab);
                            } else {
                                std::thread::yield_now();
                            }
                        }
                    }
                    observations
                        .lock()
                        .unwrap_or_else(|poisoned| poisoned.into_inner())
                        .push(local);
                });
            }
        });

        if self.kind.is_llsc() {
            wcq_atomics::llsc::set_spurious_failure_rate(0.0);
        }
        drop(_llsc_guard);

        // The consumers only exit once every enqueued value was dequeued, so
        // the queue is empty here; for the kinds that keep an approximate
        // length counter, record whether the hint agrees (the oracle rejects
        // a counter that drifted from the real count).
        let empty_hint_after_drain = self.kind.has_len_hint().then(|| queue.is_empty_hint());

        StressReport {
            plan: self.clone(),
            // `into_inner` recovers through poison too: if a worker panicked
            // while holding a collector lock, its own panic is the one the
            // caller must see — not a second-hand `PoisonError` unwrap here.
            enqueue_counts: enqueue_counts
                .into_inner()
                .unwrap_or_else(|poisoned| poisoned.into_inner()),
            observations: observations
                .into_inner()
                .unwrap_or_else(|poisoned| poisoned.into_inner()),
            empty_hint_after_drain,
        }
    }

    /// Runs the plan and panics (with the seed in the message) unless every
    /// oracle check passes.  This is the one-call entry point tests use.
    pub fn assert_holds(&self) {
        if let Err(violation) = self.run().verify() {
            panic!(
                "stress oracle violated for {:?} (replay with StressPlan::from_seed({:?}, {:#x})): {violation}\nplan: {self:?}",
                self.kind, self.kind, self.seed
            );
        }
    }
}

/// Everything a [`StressPlan::run`] observed, ready for oracle verification.
#[derive(Debug)]
pub struct StressReport {
    /// The plan that produced this report.
    pub plan: StressPlan,
    /// worker id → number of values that worker enqueued.
    pub enqueue_counts: HashMap<usize, u64>,
    /// Per-observer-thread dequeue sequences, in local observation order.
    pub observations: Vec<Vec<u64>>,
    /// `is_empty_hint()` observed after the verified full drain, for the
    /// counting kinds ([`QueueKind::has_len_hint`]); `None` for kinds whose
    /// hint is the conservative `false` default.
    pub empty_hint_after_drain: Option<bool>,
}

impl StressReport {
    /// Total number of values enqueued during the run.
    pub fn total_enqueued(&self) -> u64 {
        self.enqueue_counts.values().sum()
    }

    /// Total number of values dequeued during the run.
    pub fn total_consumed(&self) -> u64 {
        self.observations.iter().map(|o| o.len() as u64).sum()
    }

    /// Runs the loss / duplication / invention / per-producer-FIFO oracle.
    ///
    /// The FIFO clause is skipped for *unpinned* sharded plans: round-robin
    /// routing spreads one producer's values across shards, whose streams can
    /// legally interleave in any order (see [`StressPlan::pin_producers`]).
    /// Everything else — no loss, no duplication, no invention — is checked
    /// unconditionally.
    pub fn verify(&self) -> Result<(), String> {
        let check_fifo = !self.plan.kind.is_sharded() || self.plan.pin_producers;
        let expected = self.total_enqueued();
        let got = self.total_consumed();
        if got != expected {
            return Err(format!(
                "loss or over-consumption: {expected} values enqueued but {got} dequeued"
            ));
        }
        verify_observations(&self.enqueue_counts, &self.observations, check_fifo)?;
        // With the exact-count check above passed, the queue was fully
        // drained — a counting kind whose hint still says "non-empty" has a
        // drifted length counter.
        if self.empty_hint_after_drain == Some(false) {
            return Err(
                "is_empty_hint() returned false after a verified full drain \
                 (the approximate length counter drifted from the real count)"
                    .into(),
            );
        }
        Ok(())
    }
}

/// The per-observation half of the oracle, shared by [`StressReport::verify`],
/// the channel-layer `ChannelStressReport::verify` and the `wcq-check`
/// schedule explorer: no invention (every value decodes to a real
/// `(worker, seq)` enqueue), no duplication across the union of all
/// observations, and — when `check_fifo` — strictly increasing per-producer
/// sequence order within each observer.  The count-balance check stays with
/// the callers, whose "loss" wording differs (queue drain vs. channel close
/// drain).
pub fn verify_observations(
    enqueue_counts: &HashMap<usize, u64>,
    observations: &[Vec<u64>],
    check_fifo: bool,
) -> Result<(), String> {
    let total: usize = observations.iter().map(Vec::len).sum();
    let mut seen = HashSet::with_capacity(total);
    for observation in observations {
        let mut last_seq = HashMap::<usize, u64>::new();
        for &value in observation {
            let (worker, seq) = decode(value);
            match enqueue_counts.get(&worker) {
                None => {
                    return Err(format!(
                        "invented value {value:#x}: worker {worker} never enqueued"
                    ))
                }
                Some(&count) if seq == 0 || seq > count => {
                    return Err(format!(
                        "invented value {value:#x}: worker {worker} enqueued only {count} values (got seq {seq})"
                    ))
                }
                Some(_) => {}
            }
            if !seen.insert(value) {
                return Err(format!("duplicated value {value:#x}"));
            }
            if check_fifo {
                let last = last_seq.entry(worker).or_insert(0);
                if seq <= *last {
                    return Err(format!(
                        "per-producer FIFO violated: worker {worker} seq {seq} observed after {last:?}",
                        last = *last
                    ));
                }
                *last = seq;
            }
        }
    }
    Ok(())
}

/// The real queue algorithms (everything except FAA), in a stable order —
/// the set the cross-queue semantic tests sweep.  The eight paper algorithms
/// come first, then the unbounded and sharded wLSCQ kinds this repo adds on
/// top (sharded plans run pinned by default, so the full oracle applies).
pub fn all_real_queues() -> Vec<QueueKind> {
    vec![
        QueueKind::Wcq,
        QueueKind::WcqLlsc,
        QueueKind::Scq,
        QueueKind::MsQueue,
        QueueKind::Lcrq,
        QueueKind::Ymc,
        QueueKind::CcQueue,
        QueueKind::CrTurn,
        QueueKind::WcqUnbounded,
        QueueKind::WcqUnboundedLlsc,
        QueueKind::WcqSharded,
        QueueKind::WcqShardedLlsc,
        QueueKind::WcqShardedAdaptive,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_reproducible_from_their_seed() {
        for seed in [0u64, 1, 42, u64::MAX] {
            let a = StressPlan::from_seed(QueueKind::Wcq, seed);
            let b = StressPlan::from_seed(QueueKind::Wcq, seed);
            assert_eq!(a, b);
            assert!(a.producers >= 1 && a.consumers >= 1);
        }
    }

    #[test]
    fn different_seeds_give_different_plans() {
        let plans: Vec<_> = (0..16u64)
            .map(|s| StressPlan::from_seed(QueueKind::Scq, s))
            .collect();
        let distinct_shapes: HashSet<_> = plans
            .iter()
            .map(|p| (p.producers, p.consumers, p.mixers, p.ops_per_producer))
            .collect();
        assert!(distinct_shapes.len() > 1, "seeds must vary the plan shape");
    }

    #[test]
    #[should_panic(expected = "not a real queue")]
    fn faa_is_rejected() {
        let _ = StressPlan::from_seed(QueueKind::Faa, 1);
    }

    #[test]
    fn encode_decode_roundtrip() {
        for worker in [0usize, 1, 7, 1000] {
            for seq in [1u64, 2, SEQ_MASK] {
                assert_eq!(decode(encode(worker, seq)), (worker, seq));
            }
        }
    }

    #[test]
    fn oracle_catches_loss() {
        let plan = StressPlan::from_seed(QueueKind::Scq, 3);
        let report = StressReport {
            plan,
            enqueue_counts: HashMap::from([(0, 2)]),
            observations: vec![vec![encode(0, 1)]],
            empty_hint_after_drain: None,
        };
        assert!(report.verify().unwrap_err().contains("loss"));
    }

    #[test]
    fn oracle_catches_duplication() {
        let plan = StressPlan::from_seed(QueueKind::Scq, 3);
        let report = StressReport {
            plan,
            enqueue_counts: HashMap::from([(0, 1)]),
            observations: vec![vec![encode(0, 1)], vec![encode(0, 1)]],
            empty_hint_after_drain: None,
        };
        // Counts mismatch fires first unless we claim two enqueues; build the
        // precise duplicate case instead.
        let report = StressReport {
            enqueue_counts: HashMap::from([(0, 2)]),
            ..report
        };
        assert!(report.verify().unwrap_err().contains("duplicated"));
    }

    #[test]
    fn oracle_catches_fifo_violation() {
        let plan = StressPlan::from_seed(QueueKind::Scq, 3);
        let report = StressReport {
            plan,
            enqueue_counts: HashMap::from([(0, 2)]),
            observations: vec![vec![encode(0, 2), encode(0, 1)]],
            empty_hint_after_drain: None,
        };
        assert!(report.verify().unwrap_err().contains("FIFO"));
    }

    #[test]
    fn sharded_plans_pin_producers_by_default() {
        assert!(StressPlan::from_seed(QueueKind::WcqSharded, 5).pin_producers);
        assert!(StressPlan::from_seed(QueueKind::WcqShardedLlsc, 5).pin_producers);
        assert!(!StressPlan::from_seed(QueueKind::Wcq, 5).pin_producers);
    }

    #[test]
    fn unpinned_sharded_plans_relax_only_the_fifo_clause() {
        // Cross-shard reordering of one producer's values: an unpinned
        // sharded plan accepts it, a pinned one rejects it — and loss is
        // still caught either way.
        let mut plan = StressPlan::from_seed(QueueKind::WcqSharded, 3);
        plan.pin_producers = false;
        let reordered = StressReport {
            plan: plan.clone(),
            enqueue_counts: HashMap::from([(0, 2)]),
            observations: vec![vec![encode(0, 2), encode(0, 1)]],
            empty_hint_after_drain: None,
        };
        reordered
            .verify()
            .expect("unpinned sharded routing may reorder a producer's values");
        let mut pinned = reordered.plan.clone();
        pinned.pin_producers = true;
        let rejected = StressReport {
            plan: pinned,
            enqueue_counts: HashMap::from([(0, 2)]),
            observations: vec![vec![encode(0, 2), encode(0, 1)]],
            empty_hint_after_drain: None,
        };
        assert!(rejected.verify().unwrap_err().contains("FIFO"));
        let lossy = StressReport {
            plan,
            enqueue_counts: HashMap::from([(0, 3)]),
            observations: vec![vec![encode(0, 2), encode(0, 1)]],
            empty_hint_after_drain: None,
        };
        assert!(lossy.verify().unwrap_err().contains("loss"));
    }

    #[test]
    fn oracle_catches_invented_values() {
        let plan = StressPlan::from_seed(QueueKind::Scq, 3);
        let report = StressReport {
            plan,
            enqueue_counts: HashMap::from([(0, 1)]),
            observations: vec![vec![encode(9, 1)]],
            empty_hint_after_drain: None,
        };
        assert!(report.verify().unwrap_err().contains("invented"));
    }

    #[test]
    fn smoke_run_single_kind() {
        // A tiny end-to-end run (the full 8-kind sweep lives in the
        // integration suite).
        let mut plan = StressPlan::from_seed(QueueKind::Scq, 7);
        plan.ops_per_producer = 500;
        plan.ops_per_mixer = 200;
        plan.assert_holds();
    }

    #[test]
    fn seed_derivation_covers_both_batched_and_single_op_plans() {
        let batches: HashSet<usize> = (0..32u64)
            .map(|s| StressPlan::from_seed(QueueKind::Wcq, s).batch)
            .collect();
        assert!(
            batches.contains(&1),
            "some plans must keep the per-op loops"
        );
        assert!(
            batches.iter().any(|&b| b > 1),
            "some plans must exercise enqueue_many/dequeue_into"
        );
    }

    #[test]
    fn batched_plans_satisfy_the_full_oracle() {
        // Batched producers and consumers over a bounded ring small enough
        // that enqueue_many sees real partial acceptance mid-run.
        let mut plan = StressPlan::from_seed(QueueKind::Scq, 7);
        plan.ops_per_producer = 500;
        plan.ops_per_mixer = 100;
        plan.ring_order = 6;
        plan.batch = 8;
        plan.assert_holds();
    }

    #[test]
    fn a_failing_workers_own_panic_survives_collector_poisoning() {
        // A worker that panics while holding a collector lock poisons it.
        // The report assembly must recover the data through the poison so
        // the *worker's* message is what a test harness reports — before
        // the `unwrap_or_else(into_inner)` fix, the next `.lock().unwrap()`
        // died with an unrelated `PoisonError` instead.
        let observations = Mutex::new(Vec::<Vec<u64>>::new());
        let payload = std::thread::scope(|s| {
            s.spawn(|| {
                let _held = observations.lock().unwrap();
                panic!("worker 3 dequeued an impossible value");
            })
            .join()
        })
        .expect_err("the worker panics by design");
        let message = payload
            .downcast_ref::<&str>()
            .copied()
            .map(String::from)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .expect("panic payload is a string");
        assert!(
            message.contains("impossible value"),
            "the worker's own message must survive: {message}"
        );
        assert!(!message.contains("PoisonError"));
        // The harness-side recovery: collectors stay readable after poison.
        let recovered = observations
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        assert!(recovered.is_empty());
    }
}
