//! Counting global allocator for the memory-usage experiment (Figure 10a).
//!
//! The paper measures how much memory each queue consumes while running the
//! random-operations workload: LCRQ and YMC keep allocating rings/segments,
//! SCQ and wCQ stay at one statically allocated ring.  Instead of sampling the
//! process RSS (which depends on allocator/OS page behaviour), the harness
//! wraps the system allocator and counts live and peak heap bytes; the
//! figure-reproduction binaries install it with `#[global_allocator]`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering::SeqCst};

static LIVE_BYTES: AtomicUsize = AtomicUsize::new(0);
static PEAK_BYTES: AtomicUsize = AtomicUsize::new(0);
static TOTAL_ALLOCS: AtomicUsize = AtomicUsize::new(0);

/// A `GlobalAlloc` wrapper around the system allocator that tracks live bytes,
/// peak live bytes, and the total number of allocations.
pub struct CountingAllocator;

// SAFETY: defers every allocation to `System` and only adds atomic counter
// updates around it.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // SAFETY: forwarded verbatim.
        let ptr = unsafe { System.alloc(layout) };
        if !ptr.is_null() {
            TOTAL_ALLOCS.fetch_add(1, SeqCst);
            let live = LIVE_BYTES.fetch_add(layout.size(), SeqCst) + layout.size();
            PEAK_BYTES.fetch_max(live, SeqCst);
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE_BYTES.fetch_sub(layout.size(), SeqCst);
        // SAFETY: forwarded verbatim.
        unsafe { System.dealloc(ptr, layout) }
    }
}

/// A snapshot of the allocation counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemSnapshot {
    /// Bytes currently allocated and not yet freed.
    pub live_bytes: usize,
    /// Highest value `live_bytes` ever reached.
    pub peak_bytes: usize,
    /// Number of allocations performed so far.
    pub total_allocs: usize,
}

/// Reads the current counters.
pub fn snapshot() -> MemSnapshot {
    MemSnapshot {
        live_bytes: LIVE_BYTES.load(SeqCst),
        peak_bytes: PEAK_BYTES.load(SeqCst),
        total_allocs: TOTAL_ALLOCS.load(SeqCst),
    }
}

/// Resets the peak to the current live value (call between measurement
/// phases).
pub fn reset_peak() {
    PEAK_BYTES.store(LIVE_BYTES.load(SeqCst), SeqCst);
}

/// Difference in live/peak bytes between two snapshots (saturating).
pub fn delta(before: MemSnapshot, after: MemSnapshot) -> MemSnapshot {
    MemSnapshot {
        live_bytes: after.live_bytes.saturating_sub(before.live_bytes),
        peak_bytes: after.peak_bytes.saturating_sub(before.live_bytes),
        total_allocs: after.total_allocs.saturating_sub(before.total_allocs),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The allocator is not installed in unit tests (that would affect the
    // whole test binary); we only test the bookkeeping helpers here.  The
    // fig10 binary exercises the GlobalAlloc implementation end to end.

    #[test]
    fn snapshot_and_delta_arithmetic() {
        let before = MemSnapshot {
            live_bytes: 100,
            peak_bytes: 150,
            total_allocs: 7,
        };
        let after = MemSnapshot {
            live_bytes: 260,
            peak_bytes: 300,
            total_allocs: 10,
        };
        let d = delta(before, after);
        assert_eq!(d.live_bytes, 160);
        assert_eq!(d.peak_bytes, 200);
        assert_eq!(d.total_allocs, 3);
    }

    #[test]
    fn counters_are_monotone_without_allocator_installed() {
        let a = snapshot();
        let b = snapshot();
        assert!(b.total_allocs >= a.total_allocs);
    }
}
