//! Deterministic pseudo-random number generation for workloads and stress
//! plans.
//!
//! The harness must be reproducible: every randomized decision (op mix,
//! delays, plan geometry) is derived from an explicit seed so a failing run
//! can be replayed exactly by re-running with the printed seed.  The build
//! environment is offline, so this is a small self-contained generator
//! rather than an external crate: SplitMix64 (Steele, Lea & Flood) for
//! seeding/streams and xorshift64* for the hot loop — both are well-studied,
//! fast, and more than adequate for workload shaping (they are *not*
//! cryptographic).

/// A small deterministic PRNG (SplitMix64-seeded xorshift64*).
#[derive(Debug, Clone)]
pub struct DetRng {
    state: u64,
}

impl DetRng {
    /// Creates a generator from `seed`.  Any seed (including 0) is valid;
    /// SplitMix64 whitening guarantees a non-zero internal state.
    pub fn new(seed: u64) -> Self {
        // SplitMix64 step: decorrelates adjacent seeds (0, 1, 2, ...).
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        Self { state: z | 1 }
    }

    /// Derives an independent stream for sub-task `index` (per-thread RNGs).
    pub fn stream(&self, index: u64) -> Self {
        Self::new(self.state ^ index.wrapping_mul(0xA24B_AED4_963E_E407))
    }

    /// Next raw 64-bit value (xorshift64*).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, bound)`.  `bound` must be non-zero.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift range reduction; the tiny modulo bias is irrelevant
        // for workload shaping.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform value in `[lo, hi]` (inclusive).
    #[inline]
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.next_below(hi - lo + 1)
    }

    /// `true` with probability `p` (clamped to `0.0..=1.0`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..1_000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn streams_are_independent_and_deterministic() {
        let root = DetRng::new(7);
        let mut s0 = root.stream(0);
        let mut s1 = root.stream(1);
        let mut s0_again = root.stream(0);
        assert_eq!(s0.next_u64(), s0_again.next_u64());
        assert_ne!(s0.next_u64(), s1.next_u64());
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = DetRng::new(9);
        for bound in [1u64, 2, 3, 7, 100, 1 << 40] {
            for _ in 0..200 {
                assert!(r.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn range_inclusive_covers_endpoints() {
        let mut r = DetRng::new(11);
        let mut seen = [false; 4];
        for _ in 0..1_000 {
            let v = r.range_inclusive(10, 13);
            assert!((10..=13).contains(&v));
            seen[(v - 10) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values in a tiny range appear");
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut r = DetRng::new(13);
        let hits = (0..10_000).filter(|_| r.chance(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits} hits for p=0.25");
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }
}
