//! Paper-style table output.
//!
//! Each figure in the paper is a set of series (one per queue) over a thread
//! sweep.  [`FigureTable`] accumulates `(queue, threads) → value` cells and
//! prints them as an aligned text table plus a CSV block, which is what
//! EXPERIMENTS.md records.

use std::collections::BTreeMap;

/// An accumulating table: rows are thread counts, columns are queue names.
#[derive(Debug, Default)]
pub struct FigureTable {
    title: String,
    unit: String,
    columns: Vec<String>,
    /// threads -> column -> value
    rows: BTreeMap<usize, BTreeMap<String, f64>>,
}

impl FigureTable {
    /// Creates an empty table with a title and a value unit (e.g. "Mops/s").
    pub fn new(title: impl Into<String>, unit: impl Into<String>) -> Self {
        Self {
            title: title.into(),
            unit: unit.into(),
            columns: Vec::new(),
            rows: BTreeMap::new(),
        }
    }

    /// Records one measurement cell.
    pub fn record(&mut self, queue: &str, threads: usize, value: f64) {
        if !self.columns.iter().any(|c| c == queue) {
            self.columns.push(queue.to_string());
        }
        self.rows
            .entry(threads)
            .or_default()
            .insert(queue.to_string(), value);
    }

    /// Retrieves a recorded cell (used by tests and cross-checks).
    pub fn get(&self, queue: &str, threads: usize) -> Option<f64> {
        self.rows.get(&threads).and_then(|r| r.get(queue)).copied()
    }

    /// Renders the aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("# {} [{}]\n", self.title, self.unit));
        out.push_str(&format!("{:>8}", "threads"));
        for c in &self.columns {
            out.push_str(&format!("{:>14}", c));
        }
        out.push('\n');
        for (threads, row) in &self.rows {
            out.push_str(&format!("{:>8}", threads));
            for c in &self.columns {
                match row.get(c) {
                    Some(v) => out.push_str(&format!("{:>14.3}", v)),
                    None => out.push_str(&format!("{:>14}", "-")),
                }
            }
            out.push('\n');
        }
        out
    }

    /// Renders the table as machine-readable JSON:
    /// `{"title", "unit", "series": {algorithm: {threads: value}}}`.
    ///
    /// This is the `BENCH_*.json` format the bench binaries emit so the perf
    /// trajectory can be tracked across PRs without parsing tables.
    pub fn render_json(&self) -> String {
        fn escape(s: &str) -> String {
            s.replace('\\', "\\\\").replace('"', "\\\"")
        }
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"title\": \"{}\",\n", escape(&self.title)));
        out.push_str(&format!("  \"unit\": \"{}\",\n", escape(&self.unit)));
        out.push_str("  \"series\": {\n");
        for (ci, c) in self.columns.iter().enumerate() {
            out.push_str(&format!("    \"{}\": {{", escape(c)));
            let mut first = true;
            for (threads, row) in &self.rows {
                if let Some(v) = row.get(c) {
                    if !first {
                        out.push_str(", ");
                    }
                    first = false;
                    out.push_str(&format!("\"{threads}\": {v:.4}"));
                }
            }
            out.push('}');
            if ci + 1 < self.columns.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  }\n}\n");
        out
    }

    /// Renders the same data as CSV (header row first).
    pub fn render_csv(&self) -> String {
        let mut out = String::new();
        out.push_str("threads");
        for c in &self.columns {
            out.push(',');
            out.push_str(c);
        }
        out.push('\n');
        for (threads, row) in &self.rows {
            out.push_str(&threads.to_string());
            for c in &self.columns {
                out.push(',');
                if let Some(v) = row.get(c) {
                    out.push_str(&format!("{v:.4}"));
                }
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_renders_cells() {
        let mut t = FigureTable::new("Fig X", "Mops/s");
        t.record("wCQ", 1, 10.5);
        t.record("SCQ", 1, 11.0);
        t.record("wCQ", 2, 9.25);
        assert_eq!(t.get("wCQ", 1), Some(10.5));
        assert_eq!(t.get("SCQ", 2), None);
        let text = t.render();
        assert!(text.contains("Fig X"));
        assert!(text.contains("wCQ"));
        assert!(text.contains("10.500"));
        let csv = t.render_csv();
        assert!(csv.starts_with("threads,wCQ,SCQ"));
        assert!(csv.contains("1,10.5000,11.0000"));
        assert!(csv.contains("2,9.2500,"));
    }

    #[test]
    fn json_maps_algorithm_to_threads_to_value() {
        let mut t = FigureTable::new("Fig \"X\"", "Mops/s");
        t.record("wCQ", 1, 10.5);
        t.record("wCQ", 2, 9.25);
        t.record("SCQ", 1, 11.0);
        let json = t.render_json();
        assert!(json.contains("\"title\": \"Fig \\\"X\\\"\""), "{json}");
        assert!(json.contains("\"unit\": \"Mops/s\""));
        assert!(
            json.contains("\"wCQ\": {\"1\": 10.5000, \"2\": 9.2500}"),
            "{json}"
        );
        assert!(json.contains("\"SCQ\": {\"1\": 11.0000}"), "{json}");
        // Missing cells are omitted, not emitted as null.
        assert!(!json.contains("null"));
    }
}
