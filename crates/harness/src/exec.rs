//! A dependency-free executor shim: drive one future to completion on the
//! current thread.
//!
//! The async channel endpoints (`wcq::async_channel`) are runtime-agnostic —
//! their futures park a task waker and are woken by sends and closes.  CI
//! runs offline with no tokio, so the tests and benches drive them with this
//! ~40-line shim instead: [`block_on`] polls the future and parks the OS
//! thread between polls, waking through [`std::thread::Thread::unpark`]
//! (whose token semantics make a wake-before-park return immediately, so no
//! wakeup is ever lost).
//!
//! [`block_on_instrumented`] additionally records how often the future was
//! polled and woken — into the same [`Instrument`] counter set the queue
//! layers report to ([`Counter::ExecPolls`] / [`Counter::ExecWakes`]).  It is
//! the instrument behind the "a parked receiver is woken by an enqueue, not
//! by spinning" assertions: a receiver that busy-polls shows hundreds of
//! polls, a properly parked one a small constant.  The older
//! [`block_on_counted`] reports the same two numbers as an ad-hoc
//! [`PollStats`] pair and is deprecated in its favor.

use std::future::Future;
use std::pin::pin;
use std::sync::atomic::{AtomicU64, Ordering::SeqCst};
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};
use std::thread::Thread;

use wcq_core::metrics::{Counter, Instrument};

/// Wakes the executor thread via `unpark`, counting every wake.
struct ThreadUnparker {
    thread: Thread,
    wakes: AtomicU64,
}

impl Wake for ThreadUnparker {
    fn wake(self: Arc<Self>) {
        self.wake_by_ref();
    }
    fn wake_by_ref(self: &Arc<Self>) {
        self.wakes.fetch_add(1, SeqCst);
        self.thread.unpark();
    }
}

/// How hard the executor had to work: poll and wake counts of one
/// [`block_on_counted`] run.
#[deprecated(
    since = "0.2.0",
    note = "use `block_on_instrumented` with a `CountingInstrument` and read \
            `Counter::ExecPolls` / `Counter::ExecWakes` from its `MetricsSnapshot`"
)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PollStats {
    /// Times the future was polled (≥ 1).
    pub polls: u64,
    /// Times the future's waker was invoked.
    pub wakes: u64,
}

/// Runs `future` to completion on the current thread, parking between polls.
pub fn block_on<F: Future>(future: F) -> F::Output {
    run_counting(future).0
}

/// Like [`block_on`], but also reports how many polls and wakes the run took
/// — the bounded-wake-count oracle for the park/wake tests.
#[deprecated(
    since = "0.2.0",
    note = "use `block_on_instrumented` with a `CountingInstrument` and read \
            `Counter::ExecPolls` / `Counter::ExecWakes` from its `MetricsSnapshot`"
)]
#[allow(deprecated)]
pub fn block_on_counted<F: Future>(future: F) -> (F::Output, PollStats) {
    let (output, polls, wakes) = run_counting(future);
    (output, PollStats { polls, wakes })
}

/// Like [`block_on`], but records every poll and wake into `instrument`
/// ([`Counter::ExecPolls`] / [`Counter::ExecWakes`]) — the executor's
/// contribution to the unified `MetricsSnapshot`
/// (`wcq_core::metrics::MetricsSnapshot`), alongside the channel layer's
/// park/wake counters.
pub fn block_on_instrumented<F: Future, I: Instrument>(future: F, instrument: &I) -> F::Output {
    let (output, polls, wakes) = run_counting(future);
    instrument.record(Counter::ExecPolls, polls);
    instrument.record(Counter::ExecWakes, wakes);
    output
}

/// The shared poll-park loop: drives `future` to completion and returns
/// `(output, polls, wakes)`.
fn run_counting<F: Future>(future: F) -> (F::Output, u64, u64) {
    let unparker = Arc::new(ThreadUnparker {
        thread: std::thread::current(),
        wakes: AtomicU64::new(0),
    });
    let waker = Waker::from(Arc::clone(&unparker));
    let mut cx = Context::from_waker(&waker);
    let mut future = pin!(future);
    let mut polls = 0u64;
    loop {
        polls += 1;
        match future.as_mut().poll(&mut cx) {
            Poll::Ready(output) => {
                let wakes = unparker.wakes.load(SeqCst);
                return (output, polls, wakes);
            }
            // `park` returns immediately when a wake already deposited the
            // token, and may also return spuriously — both just re-poll.
            Poll::Pending => std::thread::park(),
        }
    }
}

#[cfg(test)]
mod tests {
    // The deprecated counted runner stays covered until it is removed.
    #![allow(deprecated)]

    use super::*;
    use std::task::Poll;

    #[test]
    fn ready_future_completes_in_one_poll() {
        let (out, stats) = block_on_counted(std::future::ready(42));
        assert_eq!(out, 42);
        assert_eq!(stats.polls, 1);
        assert_eq!(stats.wakes, 0);
    }

    #[test]
    fn pending_future_parks_until_woken_from_another_thread() {
        // A future that stays Pending until a side thread flips a flag and
        // wakes it — the minimal park/wake round trip.
        use std::sync::atomic::AtomicBool;
        let flag = Arc::new(AtomicBool::new(false));
        let handed_waker = Arc::new(std::sync::Mutex::new(None::<Waker>));

        let (flag2, slot2) = (Arc::clone(&flag), Arc::clone(&handed_waker));
        let waiter = std::future::poll_fn(move |cx| {
            if flag2.load(SeqCst) {
                Poll::Ready(7)
            } else {
                *slot2.lock().unwrap() = Some(cx.waker().clone());
                Poll::Pending
            }
        });

        let side = std::thread::spawn(move || {
            // Wait until the executor parked its waker, then release it.
            loop {
                if let Some(waker) = handed_waker.lock().unwrap().take() {
                    flag.store(true, SeqCst);
                    waker.wake();
                    return;
                }
                std::thread::yield_now();
            }
        });

        let (out, stats) = block_on_counted(waiter);
        side.join().unwrap();
        assert_eq!(out, 7);
        assert!(stats.polls >= 2, "one park, one wake-up poll");
        assert!(stats.wakes >= 1);
    }

    #[test]
    fn async_blocks_run_to_completion() {
        let out = block_on(async {
            let a = async { 1 }.await;
            let b = async { 2 }.await;
            a + b
        });
        assert_eq!(out, 3);
    }
}
