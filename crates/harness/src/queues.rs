//! Uniform adapters over every queue in the evaluation.
//!
//! The paper benchmarks eight algorithms side by side.  [`QueueKind`]
//! enumerates them (plus the LL/SC-emulated wCQ/SCQ variants used for the
//! PowerPC figures) and [`make_queue`] builds a fresh instance behind the
//! registration-based [`BenchQueue`] trait, so the workload driver, the memory
//! benchmark and the cross-crate integration tests all share one code path.
//!
//! Payloads are `u64` sequence numbers, as in the original benchmark (which
//! enqueues small integers / pointers).

use wcq_baselines::{CcQueue, CrTurnQueue, FaaQueue, Lcrq, MsQueue, YmcQueue};
use wcq_core::wcq::{LlscFamily, NativeFamily, WcqConfig, WcqQueue, WcqQueueHandle};
use wcq_core::ScqQueue;
use wcq_unbounded::{UnboundedWcq, UnboundedWcqHandle};

/// Which queue algorithm to instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueueKind {
    /// wCQ with native double-width CAS (§3) — the paper's contribution.
    Wcq,
    /// wCQ over the emulated LL/SC construction (§4, the "PowerPC" variant).
    WcqLlsc,
    /// Lock-free SCQ (the substrate / closest competitor).
    Scq,
    /// Michael & Scott's lock-free list queue.
    MsQueue,
    /// LCRQ (ring queues linked by an outer list).
    Lcrq,
    /// Yang & Mellor-Crummey's segment queue (reproduced shape).
    Ymc,
    /// CCQueue flat-combining queue.
    CcQueue,
    /// CRTurn wait-free queue.
    CrTurn,
    /// FAA counters-only pseudo-queue (throughput upper bound).
    Faa,
    /// wLSCQ: unbounded queue of linked wCQ segments (`wcq-unbounded`).
    WcqUnbounded,
    /// wLSCQ over the emulated LL/SC construction.
    WcqUnboundedLlsc,
}

impl QueueKind {
    /// All algorithms shown in the x86 figures (Figs. 10, 11).
    pub fn x86_set() -> Vec<QueueKind> {
        vec![
            QueueKind::Faa,
            QueueKind::Wcq,
            QueueKind::Ymc,
            QueueKind::CcQueue,
            QueueKind::Scq,
            QueueKind::CrTurn,
            QueueKind::MsQueue,
            QueueKind::Lcrq,
        ]
    }

    /// All algorithms shown in the PowerPC figures (Fig. 12): LCRQ is omitted
    /// because it requires true CAS2, and wCQ runs in the LL/SC model.
    pub fn powerpc_set() -> Vec<QueueKind> {
        vec![
            QueueKind::Faa,
            QueueKind::WcqLlsc,
            QueueKind::Ymc,
            QueueKind::CcQueue,
            QueueKind::Scq,
            QueueKind::CrTurn,
            QueueKind::MsQueue,
        ]
    }

    /// The unbounded-queue comparison set: wLSCQ (both hardware models)
    /// against the dynamically allocating baselines that are also unbounded.
    pub fn unbounded_set() -> Vec<QueueKind> {
        vec![
            QueueKind::WcqUnbounded,
            QueueKind::WcqUnboundedLlsc,
            QueueKind::Lcrq,
            QueueKind::MsQueue,
        ]
    }

    /// `true` for the kinds that run over the emulated LL/SC hardware model
    /// (and therefore react to the injected spurious-failure rate).
    pub fn is_llsc(&self) -> bool {
        matches!(self, QueueKind::WcqLlsc | QueueKind::WcqUnboundedLlsc)
    }

    /// Display name matching the paper's legends.
    pub fn name(&self) -> &'static str {
        match self {
            QueueKind::Wcq => "wCQ",
            QueueKind::WcqLlsc => "wCQ (LL/SC)",
            QueueKind::Scq => "SCQ",
            QueueKind::MsQueue => "MSQueue",
            QueueKind::Lcrq => "LCRQ",
            QueueKind::Ymc => "YMC (bug)",
            QueueKind::CcQueue => "CCQueue",
            QueueKind::CrTurn => "CRTurn",
            QueueKind::Faa => "FAA",
            QueueKind::WcqUnbounded => "wLSCQ",
            QueueKind::WcqUnboundedLlsc => "wLSCQ (LL/SC)",
        }
    }
}

/// Per-thread handle used by the workload driver.
pub trait BenchHandle {
    /// Enqueues a value, retrying internally if the queue is momentarily full.
    fn enqueue(&mut self, value: u64);
    /// Dequeues a value, or `None` if the queue was observed empty.
    fn dequeue(&mut self) -> Option<u64>;
}

/// A queue instance that threads can register with.
pub trait BenchQueue: Send + Sync {
    /// Algorithm display name.
    fn name(&self) -> &'static str;
    /// Registers the calling thread and returns its handle.
    fn register(&self) -> Box<dyn BenchHandle + '_>;
    /// Bytes of memory attributable to the queue itself (static structures
    /// plus any growth statistics it tracks) — used for Figure 10a.
    fn memory_footprint(&self) -> usize;
}

/// Builds a fresh queue of the requested kind.
///
/// `max_threads` bounds concurrent registrations and `ring_order` sizes the
/// bounded rings (the paper uses 2^16 for wCQ/SCQ and 2^12 rings for LCRQ).
pub fn make_queue(kind: QueueKind, max_threads: usize, ring_order: u32) -> Box<dyn BenchQueue> {
    make_queue_configured(kind, max_threads, ring_order, None)
}

/// Like [`make_queue`], but with an explicit wait-freedom configuration for
/// the wCQ kinds (`Wcq` / `WcqLlsc`).  Stress plans use this to force the
/// slow path with `max_patience = 1`; other kinds ignore the configuration.
pub fn make_queue_configured(
    kind: QueueKind,
    max_threads: usize,
    ring_order: u32,
    wcq_config: Option<WcqConfig>,
) -> Box<dyn BenchQueue> {
    let cfg = wcq_config.unwrap_or_default();
    match kind {
        QueueKind::Wcq => Box::new(WcqBench::<NativeFamily>::new(ring_order, max_threads, cfg)),
        QueueKind::WcqLlsc => Box::new(WcqBench::<LlscFamily>::new(ring_order, max_threads, cfg)),
        QueueKind::Scq => Box::new(ScqBench::new(ring_order)),
        QueueKind::MsQueue => Box::new(MsBench::new(max_threads)),
        QueueKind::Lcrq => Box::new(LcrqBench::new(ring_order.min(12), max_threads)),
        QueueKind::Ymc => Box::new(YmcBench::new()),
        QueueKind::CcQueue => Box::new(CcBench::new(max_threads)),
        QueueKind::CrTurn => Box::new(CrTurnBench::new(max_threads)),
        QueueKind::Faa => Box::new(FaaBench::new(ring_order)),
        // Segment order is capped at 2^12 like LCRQ's rings above: both are
        // segmented designs whose *total* capacity is unbounded, so a paper
        // scale `--order 16` should size their segments, not one giant ring —
        // and the shared cap keeps the wLSCQ-vs-LCRQ comparison like for like.
        QueueKind::WcqUnbounded => Box::new(UnboundedBench::<NativeFamily>::new(
            ring_order.min(12),
            max_threads,
            cfg,
        )),
        QueueKind::WcqUnboundedLlsc => Box::new(UnboundedBench::<LlscFamily>::new(
            ring_order.min(12),
            max_threads,
            cfg,
        )),
    }
}

// --------------------------------------------------------------------------
// wCQ / SCQ adapters
// --------------------------------------------------------------------------

struct WcqBench<F: wcq_core::wcq::CellFamily> {
    queue: WcqQueue<u64, F>,
    llsc: bool,
}

impl<F: wcq_core::wcq::CellFamily> WcqBench<F> {
    fn new(order: u32, max_threads: usize, config: WcqConfig) -> Self {
        Self {
            queue: WcqQueue::with_config(order, max_threads, config),
            llsc: F::NAME == "llsc-emu",
        }
    }
}

struct WcqBenchHandle<'q, F: wcq_core::wcq::CellFamily>(WcqQueueHandle<'q, u64, F>);

impl<'q, F: wcq_core::wcq::CellFamily> BenchHandle for WcqBenchHandle<'q, F> {
    fn enqueue(&mut self, value: u64) {
        let mut v = value;
        while let Err(back) = self.0.enqueue(v) {
            v = back;
            std::thread::yield_now();
        }
    }
    fn dequeue(&mut self) -> Option<u64> {
        self.0.dequeue()
    }
}

impl<F: wcq_core::wcq::CellFamily> BenchQueue for WcqBench<F> {
    fn name(&self) -> &'static str {
        if self.llsc {
            "wCQ (LL/SC)"
        } else {
            "wCQ"
        }
    }
    fn register(&self) -> Box<dyn BenchHandle + '_> {
        Box::new(WcqBenchHandle(
            self.queue.register().expect("benchmark sized max_threads"),
        ))
    }
    fn memory_footprint(&self) -> usize {
        self.queue.memory_footprint()
    }
}

struct ScqBench {
    queue: ScqQueue<u64>,
}

impl ScqBench {
    fn new(order: u32) -> Self {
        Self {
            queue: ScqQueue::new(order),
        }
    }
}

struct ScqBenchHandle<'q>(&'q ScqQueue<u64>);

impl<'q> BenchHandle for ScqBenchHandle<'q> {
    fn enqueue(&mut self, value: u64) {
        let mut v = value;
        while let Err(back) = self.0.enqueue(v) {
            v = back;
            std::thread::yield_now();
        }
    }
    fn dequeue(&mut self) -> Option<u64> {
        self.0.dequeue()
    }
}

impl BenchQueue for ScqBench {
    fn name(&self) -> &'static str {
        "SCQ"
    }
    fn register(&self) -> Box<dyn BenchHandle + '_> {
        Box::new(ScqBenchHandle(&self.queue))
    }
    fn memory_footprint(&self) -> usize {
        self.queue.memory_footprint()
    }
}

struct UnboundedBench<F: wcq_core::wcq::CellFamily> {
    queue: UnboundedWcq<u64, F>,
    llsc: bool,
}

impl<F: wcq_core::wcq::CellFamily> UnboundedBench<F> {
    fn new(seg_order: u32, max_threads: usize, config: WcqConfig) -> Self {
        Self {
            queue: UnboundedWcq::with_config(seg_order, max_threads, config),
            llsc: F::NAME == "llsc-emu",
        }
    }
}

struct UnboundedBenchHandle<'q, F: wcq_core::wcq::CellFamily>(UnboundedWcqHandle<'q, u64, F>);

impl<'q, F: wcq_core::wcq::CellFamily> BenchHandle for UnboundedBenchHandle<'q, F> {
    fn enqueue(&mut self, value: u64) {
        self.0.enqueue(value);
    }
    fn dequeue(&mut self) -> Option<u64> {
        self.0.dequeue()
    }
}

impl<F: wcq_core::wcq::CellFamily> BenchQueue for UnboundedBench<F> {
    fn name(&self) -> &'static str {
        if self.llsc {
            "wLSCQ (LL/SC)"
        } else {
            "wLSCQ"
        }
    }
    fn register(&self) -> Box<dyn BenchHandle + '_> {
        Box::new(UnboundedBenchHandle(
            self.queue.register().expect("benchmark sized max_threads"),
        ))
    }
    fn memory_footprint(&self) -> usize {
        self.queue.memory_footprint()
    }
}

// --------------------------------------------------------------------------
// Baseline adapters
// --------------------------------------------------------------------------

struct MsBench {
    queue: MsQueue<u64>,
}

impl MsBench {
    fn new(max_threads: usize) -> Self {
        Self {
            queue: MsQueue::new(max_threads),
        }
    }
}

struct MsBenchHandle<'q>(wcq_baselines::msqueue::MsQueueHandle<'q, u64>);

impl<'q> BenchHandle for MsBenchHandle<'q> {
    fn enqueue(&mut self, value: u64) {
        self.0.enqueue(value);
    }
    fn dequeue(&mut self) -> Option<u64> {
        self.0.dequeue()
    }
}

impl BenchQueue for MsBench {
    fn name(&self) -> &'static str {
        "MSQueue"
    }
    fn register(&self) -> Box<dyn BenchHandle + '_> {
        Box::new(MsBenchHandle(
            self.queue.register().expect("benchmark sized max_threads"),
        ))
    }
    fn memory_footprint(&self) -> usize {
        std::mem::size_of::<MsQueue<u64>>()
    }
}

struct LcrqBench {
    queue: Lcrq,
}

impl LcrqBench {
    fn new(ring_order: u32, max_threads: usize) -> Self {
        Self {
            queue: Lcrq::new(ring_order, max_threads),
        }
    }
}

struct LcrqBenchHandle<'q>(wcq_baselines::lcrq::LcrqHandle<'q>);

impl<'q> BenchHandle for LcrqBenchHandle<'q> {
    fn enqueue(&mut self, value: u64) {
        self.0.enqueue(value);
    }
    fn dequeue(&mut self) -> Option<u64> {
        self.0.dequeue()
    }
}

impl BenchQueue for LcrqBench {
    fn name(&self) -> &'static str {
        "LCRQ"
    }
    fn register(&self) -> Box<dyn BenchHandle + '_> {
        Box::new(LcrqBenchHandle(
            self.queue.register().expect("benchmark sized max_threads"),
        ))
    }
    fn memory_footprint(&self) -> usize {
        self.queue.memory_footprint()
    }
}

struct YmcBench {
    queue: YmcQueue,
}

impl YmcBench {
    fn new() -> Self {
        Self {
            queue: YmcQueue::new(),
        }
    }
}

struct YmcBenchHandle<'q>(&'q YmcQueue);

impl<'q> BenchHandle for YmcBenchHandle<'q> {
    fn enqueue(&mut self, value: u64) {
        self.0.enqueue(value);
    }
    fn dequeue(&mut self) -> Option<u64> {
        self.0.dequeue()
    }
}

impl BenchQueue for YmcBench {
    fn name(&self) -> &'static str {
        "YMC (bug)"
    }
    fn register(&self) -> Box<dyn BenchHandle + '_> {
        Box::new(YmcBenchHandle(&self.queue))
    }
    fn memory_footprint(&self) -> usize {
        self.queue.memory_footprint()
    }
}

struct CcBench {
    queue: CcQueue<u64>,
}

impl CcBench {
    fn new(max_threads: usize) -> Self {
        Self {
            queue: CcQueue::new(max_threads),
        }
    }
}

struct CcBenchHandle<'q>(wcq_baselines::ccqueue::CcQueueHandle<'q, u64>);

impl<'q> BenchHandle for CcBenchHandle<'q> {
    fn enqueue(&mut self, value: u64) {
        self.0.enqueue(value);
    }
    fn dequeue(&mut self) -> Option<u64> {
        self.0.dequeue()
    }
}

impl BenchQueue for CcBench {
    fn name(&self) -> &'static str {
        "CCQueue"
    }
    fn register(&self) -> Box<dyn BenchHandle + '_> {
        Box::new(CcBenchHandle(
            self.queue.register().expect("benchmark sized max_threads"),
        ))
    }
    fn memory_footprint(&self) -> usize {
        std::mem::size_of::<CcQueue<u64>>()
    }
}

struct CrTurnBench {
    queue: CrTurnQueue,
}

impl CrTurnBench {
    fn new(max_threads: usize) -> Self {
        Self {
            queue: CrTurnQueue::new(max_threads),
        }
    }
}

struct CrTurnBenchHandle<'q>(wcq_baselines::crturn::CrTurnHandle<'q>);

impl<'q> BenchHandle for CrTurnBenchHandle<'q> {
    fn enqueue(&mut self, value: u64) {
        self.0.enqueue(value);
    }
    fn dequeue(&mut self) -> Option<u64> {
        self.0.dequeue()
    }
}

impl BenchQueue for CrTurnBench {
    fn name(&self) -> &'static str {
        "CRTurn"
    }
    fn register(&self) -> Box<dyn BenchHandle + '_> {
        Box::new(CrTurnBenchHandle(
            self.queue.register().expect("benchmark sized max_threads"),
        ))
    }
    fn memory_footprint(&self) -> usize {
        std::mem::size_of::<CrTurnQueue>()
    }
}

struct FaaBench {
    queue: FaaQueue,
}

impl FaaBench {
    fn new(order: u32) -> Self {
        Self {
            queue: FaaQueue::new(order),
        }
    }
}

struct FaaBenchHandle<'q>(&'q FaaQueue);

impl<'q> BenchHandle for FaaBenchHandle<'q> {
    fn enqueue(&mut self, value: u64) {
        self.0.enqueue(value);
    }
    fn dequeue(&mut self) -> Option<u64> {
        self.0.dequeue()
    }
}

impl BenchQueue for FaaBench {
    fn name(&self) -> &'static str {
        "FAA"
    }
    fn register(&self) -> Box<dyn BenchHandle + '_> {
        Box::new(FaaBenchHandle(&self.queue))
    }
    fn memory_footprint(&self) -> usize {
        self.queue.memory_footprint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_constructs_and_round_trips() {
        for kind in QueueKind::x86_set()
            .into_iter()
            .chain(QueueKind::powerpc_set())
        {
            let q = make_queue(kind, 2, 8);
            let mut h = q.register();
            h.enqueue(41);
            h.enqueue(42);
            // FAA is not a real queue but still returns the stored values in
            // this uncontended case.
            assert_eq!(h.dequeue(), Some(41), "kind {:?}", kind);
            assert_eq!(h.dequeue(), Some(42), "kind {:?}", kind);
            assert!(q.memory_footprint() > 0);
            assert!(!q.name().is_empty());
        }
    }

    #[test]
    fn unbounded_kinds_construct_and_round_trip() {
        for kind in QueueKind::unbounded_set() {
            let q = make_queue(kind, 2, 6);
            let mut h = q.register();
            for i in 0..200 {
                h.enqueue(i); // 200 values through 64-slot segments forces growth
            }
            for i in 0..200 {
                assert_eq!(h.dequeue(), Some(i), "kind {:?}", kind);
            }
            assert_eq!(h.dequeue(), None, "kind {:?}", kind);
            assert!(q.memory_footprint() > 0);
        }
    }

    #[test]
    fn x86_and_powerpc_sets_match_paper_legends() {
        let x86: Vec<_> = QueueKind::x86_set().iter().map(|k| k.name()).collect();
        assert!(x86.contains(&"LCRQ"));
        let ppc: Vec<_> = QueueKind::powerpc_set().iter().map(|k| k.name()).collect();
        assert!(!ppc.contains(&"LCRQ"), "LCRQ needs CAS2 and is absent on PowerPC");
        assert!(ppc.contains(&"wCQ (LL/SC)"));
    }
}
