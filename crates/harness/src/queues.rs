//! Queue selection for the evaluation, on top of the public facade.
//!
//! The paper benchmarks eight algorithms side by side.  [`QueueKind`]
//! enumerates them (plus the LL/SC-emulated wCQ/SCQ variants used for the
//! PowerPC figures and the wLSCQ / sharded-wLSCQ extensions) and
//! [`make_queue`] builds a fresh
//! instance behind the *public* [`WaitFreeQueue`] trait — the same facade
//! applications use — so the workload driver, the memory benchmark and the
//! cross-crate integration tests all share one code path with zero
//! harness-private adapter code.  All wCQ-family kinds are constructed
//! through `wcq::builder()`, so benchmark configurations and library
//! configurations cannot drift apart.
//!
//! Payloads are `u64` sequence numbers, as in the original benchmark (which
//! enqueues small integers / pointers).

use wcq_baselines::{CcQueue, CrTurnQueue, FaaQueue, Lcrq, MsQueue, YmcQueue};
use wcq_core::metrics::CountingInstrument;
use wcq_core::wcq::WcqConfig;
use wcq_core::ScqQueue;

pub use wcq::ShardPolicy;
pub use wcq_core::api::{QueueHandle, WaitFreeQueue};

/// Shard count the harness uses for the sharded kinds: enough to split the
/// hot spots, small enough that every stress plan's thread mix still crosses
/// shard boundaries constantly.
pub const HARNESS_SHARDS: usize = 4;

/// Which queue algorithm to instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueueKind {
    /// wCQ with native double-width CAS (§3) — the paper's contribution.
    Wcq,
    /// wCQ over the emulated LL/SC construction (§4, the "PowerPC" variant).
    WcqLlsc,
    /// Lock-free SCQ (the substrate / closest competitor).
    Scq,
    /// Michael & Scott's lock-free list queue.
    MsQueue,
    /// LCRQ (ring queues linked by an outer list).
    Lcrq,
    /// Yang & Mellor-Crummey's segment queue (reproduced shape).
    Ymc,
    /// CCQueue flat-combining queue.
    CcQueue,
    /// CRTurn wait-free queue.
    CrTurn,
    /// FAA counters-only pseudo-queue (throughput upper bound).
    Faa,
    /// wLSCQ: unbounded queue of linked wCQ segments (`wcq-unbounded`).
    WcqUnbounded,
    /// wLSCQ over the emulated LL/SC construction.
    WcqUnboundedLlsc,
    /// Sharded wLSCQ: [`HARNESS_SHARDS`] independent unbounded shards behind
    /// one facade (`ShardedWcq`).
    WcqSharded,
    /// Sharded wLSCQ over the emulated LL/SC construction.
    WcqShardedLlsc,
    /// Sharded wLSCQ under [`ShardPolicy::Adaptive`] routing: the active
    /// shard prefix grows and shrinks with contention, so plans cross the
    /// single-shard fast path, the widening transitions and the shrink-vs-
    /// drain races.  The kind carries the policy (the explicit policy
    /// argument of [`make_queue_with_policy`] is ignored for it).
    WcqShardedAdaptive,
}

impl QueueKind {
    /// Every kind the harness knows (all 14), in a stable order.
    pub fn all() -> Vec<QueueKind> {
        vec![
            QueueKind::Wcq,
            QueueKind::WcqLlsc,
            QueueKind::Scq,
            QueueKind::MsQueue,
            QueueKind::Lcrq,
            QueueKind::Ymc,
            QueueKind::CcQueue,
            QueueKind::CrTurn,
            QueueKind::Faa,
            QueueKind::WcqUnbounded,
            QueueKind::WcqUnboundedLlsc,
            QueueKind::WcqSharded,
            QueueKind::WcqShardedLlsc,
            QueueKind::WcqShardedAdaptive,
        ]
    }

    /// All algorithms shown in the x86 figures (Figs. 10, 11).
    pub fn x86_set() -> Vec<QueueKind> {
        vec![
            QueueKind::Faa,
            QueueKind::Wcq,
            QueueKind::Ymc,
            QueueKind::CcQueue,
            QueueKind::Scq,
            QueueKind::CrTurn,
            QueueKind::MsQueue,
            QueueKind::Lcrq,
        ]
    }

    /// All algorithms shown in the PowerPC figures (Fig. 12): LCRQ is omitted
    /// because it requires true CAS2, and wCQ runs in the LL/SC model.
    pub fn powerpc_set() -> Vec<QueueKind> {
        vec![
            QueueKind::Faa,
            QueueKind::WcqLlsc,
            QueueKind::Ymc,
            QueueKind::CcQueue,
            QueueKind::Scq,
            QueueKind::CrTurn,
            QueueKind::MsQueue,
        ]
    }

    /// The unbounded-queue comparison set: wLSCQ (both hardware models)
    /// against the dynamically allocating baselines that are also unbounded.
    pub fn unbounded_set() -> Vec<QueueKind> {
        vec![
            QueueKind::WcqUnbounded,
            QueueKind::WcqUnboundedLlsc,
            QueueKind::Lcrq,
            QueueKind::MsQueue,
        ]
    }

    /// `true` for the kinds that run over the emulated LL/SC hardware model
    /// (and therefore react to the injected spurious-failure rate).
    pub fn is_llsc(&self) -> bool {
        matches!(
            self,
            QueueKind::WcqLlsc | QueueKind::WcqUnboundedLlsc | QueueKind::WcqShardedLlsc
        )
    }

    /// `true` for the sharded kinds, whose enqueue routing decides whether
    /// per-producer FIFO order is preserved (only pinned routing keeps each
    /// producer's values in one per-shard FIFO stream).
    pub fn is_sharded(&self) -> bool {
        matches!(
            self,
            QueueKind::WcqSharded | QueueKind::WcqShardedLlsc | QueueKind::WcqShardedAdaptive
        )
    }

    /// `true` for the kinds that maintain an approximate length counter, i.e.
    /// whose `WaitFreeQueue::is_empty_hint` is meaningful rather than the
    /// conservative `false` default.
    pub fn has_len_hint(&self) -> bool {
        matches!(
            self,
            QueueKind::WcqUnbounded
                | QueueKind::WcqUnboundedLlsc
                | QueueKind::WcqSharded
                | QueueKind::WcqShardedLlsc
                | QueueKind::WcqShardedAdaptive
        )
    }

    /// Display name matching the paper's legends.
    pub fn name(&self) -> &'static str {
        match self {
            QueueKind::Wcq => "wCQ",
            QueueKind::WcqLlsc => "wCQ (LL/SC)",
            QueueKind::Scq => "SCQ",
            QueueKind::MsQueue => "MSQueue",
            QueueKind::Lcrq => "LCRQ",
            QueueKind::Ymc => "YMC (bug)",
            QueueKind::CcQueue => "CCQueue",
            QueueKind::CrTurn => "CRTurn",
            QueueKind::Faa => "FAA",
            QueueKind::WcqUnbounded => "wLSCQ",
            QueueKind::WcqUnboundedLlsc => "wLSCQ (LL/SC)",
            QueueKind::WcqSharded => "Sharded wLSCQ",
            QueueKind::WcqShardedLlsc => "Sharded wLSCQ (LL/SC)",
            QueueKind::WcqShardedAdaptive => "Sharded wLSCQ (adaptive)",
        }
    }
}

/// Builds a fresh queue of the requested kind behind the public facade.
///
/// `max_threads` bounds concurrent registrations and `ring_order` sizes the
/// bounded rings (the paper uses 2^16 for wCQ/SCQ and 2^12 rings for LCRQ).
pub fn make_queue(
    kind: QueueKind,
    max_threads: usize,
    ring_order: u32,
) -> Box<dyn WaitFreeQueue<u64>> {
    make_queue_configured(kind, max_threads, ring_order, None)
}

/// Like [`make_queue`], but with an explicit wait-freedom configuration for
/// the wCQ kinds.  Stress plans use this to force the slow path with
/// `max_patience = 1`; other kinds ignore the configuration.
///
/// Sharded kinds default to [`ShardPolicy::Pinned`] routing — the policy
/// under which the full per-producer-FIFO oracle applies — with
/// [`HARNESS_SHARDS`] shards; [`make_queue_with_policy`] selects the
/// spreading policies explicitly.
pub fn make_queue_configured(
    kind: QueueKind,
    max_threads: usize,
    ring_order: u32,
    wcq_config: Option<WcqConfig>,
) -> Box<dyn WaitFreeQueue<u64>> {
    make_queue_with_policy(
        kind,
        max_threads,
        ring_order,
        wcq_config,
        ShardPolicy::Pinned,
    )
}

/// The fully explicit construction path: like [`make_queue_configured`] with
/// the enqueue-routing policy for the sharded kinds spelled out (ignored by
/// every other kind).  The stress driver uses this to run the relaxed
/// (unpinned) sharded plan variant.
pub fn make_queue_with_policy(
    kind: QueueKind,
    max_threads: usize,
    ring_order: u32,
    wcq_config: Option<WcqConfig>,
    shard_policy: ShardPolicy,
) -> Box<dyn WaitFreeQueue<u64>> {
    let wcq_builder = wcq::builder()
        .capacity_order(ring_order)
        .threads(max_threads)
        .config(wcq_config.unwrap_or_default());
    // Segment order is capped at 2^12 like LCRQ's rings: both are segmented
    // designs whose *total* capacity is unbounded, so a paper-scale
    // `--order 16` should size their segments, not one giant ring — and the
    // shared cap keeps the wLSCQ-vs-LCRQ comparison like for like.
    let segmented = wcq_builder.clone().capacity_order(ring_order.min(12));
    let sharded = segmented
        .clone()
        .shards(HARNESS_SHARDS)
        .shard_policy(shard_policy);
    match kind {
        QueueKind::Wcq => Box::new(wcq_builder.build_bounded::<u64>()),
        QueueKind::WcqLlsc => Box::new(wcq_builder.llsc().build_bounded::<u64>()),
        QueueKind::WcqUnbounded => Box::new(segmented.build_unbounded::<u64>()),
        QueueKind::WcqUnboundedLlsc => Box::new(segmented.llsc().build_unbounded::<u64>()),
        QueueKind::WcqSharded => Box::new(sharded.build_sharded::<u64>()),
        QueueKind::WcqShardedLlsc => Box::new(sharded.llsc().build_sharded::<u64>()),
        QueueKind::WcqShardedAdaptive => Box::new(
            segmented
                .shards(HARNESS_SHARDS)
                .shard_policy(ShardPolicy::Adaptive)
                .build_sharded::<u64>(),
        ),
        QueueKind::Scq => Box::new(ScqQueue::new(ring_order)),
        QueueKind::MsQueue => Box::new(MsQueue::new(max_threads)),
        QueueKind::Lcrq => Box::new(Lcrq::new(ring_order.min(12), max_threads)),
        QueueKind::Ymc => Box::new(YmcQueue::new()),
        QueueKind::CcQueue => Box::new(CcQueue::new(max_threads)),
        QueueKind::CrTurn => Box::new(CrTurnQueue::new(max_threads)),
        QueueKind::Faa => Box::new(FaaQueue::new(ring_order)),
    }
}

/// Like [`make_queue_configured`], but attaches a live
/// [`CountingInstrument`] to the queue so every layer — ring fast/slow paths,
/// helping entries, CAS failures, segment lifecycle, shard routing — records
/// into its shared counter set.  Returns `None` for the baseline kinds, which
/// have no instrumentation hooks; only the wCQ family (bounded, unbounded,
/// sharded, both hardware models) is observable.
///
/// Keep the returned instrument and call
/// [`snapshot`](CountingInstrument::snapshot) *after* worker handles have
/// dropped: per-handle completion tallies are flushed on handle drop.
pub fn make_counting_queue(
    kind: QueueKind,
    max_threads: usize,
    ring_order: u32,
    wcq_config: Option<WcqConfig>,
) -> Option<(Box<dyn WaitFreeQueue<u64>>, CountingInstrument)> {
    let instr = CountingInstrument::new();
    let wcq_builder = wcq::builder()
        .capacity_order(ring_order)
        .threads(max_threads)
        .config(wcq_config.unwrap_or_default())
        .instrument(instr.clone());
    // Segment-order cap and shard geometry: same reasoning as
    // `make_queue_with_policy`, so counting runs measure the same shapes.
    let segmented = wcq_builder.clone().capacity_order(ring_order.min(12));
    let sharded = segmented
        .clone()
        .shards(HARNESS_SHARDS)
        .shard_policy(ShardPolicy::Pinned);
    let queue: Box<dyn WaitFreeQueue<u64>> = match kind {
        QueueKind::Wcq => Box::new(wcq_builder.build_bounded::<u64>()),
        QueueKind::WcqLlsc => Box::new(wcq_builder.llsc().build_bounded::<u64>()),
        QueueKind::WcqUnbounded => Box::new(segmented.build_unbounded::<u64>()),
        QueueKind::WcqUnboundedLlsc => Box::new(segmented.llsc().build_unbounded::<u64>()),
        QueueKind::WcqSharded => Box::new(sharded.build_sharded::<u64>()),
        QueueKind::WcqShardedLlsc => Box::new(sharded.llsc().build_sharded::<u64>()),
        QueueKind::WcqShardedAdaptive => Box::new(
            segmented
                .shards(HARNESS_SHARDS)
                .shard_policy(ShardPolicy::Adaptive)
                .build_sharded::<u64>(),
        ),
        _ => return None,
    };
    Some((queue, instr))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_constructs_and_round_trips_through_the_facade() {
        // All 14 QueueKinds flow through the public WaitFreeQueue trait.
        for kind in QueueKind::all() {
            let q = make_queue(kind, 2, 8);
            let mut h = q.handle();
            h.enqueue(41);
            h.enqueue(42);
            // FAA is not a real queue but still returns the stored values in
            // this uncontended case.
            assert_eq!(h.dequeue(), Some(41), "kind {:?}", kind);
            assert_eq!(h.dequeue(), Some(42), "kind {:?}", kind);
            assert!(q.memory_footprint() > 0);
            assert!(!q.name().is_empty());
        }
    }

    #[test]
    fn facade_names_match_the_kind_legends() {
        for kind in QueueKind::all() {
            let q = make_queue(kind, 2, 8);
            assert_eq!(q.name(), kind.name(), "kind {:?}", kind);
        }
    }

    #[test]
    fn unbounded_kinds_construct_and_round_trip() {
        for kind in QueueKind::unbounded_set() {
            let q = make_queue(kind, 2, 6);
            let mut h = q.handle();
            for i in 0..200 {
                h.enqueue(i); // 200 values through 64-slot segments forces growth
            }
            for i in 0..200 {
                assert_eq!(h.dequeue(), Some(i), "kind {:?}", kind);
            }
            assert_eq!(h.dequeue(), None, "kind {:?}", kind);
            assert!(q.memory_footprint() > 0);
        }
    }

    #[test]
    fn registration_limited_kinds_exhaust_and_recover() {
        for kind in [
            QueueKind::Wcq,
            QueueKind::MsQueue,
            QueueKind::CcQueue,
            QueueKind::WcqSharded,
        ] {
            let q = make_queue(kind, 2, 8);
            let a = q.try_handle().expect("slot 1");
            let b = q.try_handle().expect("slot 2");
            assert!(q.try_handle().is_none(), "kind {:?}", kind);
            drop(a);
            assert!(q.try_handle().is_some(), "kind {:?}", kind);
            drop(b);
        }
    }

    #[test]
    fn x86_and_powerpc_sets_match_paper_legends() {
        let x86: Vec<_> = QueueKind::x86_set().iter().map(|k| k.name()).collect();
        assert!(x86.contains(&"LCRQ"));
        let ppc: Vec<_> = QueueKind::powerpc_set().iter().map(|k| k.name()).collect();
        assert!(
            !ppc.contains(&"LCRQ"),
            "LCRQ needs CAS2 and is absent on PowerPC"
        );
        assert!(ppc.contains(&"wCQ (LL/SC)"));
        assert_eq!(QueueKind::all().len(), 14);
    }

    #[test]
    fn sharded_kinds_construct_with_explicit_policies() {
        for policy in [
            ShardPolicy::RoundRobin,
            ShardPolicy::LeastLoaded,
            ShardPolicy::Pinned,
        ] {
            for kind in [QueueKind::WcqSharded, QueueKind::WcqShardedLlsc] {
                let q = make_queue_with_policy(kind, 2, 6, None, policy);
                let mut h = q.handle();
                for i in 0..100 {
                    h.enqueue(i);
                }
                let mut seen = std::collections::HashSet::new();
                while let Some(v) = h.dequeue() {
                    assert!(seen.insert(v), "kind {kind:?} duplicated {v}");
                }
                assert_eq!(seen.len(), 100, "kind {kind:?} policy {policy:?}");
            }
        }
    }
}
