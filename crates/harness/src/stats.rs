//! Small statistics helpers (mean, standard deviation, coefficient of
//! variation) used to summarize repeated benchmark runs, matching the paper's
//! reporting ("each point is measured 10 times ... the coefficient of
//! variation is small (< 0.01)").

/// Summary of a set of repeated measurements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Coefficient of variation (`std_dev / mean`), 0 when the mean is 0.
    pub cv: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
}

/// Summarizes a slice of measurements.  Panics on an empty slice.
pub fn summarize(samples: &[f64]) -> Summary {
    assert!(!samples.is_empty(), "cannot summarize zero samples");
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    let var = if samples.len() > 1 {
        samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0)
    } else {
        0.0
    };
    let std_dev = var.sqrt();
    Summary {
        mean,
        std_dev,
        cv: if mean.abs() > f64::EPSILON {
            std_dev / mean
        } else {
            0.0
        },
        min: samples.iter().cloned().fold(f64::INFINITY, f64::min),
        max: samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_sample_has_zero_spread() {
        let s = summarize(&[5.0]);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.cv, 0.0);
        assert_eq!(s.min, 5.0);
        assert_eq!(s.max, 5.0);
    }

    #[test]
    fn known_values() {
        let s = summarize(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.std_dev - 2.138089935299395).abs() < 1e-9);
        assert!((s.cv - 0.427617987).abs() < 1e-6);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    #[should_panic(expected = "zero samples")]
    fn empty_input_panics() {
        let _ = summarize(&[]);
    }
}
