//! # wcq-harness
//!
//! The benchmark harness that regenerates the wCQ paper's evaluation (§6).
//!
//! The paper's methodology, reproduced here:
//!
//! * every queue is driven through the same workloads — an empty-dequeue tight
//!   loop (Figs. 11a/12a), pairwise enqueue–dequeue (Figs. 11b/12b), a 50%/50%
//!   random mix (Figs. 11c/12c) and the memory test with tiny random delays
//!   (Fig. 10);
//! * each configuration is measured `repeats` times over a fixed number of
//!   operations and reported as mean Mops/s with the coefficient of variation;
//! * memory usage is tracked with a counting global allocator plus each
//!   queue's self-reported static footprint (Fig. 10a).
//!
//! The [`queues`] module selects implementations (wCQ in both hardware
//! models, wLSCQ, SCQ, MSQueue, LCRQ, YMC, CCQueue, CRTurn, FAA) behind the
//! *public* [`WaitFreeQueue`]/[`QueueHandle`] facade of `wcq_core::api` —
//! there is no harness-private adapter layer; the workload driver and the
//! integration tests drive exactly the API applications use, and every
//! wCQ-family queue is constructed through `wcq::builder()`.
//!
//! Beyond benchmarking, the harness is also the project's correctness-test
//! subsystem: [`stress`] provides seed-reproducible [`StressPlan`]s with a
//! loss/duplication/per-producer-FIFO oracle shared by every queue kind, and
//! [`rng`] the deterministic PRNG both layers draw from.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod channel_stress;
pub mod exec;
pub mod memtrack;
pub mod queues;
pub mod report;
pub mod rng;
pub mod stats;
pub mod stress;
pub mod workload;

pub use channel_stress::{all_channel_backends, ChannelStressPlan, ChannelStressReport};
pub use exec::block_on_instrumented;
#[allow(deprecated)]
pub use exec::{block_on, block_on_counted, PollStats};
pub use queues::{
    make_counting_queue, make_queue, make_queue_configured, make_queue_with_policy, QueueHandle,
    QueueKind, ShardPolicy, WaitFreeQueue, HARNESS_SHARDS,
};
pub use rng::DetRng;
pub use stress::{all_real_queues, decode, encode, verify_observations, StressPlan, StressReport};
pub use wcq_core::adaptive::AdaptivePatience;
pub use wcq_core::wcq::WcqConfig;
pub use workload::{run_workload, RunResult, Workload, WorkloadConfig};
