//! Workload definitions and the multi-threaded measurement driver.
//!
//! The four workloads are those of §6:
//!
//! * [`Workload::EmptyDequeue`] — dequeue on an empty queue in a tight loop
//!   (Figures 11a / 12a); isolates the cost of the empty check (wCQ/SCQ win
//!   because of the threshold).
//! * [`Workload::Pairs`] — each thread alternates enqueue and dequeue
//!   (Figures 11b / 12b).
//! * [`Workload::Mixed`] — each operation is an enqueue or a dequeue with
//!   probability ½ (Figures 11c / 12c).
//! * [`Workload::MemoryTest`] — the Figure 10 workload: 50/50 random
//!   operations with tiny random delays in between, which amplifies the
//!   memory-consumption differences between the algorithms.
//!
//! [`run_workload`] spawns the requested number of threads, each registered
//! with its own handle, measures wall-clock time for a fixed total number of
//! operations, repeats the measurement, and reports throughput statistics —
//! the same loop structure as the benchmark of \[45\] that the paper extends.

use std::sync::atomic::{AtomicBool, Ordering::SeqCst};
use std::time::Instant;

use crate::queues::WaitFreeQueue;
use crate::rng::DetRng;
use crate::stats::{summarize, Summary};

/// The benchmark workloads of §6.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Tight-loop dequeue on an empty queue.
    EmptyDequeue,
    /// Enqueue immediately followed by dequeue, per thread.
    Pairs,
    /// 50% enqueue / 50% dequeue chosen randomly per operation.
    Mixed,
    /// 50/50 random operations with tiny random delays (the memory test).
    MemoryTest,
}

impl Workload {
    /// Human-readable name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            Workload::EmptyDequeue => "empty-dequeue",
            Workload::Pairs => "pairwise enq-deq",
            Workload::Mixed => "50/50 mixed",
            Workload::MemoryTest => "memory test",
        }
    }
}

/// Parameters of one measurement.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadConfig {
    /// Number of worker threads.
    pub threads: usize,
    /// Total operations across all threads per repetition.
    pub total_ops: u64,
    /// Number of repetitions (the paper uses 10).
    pub repeats: u32,
    /// Seed for the per-thread RNGs (mixed / memory workloads).
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        Self {
            threads: 1,
            total_ops: 1_000_000,
            repeats: 10,
            seed: 0x5EED_CAFE,
        }
    }
}

/// Result of a full measurement (all repetitions).
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Throughput in million operations per second, across repetitions.
    pub mops: Summary,
    /// Per-repetition raw throughput values (Mops/s).
    pub samples: Vec<f64>,
    /// Queue-reported memory footprint after the last repetition, in bytes.
    pub queue_footprint: usize,
}

/// Runs `workload` against `queue` and reports throughput statistics.
pub fn run_workload(
    queue: &dyn WaitFreeQueue<u64>,
    workload: Workload,
    cfg: &WorkloadConfig,
) -> RunResult {
    assert!(cfg.threads >= 1);
    let ops_per_thread = (cfg.total_ops / cfg.threads as u64).max(1);
    let mut samples = Vec::with_capacity(cfg.repeats as usize);
    for rep in 0..cfg.repeats {
        let elapsed = run_once(queue, workload, cfg, ops_per_thread, rep as u64);
        let total = ops_per_thread * cfg.threads as u64;
        samples.push(total as f64 / elapsed / 1e6);
    }
    RunResult {
        mops: summarize(&samples),
        samples,
        queue_footprint: queue.memory_footprint(),
    }
}

/// One timed repetition; returns elapsed seconds.
fn run_once(
    queue: &dyn WaitFreeQueue<u64>,
    workload: Workload,
    cfg: &WorkloadConfig,
    ops_per_thread: u64,
    rep: u64,
) -> f64 {
    let start_flag = AtomicBool::new(false);
    let mut elapsed = 0.0;
    std::thread::scope(|s| {
        let mut joins = Vec::new();
        for tid in 0..cfg.threads {
            let queue = &queue;
            let start_flag = &start_flag;
            let seed = cfg
                .seed
                .wrapping_add(rep.wrapping_mul(0x9E37_79B9))
                .wrapping_add(tid as u64);
            joins.push(s.spawn(move || {
                let mut handle = queue.handle();
                let mut rng = DetRng::new(seed);
                while !start_flag.load(SeqCst) {
                    std::hint::spin_loop();
                }
                match workload {
                    Workload::EmptyDequeue => {
                        for _ in 0..ops_per_thread {
                            let _ = handle.dequeue();
                        }
                    }
                    Workload::Pairs => {
                        for i in 0..ops_per_thread {
                            handle.enqueue(i & 0xFFFF);
                            let _ = handle.dequeue();
                        }
                    }
                    Workload::Mixed => {
                        for i in 0..ops_per_thread {
                            if rng.chance(0.5) {
                                handle.enqueue(i & 0xFFFF);
                            } else {
                                let _ = handle.dequeue();
                            }
                        }
                    }
                    Workload::MemoryTest => {
                        for i in 0..ops_per_thread {
                            if rng.chance(0.5) {
                                handle.enqueue(i & 0xFFFF);
                            } else {
                                let _ = handle.dequeue();
                            }
                            // Tiny random delay, as in the paper's memory test.
                            for _ in 0..rng.next_below(32) {
                                std::hint::spin_loop();
                            }
                        }
                    }
                }
            }));
        }
        let start = Instant::now();
        start_flag.store(true, SeqCst);
        for j in joins {
            j.join().expect("benchmark worker panicked");
        }
        elapsed = start.elapsed().as_secs_f64();
    });
    // Drain the queue between repetitions so the memory/empty-queue state is
    // comparable across repeats.
    let mut cleaner = queue.handle();
    while cleaner.dequeue().is_some() {}
    elapsed.max(1e-9)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queues::{make_queue, QueueKind};

    fn small_cfg(threads: usize) -> WorkloadConfig {
        WorkloadConfig {
            threads,
            total_ops: 20_000,
            repeats: 2,
            seed: 42,
        }
    }

    #[test]
    fn pairs_workload_reports_positive_throughput() {
        let q = make_queue(QueueKind::Wcq, 3, 10);
        let res = run_workload(q.as_ref(), Workload::Pairs, &small_cfg(2));
        assert!(res.mops.mean > 0.0);
        assert_eq!(res.samples.len(), 2);
        assert!(res.queue_footprint > 0);
    }

    #[test]
    fn empty_dequeue_workload_runs_for_all_kinds() {
        for kind in [
            QueueKind::Wcq,
            QueueKind::Scq,
            QueueKind::MsQueue,
            QueueKind::Faa,
        ] {
            let q = make_queue(kind, 2, 8);
            let res = run_workload(q.as_ref(), Workload::EmptyDequeue, &small_cfg(1));
            assert!(res.mops.mean > 0.0, "kind {:?}", kind);
        }
    }

    #[test]
    fn mixed_workload_multi_threaded() {
        let q = make_queue(QueueKind::Scq, 3, 10);
        let res = run_workload(q.as_ref(), Workload::Mixed, &small_cfg(2));
        assert!(res.mops.mean > 0.0);
        assert!(res.mops.cv >= 0.0);
    }
}
