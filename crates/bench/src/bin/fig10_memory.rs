//! Reproduces Figure 10: memory usage (10a) and throughput (10b) of the
//! memory test — 50/50 random operations with tiny random delays, standard
//! allocator.
//!
//! Memory is reported as the queue's self-reported footprint plus the peak
//! heap bytes allocated while the workload ran (tracked by the counting
//! global allocator installed below).
//!
//! Usage:
//! ```text
//! cargo run --release -p wcq-bench --bin fig10_memory -- \
//!     [--threads 1,2,4,8] [--ops N] [--repeats N] [--order N] [--paper]
//! ```

use wcq_bench::sweep::{print_table, write_tables_json};
use wcq_bench::{queue_set, BenchOpts};
use wcq_harness::memtrack::{self, CountingAllocator};
use wcq_harness::report::FigureTable;
use wcq_harness::{make_queue, run_workload, Workload, WorkloadConfig};

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn main() {
    let opts = BenchOpts::parse(std::env::args().skip(1));
    let kinds = queue_set(false);
    let mut mem_table = FigureTable::new("Figure 10a: memory usage (memory test)", "MB");
    let mut thr_table = FigureTable::new("Figure 10b: throughput (memory test)", "Mops/s");

    for &threads in &opts.threads {
        for &kind in &kinds {
            let before = memtrack::snapshot();
            memtrack::reset_peak();
            let queue = make_queue(kind, threads + 1, opts.ring_order);
            let cfg = WorkloadConfig {
                threads,
                total_ops: opts.ops,
                repeats: opts.repeats,
                seed: 0x1234_5678 + threads as u64,
            };
            let res = run_workload(queue.as_ref(), Workload::MemoryTest, &cfg);
            let after = memtrack::snapshot();
            // Peak heap growth during the run plus the queue's self-reported
            // static footprint (rings allocated up front are part of `before`
            // vs `after` live bytes too, but self-reporting keeps FAA/CCQueue
            // comparable).
            let d = memtrack::delta(before, after);
            let bytes = d.peak_bytes.max(res.queue_footprint);
            mem_table.record(kind.name(), threads, bytes as f64 / (1024.0 * 1024.0));
            thr_table.record(kind.name(), threads, res.mops.mean);
            eprintln!(
                "  [fig10] {:<12} threads={threads:<3} {:>8.2} MB  {:>8.3} Mops/s",
                kind.name(),
                bytes as f64 / (1024.0 * 1024.0),
                res.mops.mean
            );
            drop(queue);
        }
    }

    print_table(&mem_table);
    print_table(&thr_table);
    write_tables_json("BENCH_memory.json", &[mem_table, thr_table]);
}
