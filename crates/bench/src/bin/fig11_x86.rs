//! Reproduces Figures 11a/11b/11c (x86, native CAS2): empty-dequeue,
//! pairwise enqueue-dequeue, and 50%/50% random workloads for every queue.
//!
//! Usage:
//! ```text
//! cargo run --release -p wcq-bench --bin fig11_x86 -- [empty|pairs|mixed] \
//!     [--threads 1,2,4,8] [--ops N] [--repeats N] [--order N] [--paper]
//! ```

use wcq_bench::sweep::{print_table, throughput_sweep, write_tables_json};
use wcq_bench::{json_artifact_name, queue_set, select_workloads, BenchOpts};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let workload_arg = args.first().filter(|a| !a.starts_with("--")).cloned();
    let opts = BenchOpts::parse(args.into_iter());
    let kinds = queue_set(false);
    let mut tables = Vec::new();
    for workload in select_workloads(workload_arg.as_deref()) {
        let figure = match workload {
            wcq_harness::Workload::EmptyDequeue => "Figure 11a: empty-dequeue throughput (x86)",
            wcq_harness::Workload::Pairs => "Figure 11b: pairwise enqueue-dequeue (x86)",
            _ => "Figure 11c: 50%/50% enqueue-dequeue (x86)",
        };
        let table = throughput_sweep(figure, &kinds, workload, &opts);
        print_table(&table);
        tables.push(table);
    }
    write_tables_json(
        &json_artifact_name("fig11", workload_arg.as_deref()),
        &tables,
    );
}
