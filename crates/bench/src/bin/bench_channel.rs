//! Channel-endpoint overhead: the typed `Sender`/`Receiver` layer against
//! raw facade handles, on a producer→consumer pipeline.
//!
//! The channel layer (ISSUE 5) adds a closed check, an in-flight credit and a
//! wake hook around every queue operation; this binary measures what that
//! costs.  Each measurement runs `t` producers sending a fixed total through
//! `t` consumers:
//!
//! * **channel rows** — endpoints from `build_channel()` over the unbounded,
//!   bounded and sharded (pinned, x4) backends; the run ends through the
//!   channel's own close-and-drain protocol (producers drop, consumers recv
//!   until `Closed`);
//! * **batched rows** — the unbounded and sharded backends again, but with
//!   producers pushing `send_iter` chunks of 64 and consumers draining with
//!   `recv_many`, so the closed-check and in-flight credit amortize over the
//!   batch (series `… enqueue_many(batch=64)`);
//! * **async row** — the same pipeline through `build_async()` endpoints,
//!   each thread driving its futures with the dependency-free
//!   `wcq_harness::exec::block_on` shim;
//! * **raw row** — the same pipeline over bare `queue.handle()`s with a
//!   done-flag termination protocol, i.e. what an application would hand-roll
//!   without the channel layer;
//! * **counting row** — the unbounded backend once more, but built with a
//!   live [`wcq::CountingInstrument`] (series `channel/wLSCQ (counting)`).
//!   Against the default `channel/wLSCQ` row it is the observability layer's
//!   overhead measurement: the default `NoopInstrument` build must sit within
//!   noise of it being absent, and the counting build shows the real cost of
//!   the atomic counters.
//!
//! A second table reports per-op **latency percentiles** (p50/p90/p99/p999,
//! in ns) of send and recv on the unbounded backend, sampled with the
//! zero-dependency [`wcq::LatencyHistogram`].  It is written to the separate
//! artifact `BENCH_channel_latency.json` so the committed throughput baseline
//! keeps its PR-to-PR shape.
//!
//! Usage:
//! ```text
//! cargo run --release -p wcq-bench --bin bench_channel -- \
//!     [--threads 1,2,4,8] [--ops N] [--repeats N] [--order N] [--quick]
//! ```
//!
//! `--threads` counts producer/consumer *pairs*: `--threads 4` runs 4
//! producers and 4 consumers.  `--quick` is the CI-smoke / committed-baseline
//! shape shared with the other binaries.  Emits `BENCH_channel.json` and
//! `BENCH_channel_latency.json`.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering::SeqCst};
use std::time::Instant;

use wcq::channel::{Receiver, Sender};
use wcq::{
    ChannelBackend, CountingInstrument, Instrument, LatencyHistogram, ShardPolicy, WaitFreeQueue,
};
use wcq_bench::latency::{record_percentiles, timed};
use wcq_bench::sweep::{print_table, write_tables_json};
use wcq_bench::BenchOpts;
use wcq_harness::exec::block_on;
use wcq_harness::report::FigureTable;
use wcq_harness::stats::summarize;

/// Shard count for the sharded-backend row (matches `bench_sharded`'s sweet
/// spot and the harness default).
const CHANNEL_SHARDS: usize = 4;

/// Batch size for the `send_iter`/`recv_many` rows (the same size
/// `bench_sharded` records, so the two artifacts stay comparable).
const PIPELINE_BATCH: usize = wcq_bench::batch::PAIRWISE_BATCH;

fn channel_builder(
    backend: ChannelBackend,
    pairs: usize,
    ring_order: u32,
) -> wcq::QueueBuilder<wcq::NativeFamily> {
    wcq::builder()
        // Bounded rows get the full ring; the segmented backends share
        // LCRQ's 2^12 segment cap like everywhere else in the harness.
        .capacity_order(match backend {
            ChannelBackend::Bounded => ring_order,
            _ => ring_order.min(12),
        })
        .threads(2 * pairs + 1)
        .shards(if backend == ChannelBackend::Sharded {
            CHANNEL_SHARDS
        } else {
            1
        })
        .shard_policy(ShardPolicy::Pinned)
        .backend(backend)
}

/// One timed pipeline repetition over sync channel endpoints; returns Mops/s
/// counting both sends and receives, like the pairwise workload.  Generic
/// over the channel's [`Instrument`] so the default and counting rows run
/// the exact same pipeline code.
fn run_channel_once<I: Instrument>(
    tx: Sender<u64, I>,
    rx: Receiver<u64, I>,
    pairs: usize,
    total_ops: u64,
) -> f64 {
    let per_producer = (total_ops / pairs as u64).max(1);
    let moved = per_producer * pairs as u64;
    let start = Instant::now();
    std::thread::scope(|s| {
        for p in 0..pairs {
            let mut tx = tx.clone();
            s.spawn(move || {
                for i in 0..per_producer {
                    tx.send((p as u64) << 40 | i).expect("receivers alive");
                }
            });
        }
        for _ in 0..pairs {
            let mut rx = rx.clone();
            s.spawn(move || while rx.recv().is_ok() {});
        }
        drop(tx); // producers' clones hold the channel open until done
        drop(rx);
    });
    2.0 * moved as f64 / start.elapsed().as_secs_f64().max(1e-9) / 1e6
}

/// The batched twin of [`run_channel_once`]: producers push chunks through
/// `send_iter` and consumers drain with `recv_many`, so the closed-check and
/// in-flight credit are paid once per batch instead of once per value.
fn run_channel_batched_once<I: Instrument>(
    tx: Sender<u64, I>,
    rx: Receiver<u64, I>,
    pairs: usize,
    total_ops: u64,
    batch: usize,
) -> f64 {
    let per_producer = (total_ops / pairs as u64).max(1);
    let moved = per_producer * pairs as u64;
    let start = Instant::now();
    std::thread::scope(|s| {
        for p in 0..pairs {
            let mut tx = tx.clone();
            s.spawn(move || {
                let mut i = 0u64;
                while i < per_producer {
                    let n = (batch as u64).min(per_producer - i);
                    tx.send_iter((i..i + n).map(|v| (p as u64) << 40 | v))
                        .expect("receivers alive");
                    i += n;
                }
            });
        }
        for _ in 0..pairs {
            let mut rx = rx.clone();
            s.spawn(move || {
                let mut grab = Vec::with_capacity(batch);
                while rx.recv_many(&mut grab, batch).is_ok() {
                    grab.clear();
                }
            });
        }
        drop(tx);
        drop(rx);
    });
    2.0 * moved as f64 / start.elapsed().as_secs_f64().max(1e-9) / 1e6
}

/// The async twin: every thread drives its endpoint with `block_on`.
fn run_async_once(pairs: usize, total_ops: u64, ring_order: u32) -> f64 {
    let (tx, rx) =
        channel_builder(ChannelBackend::Unbounded, pairs, ring_order).build_async::<u64>();
    let per_producer = (total_ops / pairs as u64).max(1);
    let moved = per_producer * pairs as u64;
    let start = Instant::now();
    std::thread::scope(|s| {
        for p in 0..pairs {
            let mut tx = tx.clone();
            s.spawn(move || {
                block_on(async move {
                    for i in 0..per_producer {
                        tx.send((p as u64) << 40 | i)
                            .await
                            .expect("receivers alive");
                    }
                })
            });
        }
        for _ in 0..pairs {
            let mut rx = rx.clone();
            s.spawn(move || block_on(async move { while rx.recv().await.is_ok() {} }));
        }
        drop(tx);
        drop(rx);
    });
    2.0 * moved as f64 / start.elapsed().as_secs_f64().max(1e-9) / 1e6
}

/// The latency twin of [`run_channel_once`]: the same pipeline, but every
/// send and recv is timed individually into the shared histograms (the final
/// `Closed` recv of each consumer included — that is the close-and-drain
/// latency applications actually see).
fn run_channel_latency_once(
    tx: Sender<u64>,
    rx: Receiver<u64>,
    pairs: usize,
    total_ops: u64,
    send_hist: &LatencyHistogram,
    recv_hist: &LatencyHistogram,
) {
    let per_producer = (total_ops / pairs as u64).max(1);
    std::thread::scope(|s| {
        for p in 0..pairs {
            let mut tx = tx.clone();
            s.spawn(move || {
                for i in 0..per_producer {
                    timed(send_hist, || tx.send((p as u64) << 40 | i)).expect("receivers alive");
                }
            });
        }
        for _ in 0..pairs {
            let mut rx = rx.clone();
            s.spawn(move || while timed(recv_hist, || rx.recv()).is_ok() {});
        }
        drop(tx);
        drop(rx);
    });
}

/// The hand-rolled alternative the channel layer replaces: raw handles plus
/// a done-flag/counter termination protocol (the stress driver's shape).
fn run_raw_once(queue: &dyn WaitFreeQueue<u64>, pairs: usize, total_ops: u64) -> f64 {
    let per_producer = (total_ops / pairs as u64).max(1);
    let moved = per_producer * pairs as u64;
    let consumed = AtomicU64::new(0);
    let producers_done = AtomicUsize::new(0);
    let start = Instant::now();
    std::thread::scope(|s| {
        for p in 0..pairs {
            let producers_done = &producers_done;
            let queue = &queue;
            s.spawn(move || {
                let mut h = queue.handle();
                for i in 0..per_producer {
                    h.enqueue((p as u64) << 40 | i);
                }
                producers_done.fetch_add(1, SeqCst);
            });
        }
        for _ in 0..pairs {
            let consumed = &consumed;
            let producers_done = &producers_done;
            let queue = &queue;
            s.spawn(move || {
                let mut h = queue.handle();
                loop {
                    if h.dequeue().is_some() {
                        consumed.fetch_add(1, SeqCst);
                    } else if producers_done.load(SeqCst) == pairs && consumed.load(SeqCst) >= moved
                    {
                        break;
                    } else {
                        std::hint::spin_loop();
                    }
                }
            });
        }
    });
    2.0 * moved as f64 / start.elapsed().as_secs_f64().max(1e-9) / 1e6
}

fn record(table: &mut FigureTable, series: &str, threads: usize, samples: &[f64]) {
    let stats = summarize(samples);
    table.record(series, threads, stats.mean);
    eprintln!(
        "  {series:<28} pairs={threads:<3} {:>10.3} Mops/s (cv {:.4})",
        stats.mean, stats.cv
    );
}

fn main() {
    let opts = BenchOpts::parse(std::env::args().skip(1));
    let mut table = FigureTable::new(
        "Channel endpoints vs raw handles: producer->consumer pipeline",
        "Mops/s",
    );

    for &pairs in &opts.threads {
        for (backend, series) in [
            (ChannelBackend::Unbounded, "channel/wLSCQ"),
            (ChannelBackend::Bounded, "channel/wCQ (bounded)"),
            (ChannelBackend::Sharded, "channel/Sharded wLSCQ x4"),
        ] {
            let samples: Vec<f64> = (0..opts.repeats)
                .map(|_| {
                    let (tx, rx) =
                        channel_builder(backend, pairs, opts.ring_order).build_channel::<u64>();
                    run_channel_once(tx, rx, pairs, opts.ops)
                })
                .collect();
            record(&mut table, series, pairs, &samples);
        }

        for (backend, series) in [
            (
                ChannelBackend::Unbounded,
                format!("channel/wLSCQ enqueue_many(batch={PIPELINE_BATCH})"),
            ),
            (
                ChannelBackend::Sharded,
                format!("channel/Sharded wLSCQ x4 enqueue_many(batch={PIPELINE_BATCH})"),
            ),
        ] {
            let samples: Vec<f64> = (0..opts.repeats)
                .map(|_| {
                    let (tx, rx) =
                        channel_builder(backend, pairs, opts.ring_order).build_channel::<u64>();
                    run_channel_batched_once(tx, rx, pairs, opts.ops, PIPELINE_BATCH)
                })
                .collect();
            record(&mut table, &series, pairs, &samples);
        }

        // The observability-overhead row: the same unbounded pipeline, but
        // with live atomic counters attached.  The gap between this and the
        // "channel/wLSCQ" row above is what instrumentation costs; the
        // default (NoopInstrument) row is the zero-overhead contract.
        let samples: Vec<f64> = (0..opts.repeats)
            .map(|_| {
                let (tx, rx) = channel_builder(ChannelBackend::Unbounded, pairs, opts.ring_order)
                    .instrument(CountingInstrument::new())
                    .build_channel::<u64>();
                run_channel_once(tx, rx, pairs, opts.ops)
            })
            .collect();
        record(&mut table, "channel/wLSCQ (counting)", pairs, &samples);

        let samples: Vec<f64> = (0..opts.repeats)
            .map(|_| run_async_once(pairs, opts.ops, opts.ring_order))
            .collect();
        record(&mut table, "channel/wLSCQ (async)", pairs, &samples);

        let samples: Vec<f64> = (0..opts.repeats)
            .map(|_| {
                let queue = channel_builder(ChannelBackend::Unbounded, pairs, opts.ring_order)
                    .build_unbounded::<u64>();
                run_raw_once(&queue, pairs, opts.ops)
            })
            .collect();
        record(&mut table, "wLSCQ raw handles", pairs, &samples);
    }

    print_table(&table);
    write_tables_json("BENCH_channel.json", &[table]);

    // Latency percentiles go to a separate artifact so the throughput
    // baseline above keeps its exact PR-to-PR series shape.
    let mut latency = FigureTable::new(
        "Channel endpoint latency: per-op send/recv, wLSCQ backend",
        "ns",
    );
    for &pairs in &opts.threads {
        let send_hist = LatencyHistogram::new();
        let recv_hist = LatencyHistogram::new();
        for _ in 0..opts.repeats {
            let (tx, rx) = channel_builder(ChannelBackend::Unbounded, pairs, opts.ring_order)
                .build_channel::<u64>();
            run_channel_latency_once(tx, rx, pairs, opts.ops, &send_hist, &recv_hist);
        }
        record_percentiles(
            &mut latency,
            "channel/wLSCQ send",
            pairs,
            &send_hist.snapshot(),
        );
        record_percentiles(
            &mut latency,
            "channel/wLSCQ recv",
            pairs,
            &recv_hist.snapshot(),
        );
    }
    print_table(&latency);
    write_tables_json("BENCH_channel_latency.json", &[latency]);
}
