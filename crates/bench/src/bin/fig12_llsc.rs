//! Reproduces Figures 12a/12b/12c (PowerPC hardware model): the same three
//! workloads as Figure 11, but with wCQ running over the emulated LL/SC
//! construction of §4 and without LCRQ (which requires a true CAS2).
//!
//! Usage:
//! ```text
//! cargo run --release -p wcq-bench --bin fig12_llsc -- [empty|pairs|mixed] \
//!     [--threads 1,2,4,8] [--ops N] [--repeats N] [--order N]
//! ```

use wcq_bench::sweep::{print_table, throughput_sweep, write_tables_json};
use wcq_bench::{json_artifact_name, queue_set, select_workloads, BenchOpts};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let workload_arg = args.first().filter(|a| !a.starts_with("--")).cloned();
    let opts = BenchOpts::parse(args.into_iter());
    let kinds = queue_set(true);
    let mut tables = Vec::new();
    for workload in select_workloads(workload_arg.as_deref()) {
        let figure = match workload {
            wcq_harness::Workload::EmptyDequeue => {
                "Figure 12a: empty-dequeue throughput (LL/SC model)"
            }
            wcq_harness::Workload::Pairs => "Figure 12b: pairwise enqueue-dequeue (LL/SC model)",
            _ => "Figure 12c: 50%/50% enqueue-dequeue (LL/SC model)",
        };
        let table = throughput_sweep(figure, &kinds, workload, &opts);
        print_table(&table);
        tables.push(table);
    }
    write_tables_json(
        &json_artifact_name("fig12", workload_arg.as_deref()),
        &tables,
    );
}
