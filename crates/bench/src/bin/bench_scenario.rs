//! Open-loop scenario latency: tail percentiles under seeded steady vs
//! bursty arrivals, across channel backends.
//!
//! Every other binary here drives the queues closed-loop and scores
//! throughput.  This one drives the `wcq-scenario` pipeline — N frontends
//! replaying a seeded open-loop arrival schedule into hi/lo priority lanes,
//! M workers draining both lanes through one parked `recv_any_timeout`
//! wait — and reports **latency measured from each request's intended start
//! time**, so queueing delay under overload is inside every percentile
//! (no coordinated omission).
//!
//! Rows (series) per `(pattern, backend, stage)`:
//!
//! * pattern — `steady/` (fixed-rate Poisson) vs `bursty/` (on-off bursts);
//!   bursts are the tail stressor: each one front-loads a backlog.
//! * backend — the unbounded wLSCQ and the 4-shard sharded wLSCQ.
//! * stage — `queue-wait` (intended start → worker dequeue) and `e2e`
//!   (intended start → completion collected), as `p50`/`p90`/`p99`/`p999`
//!   percentile rows in ns.
//!
//! The table column is the worker count (the sweep axis); frontends match
//! the worker count.  Every run verifies exactly-once delivery and an exact
//! post-close drain as it goes — a completed run *is* the oracle passing —
//! and races the seeded churn plan (endpoint clone/drop storms) against the
//! close.
//!
//! Usage:
//! ```text
//! cargo run --release -p wcq-bench --bin bench_scenario -- \
//!     [--threads 1,2,4] [--ops N] [--quick]
//! ```
//!
//! `--ops` is the total request count per run; `--quick` is the CI-smoke /
//! committed-baseline shape.  Emits `BENCH_scenario_latency.json` (unit
//! "ns": `bench_diff` flags percentile *growth* as a regression).

use std::time::Duration;

use wcq::{AdaptivePatience, ChannelBackend, PatienceMode, ShardPolicy};
use wcq_bench::latency::record_percentiles;
use wcq_bench::sweep::{print_table, write_tables_json};
use wcq_bench::BenchOpts;
use wcq_harness::report::FigureTable;
use wcq_scenario::{ArrivalPattern, Scenario, ScenarioConfig};

/// Shard count for the sharded-backend rows (the workspace's usual x4).
const SCENARIO_SHARDS: usize = 4;

/// Offered load of the steady schedule (requests/s across all frontends).
const STEADY_RATE: f64 = 2_000_000.0;

/// The bursty schedule: 4M/s bursts for 250µs, then 750µs of silence —
/// the same 1M/s average as a steady schedule at a quarter the peak.
const BURST_RATE: f64 = 4_000_000.0;
const BURST_ON_NS: u64 = 250_000;
const BURST_OFF_NS: u64 = 750_000;

fn patterns() -> [(&'static str, ArrivalPattern); 2] {
    [
        (
            "steady",
            ArrivalPattern::Steady {
                rate_per_sec: STEADY_RATE,
            },
        ),
        (
            "bursty",
            ArrivalPattern::Bursty {
                burst_per_sec: BURST_RATE,
                on_ns: BURST_ON_NS,
                off_ns: BURST_OFF_NS,
            },
        ),
    ]
}

fn backends() -> [(&'static str, ChannelBackend); 2] {
    [
        ("wLSCQ", ChannelBackend::Unbounded),
        ("Sharded wLSCQ x4", ChannelBackend::Sharded),
    ]
}

fn main() {
    let opts = BenchOpts::parse(std::env::args().skip(1));
    // One request is several queue ops (send, two-lane recv, completion);
    // `--ops` maps to requests directly so `--quick` stays a sub-second run.
    let requests = opts.ops.min(1_000_000) as usize;
    let mut table = FigureTable::new(
        "Open-loop scenario latency from intended start: steady vs bursty arrivals",
        "ns",
    );

    for &workers in &opts.threads {
        let workers = workers.max(1);
        for (pattern_name, pattern) in patterns() {
            for (backend_name, backend) in backends() {
                let scenario = Scenario::new(ScenarioConfig {
                    seed: 0xBEEF + workers as u64,
                    frontends: workers,
                    workers,
                    requests,
                    pattern,
                    backend,
                    shards: SCENARIO_SHARDS,
                    shard_policy: ShardPolicy::default(),
                    patience: PatienceMode::Adaptive(AdaptivePatience::default()),
                    work_ns: 200,
                    churn_events: 64,
                    worker_timeout: Duration::from_micros(500),
                    worker_stall: Duration::ZERO,
                });
                let report = scenario.run();
                assert_eq!(report.completed, requests as u64, "scenario lost requests");
                record_percentiles(
                    &mut table,
                    &format!("{pattern_name}/{backend_name} queue-wait"),
                    workers,
                    &report.queue_wait,
                );
                record_percentiles(
                    &mut table,
                    &format!("{pattern_name}/{backend_name} e2e"),
                    workers,
                    &report.end_to_end,
                );
            }
        }
    }

    print_table(&table);
    write_tables_json("BENCH_scenario_latency.json", &[table]);
}
