//! The ROADMAP's bench differ: compare freshly emitted `BENCH_*.json`
//! artifacts against committed baselines and flag throughput regressions.
//!
//! Typical CI use (warn-only):
//! ```text
//! cargo run --release -p wcq-bench --bin bench_diff -- \
//!     --baseline-dir bench_baselines --current-dir . --threshold 0.10
//! ```
//!
//! The differ walks every `BENCH_*.json` in the baseline directory, looks for
//! a file of the same name in the current directory, and reports each matched
//! cell (Fig. 11 rows, the wLSCQ comparison, …) whose throughput dropped —
//! or whose memory footprint grew — by more than the threshold.  Missing
//! current files are reported but never fatal: a partial bench run compares
//! what it produced.  By default the exit code is always 0 (bench numbers on
//! shared CI runners are noisy; the report is for humans); `--strict` exits
//! non-zero when regressions were found, for dedicated perf machines.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use wcq_bench::diff::{compare, parse_bench_json};

struct Opts {
    baseline_dir: PathBuf,
    current_dir: PathBuf,
    threshold: f64,
    strict: bool,
}

impl Opts {
    fn parse(args: impl Iterator<Item = String>) -> Self {
        let mut opts = Self {
            baseline_dir: PathBuf::from("bench_baselines"),
            current_dir: PathBuf::from("."),
            threshold: 0.10,
            strict: false,
        };
        let args: Vec<String> = args.collect();
        let mut i = 0;
        let value_of = |i: &mut usize| -> Option<&String> {
            *i += 1;
            let v = args.get(*i);
            if v.is_none() {
                eprintln!("bench_diff: {} needs a value", args[*i - 1]);
            }
            v
        };
        while i < args.len() {
            match args[i].as_str() {
                "--baseline-dir" => {
                    if let Some(v) = value_of(&mut i) {
                        opts.baseline_dir = PathBuf::from(v);
                    }
                }
                "--current-dir" => {
                    if let Some(v) = value_of(&mut i) {
                        opts.current_dir = PathBuf::from(v);
                    }
                }
                "--threshold" => {
                    if let Some(v) = value_of(&mut i) {
                        match v.parse::<f64>() {
                            // NaN never compares, a negative sign inverts the
                            // gate — both would silently neuter --strict.
                            Ok(t) if t.is_finite() && t >= 0.0 => opts.threshold = t,
                            // Loud, not silent: a strict run gating on the
                            // wrong threshold is worse than no run.
                            _ => eprintln!(
                                "bench_diff: bad --threshold {v:?}, keeping {}",
                                opts.threshold
                            ),
                        }
                    }
                }
                "--strict" => opts.strict = true,
                other => eprintln!("bench_diff: ignoring unknown argument {other:?}"),
            }
            i += 1;
        }
        opts
    }
}

/// `BENCH_*.json` files in `dir`, sorted for stable output.
fn bench_artifacts(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .into_iter()
        .flatten()
        .flatten()
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        })
        .collect();
    files.sort();
    files
}

fn main() -> ExitCode {
    let opts = Opts::parse(std::env::args().skip(1));
    let baselines = bench_artifacts(&opts.baseline_dir);
    if baselines.is_empty() {
        println!(
            "bench_diff: no BENCH_*.json baselines under {} — nothing to compare",
            opts.baseline_dir.display()
        );
        // A gate that compares nothing must not pass silently in strict mode
        // (typo'd directory, baselines deleted by a refactor, …).
        return if opts.strict {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        };
    }

    let mut regressions = 0usize;
    let mut compared = 0usize;
    for baseline_path in &baselines {
        // `file_name()` is None only for paths ending in `..`; that cannot
        // come out of `bench_artifacts`, but a gate must die loudly — with
        // the offending path — rather than unwrap-panic on a refactor.
        let Some(name) = baseline_path.file_name() else {
            eprintln!(
                "bench_diff: baseline path {} has no file name component — aborting",
                baseline_path.display()
            );
            return ExitCode::FAILURE;
        };
        let name = name.to_string_lossy();
        let current_path = opts.current_dir.join(name.as_ref());
        if !current_path.exists() {
            println!(
                "bench_diff: {name}: no fresh artifact in {} (skipped)",
                opts.current_dir.display()
            );
            continue;
        }
        let read_tables = |p: &Path| {
            std::fs::read_to_string(p)
                .map_err(|e| e.to_string())
                .and_then(|s| parse_bench_json(&s))
        };
        let (base, cur) = match (read_tables(baseline_path), read_tables(&current_path)) {
            (Ok(b), Ok(c)) => (b, c),
            (Err(e), _) | (_, Err(e)) => {
                println!("bench_diff: {name}: unreadable artifact ({e}) — skipped");
                continue;
            }
        };
        compared += 1;
        let regs = compare(&base, &cur, opts.threshold);
        if regs.is_empty() {
            println!(
                "bench_diff: {name}: OK (no cell worse than {:.0}%)",
                100.0 * opts.threshold
            );
        } else {
            println!(
                "bench_diff: {name}: {} cell(s) regressed beyond {:.0}%:",
                regs.len(),
                100.0 * opts.threshold
            );
            for r in &regs {
                println!("  WARNING {r}");
            }
            regressions += regs.len();
        }
    }

    println!(
        "bench_diff: compared {compared} artifact(s), {regressions} regression(s) \
         (threshold {:.0}%, {})",
        100.0 * opts.threshold,
        if opts.strict { "strict" } else { "warn-only" }
    );
    if opts.strict && regressions > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
