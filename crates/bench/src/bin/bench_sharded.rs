//! Shard-count scaling sweep: `ShardedWcq` at 1/2/4/8 shards against the
//! single-shard wLSCQ and LCRQ, on the Figure 11 workloads.
//!
//! The sharded queue exists to break the single head/tail hot spots at high
//! thread counts (ROADMAP item landed in PR 4); this binary measures exactly
//! that claim: with enough threads, the shards=4 row should beat shards=1 on
//! the pairwise workload, while shards=1 stays within noise of the plain
//! (unsharded) wLSCQ — i.e. the shard-router layer itself is close to free.
//!
//! The shard sweep routes with [`ShardPolicy::Pinned`] — the policy that
//! actually partitions the hot spots (each thread stays on its home shard,
//! so contention falls with the shard count).  The spreading policies
//! (round-robin, least-loaded) deliberately trade that locality for uniform
//! load distribution; they appear as x4 comparison series so the cost of the
//! trade is visible in the same table.  The adaptive series routes to a
//! self-sizing active prefix: at low thread counts it should track the x1
//! single-shard fast path (beating round-robin's spread tax), and at 8
//! threads it should widen to the full set and match pinned x4.
//!
//! The empty-dequeue workload is the honest worst case for sharding: a
//! dequeue on an empty queue must observe *every* shard empty before
//! returning `None`, so its cost grows linearly with the shard count.
//!
//! The pairwise table additionally records `enqueue_many(batch=64)` rows for
//! plain wLSCQ and the x4 pinned shards: the same traffic through the batched
//! entry points, which claim a run of tickets with one F&A and pay the
//! shard-routing / segment-memo cost once per batch (ROADMAP item 1 tracks
//! this against LCRQ's single-op pairwise row).
//!
//! When the pairwise workload runs, a second table records per-op
//! **latency percentiles** (p50/p90/p99/p999, in ns) of raw-handle enqueue
//! and dequeue on plain wLSCQ and the x4 pinned shards, sampled with the
//! zero-dependency [`wcq::LatencyHistogram`] — the tail-latency view of the
//! same hot-spot-splitting claim the throughput table makes.  It goes to the
//! separate artifact `BENCH_sharded_latency.json` so the committed throughput
//! baseline keeps its exact PR-to-PR shape.
//!
//! Usage:
//! ```text
//! cargo run --release -p wcq-bench --bin bench_sharded -- [empty|pairs|mixed] \
//!     [--threads 1,2,4,8] [--ops N] [--repeats N] [--order N] [--quick]
//! ```
//!
//! `--quick` selects the reduced CI-smoke shape (threads 1,2,8 / 60k ops /
//! 1 repeat / order 8) — the same flags the committed
//! `bench_baselines/BENCH_sharded.json` was recorded with.

use wcq::{LatencyHistogram, ShardPolicy, WaitFreeQueue};
use wcq_bench::batch::{run_batched_pairs_once, PAIRWISE_BATCH};
use wcq_bench::latency::{record_percentiles, timed};
use wcq_bench::sweep::{print_table, write_tables_json};
use wcq_bench::{json_artifact_name, select_workloads, BenchOpts};
use wcq_harness::report::FigureTable;
use wcq_harness::stats::summarize;
use wcq_harness::{make_queue, run_workload, QueueKind, Workload, WorkloadConfig};

/// Shard counts the sweep covers.
const SHARD_SWEEP: &[usize] = &[1, 2, 4, 8];

fn sharded_queue(
    shards: usize,
    policy: ShardPolicy,
    threads: usize,
    ring_order: u32,
) -> Box<dyn WaitFreeQueue<u64>> {
    Box::new(
        wcq::builder()
            // Same per-segment cap as the harness uses for the segmented
            // designs, so the LCRQ comparison stays like for like.
            .capacity_order(ring_order.min(12))
            // +1 slot for the between-repetitions drain handle.
            .threads(threads + 1)
            .shards(shards)
            .shard_policy(policy)
            .build_sharded::<u64>(),
    )
}

fn sweep_cell(
    table: &mut FigureTable,
    series: &str,
    queue: &dyn WaitFreeQueue<u64>,
    workload: Workload,
    threads: usize,
    opts: &BenchOpts,
) {
    let cfg = WorkloadConfig {
        threads,
        total_ops: opts.ops,
        repeats: opts.repeats,
        seed: 0x5AAD_0000 + threads as u64,
    };
    let res = run_workload(queue, workload, &cfg);
    table.record(series, threads, res.mops.mean);
    eprintln!(
        "  [{}] {:<22} threads={threads:<3} {:>10.3} Mops/s (cv {:.4})",
        workload.name(),
        series,
        res.mops.mean,
        res.mops.cv
    );
}

/// One pairwise repetition with every raw-handle enqueue and dequeue timed
/// individually into the shared histograms.
fn latency_pairs_once(
    queue: &dyn WaitFreeQueue<u64>,
    threads: usize,
    total_ops: u64,
    enq_hist: &LatencyHistogram,
    deq_hist: &LatencyHistogram,
) {
    let per_thread = (total_ops / threads as u64).max(1);
    std::thread::scope(|s| {
        for t in 0..threads {
            let queue = &queue;
            s.spawn(move || {
                let mut h = queue.handle();
                for i in 0..per_thread {
                    timed(enq_hist, || h.enqueue((t as u64) << 40 | i));
                    timed(deq_hist, || h.dequeue());
                }
            });
        }
    });
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let workload_arg = args.first().filter(|a| !a.starts_with("--")).cloned();
    // `--quick` (the CI smoke / committed-baseline shape) is a BenchOpts
    // preset, so explicit flags after it still override, like `--paper`.
    let opts = BenchOpts::parse(args.into_iter());

    let mut tables = Vec::new();
    for workload in select_workloads(workload_arg.as_deref()) {
        let mut table = FigureTable::new(
            format!("Sharded wLSCQ scaling: {} throughput", workload.name()),
            "Mops/s",
        );
        for &threads in &opts.threads {
            for &shards in SHARD_SWEEP {
                let queue = sharded_queue(shards, ShardPolicy::Pinned, threads, opts.ring_order);
                let series = format!("Sharded wLSCQ x{shards}");
                sweep_cell(
                    &mut table,
                    &series,
                    queue.as_ref(),
                    workload,
                    threads,
                    &opts,
                );
            }
            for (policy, series) in [
                (ShardPolicy::RoundRobin, "Sharded wLSCQ x4 (round-robin)"),
                (ShardPolicy::LeastLoaded, "Sharded wLSCQ x4 (least-loaded)"),
                (ShardPolicy::Adaptive, "Sharded wLSCQ x4 (adaptive)"),
            ] {
                let queue = sharded_queue(4, policy, threads, opts.ring_order);
                sweep_cell(&mut table, series, queue.as_ref(), workload, threads, &opts);
            }
            for kind in [QueueKind::WcqUnbounded, QueueKind::Lcrq] {
                let queue = make_queue(kind, threads + 1, opts.ring_order);
                sweep_cell(
                    &mut table,
                    kind.name(),
                    queue.as_ref(),
                    workload,
                    threads,
                    &opts,
                );
            }
            // Batched pairwise rows: the same traffic through
            // `enqueue_many`/`dequeue_into`, next to the per-op series they
            // are meant to beat (ROADMAP item 1, the LCRQ pairwise gap).
            if matches!(workload, Workload::Pairs) {
                for (series, queue) in [
                    (
                        format!("wLSCQ enqueue_many(batch={PAIRWISE_BATCH})"),
                        make_queue(QueueKind::WcqUnbounded, threads + 1, opts.ring_order),
                    ),
                    (
                        format!("Sharded wLSCQ x4 enqueue_many(batch={PAIRWISE_BATCH})"),
                        sharded_queue(4, ShardPolicy::Pinned, threads, opts.ring_order),
                    ),
                ] {
                    let samples: Vec<f64> = (0..opts.repeats)
                        .map(|_| {
                            run_batched_pairs_once(
                                queue.as_ref(),
                                threads,
                                opts.ops,
                                PAIRWISE_BATCH,
                            )
                        })
                        .collect();
                    let stats = summarize(&samples);
                    table.record(&series, threads, stats.mean);
                    eprintln!(
                        "  [{}] {:<22} threads={threads:<3} {:>10.3} Mops/s (cv {:.4})",
                        workload.name(),
                        series,
                        stats.mean,
                        stats.cv
                    );
                }
            }
        }
        print_table(&table);
        tables.push(table);
    }

    write_tables_json(
        &json_artifact_name("sharded", workload_arg.as_deref()),
        &tables,
    );

    // Latency percentiles for the pairwise workload only (the workload whose
    // hot-spot contention sharding targets), in a separate artifact so the
    // throughput baseline above keeps its exact PR-to-PR shape.  A
    // pairs-filtered run produces the same content as a full run, so both
    // write the canonical name; an empty/mixed-only run skips it.
    if select_workloads(workload_arg.as_deref()).contains(&Workload::Pairs) {
        let mut latency = FigureTable::new(
            "Sharded wLSCQ latency: per-op raw-handle enqueue/dequeue, pairwise",
            "ns",
        );
        for &threads in &opts.threads {
            for (prefix, queue) in [
                (
                    "wLSCQ",
                    make_queue(QueueKind::WcqUnbounded, threads + 1, opts.ring_order),
                ),
                (
                    "Sharded wLSCQ x4",
                    sharded_queue(4, ShardPolicy::Pinned, threads, opts.ring_order),
                ),
            ] {
                let enq_hist = LatencyHistogram::new();
                let deq_hist = LatencyHistogram::new();
                for _ in 0..opts.repeats {
                    latency_pairs_once(queue.as_ref(), threads, opts.ops, &enq_hist, &deq_hist);
                }
                record_percentiles(
                    &mut latency,
                    &format!("{prefix} enqueue"),
                    threads,
                    &enq_hist.snapshot(),
                );
                record_percentiles(
                    &mut latency,
                    &format!("{prefix} dequeue"),
                    threads,
                    &deq_hist.snapshot(),
                );
            }
        }
        print_table(&latency);
        write_tables_json("BENCH_sharded_latency.json", &[latency]);
    }
}
