//! Ablation study: how often is the slow path taken, and how do wCQ's
//! tuning knobs (MAX_PATIENCE, HELP_DELAY) affect throughput?
//!
//! §6 of the paper states that with MAX_PATIENCE = 16 (enqueue) / 64
//! (dequeue) the slow path is taken "relatively infrequently".  This binary
//! measures exactly that: for several patience settings it runs the pairwise
//! workload and reports throughput plus the fraction of operations that fell
//! back to the slow path (from the per-handle [`wcq_core::wcq::WcqStats`]).
//!
//! Usage:
//! ```text
//! cargo run --release -p wcq-bench --bin ablation_patience -- \
//!     [--threads 1,2,4] [--ops N]
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use wcq::WcqConfig;
use wcq_bench::BenchOpts;

fn run_config(cfg: WcqConfig, threads: usize, total_ops: u64, order: u32) -> (f64, f64) {
    // Construction goes through the public QueueBuilder so the ablation
    // measures exactly the configuration the library hands applications.
    let queue = wcq::builder()
        .capacity_order(order)
        .threads(threads + 1)
        .config(cfg)
        .build_bounded::<u64>();
    let per_thread = total_ops / threads as u64;
    let slow = AtomicU64::new(0);
    let fast = AtomicU64::new(0);
    let start = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..threads {
            let queue = &queue;
            let slow = &slow;
            let fast = &fast;
            s.spawn(move || {
                let mut h = queue.register().unwrap();
                for i in 0..per_thread {
                    while h.enqueue(i & 0xFFF).is_err() {}
                    let _ = h.dequeue();
                }
                let (aq, fq) = h.stats();
                slow.fetch_add(
                    aq.slow_enqueues + aq.slow_dequeues + fq.slow_enqueues + fq.slow_dequeues,
                    Ordering::Relaxed,
                );
                fast.fetch_add(
                    aq.fast_enqueues + aq.fast_dequeues + fq.fast_enqueues + fq.fast_dequeues,
                    Ordering::Relaxed,
                );
            });
        }
    });
    let elapsed = start.elapsed().as_secs_f64();
    let mops = (per_thread * threads as u64 * 2) as f64 / elapsed / 1e6;
    let slow = slow.load(Ordering::Relaxed) as f64;
    let fast = fast.load(Ordering::Relaxed) as f64;
    (mops, slow / (slow + fast).max(1.0))
}

fn main() {
    let opts = BenchOpts::parse(std::env::args().skip(1));
    let order = opts.ring_order.min(14);
    println!("# Ablation: MAX_PATIENCE / HELP_DELAY sweep (pairwise workload)");
    println!(
        "{:>8} {:>10} {:>10} {:>12} {:>12} {:>14}",
        "threads", "patience_e", "patience_d", "help_delay", "Mops/s", "slow-path frac"
    );
    for &threads in &opts.threads {
        for (pe, pd, hd) in [
            (1u32, 1u32, 1u64),
            (4, 16, 4),
            (16, 64, 16), // paper defaults
            (64, 256, 64),
        ] {
            let cfg = WcqConfig {
                max_patience_enqueue: pe,
                max_patience_dequeue: pd,
                help_delay: hd,
                catchup_bound: 64,
            };
            let (mops, slow_frac) = run_config(cfg, threads, opts.ops, order);
            println!(
                "{:>8} {:>10} {:>10} {:>12} {:>12.3} {:>14.6}",
                threads, pe, pd, hd, mops, slow_frac
            );
        }
    }
    println!();
    println!(
        "The paper's defaults (16/64) should show a slow-path fraction close to 0, \
         reproducing the §6 claim that the slow path is taken relatively infrequently."
    );
}
