//! Ablation study: how often is the slow path taken, and how do wCQ's
//! tuning knobs (MAX_PATIENCE, HELP_DELAY) affect throughput?
//!
//! §6 of the paper states that with MAX_PATIENCE = 16 (enqueue) / 64
//! (dequeue) the slow path is taken "relatively infrequently".  This binary
//! measures exactly that: for several patience settings — the fixed sweep
//! plus one `PatienceMode::Adaptive` row per thread count — it runs the
//! pairwise workload with a live [`wcq::CountingInstrument`] attached and reports
//! throughput plus the slow-path fraction, the number of helping entries
//! (Kogan-Petrank round-robin help checks that found a pending request) and
//! the number of patience exhaustions (fast-path give-ups) — all from the
//! same [`wcq::MetricsSnapshot`] the observability layer exposes to
//! applications.
//!
//! Usage:
//! ```text
//! cargo run --release -p wcq-bench --bin ablation_patience -- \
//!     [--threads 1,2,4] [--ops N]
//! ```

use std::time::Instant;

use wcq::{AdaptivePatience, Counter, CountingInstrument, WcqConfig};
use wcq_bench::BenchOpts;

struct ConfigRun {
    mops: f64,
    slow_frac: f64,
    helping_entries: u64,
    patience_exhausted: u64,
}

fn run_config(cfg: WcqConfig, threads: usize, total_ops: u64, order: u32) -> ConfigRun {
    // Construction goes through the public QueueBuilder so the ablation
    // measures exactly the configuration the library hands applications —
    // including the instrumented one.
    let instr = CountingInstrument::new();
    let queue = wcq::builder()
        .capacity_order(order)
        .threads(threads + 1)
        .config(cfg)
        .instrument(instr.clone())
        .build_bounded::<u64>();
    let per_thread = total_ops / threads as u64;
    let start = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..threads {
            let queue = &queue;
            s.spawn(move || {
                let mut h = queue.register().unwrap();
                for i in 0..per_thread {
                    while h.enqueue(i & 0xFFF).is_err() {}
                    let _ = h.dequeue();
                }
            });
        }
    });
    let elapsed = start.elapsed().as_secs_f64();
    let mops = (per_thread * threads as u64 * 2) as f64 / elapsed / 1e6;
    let snap = instr.snapshot();
    ConfigRun {
        mops,
        slow_frac: snap.slow_path_fraction(),
        helping_entries: snap.get(Counter::HelpingEntries),
        patience_exhausted: snap.get(Counter::PatienceExhaustedEnqueues)
            + snap.get(Counter::PatienceExhaustedDequeues),
    }
}

fn main() {
    let opts = BenchOpts::parse(std::env::args().skip(1));
    let order = opts.ring_order.min(14);
    println!("# Ablation: MAX_PATIENCE / HELP_DELAY sweep (pairwise workload)");
    println!(
        "{:>8} {:>10} {:>10} {:>12} {:>12} {:>14} {:>12} {:>12}",
        "threads",
        "patience_e",
        "patience_d",
        "help_delay",
        "Mops/s",
        "slow-path frac",
        "helping",
        "exhausted"
    );
    for &threads in &opts.threads {
        for (pe, pd, hd) in [
            (1u32, 1u32, 1u64),
            (4, 16, 4),
            (16, 64, 16), // paper defaults
            (64, 256, 64),
        ] {
            let cfg = WcqConfig {
                max_patience_enqueue: pe,
                max_patience_dequeue: pd,
                help_delay: hd,
                catchup_bound: 64,
                ..WcqConfig::default()
            };
            let run = run_config(cfg, threads, opts.ops, order);
            println!(
                "{:>8} {:>10} {:>10} {:>12} {:>12.3} {:>14.6} {:>12} {:>12}",
                threads,
                pe,
                pd,
                hd,
                run.mops,
                run.slow_frac,
                run.helping_entries,
                run.patience_exhausted
            );
        }
        // The self-tuning row: same workload, no manual patience choice.  At
        // one thread the controller rests at its minimum (uncontended shape);
        // at the highest thread count it widens on its own — the acceptance
        // bar is landing within 5% of whichever fixed row wins above.
        let cfg = WcqConfig {
            help_delay: 16,
            catchup_bound: 64,
            adaptive_patience: Some(AdaptivePatience::default()),
            ..WcqConfig::default()
        };
        let run = run_config(cfg, threads, opts.ops, order);
        println!(
            "{:>8} {:>10} {:>10} {:>12} {:>12.3} {:>14.6} {:>12} {:>12}",
            threads,
            "adaptive",
            "adaptive",
            16,
            run.mops,
            run.slow_frac,
            run.helping_entries,
            run.patience_exhausted
        );
    }
    println!();
    println!(
        "The paper's defaults (16/64) should show a slow-path fraction close to 0, \
         reproducing the §6 claim that the slow path is taken relatively infrequently. \
         The helping and exhausted columns are absolute event counts from the metrics \
         snapshot: helping entries bound the wait-free help cost, patience exhaustions \
         are exactly the slow-path entries.  The adaptive row uses \
         PatienceMode::Adaptive with default clamps: no manual tuning, one row per \
         thread count, expected within 5% of the best fixed row on its shape."
    );
}
