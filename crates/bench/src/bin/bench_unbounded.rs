//! Unbounded-queue comparison: wLSCQ (linked wCQ segments, both hardware
//! models) against the dynamically allocating unbounded baselines LCRQ and
//! MSQueue, on the Figure 11 workloads plus a post-run footprint table.
//!
//! wLSCQ is this repo's extension of the paper: §2.3 notes SCQ rings "can be
//! linked into LSCQ to make the queue unbounded"; `wcq-unbounded` does that
//! with the *wait-free* wCQ ring and hazard-pointer segment recycling.  The
//! interesting questions are (a) how close the segmented design stays to the
//! bounded wCQ's throughput and (b) how much smaller its footprint is than
//! LCRQ's close-happy ring turnover.
//!
//! Usage:
//! ```text
//! cargo run --release -p wcq-bench --bin bench_unbounded -- [empty|pairs|mixed] \
//!     [--threads 1,2,4,8] [--ops N] [--repeats N] [--order N]
//! ```

use wcq_bench::sweep::{print_table, throughput_sweep, write_tables_json};
use wcq_bench::{json_artifact_name, select_workloads, BenchOpts};
use wcq_harness::report::FigureTable;
use wcq_harness::{make_queue, run_workload, QueueKind, Workload, WorkloadConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let workload_arg = args.first().filter(|a| !a.starts_with("--")).cloned();
    let opts = BenchOpts::parse(args.into_iter());
    let kinds = QueueKind::unbounded_set();

    let mut tables = Vec::new();
    for workload in select_workloads(workload_arg.as_deref()) {
        let title = format!("Unbounded comparison: {} throughput", workload.name());
        let table = throughput_sweep(&title, &kinds, workload, &opts);
        print_table(&table);
        tables.push(table);
    }

    // Post-run footprint: how much memory each unbounded design holds after
    // sustaining the 50/50 mixed workload (LCRQ's figure-10a weakness is ring
    // turnover; wLSCQ recycles segments through its cache).
    let mut mem_table = FigureTable::new("Unbounded comparison: post-run footprint", "KiB");
    for &threads in &opts.threads {
        for &kind in &kinds {
            let queue = make_queue(kind, threads + 1, opts.ring_order);
            let cfg = WorkloadConfig {
                threads,
                total_ops: opts.ops,
                repeats: 1,
                seed: 0xF00D_0000 + threads as u64,
            };
            let _ = run_workload(queue.as_ref(), Workload::Mixed, &cfg);
            let kib = queue.memory_footprint() as f64 / 1024.0;
            mem_table.record(kind.name(), threads, kib);
            eprintln!(
                "  [footprint] {:<14} threads={threads:<3} {kib:>10.1} KiB",
                kind.name()
            );
        }
    }
    print_table(&mem_table);
    tables.push(mem_table);

    write_tables_json(
        &json_artifact_name("unbounded", workload_arg.as_deref()),
        &tables,
    );
}
