//! Latency-percentile rows for the figure binaries.
//!
//! The figure tables report throughput; these helpers add tail-latency
//! visibility on top, using the zero-dependency log-bucketed
//! [`LatencyHistogram`] from `wcq_core::metrics`
//! (lock-free per-thread shards, ≤ 1/32 relative error, mergeable
//! snapshots).  Latency tables are written to *separate*
//! `BENCH_*_latency.json` artifacts with unit `"ns"` — which
//! [`crate::diff`] treats as lower-is-better — so the committed throughput
//! baselines stay byte-for-byte comparable across PRs.

use std::time::Instant;

use wcq::{HistogramSnapshot, LatencyHistogram};
use wcq_harness::report::FigureTable;

/// Times one operation and records its latency in nanoseconds.
#[inline]
pub fn timed<R>(hist: &LatencyHistogram, op: impl FnOnce() -> R) -> R {
    let start = Instant::now();
    let out = op();
    hist.record(start.elapsed().as_nanos() as u64);
    out
}

/// Records the four standard percentile rows (`p50`/`p90`/`p99`/`p999`) of
/// `snap` into `table` as series `"{prefix} p50"` … at column `threads`, and
/// echoes them to stderr like the throughput cells.
pub fn record_percentiles(
    table: &mut FigureTable,
    prefix: &str,
    threads: usize,
    snap: &HistogramSnapshot,
) {
    for (name, value) in [
        ("p50", snap.p50()),
        ("p90", snap.p90()),
        ("p99", snap.p99()),
        ("p999", snap.p999()),
    ] {
        table.record(&format!("{prefix} {name}"), threads, value as f64);
    }
    eprintln!(
        "  {prefix:<28} threads={threads:<3} p50={:>6} p90={:>6} p99={:>6} p999={:>7} ns ({} samples)",
        snap.p50(),
        snap.p90(),
        snap.p99(),
        snap.p999(),
        snap.count()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_records_one_sample_per_call() {
        let hist = LatencyHistogram::new();
        for _ in 0..10 {
            assert_eq!(timed(&hist, || 7), 7);
        }
        assert_eq!(hist.snapshot().count(), 10);
    }

    #[test]
    fn percentile_rows_land_in_the_table() {
        let hist = LatencyHistogram::new();
        for v in 0..1000u64 {
            hist.record(v);
        }
        let snap = hist.snapshot();
        let mut table = FigureTable::new("latency smoke", "ns");
        record_percentiles(&mut table, "wLSCQ send", 4, &snap);
        for series in [
            "wLSCQ send p50",
            "wLSCQ send p90",
            "wLSCQ send p99",
            "wLSCQ send p999",
        ] {
            assert!(table.get(series, 4).is_some(), "missing {series}");
        }
        // Percentiles are monotone in the quantile.
        let p50 = table.get("wLSCQ send p50", 4).unwrap();
        let p999 = table.get("wLSCQ send p999", 4).unwrap();
        assert!(p50 <= p999);
    }
}
