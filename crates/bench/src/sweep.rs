//! Shared sweep driver used by the figure-reproduction binaries.

use wcq_harness::report::FigureTable;
use wcq_harness::{make_queue, run_workload, QueueKind, Workload, WorkloadConfig};

use crate::BenchOpts;

/// Runs `workload` for every queue kind over the thread sweep and returns the
/// filled throughput table (Mops/s).
pub fn throughput_sweep(
    title: &str,
    kinds: &[QueueKind],
    workload: Workload,
    opts: &BenchOpts,
) -> FigureTable {
    let mut table = FigureTable::new(title, "Mops/s");
    for &threads in &opts.threads {
        for &kind in kinds {
            let queue = make_queue(kind, threads + 1, opts.ring_order);
            let cfg = WorkloadConfig {
                threads,
                total_ops: opts.ops,
                repeats: opts.repeats,
                seed: 0x5EED_0000 + threads as u64,
            };
            let res = run_workload(queue.as_ref(), workload, &cfg);
            table.record(kind.name(), threads, res.mops.mean);
            eprintln!(
                "  [{title}] {:<12} threads={threads:<3} {:>10.3} Mops/s (cv {:.4})",
                kind.name(),
                res.mops.mean,
                res.mops.cv
            );
        }
    }
    table
}

/// Prints a table in both human-readable and CSV form.
pub fn print_table(table: &FigureTable) {
    println!("{}", table.render());
    println!("--- CSV ---");
    println!("{}", table.render_csv());
}

/// Writes several figure tables to `path` as one JSON array (the
/// `BENCH_*.json` files tracked across PRs).  IO errors are logged, not
/// fatal, so the binaries still print their tables on read-only filesystems.
pub fn write_tables_json(path: &str, tables: &[FigureTable]) {
    let parts: Vec<String> = tables
        .iter()
        .map(|t| t.render_json().trim_end().to_string())
        .collect();
    let body = format!("[\n{}\n]\n", parts.join(",\n"));
    match std::fs::write(path, body) {
        Ok(()) => eprintln!("  [json] wrote {path}"),
        Err(e) => eprintln!("  [json] could not write {path}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_sweep_produces_a_cell_per_queue_and_thread_count() {
        let opts = BenchOpts {
            threads: vec![1, 2],
            ops: 4_000,
            repeats: 1,
            ring_order: 8,
        };
        let kinds = [QueueKind::Wcq, QueueKind::Scq];
        let table = throughput_sweep("smoke", &kinds, Workload::Pairs, &opts);
        for &t in &[1usize, 2] {
            for k in &kinds {
                assert!(table.get(k.name(), t).unwrap() > 0.0);
            }
        }
    }
}
