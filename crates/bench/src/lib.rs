//! # wcq-bench
//!
//! Figure-reproduction binaries and Criterion benchmarks for the wCQ paper.
//!
//! Every table/figure of the evaluation section has a regenerating target
//! (see DESIGN.md §4 and EXPERIMENTS.md):
//!
//! * `fig10_memory` — Figure 10a/10b: memory usage and throughput of the
//!   random-operations memory test.
//! * `fig11_x86` — Figures 11a/11b/11c: empty-dequeue, pairwise and 50/50
//!   throughput with the native-CAS2 wCQ.
//! * `fig12_llsc` — Figures 12a/12b/12c: the same three workloads in the
//!   LL/SC (PowerPC) hardware model; LCRQ is omitted as in the paper.
//! * `ablation_patience` — the §6 claim that the slow path is taken rarely
//!   with MAX_PATIENCE = 16/64, plus a patience/help-delay sweep.
//! * `bench_unbounded` — beyond the paper: wLSCQ (`wcq-unbounded`, both
//!   hardware models) against the unbounded baselines LCRQ and MSQueue,
//!   throughput plus post-run footprint.
//! * `bench_sharded` — beyond the paper: the `ShardedWcq` shard-count sweep
//!   (1/2/4/8 pinned shards, plus the round-robin / least-loaded routing
//!   comparison) against plain wLSCQ and LCRQ; `--quick` reproduces the CI
//!   smoke / committed-baseline shape.
//! * `bench_channel` — beyond the paper: the typed `Sender`/`Receiver`
//!   channel endpoints (sync and async, all three backends) against raw
//!   facade handles on a producer→consumer pipeline, measuring what the
//!   close/wake layer costs.
//!
//! The binaries accept `--threads`, `--ops`, and `--repeats` overrides so the
//! full paper-scale sweep and a quick smoke run use the same code.  The
//! plain-runner benches in `benches/` mirror the same workloads at reduced
//! sizes so `cargo bench --workspace` regenerates a row of every figure.
//! Each figure binary additionally writes its tables as machine-readable
//! `BENCH_*.json` (`{algorithm → threads → value}`) for cross-PR tracking.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod batch;
pub mod diff;
pub mod latency;
pub mod sweep;

use wcq_harness::{QueueKind, Workload};

/// Thread counts used for the x86 sweep in the paper (Figure 10/11).
pub const PAPER_X86_THREADS: &[usize] = &[1, 2, 4, 8, 18, 36, 72, 144];

/// Thread counts used for the PowerPC sweep (Figure 12).
pub const PAPER_PPC_THREADS: &[usize] = &[1, 2, 4, 8, 16, 32, 64];

/// Thread counts suitable for a quick run on a small machine; the shape
/// comparison in EXPERIMENTS.md uses these by default.
pub const QUICK_THREADS: &[usize] = &[1, 2, 4, 8];

/// Command-line options shared by the figure binaries.
#[derive(Debug, Clone)]
pub struct BenchOpts {
    /// Thread counts to sweep.
    pub threads: Vec<usize>,
    /// Total operations per measurement.
    pub ops: u64,
    /// Repetitions per point.
    pub repeats: u32,
    /// Ring order for bounded queues (paper: 16).
    pub ring_order: u32,
}

impl Default for BenchOpts {
    fn default() -> Self {
        Self {
            threads: QUICK_THREADS.to_vec(),
            ops: 200_000,
            repeats: 3,
            ring_order: 14,
        }
    }
}

impl BenchOpts {
    /// Parses `--threads a,b,c`, `--ops N`, `--repeats N`, `--order N`,
    /// `--paper` (full paper-scale sweep) and `--quick` (the CI-smoke /
    /// committed-baseline shape) from an argument iterator.  Presets apply
    /// in argument order, so explicit flags *after* a preset override it.
    pub fn parse(args: impl Iterator<Item = String>) -> Self {
        let mut opts = Self::default();
        let args: Vec<String> = args.collect();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--threads" => {
                    i += 1;
                    opts.threads = args[i]
                        .split(',')
                        .filter_map(|s| s.trim().parse().ok())
                        .collect();
                }
                "--ops" => {
                    i += 1;
                    opts.ops = args[i].parse().unwrap_or(opts.ops);
                }
                "--repeats" => {
                    i += 1;
                    opts.repeats = args[i].parse().unwrap_or(opts.repeats);
                }
                "--order" => {
                    i += 1;
                    opts.ring_order = args[i].parse().unwrap_or(opts.ring_order);
                }
                "--paper" => {
                    opts.threads = PAPER_X86_THREADS.to_vec();
                    opts.ops = 10_000_000;
                    opts.repeats = 10;
                    opts.ring_order = 16;
                }
                "--quick" => {
                    // Small ops, but an 8-thread row so contention-scaling
                    // claims (the sharded sweep) stay visible.
                    opts.threads = vec![1, 2, 8];
                    opts.ops = 60_000;
                    opts.repeats = 1;
                    opts.ring_order = 8;
                }
                _ => {}
            }
            i += 1;
        }
        if opts.threads.is_empty() {
            opts.threads = QUICK_THREADS.to_vec();
        }
        opts
    }
}

/// Maps a workload-selection argument (`empty`, `pairs`, `mixed`) to the
/// corresponding [`Workload`]s; no argument selects all three.
pub fn select_workloads(arg: Option<&str>) -> Vec<Workload> {
    match arg {
        Some("empty") => vec![Workload::EmptyDequeue],
        Some("pairs") => vec![Workload::Pairs],
        Some("mixed") => vec![Workload::Mixed],
        _ => vec![Workload::EmptyDequeue, Workload::Pairs, Workload::Mixed],
    }
}

/// The queue set for a figure family (`x86` or `ppc`).
pub fn queue_set(ppc: bool) -> Vec<QueueKind> {
    if ppc {
        QueueKind::powerpc_set()
    } else {
        QueueKind::x86_set()
    }
}

/// Filename for a figure's JSON artifact: the canonical `BENCH_<figure>.json`
/// only when the full workload set ran; a workload-filtered run gets
/// `BENCH_<figure>_<workload>.json` instead, so a partial smoke run never
/// overwrites the cross-PR tracking artifact with a subset of its series.
pub fn json_artifact_name(figure: &str, workload_arg: Option<&str>) -> String {
    match workload_arg {
        Some(w @ ("empty" | "pairs" | "mixed")) => format!("BENCH_{figure}_{w}.json"),
        _ => format!("BENCH_{figure}.json"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_defaults_and_overrides() {
        let o = BenchOpts::parse(std::iter::empty());
        assert_eq!(o.threads, QUICK_THREADS);
        let o = BenchOpts::parse(
            [
                "--threads",
                "1,3,5",
                "--ops",
                "1000",
                "--repeats",
                "2",
                "--order",
                "6",
            ]
            .iter()
            .map(|s| s.to_string()),
        );
        assert_eq!(o.threads, vec![1, 3, 5]);
        assert_eq!(o.ops, 1000);
        assert_eq!(o.repeats, 2);
        assert_eq!(o.ring_order, 6);
    }

    #[test]
    fn paper_flag_selects_paper_scale() {
        let o = BenchOpts::parse(["--paper"].iter().map(|s| s.to_string()));
        assert_eq!(o.threads, PAPER_X86_THREADS);
        assert_eq!(o.ops, 10_000_000);
        assert_eq!(o.repeats, 10);
        assert_eq!(o.ring_order, 16);
    }

    #[test]
    fn quick_flag_selects_the_smoke_shape_and_later_flags_override() {
        let o = BenchOpts::parse(["--quick"].iter().map(|s| s.to_string()));
        assert_eq!(o.threads, vec![1, 2, 8]);
        assert_eq!(o.ops, 60_000);
        assert_eq!(o.repeats, 1);
        assert_eq!(o.ring_order, 8);
        // Presets apply in argument order: an explicit flag after the preset
        // wins, so one knob of the baseline shape can be varied.
        let o = BenchOpts::parse(
            ["--quick", "--threads", "1,2,4,8"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert_eq!(o.threads, vec![1, 2, 4, 8]);
        assert_eq!(o.ops, 60_000);
    }

    #[test]
    fn workload_selection() {
        assert_eq!(select_workloads(Some("empty")).len(), 1);
        assert_eq!(select_workloads(Some("pairs")).len(), 1);
        assert_eq!(select_workloads(None).len(), 3);
    }

    #[test]
    fn queue_sets_differ_between_architectures() {
        assert_eq!(queue_set(false).len(), 8);
        assert_eq!(queue_set(true).len(), 7);
    }

    #[test]
    fn json_artifacts_keep_filtered_runs_separate() {
        assert_eq!(json_artifact_name("fig11", None), "BENCH_fig11.json");
        assert_eq!(
            json_artifact_name("fig11", Some("pairs")),
            "BENCH_fig11_pairs.json"
        );
        // An unknown filter argument selects all workloads (lenient parsing),
        // so it maps to the canonical artifact.
        assert_eq!(
            json_artifact_name("fig11", Some("bogus")),
            "BENCH_fig11.json"
        );
    }
}
