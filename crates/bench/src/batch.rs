//! Batched-operation twin of the pairwise workload.
//!
//! The single-op pairwise rows pay one FAA, one closed-check and one shard
//! decision *per element*; the batched rows move the same elements through
//! [`QueueHandle::enqueue_many`]/[`QueueHandle::dequeue_into`] so those costs
//! amortize over the whole run.  `bench_sharded` and `bench_channel` both
//! record a `batch=64` series next to their single-op pairwise series, which
//! is the comparison ROADMAP item 1 (the LCRQ pairwise gap) tracks.
//!
//! [`QueueHandle::enqueue_many`]: wcq_core::api::QueueHandle::enqueue_many
//! [`QueueHandle::dequeue_into`]: wcq_core::api::QueueHandle::dequeue_into

use std::sync::atomic::{AtomicU64, Ordering::SeqCst};
use std::time::Instant;

use wcq::WaitFreeQueue;

/// The batch size the committed baseline rows are recorded with.
pub const PAIRWISE_BATCH: usize = 64;

/// One timed repetition of the batched pairwise workload: every thread
/// alternates an `enqueue_many` of up to `batch` values with a `dequeue_into`
/// of the same size.  Returns Mops/s over the operations that actually
/// happened (accepted enqueues + successful dequeues), the same both-sides
/// accounting as the single-op pairwise rows.
pub fn run_batched_pairs_once(
    queue: &dyn WaitFreeQueue<u64>,
    threads: usize,
    total_ops: u64,
    batch: usize,
) -> f64 {
    let per_thread = (total_ops / threads as u64).max(1);
    let completed = AtomicU64::new(0);
    let start = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..threads {
            let queue = &queue;
            let completed = &completed;
            s.spawn(move || {
                let mut h = queue.handle();
                let mut buf = Vec::with_capacity(batch);
                let mut out = Vec::with_capacity(batch);
                let mut ops = 0u64;
                let mut remaining = per_thread;
                while remaining > 0 {
                    let n = batch.min(remaining as usize);
                    buf.extend((0..n as u64).map(|i| i & 0xFFFF));
                    while !buf.is_empty() {
                        let accepted = h.enqueue_many(&mut buf);
                        ops += accepted as u64;
                        if accepted == 0 {
                            // A full fixed-capacity ring: drain some of our
                            // own backlog instead of spinning, so the
                            // all-threads-enqueueing moment cannot wedge.
                            ops += h.dequeue_into(&mut out, batch) as u64;
                            out.clear();
                        }
                    }
                    ops += h.dequeue_into(&mut out, n) as u64;
                    out.clear();
                    remaining -= n as u64;
                }
                completed.fetch_add(ops, SeqCst);
            });
        }
    });
    completed.load(SeqCst) as f64 / start.elapsed().as_secs_f64().max(1e-9) / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batched_pairs_runs_and_reports_positive_throughput() {
        let queue = wcq::builder()
            .capacity_order(8)
            .threads(3)
            .build_unbounded::<u64>();
        let mops = run_batched_pairs_once(&queue, 2, 2_000, 16);
        assert!(mops > 0.0);
    }
}
