//! Cross-PR bench comparison: parse `BENCH_*.json` artifacts and flag
//! throughput regressions.
//!
//! The figure binaries emit machine-readable tables
//! (`[{title, unit, series: {algorithm: {threads: value}}}]`, see
//! [`wcq_harness::report::FigureTable::render_json`]).  This module reads two
//! such artifacts — a committed baseline and a freshly emitted run — matches
//! their tables by title and their cells by `(algorithm, threads)`, and
//! reports every throughput cell (`Mops/s` tables) that dropped by more than
//! a configurable threshold.  Memory tables (`KiB`/`MB`) and latency tables
//! (`ns`, the `BENCH_*_latency.json` percentile artifacts) regress in the
//! other direction, so for those a *growth* beyond the threshold is flagged.
//!
//! The build environment is offline, so the JSON subset the artifacts use is
//! parsed by a ~100-line recursive-descent parser below instead of a serde
//! dependency.

use std::collections::BTreeMap;

/// One parsed figure table: `series[algorithm][threads] = value`.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchTable {
    /// Table title, e.g. `"Figure 11a: empty dequeue"`.
    pub title: String,
    /// Value unit, e.g. `"Mops/s"` or `"KiB"`.
    pub unit: String,
    /// algorithm → threads → value.
    pub series: BTreeMap<String, BTreeMap<usize, f64>>,
}

impl BenchTable {
    /// `true` when larger values are better — i.e. for throughput tables
    /// (`"Mops/s"` and friends).  Every other unit regresses *upward*:
    /// memory tables (`"KiB"`/`"MB"`) and the latency-percentile tables
    /// (`"ns"`), where a higher p99 is a worse tail.
    pub fn higher_is_better(&self) -> bool {
        self.unit.contains("ops") // "Mops/s"
    }
}

/// One regressed cell of a table comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Title of the table the cell belongs to.
    pub table: String,
    /// Algorithm (series) name.
    pub series: String,
    /// Thread count of the row.
    pub threads: usize,
    /// Baseline value.
    pub baseline: f64,
    /// Freshly measured value.
    pub current: f64,
    /// Relative change, signed so that negative is always *worse*
    /// (throughput drop, or memory growth flipped in sign).
    pub change: f64,
}

impl std::fmt::Display for Regression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}] {} @ {} threads: {:.3} -> {:.3} ({:+.1}%)",
            self.table,
            self.series,
            self.threads,
            self.baseline,
            self.current,
            100.0 * (self.current - self.baseline) / self.baseline
        )
    }
}

/// Compares `current` against `baseline` and returns every cell whose value
/// got worse by more than `threshold` (e.g. `0.10` = 10%).  Tables are
/// matched by title, cells by `(series, threads)`; cells present on only one
/// side are ignored (new algorithms / dropped rows are not regressions).
pub fn compare(baseline: &[BenchTable], current: &[BenchTable], threshold: f64) -> Vec<Regression> {
    let mut out = Vec::new();
    for base in baseline {
        let Some(cur) = current.iter().find(|t| t.title == base.title) else {
            continue;
        };
        let sign = if base.higher_is_better() { 1.0 } else { -1.0 };
        for (series, rows) in &base.series {
            let Some(cur_rows) = cur.series.get(series) else {
                continue;
            };
            for (&threads, &b) in rows {
                let Some(&c) = cur_rows.get(&threads) else {
                    continue;
                };
                if b <= 0.0 {
                    continue;
                }
                // Negative change = worse, whatever the unit's direction.
                let change = sign * (c - b) / b;
                if change < -threshold {
                    out.push(Regression {
                        table: base.title.clone(),
                        series: series.clone(),
                        threads,
                        baseline: b,
                        current: c,
                        change,
                    });
                }
            }
        }
    }
    // Worst first.
    out.sort_by(|a, b| a.change.partial_cmp(&b.change).unwrap());
    out
}

// --------------------------------------------------------------------------
// Minimal JSON parsing (the subset the artifacts use)
// --------------------------------------------------------------------------

/// A parsed JSON value (no bool/null — the artifacts never emit them).
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Str(String),
    Num(f64),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Self {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, what: &str) -> String {
        format!("JSON parse error at byte {}: {what}", self.pos)
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", b as char)))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(self.error("expected a value")),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        // Collect raw bytes and decode once at the closing quote, so
        // multi-byte UTF-8 sequences (em dashes in titles, "µs" units)
        // survive intact instead of being decoded byte-by-byte.
        let mut out = Vec::new();
        loop {
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return String::from_utf8(out).map_err(|_| self.error("invalid UTF-8"));
                }
                Some(b'\\') => {
                    let esc = self
                        .bytes
                        .get(self.pos + 1)
                        .ok_or_else(|| self.error("dangling escape"))?;
                    out.push(match esc {
                        b'"' => b'"',
                        b'\\' => b'\\',
                        b'n' => b'\n',
                        b't' => b'\t',
                        _ => return Err(self.error("unsupported escape")),
                    });
                    self.pos += 2;
                }
                Some(&b) => {
                    out.push(b);
                    self.pos += 1;
                }
                None => return Err(self.error("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| self.error("malformed number"))
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }
}

/// Parses the contents of a `BENCH_*.json` artifact (a JSON array of figure
/// tables, or a single table object) into [`BenchTable`]s.
pub fn parse_bench_json(text: &str) -> Result<Vec<BenchTable>, String> {
    let mut parser = Parser::new(text);
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing garbage"));
    }
    let tables = match value {
        Json::Arr(items) => items,
        obj @ Json::Obj(_) => vec![obj],
        _ => return Err("artifact root must be an array or object".into()),
    };
    tables.into_iter().map(table_from_json).collect()
}

fn table_from_json(value: Json) -> Result<BenchTable, String> {
    let Json::Obj(fields) = value else {
        return Err("each table must be a JSON object".into());
    };
    let mut title = None;
    let mut unit = None;
    let mut series = BTreeMap::new();
    for (key, val) in fields {
        match (key.as_str(), val) {
            ("title", Json::Str(s)) => title = Some(s),
            ("unit", Json::Str(s)) => unit = Some(s),
            ("series", Json::Obj(algos)) => {
                for (algo, rows) in algos {
                    let Json::Obj(cells) = rows else {
                        return Err(format!("series {algo:?} must map threads to values"));
                    };
                    let mut parsed = BTreeMap::new();
                    for (threads, v) in cells {
                        let t: usize = threads
                            .parse()
                            .map_err(|_| format!("bad thread count {threads:?}"))?;
                        let Json::Num(n) = v else {
                            return Err(format!("non-numeric cell in series {algo:?}"));
                        };
                        parsed.insert(t, n);
                    }
                    series.insert(algo, parsed);
                }
            }
            _ => {} // unknown fields are forward-compatible
        }
    }
    Ok(BenchTable {
        title: title.ok_or("table missing \"title\"")?,
        unit: unit.ok_or("table missing \"unit\"")?,
        series,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcq_harness::report::FigureTable;

    fn table(title: &str, unit: &str, cells: &[(&str, usize, f64)]) -> BenchTable {
        let mut series: BTreeMap<String, BTreeMap<usize, f64>> = BTreeMap::new();
        for &(algo, threads, v) in cells {
            series.entry(algo.into()).or_default().insert(threads, v);
        }
        BenchTable {
            title: title.into(),
            unit: unit.into(),
            series,
        }
    }

    #[test]
    fn parses_the_figure_table_emitter_output() {
        let mut t = FigureTable::new("Fig \"11a\"", "Mops/s");
        t.record("wCQ", 1, 10.5);
        t.record("wCQ", 2, 9.25);
        t.record("SCQ", 1, 11.0);
        let json = format!("[\n{}\n]\n", t.render_json().trim_end());
        let parsed = parse_bench_json(&json).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].title, "Fig \"11a\"");
        assert_eq!(parsed[0].unit, "Mops/s");
        assert_eq!(parsed[0].series["wCQ"][&2], 9.25);
        assert_eq!(parsed[0].series["SCQ"][&1], 11.0);
    }

    #[test]
    fn multi_byte_utf8_survives_parsing() {
        let json = r#"[{"title": "Figure 10 — memory (µs)", "unit": "µs", "series": {}}]"#;
        let parsed = parse_bench_json(json).unwrap();
        assert_eq!(parsed[0].title, "Figure 10 — memory (µs)");
        assert_eq!(parsed[0].unit, "µs");
    }

    #[test]
    fn parse_rejects_malformed_artifacts() {
        assert!(parse_bench_json("").is_err());
        assert!(
            parse_bench_json("[{\"title\": \"x\"}]").is_err(),
            "missing unit"
        );
        assert!(parse_bench_json("[1, 2]").is_err());
        assert!(parse_bench_json("{\"title\": \"t\", \"unit\": \"u\"} trailing").is_err());
    }

    #[test]
    fn throughput_drops_beyond_threshold_are_flagged() {
        let base = [table(
            "fig11",
            "Mops/s",
            &[("wCQ", 1, 10.0), ("wCQ", 2, 20.0)],
        )];
        let cur = [table(
            "fig11",
            "Mops/s",
            &[("wCQ", 1, 8.5), ("wCQ", 2, 19.0)],
        )];
        let regs = compare(&base, &cur, 0.10);
        assert_eq!(regs.len(), 1, "{regs:?}");
        assert_eq!(regs[0].series, "wCQ");
        assert_eq!(regs[0].threads, 1);
        assert!(regs[0].change < -0.10);
        assert!(regs[0].to_string().contains("fig11"));
    }

    #[test]
    fn memory_tables_regress_in_the_other_direction() {
        let base = [table("footprint", "KiB", &[("LCRQ", 2, 100.0)])];
        let shrunk = [table("footprint", "KiB", &[("LCRQ", 2, 50.0)])];
        let grown = [table("footprint", "KiB", &[("LCRQ", 2, 150.0)])];
        assert!(compare(&base, &shrunk, 0.10).is_empty(), "smaller is fine");
        assert_eq!(compare(&base, &grown, 0.10).len(), 1, "growth regresses");
    }

    #[test]
    fn latency_tables_regress_upward() {
        // The BENCH_*_latency.json artifacts report percentile rows in "ns";
        // lower is better there, so only growth beyond the threshold flags.
        let base = [table(
            "channel latency",
            "ns",
            &[("channel/wLSCQ send p99", 8, 1000.0)],
        )];
        assert!(!base[0].higher_is_better());
        let faster = [table(
            "channel latency",
            "ns",
            &[("channel/wLSCQ send p99", 8, 500.0)],
        )];
        let slower = [table(
            "channel latency",
            "ns",
            &[("channel/wLSCQ send p99", 8, 1500.0)],
        )];
        assert!(
            compare(&base, &faster, 0.10).is_empty(),
            "a lower percentile is an improvement"
        );
        let regs = compare(&base, &slower, 0.10);
        assert_eq!(regs.len(), 1, "{regs:?}");
        assert_eq!(regs[0].series, "channel/wLSCQ send p99");
        assert!(regs[0].change < -0.10, "signed so negative is worse");
    }

    #[test]
    fn improvements_and_unmatched_cells_are_ignored() {
        let base = [table(
            "fig11",
            "Mops/s",
            &[("wCQ", 1, 10.0), ("gone", 1, 5.0)],
        )];
        let cur = [table(
            "fig11",
            "Mops/s",
            &[("wCQ", 1, 30.0), ("new", 1, 1.0)],
        )];
        assert!(compare(&base, &cur, 0.10).is_empty());
        // Entirely unmatched tables are skipped too.
        let other = [table("fig12", "Mops/s", &[("wCQ", 1, 0.1)])];
        assert!(compare(&base, &other, 0.10).is_empty());
    }

    #[test]
    fn sharded_artifact_shape_round_trips_and_diffs_per_shard_series() {
        // The BENCH_sharded.json shape: one table per workload whose series
        // are the pinned shard-count sweep ("Sharded wLSCQ x1" ... "x8"),
        // the x4 routing-policy comparison, and the unsharded wLSCQ and LCRQ
        // baselines — exactly the series bench_sharded emits.
        let mut t = FigureTable::new(
            "Sharded wLSCQ scaling: pairwise enq-deq throughput",
            "Mops/s",
        );
        for (shards, v) in [(1, 10.0), (2, 14.0), (4, 19.0), (8, 21.0)] {
            t.record(&format!("Sharded wLSCQ x{shards}"), 8, v);
        }
        t.record("Sharded wLSCQ x4 (round-robin)", 8, 15.0);
        t.record("Sharded wLSCQ x4 (least-loaded)", 8, 14.5);
        t.record("wLSCQ", 8, 9.5);
        t.record("LCRQ", 8, 11.0);
        let json = format!("[\n{}\n]\n", t.render_json().trim_end());
        let parsed = parse_bench_json(&json).unwrap();
        assert_eq!(parsed.len(), 1);
        let table = &parsed[0];
        assert!(table.higher_is_better());
        assert_eq!(table.series.len(), 8, "{:?}", table.series.keys());
        assert_eq!(table.series["Sharded wLSCQ x4"][&8], 19.0);
        assert_eq!(table.series["Sharded wLSCQ x4 (round-robin)"][&8], 15.0);
        assert_eq!(table.series["Sharded wLSCQ x4 (least-loaded)"][&8], 14.5);

        // A drop in one shard-count series is attributed to that series only.
        let mut current = parsed.clone();
        current[0]
            .series
            .get_mut("Sharded wLSCQ x4")
            .unwrap()
            .insert(8, 12.0);
        let regs = compare(&parsed, &current, 0.10);
        assert_eq!(regs.len(), 1, "{regs:?}");
        assert_eq!(regs[0].series, "Sharded wLSCQ x4");
        assert_eq!(regs[0].threads, 8);
    }

    #[test]
    fn scenario_latency_artifact_shape_round_trips_and_regresses_upward() {
        // The BENCH_scenario_latency.json shape: one "ns" table whose series
        // are "{pattern}/{backend} {stage} {percentile}" rows — steady and
        // bursty arrivals, two backends, queue-wait and e2e stages — keyed by
        // worker count.  Exactly what bench_scenario emits.
        let mut t = FigureTable::new(
            "Open-loop scenario latency from intended start: steady vs bursty arrivals",
            "ns",
        );
        for pattern in ["steady", "bursty"] {
            for backend in ["wLSCQ", "Sharded wLSCQ x4"] {
                for stage in ["queue-wait", "e2e"] {
                    for (p, v) in [
                        ("p50", 800.0),
                        ("p90", 2_000.0),
                        ("p99", 9_000.0),
                        ("p999", 40_000.0),
                    ] {
                        t.record(&format!("{pattern}/{backend} {stage} {p}"), 4, v);
                    }
                }
            }
        }
        let json = format!("[\n{}\n]\n", t.render_json().trim_end());
        let parsed = parse_bench_json(&json).unwrap();
        assert_eq!(parsed.len(), 1);
        let table = &parsed[0];
        assert_eq!(table.unit, "ns");
        assert!(
            !table.higher_is_better(),
            "latency percentiles regress upward"
        );
        assert_eq!(table.series.len(), 32, "{:?}", table.series.keys());
        assert_eq!(
            table.series["bursty/Sharded wLSCQ x4 e2e p999"][&4],
            40_000.0
        );

        // A grown p99 tail is a regression pinned to that exact row; a
        // shrunken one is an improvement and stays silent.
        let mut slower = parsed.clone();
        slower[0]
            .series
            .get_mut("bursty/wLSCQ queue-wait p99")
            .unwrap()
            .insert(4, 12_000.0);
        let regs = compare(&parsed, &slower, 0.10);
        assert_eq!(regs.len(), 1, "{regs:?}");
        assert_eq!(regs[0].series, "bursty/wLSCQ queue-wait p99");
        assert!(regs[0].change < -0.10, "signed so negative is worse");
        let mut faster = parsed.clone();
        faster[0]
            .series
            .get_mut("bursty/wLSCQ queue-wait p99")
            .unwrap()
            .insert(4, 2_000.0);
        assert!(compare(&parsed, &faster, 0.10).is_empty());
    }

    #[test]
    fn worst_regression_sorts_first() {
        let base = [table("t", "Mops/s", &[("a", 1, 10.0), ("b", 1, 10.0)])];
        let cur = [table("t", "Mops/s", &[("a", 1, 8.0), ("b", 1, 2.0)])];
        let regs = compare(&base, &cur, 0.10);
        assert_eq!(regs.len(), 2);
        assert_eq!(regs[0].series, "b");
    }
}
