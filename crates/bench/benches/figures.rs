//! Benchmarks mirroring every figure of the paper's evaluation at reduced
//! size, so `cargo bench --workspace` regenerates one row of each figure.
//! The full thread sweeps (and the paper-scale operation counts) are produced
//! by the `fig10_memory` / `fig11_x86` / `fig12_llsc` binaries.
//!
//! This is a plain `harness = false` bench (the offline build environment has
//! no Criterion); it times each workload a few times with `std::time` and
//! prints mean throughput with the coefficient of variation, the same summary
//! statistics the paper reports.
//!
//! Groups:
//! * `fig11a_empty_dequeue` / `fig11b_pairs` / `fig11c_mixed` — x86 set.
//! * `fig12a_empty_dequeue_llsc` / `fig12b_pairs_llsc` / `fig12c_mixed_llsc`
//!   — PowerPC (LL/SC) set.
//! * `fig10_memory_test` — the Figure 10 workload (throughput side; the
//!   memory side needs the counting allocator and lives in the binary).
//! * `wlscq_unbounded_pairs` / `wlscq_unbounded_mixed` — the unbounded
//!   comparison set (wLSCQ vs. LCRQ/MSQueue; full sweep in `bench_unbounded`).
//! * `wcq_ablation` — MAX_PATIENCE ablation.

use std::time::Instant;

use wcq::WcqConfig;
use wcq_harness::{make_queue, run_workload, QueueKind, Workload, WorkloadConfig};

const RING_ORDER: u32 = 10;
const THREADS: usize = 2;
const OPS: u64 = 20_000;
const REPEATS: u32 = 3;

fn bench_workload(group_name: &str, kinds: &[QueueKind], workload: Workload) {
    println!("\n## {group_name}");
    for &kind in kinds {
        let queue = make_queue(kind, THREADS + 1, RING_ORDER);
        let cfg = WorkloadConfig {
            threads: THREADS,
            total_ops: OPS,
            repeats: REPEATS,
            seed: 7,
        };
        let res = run_workload(queue.as_ref(), workload, &cfg);
        println!(
            "  {:<12} {:>10.3} Mops/s (cv {:.4})",
            kind.name(),
            res.mops.mean,
            res.mops.cv
        );
    }
}

fn fig11() {
    let kinds = QueueKind::x86_set();
    bench_workload("fig11a_empty_dequeue", &kinds, Workload::EmptyDequeue);
    bench_workload("fig11b_pairs", &kinds, Workload::Pairs);
    bench_workload("fig11c_mixed", &kinds, Workload::Mixed);
}

fn fig12() {
    let kinds = QueueKind::powerpc_set();
    bench_workload("fig12a_empty_dequeue_llsc", &kinds, Workload::EmptyDequeue);
    bench_workload("fig12b_pairs_llsc", &kinds, Workload::Pairs);
    bench_workload("fig12c_mixed_llsc", &kinds, Workload::Mixed);
}

fn fig10() {
    let kinds = QueueKind::x86_set();
    bench_workload("fig10_memory_test", &kinds, Workload::MemoryTest);
}

fn unbounded() {
    let kinds = QueueKind::unbounded_set();
    bench_workload("wlscq_unbounded_pairs", &kinds, Workload::Pairs);
    bench_workload("wlscq_unbounded_mixed", &kinds, Workload::Mixed);
}

fn ablation() {
    println!("\n## wcq_ablation");
    for (label, pe, pd) in [
        ("patience_1_1", 1u32, 1u32),
        ("patience_16_64", 16, 64),
        ("patience_64_256", 64, 256),
    ] {
        let cfg = WcqConfig {
            max_patience_enqueue: pe,
            max_patience_dequeue: pd,
            help_delay: 16,
            catchup_bound: 64,
            ..WcqConfig::default()
        };
        let queue = wcq::builder()
            .capacity_order(RING_ORDER)
            .threads(2)
            .config(cfg)
            .build_bounded::<u64>();
        let mut samples = Vec::new();
        for _ in 0..REPEATS {
            let start = Instant::now();
            let mut h = queue.register().unwrap();
            for i in 0..2_000u64 {
                while h.enqueue(i & 0xFF).is_err() {}
                let _ = h.dequeue();
            }
            let elapsed = start.elapsed().as_secs_f64().max(1e-9);
            samples.push(4_000.0 / elapsed / 1e6);
        }
        let summary = wcq_harness::stats::summarize(&samples);
        println!(
            "  {label:<16} {:>10.3} Mops/s (cv {:.4})",
            summary.mean, summary.cv
        );
    }
}

fn main() {
    // `cargo bench` passes harness flags like `--bench`; a plain runner just
    // ignores them.
    fig11();
    fig12();
    fig10();
    unbounded();
    ablation();
}
