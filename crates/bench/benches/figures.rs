//! Criterion benchmarks mirroring every figure of the paper's evaluation at
//! reduced size, so `cargo bench --workspace` regenerates one row of each
//! figure.  The full thread sweeps (and the paper-scale operation counts) are
//! produced by the `fig10_memory` / `fig11_x86` / `fig12_llsc` binaries.
//!
//! Groups:
//! * `fig11a_empty_dequeue` / `fig11b_pairs` / `fig11c_mixed` — x86 set.
//! * `fig12a_empty_dequeue_llsc` / `fig12b_pairs_llsc` / `fig12c_mixed_llsc`
//!   — PowerPC (LL/SC) set.
//! * `fig10_memory_test` — the Figure 10 workload (throughput side; the
//!   memory side needs the counting allocator and lives in the binary).
//! * `wcq_ablation` — MAX_PATIENCE ablation (E8).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wcq_core::wcq::{WcqConfig, WcqQueue};
use wcq_harness::{make_queue, run_workload, QueueKind, Workload, WorkloadConfig};

const RING_ORDER: u32 = 10;
const THREADS: usize = 2;
const OPS: u64 = 20_000;

fn bench_workload(c: &mut Criterion, group_name: &str, kinds: &[QueueKind], workload: Workload) {
    let mut group = c.benchmark_group(group_name);
    group
        .sample_size(10)
        .measurement_time(Duration::from_millis(800))
        .warm_up_time(Duration::from_millis(200));
    for &kind in kinds {
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, &kind| {
            let queue = make_queue(kind, THREADS + 1, RING_ORDER);
            let cfg = WorkloadConfig {
                threads: THREADS,
                total_ops: OPS,
                repeats: 1,
                seed: 7,
            };
            b.iter(|| run_workload(queue.as_ref(), workload, &cfg).mops.mean);
        });
    }
    group.finish();
}

fn fig11(c: &mut Criterion) {
    let kinds = QueueKind::x86_set();
    bench_workload(c, "fig11a_empty_dequeue", &kinds, Workload::EmptyDequeue);
    bench_workload(c, "fig11b_pairs", &kinds, Workload::Pairs);
    bench_workload(c, "fig11c_mixed", &kinds, Workload::Mixed);
}

fn fig12(c: &mut Criterion) {
    let kinds = QueueKind::powerpc_set();
    bench_workload(c, "fig12a_empty_dequeue_llsc", &kinds, Workload::EmptyDequeue);
    bench_workload(c, "fig12b_pairs_llsc", &kinds, Workload::Pairs);
    bench_workload(c, "fig12c_mixed_llsc", &kinds, Workload::Mixed);
}

fn fig10(c: &mut Criterion) {
    let kinds = QueueKind::x86_set();
    bench_workload(c, "fig10_memory_test", &kinds, Workload::MemoryTest);
}

fn ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("wcq_ablation");
    group
        .sample_size(10)
        .measurement_time(Duration::from_millis(800))
        .warm_up_time(Duration::from_millis(200));
    for (label, pe, pd) in [("patience_1_1", 1u32, 1u32), ("patience_16_64", 16, 64), ("patience_64_256", 64, 256)] {
        group.bench_function(label, |b| {
            let cfg = WcqConfig {
                max_patience_enqueue: pe,
                max_patience_dequeue: pd,
                help_delay: 16,
                catchup_bound: 64,
            };
            let queue: WcqQueue<u64> = WcqQueue::with_config(RING_ORDER, 2, cfg);
            b.iter(|| {
                let mut h = queue.register().unwrap();
                for i in 0..2_000u64 {
                    while h.enqueue(i & 0xFF).is_err() {}
                    let _ = h.dequeue();
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, fig11, fig12, fig10, ablation);
criterion_main!(benches);
