//! Typed error and close vocabulary for channel endpoints over a queue.
//!
//! The [`api`](crate::api) traits speak the algorithm's language: a bounded
//! enqueue that fails hands the value back as `Err(T)`, a dequeue on an empty
//! queue is `None`.  A *channel* layered on top of a queue needs a richer
//! vocabulary, because "the queue is momentarily full" and "the channel was
//! shut down" demand opposite reactions (retry vs. give up), and an empty
//! observation stops meaning "try again later" once every sender is gone.
//! This module defines that vocabulary — the channel endpoints themselves
//! (`Sender`/`Receiver` and their async twins) live in the `wcq` umbrella
//! crate, which owns the construction path.
//!
//! The types mirror the std/crossbeam channel error shape (send errors return
//! the value so nothing is silently dropped; receive errors are value-free
//! enums), so code migrating from `std::sync::mpsc` maps one to one.

use core::fmt;

/// Expands to a `fmt` body matching `self` against `pattern => message` arms.
macro_rules! fmt_display_as {
    ($($pattern:pat => $message:expr),+ $(,)?) => {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                $($pattern => f.write_str($message)),+
            }
        }
    };
}

/// Error of a non-blocking send attempt.
///
/// Carries the unsent value so the caller decides its fate — retry, buffer,
/// or drop — without losing it.
#[derive(PartialEq, Eq, Clone, Copy)]
pub enum TrySendError<T> {
    /// The queue backing the channel is at capacity right now.  Only bounded
    /// backends ever report this; retrying after a dequeue can succeed.
    Full(T),
    /// The channel was closed (explicitly or because an endpoint class is
    /// gone); no send will ever succeed again.
    Closed(T),
}

impl<T> TrySendError<T> {
    /// Consumes the error and hands back the value that was not sent.
    pub fn into_inner(self) -> T {
        match self {
            TrySendError::Full(v) | TrySendError::Closed(v) => v,
        }
    }

    /// `true` when the send failed because the channel is closed (retrying is
    /// pointless), `false` when the queue was merely full.
    pub fn is_closed(&self) -> bool {
        matches!(self, TrySendError::Closed(_))
    }
}

impl<T> fmt::Debug for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // The value may not be Debug; the variant is the information.
        match self {
            TrySendError::Full(_) => f.write_str("Full(..)"),
            TrySendError::Closed(_) => f.write_str("Closed(..)"),
        }
    }
}

impl<T> fmt::Display for TrySendError<T> {
    fmt_display_as!(
        TrySendError::Full(_) => "sending on a full channel",
        TrySendError::Closed(_) => "sending on a closed channel"
    );
}

impl<T> std::error::Error for TrySendError<T> {}

/// Error of a blocking (or async) send: the channel was closed before the
/// value could be delivered.  Carries the value back, like
/// [`TrySendError::Closed`].
#[derive(PartialEq, Eq, Clone, Copy)]
pub struct SendError<T>(pub T);

impl<T> SendError<T> {
    /// Consumes the error and hands back the value that was not sent.
    pub fn into_inner(self) -> T {
        self.0
    }
}

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a closed channel")
    }
}

impl<T> std::error::Error for SendError<T> {}

/// Error of a non-blocking receive attempt.
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum TryRecvError {
    /// The channel held no value at this instant, but senders still exist (or
    /// a straggling pre-close send is in flight): a later receive can succeed.
    Empty,
    /// The channel is closed *and* fully drained; no receive will ever
    /// succeed again.
    Closed,
}

impl TryRecvError {
    /// `true` when the channel is closed and drained (retrying is pointless).
    pub fn is_closed(&self) -> bool {
        matches!(self, TryRecvError::Closed)
    }
}

impl fmt::Display for TryRecvError {
    fmt_display_as!(
        TryRecvError::Empty => "receiving on an empty channel",
        TryRecvError::Closed => "receiving on a closed and drained channel"
    );
}

impl std::error::Error for TryRecvError {}

/// Error of a blocking (or async) receive: the channel is closed and every
/// value sent before the close has been drained.
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on a closed and drained channel")
    }
}

impl std::error::Error for RecvError {}

/// Error of a deadline-bounded receive (`Receiver::recv_timeout` and the
/// multi-channel `select::recv_any_timeout`).
///
/// `Timeout` is the retryable outcome: the deadline passed while the channel
/// stayed empty, and crucially *no element was consumed* — a timed-out
/// receive never dequeues and drops a value, so the exact-drain close
/// guarantee is unaffected by however many timeouts raced the traffic.
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum RecvTimeoutError {
    /// The deadline passed with no value available.  Senders may still
    /// exist; a later receive can succeed.
    Timeout,
    /// The channel is closed *and* fully drained; no receive will ever
    /// succeed again.  Pending pre-close values are always handed out before
    /// this is reported, deadline or not.
    Closed,
}

impl RecvTimeoutError {
    /// `true` when the channel is closed and drained (retrying is pointless).
    pub fn is_closed(&self) -> bool {
        matches!(self, RecvTimeoutError::Closed)
    }
}

impl fmt::Display for RecvTimeoutError {
    fmt_display_as!(
        RecvTimeoutError::Timeout => "receive timed out on an empty channel",
        RecvTimeoutError::Closed => "receiving on a closed and drained channel"
    );
}

impl std::error::Error for RecvTimeoutError {}

/// Error of a deadline-bounded send (`Sender::send_timeout`).
///
/// Both variants hand the value back, like [`TrySendError`]: a timed-out
/// send has *not* enqueued the value (there is no "accepted but also
/// returned" state), so the caller may retry, reroute or drop it without any
/// risk of duplication.
#[derive(PartialEq, Eq, Clone, Copy)]
pub enum SendTimeoutError<T> {
    /// The deadline passed while the bounded queue stayed full.
    Timeout(T),
    /// The channel was closed; no send will ever succeed again.
    Closed(T),
}

impl<T> SendTimeoutError<T> {
    /// Consumes the error and hands back the value that was not sent.
    pub fn into_inner(self) -> T {
        match self {
            SendTimeoutError::Timeout(v) | SendTimeoutError::Closed(v) => v,
        }
    }

    /// `true` when the send failed because the channel is closed (retrying is
    /// pointless), `false` when the deadline merely expired.
    pub fn is_closed(&self) -> bool {
        matches!(self, SendTimeoutError::Closed(_))
    }
}

impl<T> fmt::Debug for SendTimeoutError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // The value may not be Debug; the variant is the information.
        match self {
            SendTimeoutError::Timeout(_) => f.write_str("Timeout(..)"),
            SendTimeoutError::Closed(_) => f.write_str("Closed(..)"),
        }
    }
}

impl<T> fmt::Display for SendTimeoutError<T> {
    fmt_display_as!(
        SendTimeoutError::Timeout(_) => "send timed out on a full channel",
        SendTimeoutError::Closed(_) => "sending on a closed channel"
    );
}

impl<T> std::error::Error for SendTimeoutError<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_errors_hand_the_value_back() {
        assert_eq!(TrySendError::Full(7).into_inner(), 7);
        assert_eq!(TrySendError::Closed("x").into_inner(), "x");
        assert_eq!(SendError(vec![1, 2]).into_inner(), vec![1, 2]);
        assert_eq!(SendTimeoutError::Timeout(7).into_inner(), 7);
        assert_eq!(SendTimeoutError::Closed("x").into_inner(), "x");
    }

    #[test]
    fn timeout_errors_distinguish_retryable_from_terminal() {
        assert!(!RecvTimeoutError::Timeout.is_closed());
        assert!(RecvTimeoutError::Closed.is_closed());
        assert!(!SendTimeoutError::Timeout(0).is_closed());
        assert!(SendTimeoutError::Closed(0).is_closed());
        struct NotDebug;
        assert_eq!(
            RecvTimeoutError::Timeout.to_string(),
            "receive timed out on an empty channel"
        );
        assert_eq!(
            SendTimeoutError::Timeout(NotDebug).to_string(),
            "send timed out on a full channel"
        );
        assert_eq!(
            format!("{:?}", SendTimeoutError::Timeout(NotDebug)),
            "Timeout(..)"
        );
    }

    #[test]
    fn closedness_is_queryable_without_destructuring() {
        assert!(!TrySendError::Full(0).is_closed());
        assert!(TrySendError::Closed(0).is_closed());
        assert!(!TryRecvError::Empty.is_closed());
        assert!(TryRecvError::Closed.is_closed());
    }

    #[test]
    fn errors_display_without_requiring_debug_payloads() {
        struct NotDebug;
        assert_eq!(
            TrySendError::Full(NotDebug).to_string(),
            "sending on a full channel"
        );
        assert_eq!(
            SendError(NotDebug).to_string(),
            "sending on a closed channel"
        );
        assert_eq!(
            TryRecvError::Closed.to_string(),
            "receiving on a closed and drained channel"
        );
        assert_eq!(
            RecvError.to_string(),
            "receiving on a closed and drained channel"
        );
        assert_eq!(
            format!("{:?}", TrySendError::Closed(NotDebug)),
            "Closed(..)"
        );
        assert_eq!(format!("{:?}", SendError(NotDebug)), "SendError(..)");
    }

    #[test]
    fn recv_errors_are_plain_values() {
        assert_eq!(TryRecvError::Empty, TryRecvError::Empty);
        assert_ne!(TryRecvError::Empty, TryRecvError::Closed);
        assert_eq!(RecvError, RecvError);
    }
}
