//! Unified observability: a lock-free counter registry, a compile-time
//! instrumentation strategy and a no-dep HDR-style latency histogram.
//!
//! The wCQ paper's whole design thesis is that the helping slow path is
//! entered rarely enough for the fast path to dominate (§6: the slow path is
//! taken "relatively infrequently" with MAX_PATIENCE = 16/64).  This module
//! makes that claim — and every other contention signal in the codebase —
//! *measurable* without giving up the zero-cost default:
//!
//! * [`Counter`] / [`CounterSet`] — a fixed registry of cache-padded atomic
//!   counters covering every layer: ring ops and helping entries, patience
//!   exhaustion, CAS and spurious-SC failures, segment allocation vs cache
//!   reuse, shard routing vs stealing, batch sizes requested vs granted,
//!   channel park/wake/close events and executor poll/wake counts.
//! * [`Instrument`] — the compile-time strategy: [`NoopInstrument`] (the
//!   default) monomorphizes every `record` call to nothing, while
//!   [`CountingInstrument`] shares one [`CounterSet`] between the caller and
//!   every queue layer built from it (`builder().instrument(...)`).
//! * [`LatencyHistogram`] — log-bucketed (HDR-style: power-of-two octaves ×
//!   32 linear sub-buckets, ≤ 3.2% relative error), lock-free per-thread
//!   shards, mergeable [`HistogramSnapshot`]s with p50/p90/p99/p999.
//! * [`MetricsSnapshot`] — a point-in-time copy of every counter with a JSON
//!   exporter sharing the `FigureTable::render_json` schema
//!   (`{"title", "unit", "series": {name: {"0": value}}}`), so snapshots ride
//!   the same `BENCH_*.json` tooling as throughput tables.
//!
//! ## Counting discipline (why the fast path stays fast)
//!
//! Shared atomic counters on the per-operation fast path would serialize the
//! very contention they measure.  The layers therefore split events in two:
//!
//! * **rare events** (helping entries, patience exhaustion, CAS failures,
//!   segment transitions, parks/wakes) are recorded immediately — they are on
//!   slow or failure branches by definition;
//! * **per-operation totals** (values enqueued/dequeued, batch sizes) are
//!   accumulated in plain per-handle locals and *flushed on handle drop*, so
//!   the counts survive worker-thread teardown and a post-drain snapshot sees
//!   the whole run.
//!
//! Ring-level op totals ([`Counter::RingEnqueues`]/[`Counter::RingDequeues`])
//! are the one exception: they are recorded per ring operation so that
//! `helping_entries <= ring ops` holds by construction (the helping check
//! runs at most once per ring op).  All of this only happens when a
//! [`CounterSet`] is attached; un-instrumented queues skip every site via a
//! `None` check on a cold field.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering::Relaxed};
use std::sync::Arc;

use wcq_atomics::CachePadded;

// --------------------------------------------------------------------------
// Counter registry
// --------------------------------------------------------------------------

/// Number of distinct counters in the registry.
pub const COUNTER_COUNT: usize = 28;

/// Every event class the observability layer records, across all layers.
///
/// The enum doubles as the index into a [`CounterSet`] and as the JSON series
/// name (via [`Counter::name`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Counter {
    /// Ring-level enqueue operations entered (a data-queue op comprises up
    /// to two ring ops: free-index ring + data ring).
    RingEnqueues,
    /// Ring-level dequeue operations entered (includes empty polls).
    RingDequeues,
    /// Ring ops whose Kogan–Petrank helping check actually helped another
    /// thread's published request.  At most one per ring op.
    HelpingEntries,
    /// Ring enqueues that exhausted `max_patience_enqueue` and entered the
    /// wait-free slow path.
    PatienceExhaustedEnqueues,
    /// Ring dequeues that exhausted `max_patience_dequeue` and entered the
    /// wait-free slow path.
    PatienceExhaustedDequeues,
    /// Failed CAS attempts on entry cells (fast-path retries and the
    /// `slow_F&A` loop).
    CasFailures,
    /// Injected spurious store-conditional failures (LL/SC emulation).
    /// Process-global: copied from `wcq_atomics::llsc` at snapshot time.
    SpuriousScFailures,
    /// Values accepted by a data-queue enqueue (handle-local, drop-flushed).
    EnqueuesCompleted,
    /// Values yielded by a data-queue dequeue (handle-local, drop-flushed).
    DequeuesCompleted,
    /// Values requested across batch (`*_many`) calls.
    BatchValuesRequested,
    /// Values actually granted across batch (`*_many`) calls.
    BatchValuesGranted,
    /// Segments taken from the allocator (cache empty or disabled).
    SegmentAllocs,
    /// Segment-cache `take` calls that found a cached segment.
    SegmentCacheHits,
    /// Segment-cache `take` calls that went to the allocator.
    SegmentCacheMisses,
    /// Cache-served segments that won their link race (actually reused).
    SegmentsReused,
    /// Drained segments retired to the hazard domain for recycling.
    SegmentsRetired,
    /// Times a handle's memoized segment binding had to move.
    SegmentRebinds,
    /// Shard-routing decisions taken by sharded enqueue/batch calls.
    ShardRoutes,
    /// Dequeues satisfied by a non-home shard (work stealing).
    ShardSteals,
    /// Channel-side waker parks (a future registered and suspended).
    ChannelParks,
    /// Channel-side wake notifications issued (send→receiver, recv→sender).
    ChannelWakes,
    /// Channel close transitions (explicit or last-endpoint drop).
    ChannelCloses,
    /// Future polls performed by the harness executor.
    ExecPolls,
    /// Executor wakes (unpark calls) observed by the harness executor.
    ExecWakes,
    /// Adaptive patience controller widened a handle's patience bound.
    PatienceRaised,
    /// Adaptive patience controller shrank a handle's patience bound.
    PatienceLowered,
    /// Adaptive shard routing widened a handle's active shard prefix.
    ShardSetGrown,
    /// Adaptive shard routing shrank a handle's active shard prefix.
    ShardSetShrunk,
}

impl Counter {
    /// Every counter, in index order.
    pub const ALL: [Counter; COUNTER_COUNT] = [
        Counter::RingEnqueues,
        Counter::RingDequeues,
        Counter::HelpingEntries,
        Counter::PatienceExhaustedEnqueues,
        Counter::PatienceExhaustedDequeues,
        Counter::CasFailures,
        Counter::SpuriousScFailures,
        Counter::EnqueuesCompleted,
        Counter::DequeuesCompleted,
        Counter::BatchValuesRequested,
        Counter::BatchValuesGranted,
        Counter::SegmentAllocs,
        Counter::SegmentCacheHits,
        Counter::SegmentCacheMisses,
        Counter::SegmentsReused,
        Counter::SegmentsRetired,
        Counter::SegmentRebinds,
        Counter::ShardRoutes,
        Counter::ShardSteals,
        Counter::ChannelParks,
        Counter::ChannelWakes,
        Counter::ChannelCloses,
        Counter::ExecPolls,
        Counter::ExecWakes,
        Counter::PatienceRaised,
        Counter::PatienceLowered,
        Counter::ShardSetGrown,
        Counter::ShardSetShrunk,
    ];

    /// Stable snake_case name, used as the JSON series key.
    pub fn name(self) -> &'static str {
        match self {
            Counter::RingEnqueues => "ring_enqueues",
            Counter::RingDequeues => "ring_dequeues",
            Counter::HelpingEntries => "helping_entries",
            Counter::PatienceExhaustedEnqueues => "patience_exhausted_enqueues",
            Counter::PatienceExhaustedDequeues => "patience_exhausted_dequeues",
            Counter::CasFailures => "cas_failures",
            Counter::SpuriousScFailures => "spurious_sc_failures",
            Counter::EnqueuesCompleted => "enqueues_completed",
            Counter::DequeuesCompleted => "dequeues_completed",
            Counter::BatchValuesRequested => "batch_values_requested",
            Counter::BatchValuesGranted => "batch_values_granted",
            Counter::SegmentAllocs => "segment_allocs",
            Counter::SegmentCacheHits => "segment_cache_hits",
            Counter::SegmentCacheMisses => "segment_cache_misses",
            Counter::SegmentsReused => "segments_reused",
            Counter::SegmentsRetired => "segments_retired",
            Counter::SegmentRebinds => "segment_rebinds",
            Counter::ShardRoutes => "shard_routes",
            Counter::ShardSteals => "shard_steals",
            Counter::ChannelParks => "channel_parks",
            Counter::ChannelWakes => "channel_wakes",
            Counter::ChannelCloses => "channel_closes",
            Counter::ExecPolls => "exec_polls",
            Counter::ExecWakes => "exec_wakes",
            Counter::PatienceRaised => "patience_raised",
            Counter::PatienceLowered => "patience_lowered",
            Counter::ShardSetGrown => "shard_set_grown",
            Counter::ShardSetShrunk => "shard_set_shrunk",
        }
    }

    #[inline]
    fn index(self) -> usize {
        self as usize
    }
}

/// A fixed set of cache-padded atomic counters, one per [`Counter`].
///
/// Shared (via `Arc`) between a [`CountingInstrument`] and every queue layer
/// the builder attaches it to; all updates are `Relaxed` — the counters are
/// telemetry, not synchronization.
#[derive(Debug)]
pub struct CounterSet {
    counters: [CachePadded<AtomicU64>; COUNTER_COUNT],
}

impl Default for CounterSet {
    fn default() -> Self {
        Self::new()
    }
}

impl CounterSet {
    /// Creates a zeroed counter set.
    pub fn new() -> Self {
        Self {
            counters: std::array::from_fn(|_| CachePadded::new(AtomicU64::new(0))),
        }
    }

    /// Adds `n` to `counter`.
    #[inline]
    pub fn add(&self, counter: Counter, n: u64) {
        // relaxed: monotonic statistics counter; readers only ever see a
        // (possibly slightly stale) total, never derive control flow from it.
        self.counters[counter.index()].fetch_add(n, Relaxed);
    }

    /// Current value of `counter`.
    #[inline]
    pub fn get(&self, counter: Counter) -> u64 {
        // relaxed: statistics read; staleness is acceptable by contract.
        self.counters[counter.index()].load(Relaxed)
    }

    /// Copies every counter into a [`MetricsSnapshot`].  The process-global
    /// spurious-SC tally is folded in here (see
    /// [`Counter::SpuriousScFailures`]).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut values = [0u64; COUNTER_COUNT];
        for c in Counter::ALL {
            values[c.index()] = self.get(c);
        }
        values[Counter::SpuriousScFailures.index()] = values[Counter::SpuriousScFailures.index()]
            .max(wcq_atomics::llsc::spurious_sc_failures());
        MetricsSnapshot { values }
    }
}

// --------------------------------------------------------------------------
// The compile-time instrumentation strategy
// --------------------------------------------------------------------------

/// Compile-time instrumentation strategy for the channel layer and the
/// builder.
///
/// # The zero-overhead contract
///
/// [`NoopInstrument`] — the default everywhere — **must compile to zero
/// code**: its `record` body is empty and `#[inline]`, and its
/// `counter_set()` returns `None`, so queues built with it never take the
/// counting branch and channel endpoints monomorphize every `record` call
/// away entirely.  An instrumented-vs-default row in `bench_channel` tracks
/// this claim across PRs (series `channel/wLSCQ (counting)` next to the
/// default rows).  Implementations other than [`CountingInstrument`] must
/// keep `record` wait-free and non-blocking: it is called from wait-free
/// queue paths.
pub trait Instrument: Clone + Send + Sync + 'static {
    /// Records `n` occurrences of `counter`.  The default does nothing.
    #[inline]
    fn record(&self, counter: Counter, n: u64) {
        let _ = (counter, n);
    }

    /// The shared counter set to attach to queues built with this
    /// instrument, or `None` for un-instrumented builds.  The default
    /// returns `None`.
    #[inline]
    fn counter_set(&self) -> Option<Arc<CounterSet>> {
        None
    }
}

/// The default, zero-cost instrumentation: records nothing, attaches
/// nothing.  See the [`Instrument`] zero-overhead contract.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopInstrument;

impl Instrument for NoopInstrument {}

/// Live instrumentation: every layer built from the same builder shares this
/// instrument's [`CounterSet`].  Keep a clone and call
/// [`CountingInstrument::snapshot`] at any point — typically after workers
/// have dropped their handles, so the drop-flushed per-handle totals are
/// included.
#[derive(Debug, Clone, Default)]
pub struct CountingInstrument {
    set: Arc<CounterSet>,
}

impl CountingInstrument {
    /// Creates an instrument with a fresh, zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// The shared counter set (the same one [`Instrument::counter_set`]
    /// hands to queues).
    pub fn counters(&self) -> &Arc<CounterSet> {
        &self.set
    }

    /// A point-in-time copy of every counter.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.set.snapshot()
    }
}

impl Instrument for CountingInstrument {
    #[inline]
    fn record(&self, counter: Counter, n: u64) {
        self.set.add(counter, n);
    }

    #[inline]
    fn counter_set(&self) -> Option<Arc<CounterSet>> {
        Some(Arc::clone(&self.set))
    }
}

// --------------------------------------------------------------------------
// MetricsSnapshot
// --------------------------------------------------------------------------

/// A point-in-time copy of a [`CounterSet`], with derived accessors and a
/// JSON exporter sharing the `FigureTable::render_json` schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricsSnapshot {
    values: [u64; COUNTER_COUNT],
}

impl MetricsSnapshot {
    /// A snapshot with every counter zero (useful as a merge accumulator).
    pub fn empty() -> Self {
        Self {
            values: [0; COUNTER_COUNT],
        }
    }

    /// Value of one counter.
    #[inline]
    pub fn get(&self, counter: Counter) -> u64 {
        self.values[counter.index()]
    }

    /// Total ring-level operations (enqueues + dequeues).  The helping
    /// invariant `helping_entries <= total_ring_ops` holds by construction:
    /// the helping check runs at most once per ring op.
    pub fn total_ring_ops(&self) -> u64 {
        self.get(Counter::RingEnqueues) + self.get(Counter::RingDequeues)
    }

    /// Ring ops that completed on the fast path (derived: total ring ops
    /// minus patience-exhausted slow-path entries).
    pub fn fast_ring_ops(&self) -> u64 {
        self.total_ring_ops().saturating_sub(
            self.get(Counter::PatienceExhaustedEnqueues)
                + self.get(Counter::PatienceExhaustedDequeues),
        )
    }

    /// Fraction of ring ops that fell back to the wait-free slow path
    /// (`0.0` when nothing ran).
    pub fn slow_path_fraction(&self) -> f64 {
        let total = self.total_ring_ops();
        if total == 0 {
            return 0.0;
        }
        (total - self.fast_ring_ops()) as f64 / total as f64
    }

    /// Adds every counter of `other` into `self`.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (a, b) in self.values.iter_mut().zip(other.values.iter()) {
            *a += *b;
        }
    }

    /// Renders the snapshot as one JSON table in the `BENCH_*.json` schema:
    /// `{"title", "unit": "count", "series": {counter_name: {"0": value}}}`
    /// plus the derived `fast_ring_ops` series.  The `"0"` key fills the
    /// schema's thread-count slot (a snapshot is not a thread sweep).
    pub fn render_json(&self, title: &str) -> String {
        let escape = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"title\": \"{}\",\n", escape(title)));
        out.push_str("  \"unit\": \"count\",\n");
        out.push_str("  \"series\": {\n");
        for c in Counter::ALL {
            out.push_str(&format!(
                "    \"{}\": {{\"0\": {}}},\n",
                c.name(),
                self.get(c)
            ));
        }
        out.push_str(&format!(
            "    \"fast_ring_ops\": {{\"0\": {}}}\n",
            self.fast_ring_ops()
        ));
        out.push_str("  }\n}\n");
        out
    }
}

// --------------------------------------------------------------------------
// HDR-style log-bucketed latency histogram
// --------------------------------------------------------------------------

/// Linear sub-buckets per power-of-two octave (as a shift).
const SUB_BITS: usize = 5;
/// Linear sub-buckets per octave.
const SUB: usize = 1 << SUB_BITS;
/// Total bucket count: exact values `0..32`, then one octave of 32
/// sub-buckets per leading-bit position 5..=63 (59 octaves), covering the
/// whole `u64` range.
pub const HISTOGRAM_BUCKETS: usize = SUB + (64 - SUB_BITS) * SUB;

/// Concurrent recording shards (threads hash onto these round-robin).
const HIST_SHARDS: usize = 16;

static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Each thread picks a shard once and sticks to it, so steady recording
    /// is a single uncontended relaxed `fetch_add` per sample.
    static MY_SHARD: Cell<Option<usize>> = const { Cell::new(None) };
}

fn my_shard() -> usize {
    MY_SHARD.with(|s| match s.get() {
        Some(i) => i,
        None => {
            // relaxed: shard assignment only needs unique-ish round-robin
            // ids, not ordering with any other memory.
            let i = NEXT_SHARD.fetch_add(1, Relaxed) % HIST_SHARDS;
            s.set(Some(i));
            i
        }
    })
}

/// Bucket index for a sample: exact below [`SUB`], then log-linear — the top
/// [`SUB_BITS`] bits below the leading bit select the sub-bucket, bounding
/// relative error by `1/32`.
fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        v as usize
    } else {
        let exp = 63 - v.leading_zeros() as usize; // >= SUB_BITS
        let mantissa = ((v >> (exp - SUB_BITS)) - SUB as u64) as usize;
        SUB + (exp - SUB_BITS) * SUB + mantissa
    }
}

/// Lower bound of a bucket (the representative value percentiles report; the
/// true sample was at most `1/32` above it).
fn bucket_value(i: usize) -> u64 {
    if i < SUB {
        i as u64
    } else {
        let exp = SUB_BITS + (i - SUB) / SUB;
        let mantissa = ((i - SUB) % SUB) as u64;
        (SUB as u64 + mantissa) << (exp - SUB_BITS)
    }
}

/// A lock-free, mergeable latency histogram (HDR-style log-linear buckets).
///
/// `record` is wait-free: one relaxed `fetch_add` on the calling thread's
/// shard.  Readers take a [`HistogramSnapshot`] (a plain sum over shards)
/// and query percentiles from that — recording never blocks on reading.
/// Values are unitless; the bench layer records nanoseconds.
pub struct LatencyHistogram {
    shards: Vec<Box<[AtomicU64]>>,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snap = self.snapshot();
        f.debug_struct("LatencyHistogram")
            .field("count", &snap.count())
            .field("p50", &snap.p50())
            .field("p99", &snap.p99())
            .finish()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            shards: (0..HIST_SHARDS)
                .map(|_| {
                    (0..HISTOGRAM_BUCKETS)
                        .map(|_| AtomicU64::new(0))
                        .collect::<Vec<_>>()
                        .into_boxed_slice()
                })
                .collect(),
        }
    }

    /// Records one sample (clamps nothing: the bucket scheme covers all of
    /// `u64`, so the top bucket saturates naturally).
    #[inline]
    pub fn record(&self, value: u64) {
        // relaxed: histogram bucket bump; snapshots tolerate torn totals.
        self.shards[my_shard()][bucket_index(value)].fetch_add(1, Relaxed);
    }

    /// Sums every shard into a mergeable snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut counts = vec![0u64; HISTOGRAM_BUCKETS];
        let mut total = 0u64;
        for shard in &self.shards {
            for (acc, bucket) in counts.iter_mut().zip(shard.iter()) {
                // relaxed: statistics read; a snapshot is explicitly a racy
                // sum over shards.
                let n = bucket.load(Relaxed);
                *acc += n;
                total += n;
            }
        }
        HistogramSnapshot { counts, total }
    }
}

/// A point-in-time, mergeable copy of a [`LatencyHistogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    counts: Vec<u64>,
    total: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot (merge accumulator).
    pub fn empty() -> Self {
        Self {
            counts: vec![0; HISTOGRAM_BUCKETS],
            total: 0,
        }
    }

    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Adds every bucket of `other` into `self`.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += *b;
        }
        self.total += other.total;
    }

    /// The value at quantile `q` (`0.0..=1.0`): the representative (lower
    /// bound) of the bucket holding the `ceil(q·count)`-th sample.  `0` for
    /// an empty snapshot.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (i, &n) in self.counts.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_value(i);
            }
        }
        bucket_value(HISTOGRAM_BUCKETS - 1)
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_math_round_trips_and_is_monotone() {
        // Exact region: values below 32 map to their own bucket.
        for v in 0..SUB as u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_value(bucket_index(v)), v);
        }
        // Log-linear region: the bucket's lower bound never exceeds the
        // sample and the next bucket's lower bound is strictly above it.
        for &v in &[
            32u64,
            33,
            63,
            64,
            100,
            1_000,
            123_456,
            u64::MAX / 3,
            u64::MAX,
        ] {
            let i = bucket_index(v);
            assert!(bucket_value(i) <= v, "v={v} i={i}");
            if i + 1 < HISTOGRAM_BUCKETS {
                assert!(bucket_value(i + 1) > v, "v={v} i={i}");
            }
            // Relative error bound: lower bound within 1/32 of the sample.
            assert!((v - bucket_value(i)) as f64 <= v as f64 / 32.0 + 1.0);
        }
        // Indices are monotone in the sample value.
        let mut last = 0;
        for shift in 0..64 {
            let i = bucket_index(1u64 << shift);
            assert!(i >= last);
            last = i;
        }
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn histogram_record_and_percentile_round_trip() {
        let h = LatencyHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 1000);
        // Representatives are lower bounds, so percentiles sit within one
        // bucket (3.2%) below the exact answer.
        let p50 = s.p50();
        assert!((470..=500).contains(&p50), "p50={p50}");
        let p99 = s.p99();
        assert!((930..=990).contains(&p99), "p99={p99}");
        assert!(s.p999() >= p99);
        assert!(s.quantile(1.0) >= s.p999());
        assert_eq!(s.quantile(0.0), s.quantile(0.001));
    }

    #[test]
    fn histogram_saturates_at_the_top_bucket() {
        let h = LatencyHistogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        let s = h.snapshot();
        assert_eq!(s.count(), 2);
        let top = s.quantile(1.0);
        assert_eq!(top, bucket_value(HISTOGRAM_BUCKETS - 1));
        assert!(top > u64::MAX / 2);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let s = LatencyHistogram::new().snapshot();
        assert_eq!(s.count(), 0);
        assert_eq!(s.p50(), 0);
        assert_eq!(s.p999(), 0);
    }

    #[test]
    fn cross_thread_shards_merge_into_one_snapshot() {
        let h = LatencyHistogram::new();
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let h = &h;
                s.spawn(move || {
                    for i in 0..1000u64 {
                        h.record(t * 10_000 + i);
                    }
                });
            }
        });
        let s = h.snapshot();
        assert_eq!(s.count(), 4000, "no shard's samples were lost");
        assert!(s.p999() >= 30_000, "the slowest thread's samples are seen");
        assert!(s.p50() < 30_000);
    }

    #[test]
    fn snapshots_merge_additively() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        for v in 0..100 {
            a.record(v);
            b.record(v + 1_000_000);
        }
        let mut merged = HistogramSnapshot::empty();
        merged.merge(&a.snapshot());
        merged.merge(&b.snapshot());
        assert_eq!(merged.count(), 200);
        assert!(merged.p50() < 1_000_000);
        // Representatives are bucket lower bounds (≤ 1/32 below the sample).
        assert!(merged.p999() >= 990_000, "{}", merged.p999());
    }

    #[test]
    fn counter_set_records_and_snapshots() {
        let set = CounterSet::new();
        set.add(Counter::RingEnqueues, 10);
        set.add(Counter::RingDequeues, 10);
        set.add(Counter::HelpingEntries, 3);
        set.add(Counter::PatienceExhaustedEnqueues, 2);
        let snap = set.snapshot();
        assert_eq!(snap.get(Counter::HelpingEntries), 3);
        assert_eq!(snap.total_ring_ops(), 20);
        assert_eq!(snap.fast_ring_ops(), 18);
        assert!(snap.slow_path_fraction() > 0.0);
        let mut merged = MetricsSnapshot::empty();
        merged.merge(&snap);
        merged.merge(&snap);
        assert_eq!(merged.get(Counter::HelpingEntries), 6);
    }

    #[test]
    fn noop_instrument_attaches_no_counters() {
        assert!(NoopInstrument.counter_set().is_none());
        NoopInstrument.record(Counter::RingEnqueues, 1); // compiles to nothing
    }

    #[test]
    fn counting_instrument_shares_one_set_across_clones() {
        let inst = CountingInstrument::new();
        let clone = inst.clone();
        clone.record(Counter::ChannelParks, 2);
        inst.counter_set().unwrap().add(Counter::ChannelParks, 1);
        assert_eq!(inst.snapshot().get(Counter::ChannelParks), 3);
    }

    #[test]
    fn snapshot_json_follows_the_figure_table_schema() {
        let set = CounterSet::new();
        set.add(Counter::EnqueuesCompleted, 42);
        let json = set.snapshot().render_json("metrics: \"smoke\"");
        assert!(
            json.contains("\"title\": \"metrics: \\\"smoke\\\"\""),
            "{json}"
        );
        assert!(json.contains("\"unit\": \"count\""));
        assert!(
            json.contains("\"enqueues_completed\": {\"0\": 42}"),
            "{json}"
        );
        assert!(json.contains("\"fast_ring_ops\""));
        // Every counter appears as a series.
        for c in Counter::ALL {
            assert!(json.contains(c.name()), "missing {}", c.name());
        }
    }
}
