//! # wcq-core
//!
//! A from-scratch Rust reproduction of **wCQ — a fast wait-free MPMC queue
//! with bounded memory usage** (Nikolaev & Ravindran, SPAA '22), together with
//! the lock-free **SCQ** queue it is built on (Nikolaev, DISC '19, Figure 3 of
//! the wCQ paper).
//!
//! ## What is provided
//!
//! * [`scq::ScqRing`] / [`scq::ScqQueue`] — the lock-free circular queue used
//!   as wCQ's fast path and as a baseline in every figure of the paper.
//! * [`wcq::WcqRing`] / [`wcq::WcqQueue`] — the wait-free circular queue: the
//!   SCQ fast path plus the paper's slow path (`slow_F&A`, phase-2 help
//!   requests, `Note` invalidation, `FIN`/`INC` bits) and the Kogan-Petrank
//!   style helping scheme of Figure 6.
//! * [`wcq::NativeFamily`] / [`wcq::LlscFamily`] — the two hardware models of
//!   the paper: double-width CAS (x86-64/AArch64, §3) and single-word LL/SC
//!   (PowerPC/MIPS, §4 / Figure 9; emulated in software, see `wcq-atomics`).
//! * [`pack::Layout`] — the bit-level entry encoding (`Cycle`, `IsSafe`,
//!   `Enq`, `Index`, `⊥`, `⊥c`) and the `Cache_Remap` permutation shared by
//!   both queues.
//!
//! ## Usage model
//!
//! Both queues are *bounded* (capacity fixed at construction, memory usage
//! bounded — Theorem 5.8) and *registration based*: every thread obtains a
//! handle before operating on the queue, because wait-free helping requires a
//! per-thread record (Figure 4).  A minimal example:
//!
//! ```
//! use wcq_core::wcq::WcqQueue;
//!
//! // Capacity 2^4 = 16 elements, up to 4 registered threads.
//! let q: WcqQueue<u64> = WcqQueue::new(4, 4);
//! std::thread::scope(|s| {
//!     s.spawn(|| {
//!         let mut h = q.register().unwrap();
//!         for i in 0..10 {
//!             h.enqueue(i).unwrap();
//!         }
//!     });
//!     s.spawn(|| {
//!         let mut h = q.register().unwrap();
//!         let mut got = 0;
//!         while got < 10 {
//!             if h.dequeue().is_some() {
//!                 got += 1;
//!             }
//!         }
//!     });
//! });
//! ```

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod adaptive;
pub mod api;
pub mod channel;
pub mod metrics;
pub mod pack;
pub mod scq;
pub mod wcq;

pub use adaptive::{AdaptivePatience, PatienceCell, PatienceController, PatienceMode};
pub use api::{QueueHandle, WaitFreeQueue};
pub use channel::{RecvError, SendError, TryRecvError, TrySendError};
pub use metrics::{
    Counter, CounterSet, CountingInstrument, HistogramSnapshot, Instrument, LatencyHistogram,
    MetricsSnapshot, NoopInstrument,
};
pub use pack::Layout;
pub use scq::{ScqQueue, ScqRing};
pub use wcq::{WcqConfig, WcqQueue, WcqRing};

/// Deterministic xorshift64* PRNG shared by this crate's test modules:
/// reproducible randomized coverage without external crates (the build
/// environment is offline, and depending on `wcq-harness` would be cyclic).
#[cfg(test)]
pub(crate) mod test_util {
    pub(crate) fn xorshift(state: &mut u64) -> u64 {
        let mut x = *state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *state = x;
        x
    }
}
