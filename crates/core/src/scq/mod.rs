//! SCQ — the lock-free Scalable Circular Queue (Figure 3 of the wCQ paper).
//!
//! SCQ is the substrate wCQ extends: a bounded MPMC FIFO ring that replaces
//! the CAS loop on `Head`/`Tail` with fetch-and-add and achieves lock-freedom
//! directly inside the ring through the *threshold* mechanism.  wCQ's fast
//! path is byte-for-byte this algorithm; reproducing SCQ is therefore both a
//! prerequisite and one of the baselines of every figure in the paper.
//!
//! Two types are exported:
//!
//! * [`ScqRing`] — the raw ring of *indices* (the paper's `aq`/`fq` building
//!   block).  It stores `u64` values smaller than the capacity.
//! * [`ScqQueue`] — the user-facing bounded queue of arbitrary `T`, built from
//!   two rings plus a data array via the indirection scheme of Figure 2.

mod queue;
mod ring;

pub use queue::ScqQueue;
pub use ring::{ScqDequeue, ScqRing};
