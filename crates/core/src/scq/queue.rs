//! The user-facing SCQ data queue: two index rings plus a data array
//! (the indirection scheme of Figure 2).

use core::cell::UnsafeCell;
use core::mem::MaybeUninit;

use super::ScqRing;

/// A bounded, lock-free MPMC FIFO queue of `T` with capacity `2^order`.
///
/// Values are stored out-of-band in a data array; the `fq` ring circulates
/// free slot indices and the `aq` ring circulates allocated ones, exactly as
/// `Enqueue_Ptr` / `Dequeue_Ptr` in Figure 2 of the paper.  Because at most
/// `capacity` indices ever circulate, neither ring can overflow, which is what
/// lets SCQ's `Enqueue` skip the full check.
///
/// All operations take `&self`; the queue is `Sync` for `T: Send`.
pub struct ScqQueue<T> {
    aq: ScqRing,
    fq: ScqRing,
    data: Box<[UnsafeCell<MaybeUninit<T>>]>,
}

// SAFETY: slots are handed between threads through the rings; a slot index is
// owned either by the enqueuer that dequeued it from `fq` (until it is pushed
// to `aq`) or by the dequeuer that dequeued it from `aq` (until it is pushed
// back to `fq`).  Sequentially consistent ring operations order the data
// accesses on either side of the transfer.
unsafe impl<T: Send> Send for ScqQueue<T> {}
unsafe impl<T: Send> Sync for ScqQueue<T> {}

impl<T> ScqQueue<T> {
    /// Creates a queue with capacity `2^order` elements.
    pub fn new(order: u32) -> Self {
        let aq = ScqRing::new(order);
        let fq = ScqRing::new_full(order);
        let capacity = aq.capacity() as usize;
        let data = (0..capacity)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Self { aq, fq, data }
    }

    /// Maximum number of elements the queue can hold.
    pub fn capacity(&self) -> usize {
        self.data.len()
    }

    /// Attempts to enqueue `value`; returns it back inside `Err` when the
    /// queue is full.
    pub fn enqueue(&self, value: T) -> Result<(), T> {
        // Dequeue a free slot index; an empty `fq` means the queue is full.
        let Some(index) = self.fq.dequeue() else {
            return Err(value);
        };
        // SAFETY: the slot index was obtained from `fq`, so no other thread
        // owns it until we publish it through `aq`.
        unsafe { (*self.data[index as usize].get()).write(value) };
        self.aq.enqueue(index);
        Ok(())
    }

    /// Attempts to dequeue an element; returns `None` when the queue is
    /// empty.
    pub fn dequeue(&self) -> Option<T> {
        let index = self.aq.dequeue()?;
        // SAFETY: the slot index came from `aq`, so the matching enqueuer has
        // fully initialized it and nobody else will touch it until we release
        // it back to `fq`.
        let value = unsafe { (*self.data[index as usize].get()).assume_init_read() };
        self.fq.enqueue(index);
        Some(value)
    }

    /// Returns `true` if a dequeue would currently observe an empty queue.
    /// Only a hint under concurrency.
    pub fn is_empty_hint(&self) -> bool {
        self.aq.len_hint() == 0
    }

    /// Bytes of memory occupied by the queue (rings + data array), used by the
    /// Figure 10a memory benchmark.
    pub fn memory_footprint(&self) -> usize {
        self.aq.memory_footprint()
            + self.fq.memory_footprint()
            + self.data.len() * std::mem::size_of::<UnsafeCell<MaybeUninit<T>>>()
    }
}

impl<T> Drop for ScqQueue<T> {
    fn drop(&mut self) {
        // Drain and drop any remaining elements.
        while let Some(index) = self.aq.dequeue() {
            // SAFETY: same ownership argument as `dequeue`; we have `&mut
            // self`, so no concurrent access exists.
            unsafe { (*self.data[index as usize].get()).assume_init_drop() };
        }
    }
}

impl<T> std::fmt::Debug for ScqQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScqQueue")
            .field("capacity", &self.capacity())
            .field("aq", &self.aq)
            .field("fq", &self.fq)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::xorshift;
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn enqueue_dequeue_roundtrip() {
        let q: ScqQueue<String> = ScqQueue::new(3);
        q.enqueue("a".to_string()).unwrap();
        q.enqueue("b".to_string()).unwrap();
        assert_eq!(q.dequeue().as_deref(), Some("a"));
        assert_eq!(q.dequeue().as_deref(), Some("b"));
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn full_queue_rejects_and_returns_value() {
        let q: ScqQueue<u32> = ScqQueue::new(2); // capacity 4
        for i in 0..4 {
            q.enqueue(i).unwrap();
        }
        assert_eq!(q.enqueue(99), Err(99));
        assert_eq!(q.dequeue(), Some(0));
        q.enqueue(99).unwrap();
        assert_eq!(q.capacity(), 4);
    }

    #[test]
    fn drop_releases_remaining_elements() {
        use std::rc::Rc;
        let probe = Rc::new(());
        {
            let q: ScqQueue<Rc<()>> = ScqQueue::new(3);
            for _ in 0..5 {
                q.enqueue(Rc::clone(&probe)).unwrap();
            }
            assert_eq!(Rc::strong_count(&probe), 6);
            // q drops here.
        }
        assert_eq!(Rc::strong_count(&probe), 1);
    }

    #[test]
    fn wraparound_does_not_lose_elements() {
        let q: ScqQueue<u64> = ScqQueue::new(2);
        for i in 0..1_000u64 {
            q.enqueue(i).unwrap();
            assert_eq!(q.dequeue(), Some(i));
        }
    }

    #[test]
    fn mpmc_stress_sum_preserved() {
        const PRODUCERS: u64 = 3;
        const CONSUMERS: u64 = 3;
        const PER_PRODUCER: u64 = 10_000;
        let q: ScqQueue<u64> = ScqQueue::new(7);
        let consumed_sum = AtomicU64::new(0);
        let consumed_cnt = AtomicU64::new(0);

        std::thread::scope(|s| {
            for p in 0..PRODUCERS {
                let q = &q;
                s.spawn(move || {
                    for i in 0..PER_PRODUCER {
                        let mut v = p * PER_PRODUCER + i;
                        loop {
                            match q.enqueue(v) {
                                Ok(()) => break,
                                Err(back) => {
                                    v = back;
                                    std::thread::yield_now();
                                }
                            }
                        }
                    }
                });
            }
            for _ in 0..CONSUMERS {
                let q = &q;
                let consumed_sum = &consumed_sum;
                let consumed_cnt = &consumed_cnt;
                s.spawn(move || loop {
                    if consumed_cnt.load(Ordering::Relaxed) >= PRODUCERS * PER_PRODUCER {
                        break;
                    }
                    match q.dequeue() {
                        Some(v) => {
                            consumed_sum.fetch_add(v, Ordering::Relaxed);
                            consumed_cnt.fetch_add(1, Ordering::Relaxed);
                        }
                        None => std::thread::yield_now(),
                    }
                });
            }
        });

        let n = PRODUCERS * PER_PRODUCER;
        assert_eq!(consumed_cnt.load(Ordering::Relaxed), n);
        assert_eq!(consumed_sum.load(Ordering::Relaxed), n * (n - 1) / 2);
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn per_producer_order_is_preserved() {
        const PER_PRODUCER: u64 = 5_000;
        let q: ScqQueue<(u64, u64)> = ScqQueue::new(6);
        let mut last_seen = [0u64; 2];

        std::thread::scope(|s| {
            for p in 0..2u64 {
                let q = &q;
                s.spawn(move || {
                    for i in 1..=PER_PRODUCER {
                        let mut item = (p, i);
                        while let Err(back) = q.enqueue(item) {
                            item = back;
                            std::thread::yield_now();
                        }
                    }
                });
            }
            // Single consumer checks that each producer's sequence numbers
            // arrive in increasing order (FIFO per producer).
            let q = &q;
            let last_seen = &mut last_seen;
            s.spawn(move || {
                let mut got = 0;
                while got < 2 * PER_PRODUCER {
                    if let Some((p, i)) = q.dequeue() {
                        assert!(i > last_seen[p as usize], "per-producer order violated");
                        last_seen[p as usize] = i;
                        got += 1;
                    } else {
                        std::thread::yield_now();
                    }
                }
            });
        });
    }

    /// Sequential behaviour matches a VecDeque model for randomized operation
    /// sequences (bounded capacity included), across many seeds and orders.
    #[test]
    fn sequential_matches_model_randomized() {
        for seed in 1..=64u64 {
            for order in 1..=4u32 {
                let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
                let len = 1 + (xorshift(&mut state) % 300) as usize;
                let q: ScqQueue<u64> = ScqQueue::new(order);
                let mut model: VecDeque<u64> = VecDeque::new();
                let cap = q.capacity();
                let mut next = 0u64;
                for _ in 0..len {
                    if xorshift(&mut state) & 1 == 0 {
                        let res = q.enqueue(next);
                        if model.len() < cap {
                            assert!(res.is_ok(), "seed {seed} order {order}");
                            model.push_back(next);
                        } else {
                            assert_eq!(res, Err(next), "seed {seed} order {order}");
                        }
                        next += 1;
                    } else {
                        assert_eq!(q.dequeue(), model.pop_front(), "seed {seed} order {order}");
                    }
                }
                // Drain and compare the tail of the model.
                while let Some(expect) = model.pop_front() {
                    assert_eq!(q.dequeue(), Some(expect), "seed {seed} order {order}");
                }
                assert_eq!(q.dequeue(), None, "seed {seed} order {order}");
            }
        }
    }
}
