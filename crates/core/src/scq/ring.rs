//! The SCQ ring of indices (Figure 3 of the wCQ paper).

use core::sync::atomic::{AtomicI64, AtomicU64, Ordering::SeqCst};

use wcq_atomics::CachePadded;

use crate::pack::Layout;

/// Result of a single dequeue attempt on the ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScqDequeue {
    /// An index was dequeued.
    Value(u64),
    /// The ring was observed empty (threshold exhausted or tail caught up).
    Empty,
    /// The attempt must be retried; the payload is the head ticket that
    /// failed, which wCQ's slow path uses as its starting point.
    Retry(u64),
}

/// The lock-free SCQ circular ring of *indices*.
///
/// The ring stores `u64` values in `[0, capacity)`; storing arbitrary data is
/// the job of [`super::ScqQueue`], which combines two rings (`aq`, `fq`) with
/// a data array.  The ring is operation-wise lock-free: some enqueuer and some
/// dequeuer always completes in a finite number of steps (the property wCQ's
/// slow path relies on, Lemma 5.3).
///
/// # Capacity discipline
///
/// As in the paper, `Enqueue` never checks for a full ring: correctness
/// requires that at most `capacity()` values circulate through the ring at a
/// time (which the index-indirection scheme guarantees by construction).
pub struct ScqRing {
    layout: Layout,
    threshold: CachePadded<AtomicI64>,
    tail: CachePadded<AtomicU64>,
    head: CachePadded<AtomicU64>,
    entries: Box<[AtomicU64]>,
}

impl std::fmt::Debug for ScqRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScqRing")
            .field("order", &self.layout.order())
            .field("capacity", &self.layout.capacity())
            .field("head", &self.head.load(SeqCst))
            .field("tail", &self.tail.load(SeqCst))
            .field("threshold", &self.threshold.load(SeqCst))
            .finish()
    }
}

impl ScqRing {
    /// Upper bound on `catchup` iterations.  `catchup` is purely a contention
    /// optimization (paper §3.2 "Bounding catchup"), so bounding it does not
    /// affect correctness and keeps every loop in the ring finite.
    const CATCHUP_BOUND: usize = 64;

    /// Creates an empty ring with usable capacity `2^order`.
    pub fn new(order: u32) -> Self {
        let layout = Layout::with_entry_size(order, 8);
        let entries = (0..layout.ring_size())
            .map(|_| AtomicU64::new(layout.init_entry()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Self {
            layout,
            threshold: CachePadded::new(AtomicI64::new(-1)),
            tail: CachePadded::new(AtomicU64::new(layout.init_counter())),
            head: CachePadded::new(AtomicU64::new(layout.init_counter())),
            entries,
        }
    }

    /// Creates a ring pre-filled with the indices `0..capacity` — the initial
    /// state of the `fq` free-index ring in the indirection scheme.
    pub fn new_full(order: u32) -> Self {
        let ring = Self::new(order);
        for i in 0..ring.layout.capacity() {
            ring.enqueue(i);
        }
        ring
    }

    /// The ring's geometry.
    #[inline]
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// Usable capacity (`2^order`).
    #[inline]
    pub fn capacity(&self) -> u64 {
        self.layout.capacity()
    }

    /// Current threshold value (exposed for tests and the empty-dequeue
    /// benchmark analysis).
    #[inline]
    pub fn threshold(&self) -> i64 {
        self.threshold.load(SeqCst)
    }

    /// Approximate number of stored values (`tail − head`, clamped).  Only a
    /// hint: concurrent operations may make it stale immediately.
    pub fn len_hint(&self) -> u64 {
        let t = self.tail.load(SeqCst);
        let h = self.head.load(SeqCst);
        t.saturating_sub(h)
    }

    /// `catchup` (Figure 3, lines 13–17): advance `Tail` to `Head` after a
    /// dequeuer overshot an empty ring, bounded per §3.2.
    fn catchup(&self, mut tail: u64, mut head: u64) {
        for _ in 0..Self::CATCHUP_BOUND {
            if self
                .tail
                .compare_exchange(tail, head, SeqCst, SeqCst)
                .is_ok()
            {
                return;
            }
            head = self.head.load(SeqCst);
            tail = self.tail.load(SeqCst);
            if tail >= head {
                return;
            }
        }
    }

    /// One enqueue attempt (`try_enq`, Figure 3 lines 18–29).  On failure
    /// returns the tail ticket that was consumed, which the caller (or wCQ's
    /// slow path) uses for the retry.
    pub fn try_enqueue(&self, index: u64) -> Result<(), u64> {
        let l = &self.layout;
        debug_assert!(index < l.capacity(), "index out of range");
        let t = self.tail.fetch_add(1, SeqCst);
        let j = l.slot(t);
        loop {
            let raw = self.entries[j].load(SeqCst);
            let e = l.unpack(raw);
            if e.cycle < l.cycle(t)
                && (e.is_safe || self.head.load(SeqCst) <= t)
                && l.is_reserved(e.index)
            {
                let new = l.pack(l.cycle(t), true, true, index);
                if self.entries[j]
                    .compare_exchange(raw, new, SeqCst, SeqCst)
                    .is_err()
                {
                    // The entry changed under us: re-evaluate (paper line 25).
                    continue;
                }
                if self.threshold.load(SeqCst) != l.max_threshold() {
                    self.threshold.store(l.max_threshold(), SeqCst);
                }
                return Ok(());
            }
            return Err(t);
        }
    }

    /// Enqueues `index`, retrying tickets until the insertion succeeds
    /// (`Enqueue_SCQ`).  The ring must not already hold `capacity()` values.
    pub fn enqueue(&self, index: u64) {
        while self.try_enqueue(index).is_err() {}
    }

    /// One dequeue attempt (`try_deq`, Figure 3 lines 30–52).
    pub fn try_dequeue(&self) -> ScqDequeue {
        let l = &self.layout;
        let h = self.head.fetch_add(1, SeqCst);
        let j = l.slot(h);
        loop {
            let raw = self.entries[j].load(SeqCst);
            let e = l.unpack(raw);
            if e.cycle == l.cycle(h) {
                // consume (Figure 3 lines 11–12): atomically mark ⊥c.
                self.entries[j].fetch_or(l.consume_mask(), SeqCst);
                return ScqDequeue::Value(e.index);
            }
            let new = if l.is_reserved(e.index) {
                // Reserve the slot for our (newer) cycle so a late enqueuer of
                // an older cycle cannot use it.
                l.pack(l.cycle(h), e.is_safe, true, l.bottom())
            } else {
                // The slot still holds an unconsumed value of an older cycle:
                // mark it unsafe rather than destroying it.
                l.pack(e.cycle, false, true, e.index)
            };
            if e.cycle < l.cycle(h)
                && self.entries[j]
                    .compare_exchange(raw, new, SeqCst, SeqCst)
                    .is_err()
            {
                continue;
            }
            // Empty detection.
            let t = self.tail.load(SeqCst);
            if t <= h + 1 {
                self.catchup(t, h + 1);
                self.threshold.fetch_sub(1, SeqCst);
                return ScqDequeue::Empty;
            }
            if self.threshold.fetch_sub(1, SeqCst) <= 0 {
                return ScqDequeue::Empty;
            }
            return ScqDequeue::Retry(h);
        }
    }

    /// Dequeues an index (`Dequeue_SCQ`): returns `None` when the ring is
    /// empty.
    pub fn dequeue(&self) -> Option<u64> {
        if self.threshold.load(SeqCst) < 0 {
            return None; // Fast empty check.
        }
        loop {
            match self.try_dequeue() {
                ScqDequeue::Value(v) => return Some(v),
                ScqDequeue::Empty => return None,
                ScqDequeue::Retry(_) => continue,
            }
        }
    }

    /// Bytes of memory occupied by the ring (entries + control words), used by
    /// the memory-usage benchmark (Figure 10a).
    pub fn memory_footprint(&self) -> usize {
        std::mem::size_of::<Self>() + self.entries.len() * std::mem::size_of::<AtomicU64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_ring_dequeues_none() {
        let r = ScqRing::new(3);
        assert_eq!(r.dequeue(), None);
        assert_eq!(r.dequeue(), None);
        assert_eq!(r.threshold(), -1);
    }

    #[test]
    fn fifo_order_single_thread() {
        let r = ScqRing::new(4);
        for i in 0..r.capacity() {
            r.enqueue(i);
        }
        for i in 0..r.capacity() {
            assert_eq!(r.dequeue(), Some(i));
        }
        assert_eq!(r.dequeue(), None);
    }

    #[test]
    fn new_full_contains_every_index_once() {
        let r = ScqRing::new(5);
        let mut seen = vec![false; r.capacity() as usize];
        while let Some(i) = r.dequeue() {
            assert!(!seen[i as usize], "index {i} duplicated");
            seen[i as usize] = true;
        }
        // An empty "full" ring was never constructed here; build one properly.
        let full = ScqRing::new_full(5);
        let mut seen = vec![false; full.capacity() as usize];
        for _ in 0..full.capacity() {
            let i = full.dequeue().expect("full ring must yield capacity items");
            assert!(!seen[i as usize]);
            seen[i as usize] = true;
        }
        assert!(seen.iter().all(|&b| b));
        assert_eq!(full.dequeue(), None);
    }

    #[test]
    fn wraparound_many_cycles() {
        let r = ScqRing::new(2); // capacity 4, so 100 ops wrap many cycles
        for round in 0..100u64 {
            r.enqueue(round % 4);
            assert_eq!(r.dequeue(), Some(round % 4));
        }
        assert_eq!(r.dequeue(), None);
    }

    #[test]
    fn alternating_partial_fill_preserves_fifo() {
        let r = ScqRing::new(3); // capacity 8
        let mut expected = std::collections::VecDeque::new();
        let mut next = 0u64;
        for step in 0..200 {
            if step % 3 != 0 && (expected.len() as u64) < r.capacity() {
                let v = next % r.capacity();
                next += 1;
                r.enqueue(v);
                expected.push_back(v);
            } else {
                assert_eq!(r.dequeue(), expected.pop_front());
            }
        }
        while let Some(v) = expected.pop_front() {
            assert_eq!(r.dequeue(), Some(v));
        }
        assert_eq!(r.dequeue(), None);
    }

    #[test]
    fn threshold_resets_on_enqueue_and_decays_on_empty_dequeues() {
        let r = ScqRing::new(3);
        r.enqueue(1);
        assert_eq!(r.threshold(), r.layout().max_threshold());
        assert_eq!(r.dequeue(), Some(1));
        // Repeated empty dequeues keep returning None without wrapping around
        // the ring forever (threshold mechanism).
        for _ in 0..100 {
            assert_eq!(r.dequeue(), None);
        }
    }

    #[test]
    fn mpmc_stress_no_loss_no_duplication() {
        use std::sync::atomic::{AtomicU64, Ordering};
        const PRODUCERS: usize = 3;
        const CONSUMERS: usize = 3;
        const PER_PRODUCER: u64 = 5_000;
        let r = ScqRing::new(6); // capacity 64 indices: values must stay < 64
        let produced = AtomicU64::new(0);
        let consumed_count = AtomicU64::new(0);
        let histogram: Vec<AtomicU64> = (0..64).map(|_| AtomicU64::new(0)).collect();

        std::thread::scope(|s| {
            for _ in 0..PRODUCERS {
                s.spawn(|| {
                    let mut sent = 0;
                    while sent < PER_PRODUCER {
                        let v = sent % 64;
                        // Respect the capacity discipline: only enqueue when
                        // the ring has room (len hint is conservative here
                        // because every producer checks before enqueuing).
                        if r.len_hint() < 48 {
                            r.enqueue(v);
                            produced.fetch_add(1, Ordering::Relaxed);
                            sent += 1;
                        } else {
                            std::thread::yield_now();
                        }
                    }
                });
            }
            for _ in 0..CONSUMERS {
                s.spawn(|| loop {
                    if consumed_count.load(Ordering::Relaxed) >= PRODUCERS as u64 * PER_PRODUCER {
                        break;
                    }
                    if let Some(v) = r.dequeue() {
                        histogram[v as usize].fetch_add(1, Ordering::Relaxed);
                        consumed_count.fetch_add(1, Ordering::Relaxed);
                    } else {
                        std::thread::yield_now();
                    }
                });
            }
        });

        let total: u64 = histogram.iter().map(|c| c.load(Ordering::Relaxed)).sum();
        assert_eq!(total, PRODUCERS as u64 * PER_PRODUCER);
        assert_eq!(r.dequeue(), None);
    }
}
