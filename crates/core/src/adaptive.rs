//! Contention-adaptive patience control for the wCQ fast path.
//!
//! The paper fixes `MAX_PATIENCE` statically (§6: 16 for enqueue, 64 for
//! dequeue) and notes the trade-off it embodies: spinning on the fast path a
//! little longer is far cheaper than entering the helping slow path, but only
//! while contention makes the extra attempts likely to succeed.  The right
//! bound therefore depends on runtime contention, which no static choice can
//! see.  This module closes that loop with a **handle-local** controller:
//!
//! * every ring operation reports how many fast-path attempts it burned and
//!   whether it exhausted its patience (both numbers the patience loop already
//!   computes — nothing new is measured);
//! * a [`PatienceController`] folds those reports into a windowed EWMA of
//!   *extra attempts per operation* and, once per `sample_every` operations,
//!   widens the patience bound under contention and shrinks it toward the
//!   configured minimum when failures are rare;
//! * a [`PatienceCell`] pairs one controller per ring direction and lives on
//!   the *handle*, so the hot path touches only unshared, non-atomic memory.
//!
//! ## Why handle-local (and not the shared `CounterSet`)
//!
//! The observability layer's counters are shared atomics — reading them on
//! the per-operation fast path would (a) serialize the very contention they
//! measure and (b) break the `NoopInstrument` zero-overhead contract, which
//! promises that un-instrumented queues execute *no* telemetry code at all.
//! The controller instead feeds on the patience loop's own iteration count:
//! a handful of register operations on memory only this thread owns, present
//! and identical whether or not a `CounterSet` is attached.  The shared
//! counters are only ever *written* (and only on the rare adjustment events,
//! via [`crate::metrics::Counter::PatienceRaised`] /
//! [`crate::metrics::Counter::PatienceLowered`]) — never read back.
//!
//! ## Wait-freedom is untouched
//!
//! The controller only moves the *entry threshold* of the slow path between
//! builder-set `[min, max]` clamps; the slow path itself remains reachable on
//! every operation (patience is always finite), so the paper's wait-freedom
//! argument carries over verbatim — the bound on fast-path attempts before
//! helping is `max` instead of a constant.

use core::cell::Cell;

use crate::wcq::WcqConfig;

/// Fixed-point scale of the contention EWMA: a level of `EWMA_ONE` means an
/// average of one *extra* (failed) fast-path attempt per ring operation.
pub const EWMA_ONE: u32 = 256;

/// EWMA level at or above which a window is judged contended and the patience
/// bound doubles (half an extra attempt per operation).
pub const RAISE_LEVEL: u32 = EWMA_ONE / 2;

/// EWMA level below which a window with no exhaustion is judged quiet and the
/// patience bound halves (one extra attempt per 16 operations).
pub const LOWER_LEVEL: u32 = EWMA_ONE / 16;

/// Contention level at which the blocking-enqueue spin phase is capped hard
/// (see [`PatienceCell::spin_cap`]).
pub const HIGH_CONTENTION: u32 = EWMA_ONE;

/// How the fast-path patience bound is chosen — the builder-facing knob
/// (`QueueBuilder::patience_mode`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PatienceMode {
    /// One static bound for both directions, exactly the paper's knob.
    Fixed(u32),
    /// Self-tuning bounds driven by the handle-local controller.
    Adaptive(AdaptivePatience),
}

/// Parameters of the adaptive patience controller.
///
/// The defaults clamp the bound to `[1, 256]` and re-evaluate every 64
/// operations — wide enough to cover both the uncontended case (bound rests
/// at the minimum) and heavy contention (bound grows past the paper's static
/// 16/64 when spinning keeps winning).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AdaptivePatience {
    /// Lower clamp of the patience bound (at least 1: the fast path is always
    /// attempted once).
    pub min: u32,
    /// Upper clamp of the patience bound.
    pub max: u32,
    /// Window length in ring operations between controller decisions.
    pub sample_every: u32,
}

impl Default for AdaptivePatience {
    fn default() -> Self {
        Self {
            min: 1,
            max: 256,
            sample_every: 64,
        }
    }
}

impl AdaptivePatience {
    /// Returns the parameters with degenerate values fixed up (`min >= 1`,
    /// `max >= min`, `sample_every >= 1`).
    fn normalized(self) -> Self {
        let min = self.min.max(1);
        Self {
            min,
            max: self.max.max(min),
            sample_every: self.sample_every.max(1),
        }
    }
}

/// A patience-bound adjustment the controller decided on at a window
/// boundary.  Surfaced so callers can tally the (rare) adjustment events into
/// the shared metrics counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Adjustment {
    /// The bound doubled (clamped to `max`): the window was contended.
    Raised,
    /// The bound halved (clamped to `min`): the window was quiet.
    Lowered,
}

/// The windowed-EWMA patience controller (one ring direction).
///
/// Plain `Copy` data — it lives inside a [`Cell`] on the owning handle and is
/// updated by read-modify-write of the whole struct, so the hot path needs no
/// atomics, no allocation and no sharing.  All arithmetic is integral and the
/// decision sequence is a pure function of the observation sequence, which is
/// what makes the unit tests below exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PatienceController {
    cfg: AdaptivePatience,
    patience: u32,
    /// Operations observed in the current window.
    ops: u32,
    /// Failed fast-path attempts accumulated in the current window.
    extra: u64,
    /// Patience exhaustions (slow-path entries) in the current window.
    exhausted: u32,
    /// Fixed-point EWMA of extra attempts per operation ([`EWMA_ONE`] = 1.0).
    ewma: u32,
}

impl PatienceController {
    /// Creates a controller clamped to `cfg`, starting at the minimum bound.
    pub fn new(cfg: AdaptivePatience) -> Self {
        let cfg = cfg.normalized();
        Self {
            cfg,
            patience: cfg.min,
            ops: 0,
            extra: 0,
            exhausted: 0,
            ewma: 0,
        }
    }

    /// A degenerate controller pinned to `bound` (the `Fixed` mode): the
    /// clamps coincide, so no window decision can ever move the patience —
    /// but the contention EWMA is still maintained, because the shard router
    /// and the backoff cap read it regardless of the patience mode.
    pub fn fixed(bound: u32) -> Self {
        Self::new(AdaptivePatience {
            min: bound,
            max: bound,
            ..AdaptivePatience::default()
        })
    }

    /// The current patience bound the fast path should use.
    #[inline]
    pub fn patience(&self) -> u32 {
        self.patience
    }

    /// The current contention EWMA (fixed point, [`EWMA_ONE`] = one extra
    /// attempt per operation).
    #[inline]
    pub fn ewma(&self) -> u32 {
        self.ewma
    }

    /// Records one completed ring operation that burned `extra_attempts`
    /// failed fast-path attempts (and whether it exhausted its patience), and
    /// — at window boundaries — re-evaluates the bound.  Returns the
    /// adjustment when the bound actually moved.
    #[inline]
    pub fn observe(&mut self, extra_attempts: u32, exhausted: bool) -> Option<Adjustment> {
        self.observe_batch(1, extra_attempts, exhausted)
    }

    /// Records `ops` completed ring operations at once — the batch entry
    /// points reserve a run of tickets with a single F&A, so the whole run is
    /// one observation: `extra_attempts` is the run's pooled retry tally and
    /// `exhausted` reports whether the run's fallback entered the slow path.
    ///
    /// Folding the run in one call keeps the decision sequence a pure
    /// function of the observation sequence (the window may overshoot
    /// `sample_every` by at most one run; the average divides by the true op
    /// count, so a long run cannot skew the EWMA).  `ops == 0` is a no-op.
    #[inline]
    pub fn observe_batch(
        &mut self,
        ops: u32,
        extra_attempts: u32,
        exhausted: bool,
    ) -> Option<Adjustment> {
        if ops == 0 {
            return None;
        }
        self.ops = self.ops.saturating_add(ops);
        self.extra += u64::from(extra_attempts);
        self.exhausted += u32::from(exhausted);
        if self.ops < self.cfg.sample_every {
            return None;
        }
        self.decide()
    }

    /// Window-boundary evaluation: fold the window into the EWMA, move the
    /// bound, reset the window.
    fn decide(&mut self) -> Option<Adjustment> {
        let avg = self.extra.saturating_mul(u64::from(EWMA_ONE)) / u64::from(self.ops.max(1));
        self.ewma = ((3 * u64::from(self.ewma) + avg) / 4).min(u64::from(u32::MAX)) as u32;
        let contended = self.exhausted > 0 || self.ewma >= RAISE_LEVEL;
        let quiet = self.exhausted == 0 && self.ewma < LOWER_LEVEL;
        self.ops = 0;
        self.extra = 0;
        self.exhausted = 0;
        let before = self.patience;
        if contended {
            self.patience = before.saturating_mul(2).clamp(self.cfg.min, self.cfg.max);
            (self.patience != before).then_some(Adjustment::Raised)
        } else if quiet {
            self.patience = (before / 2).clamp(self.cfg.min, self.cfg.max);
            (self.patience != before).then_some(Adjustment::Lowered)
        } else {
            None
        }
    }
}

/// The per-handle patience state: one controller per ring direction, behind
/// [`Cell`]s so the (deliberately `!Sync`) owning handle can update them
/// through a shared reference while the ring borrows it.
///
/// Safe without atomics because every handle type that owns a cell is
/// `!Send`: the cell is only ever touched from its registering thread.
#[derive(Debug)]
pub struct PatienceCell {
    enq: Cell<PatienceController>,
    deq: Cell<PatienceController>,
}

impl PatienceCell {
    /// Builds the cell a handle of a queue configured with `config` should
    /// carry: adaptive controllers when `config.adaptive_patience` is set,
    /// controllers pinned to the static bounds otherwise.
    pub fn from_config(config: &WcqConfig) -> Self {
        match config.adaptive_patience {
            Some(ap) => Self {
                enq: Cell::new(PatienceController::new(ap)),
                deq: Cell::new(PatienceController::new(ap)),
            },
            None => Self::fixed(config.max_patience_enqueue, config.max_patience_dequeue),
        }
    }

    /// A cell pinned to static bounds (no adjustments will ever fire).
    pub fn fixed(enqueue: u32, dequeue: u32) -> Self {
        Self {
            enq: Cell::new(PatienceController::fixed(enqueue)),
            deq: Cell::new(PatienceController::fixed(dequeue)),
        }
    }

    /// The current enqueue-side patience bound.
    #[inline]
    pub fn enqueue_patience(&self) -> u32 {
        self.enq.get().patience()
    }

    /// The current dequeue-side patience bound.
    #[inline]
    pub fn dequeue_patience(&self) -> u32 {
        self.deq.get().patience()
    }

    /// Reports one ring enqueue to the enqueue-side controller.
    #[inline]
    pub fn observe_enqueue(&self, extra_attempts: u32, exhausted: bool) -> Option<Adjustment> {
        let mut c = self.enq.get();
        let adj = c.observe(extra_attempts, exhausted);
        self.enq.set(c);
        adj
    }

    /// Reports one ring dequeue to the dequeue-side controller.
    #[inline]
    pub fn observe_dequeue(&self, extra_attempts: u32, exhausted: bool) -> Option<Adjustment> {
        let mut c = self.deq.get();
        let adj = c.observe(extra_attempts, exhausted);
        self.deq.set(c);
        adj
    }

    /// Reports a batch-reserved run of `ops` ring enqueues (pooled retry
    /// tally) to the enqueue-side controller.
    #[inline]
    pub fn observe_enqueue_batch(
        &self,
        ops: u32,
        extra_attempts: u32,
        exhausted: bool,
    ) -> Option<Adjustment> {
        let mut c = self.enq.get();
        let adj = c.observe_batch(ops, extra_attempts, exhausted);
        self.enq.set(c);
        adj
    }

    /// Reports a batch-reserved run of `ops` ring dequeues (pooled retry
    /// tally) to the dequeue-side controller.
    #[inline]
    pub fn observe_dequeue_batch(
        &self,
        ops: u32,
        extra_attempts: u32,
        exhausted: bool,
    ) -> Option<Adjustment> {
        let mut c = self.deq.get();
        let adj = c.observe_batch(ops, extra_attempts, exhausted);
        self.deq.set(c);
        adj
    }

    /// The handle's current contention level: the larger of the two
    /// directions' EWMAs (fixed point, [`EWMA_ONE`] = one extra attempt per
    /// operation).  Maintained in every patience mode — the adaptive shard
    /// router and the blocking-enqueue backoff cap read it even when the
    /// patience bounds themselves are pinned.
    #[inline]
    pub fn contention_level(&self) -> u32 {
        self.enq.get().ewma().max(self.deq.get().ewma())
    }

    /// The spin-phase cap (a `Backoff` max shift) the blocking enqueue retry
    /// loop should run with: under heavy contention burning long spin bursts
    /// only steals cycles from the consumers that would drain the queue, so
    /// the cap drops and the loop reaches its yield phase sooner.  The
    /// mapping is monotone in the contention level.
    #[inline]
    pub fn spin_cap(&self) -> u32 {
        let level = self.contention_level();
        if level >= HIGH_CONTENTION {
            4
        } else if level >= RAISE_LEVEL {
            6
        } else {
            wcq_atomics::Backoff::MAX_SHIFT
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_controller_never_moves() {
        let mut c = PatienceController::fixed(16);
        assert_eq!(c.patience(), 16);
        // 10 windows of maximal pressure: every op fails 8 attempts and
        // exhausts.  The clamps coincide, so nothing can move.
        for _ in 0..10 * 64 {
            assert_eq!(c.observe(8, true), None);
        }
        assert_eq!(c.patience(), 16);
        assert!(c.ewma() > 0, "the contention EWMA still tracks pressure");
    }

    #[test]
    fn contended_windows_double_the_bound_up_to_max() {
        let cfg = AdaptivePatience {
            min: 1,
            max: 16,
            sample_every: 4,
        };
        let mut c = PatienceController::new(cfg);
        assert_eq!(c.patience(), 1, "adaptive starts at the minimum");
        // Exact trajectory: each 4-op window with an exhaustion doubles the
        // bound — 1 → 2 → 4 → 8 → 16, then the max clamp holds.
        let mut trajectory = Vec::new();
        for _ in 0..6 {
            let mut last = None;
            for _ in 0..4 {
                last = c.observe(1, true);
            }
            trajectory.push((last, c.patience()));
        }
        assert_eq!(
            trajectory,
            vec![
                (Some(Adjustment::Raised), 2),
                (Some(Adjustment::Raised), 4),
                (Some(Adjustment::Raised), 8),
                (Some(Adjustment::Raised), 16),
                (None, 16), // clamped: no adjustment event at the ceiling
                (None, 16),
            ]
        );
    }

    #[test]
    fn quiet_windows_halve_the_bound_down_to_min() {
        let cfg = AdaptivePatience {
            min: 2,
            max: 64,
            sample_every: 2,
        };
        let mut c = PatienceController::new(cfg);
        // Pump the bound up to the ceiling first.
        for _ in 0..5 * 2 {
            c.observe(4, true);
        }
        assert_eq!(c.patience(), 64);
        // The EWMA decays geometrically; once it crosses LOWER_LEVEL the
        // quiet windows halve the bound until the floor.
        let mut seen_floor = false;
        for _ in 0..40 {
            for _ in 0..2 {
                c.observe(0, false);
            }
            assert!(c.patience() >= 2);
            seen_floor |= c.patience() == 2;
        }
        assert!(seen_floor, "quiet traffic must walk the bound back to min");
        assert_eq!(c.patience(), 2);
        assert!(c.ewma() < LOWER_LEVEL);
    }

    #[test]
    fn ewma_trajectory_is_exact() {
        let cfg = AdaptivePatience {
            min: 1,
            max: 8,
            sample_every: 4,
        };
        let mut c = PatienceController::new(cfg);
        // Window of 4 ops, 2 extra attempts each: avg = 2*256 = 512.
        for _ in 0..4 {
            c.observe(2, false);
        }
        assert_eq!(c.ewma(), 512 / 4); // (3*0 + 512)/4 = 128
        for _ in 0..4 {
            c.observe(2, false);
        }
        assert_eq!(c.ewma(), (3 * 128 + 512) / 4); // 224
                                                   // Two quiet windows decay it: 224*3/4 = 168, then 126.
        for _ in 0..4 {
            c.observe(0, false);
        }
        assert_eq!(c.ewma(), 168);
        for _ in 0..4 {
            c.observe(0, false);
        }
        assert_eq!(c.ewma(), 126);
    }

    #[test]
    fn exhaustion_raises_even_when_the_ewma_is_low() {
        let cfg = AdaptivePatience {
            min: 1,
            max: 8,
            sample_every: 8,
        };
        let mut c = PatienceController::new(cfg);
        // Seven clean ops, then a single exhaustion: slow-path entries are
        // expensive enough that one per window forces a raise regardless of
        // the average.
        for _ in 0..7 {
            assert_eq!(c.observe(0, false), None);
        }
        assert_eq!(c.observe(1, true), Some(Adjustment::Raised));
        assert_eq!(c.patience(), 2);
    }

    #[test]
    fn cell_routes_directions_independently() {
        let cfg = WcqConfig {
            adaptive_patience: Some(AdaptivePatience {
                min: 1,
                max: 32,
                sample_every: 2,
            }),
            ..WcqConfig::default()
        };
        let cell = PatienceCell::from_config(&cfg);
        assert_eq!(cell.enqueue_patience(), 1);
        assert_eq!(cell.dequeue_patience(), 1);
        // Pressure only on the enqueue side.
        for _ in 0..4 {
            cell.observe_enqueue(2, true);
            cell.observe_dequeue(0, false);
        }
        assert!(cell.enqueue_patience() > 1);
        assert_eq!(cell.dequeue_patience(), 1);
    }

    #[test]
    fn fixed_cell_reports_contention_but_keeps_static_bounds() {
        let cell = PatienceCell::fixed(16, 64);
        assert_eq!(cell.enqueue_patience(), 16);
        assert_eq!(cell.dequeue_patience(), 64);
        assert_eq!(cell.contention_level(), 0);
        assert_eq!(cell.spin_cap(), wcq_atomics::Backoff::MAX_SHIFT);
        for _ in 0..256 {
            cell.observe_enqueue(4, false);
        }
        assert_eq!(cell.enqueue_patience(), 16, "fixed bounds never move");
        assert!(cell.contention_level() >= HIGH_CONTENTION);
        assert_eq!(cell.spin_cap(), 4, "heavy contention caps the spin phase");
    }

    #[test]
    fn spin_cap_is_monotone_in_contention() {
        let quiet = PatienceCell::fixed(16, 64);
        let busy = PatienceCell::fixed(16, 64);
        // Four default windows: enough for the EWMA (64, 112, 148, 175 at one
        // extra attempt per op) to cross `RAISE_LEVEL`.
        for _ in 0..256 {
            quiet.observe_enqueue(0, false);
            busy.observe_enqueue(1, false);
        }
        assert!(busy.spin_cap() <= quiet.spin_cap());
        assert!(busy.spin_cap() < wcq_atomics::Backoff::MAX_SHIFT);
    }

    #[test]
    fn batch_observation_matches_singles_with_the_same_totals() {
        let cfg = AdaptivePatience {
            min: 1,
            max: 32,
            sample_every: 8,
        };
        let mut singles = PatienceController::new(cfg);
        let mut batched = PatienceController::new(cfg);
        // A window delivered as 8 single ops of 1 extra attempt vs one run of
        // 8 ops pooling 8 extra attempts: same totals, same decision, same
        // EWMA afterwards.
        let mut last = None;
        for _ in 0..8 {
            last = singles.observe(1, false);
        }
        let batch = batched.observe_batch(8, 8, false);
        assert_eq!(batch, last);
        assert_eq!(batched.ewma(), singles.ewma());
        assert_eq!(batched.patience(), singles.patience());
    }

    #[test]
    fn oversized_batch_decides_once_and_divides_by_true_ops() {
        let cfg = AdaptivePatience {
            min: 1,
            max: 32,
            sample_every: 4,
        };
        let mut c = PatienceController::new(cfg);
        // One run of 16 ops with 32 pooled extras overshoots the 4-op window
        // but folds as avg = 32*256/16 = 512 — the per-op rate, not the
        // pooled total — so the EWMA lands exactly at RAISE_LEVEL.
        assert_eq!(c.observe_batch(16, 32, false), Some(Adjustment::Raised));
        assert_eq!(c.ewma(), 512 / 4);
        assert_eq!(c.patience(), 2);
        // The window reset: the overshoot does not leak into the next one.
        assert_eq!(c.observe(0, false), None);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let cfg = AdaptivePatience {
            min: 1,
            max: 32,
            sample_every: 1,
        };
        let mut c = PatienceController::new(cfg);
        // sample_every = 1 means any real op decides immediately; ops == 0
        // must not (there is nothing to average over).
        assert_eq!(c.observe_batch(0, 0, false), None);
        assert_eq!(c.ewma(), 0);
        assert_eq!(c.observe_batch(0, 5, true), None, "tallies need an op");
        assert_eq!(c.ewma(), 0);
    }

    #[test]
    fn cell_batch_wrappers_route_directions_independently() {
        let cell = PatienceCell::from_config(&WcqConfig {
            adaptive_patience: Some(AdaptivePatience {
                min: 1,
                max: 32,
                sample_every: 4,
            }),
            ..WcqConfig::default()
        });
        assert_eq!(
            cell.observe_enqueue_batch(4, 8, false),
            Some(Adjustment::Raised)
        );
        assert!(cell.enqueue_patience() > 1);
        assert_eq!(cell.dequeue_patience(), 1);
        assert_eq!(
            cell.observe_dequeue_batch(4, 8, false),
            Some(Adjustment::Raised)
        );
        assert!(cell.dequeue_patience() > 1);
    }

    #[test]
    fn degenerate_parameters_are_normalized() {
        let c = PatienceController::new(AdaptivePatience {
            min: 0,
            max: 0,
            sample_every: 0,
        });
        assert_eq!(c.patience(), 1, "min clamps to 1");
        let mut c = c;
        // sample_every clamps to 1: every op is its own window.
        assert_eq!(c.observe(0, true), None, "max clamps to min: cannot move");
        assert_eq!(c.patience(), 1);
    }
}
