//! The one queue abstraction every implementation in this workspace speaks.
//!
//! The paper's whole design is mediated by per-thread state (one record per
//! registered thread — Theorem 5.8 counts them), and every queue in the
//! evaluation follows the same usage model: *register, operate through a
//! handle, drop to release*.  This module makes that model a first-class,
//! object-safe trait pair so applications, the benchmark harness and the
//! integration tests all drive every queue — wCQ, wLSCQ and the six §6
//! baselines — through one facade:
//!
//! * [`WaitFreeQueue`] — a queue instance threads can acquire handles from;
//! * [`QueueHandle`] — a per-thread, RAII handle: acquiring it registers the
//!   thread (occupying a record slot where the algorithm needs one), dropping
//!   it releases the slot for another thread.
//!
//! Both traits are object safe, so heterogeneous code (the harness's
//! `make_queue`, a queue-per-config registry, …) can hold
//! `Box<dyn WaitFreeQueue<u64>>` and `Box<dyn QueueHandle<u64>>` without
//! caring which algorithm sits behind them.
//!
//! # Example
//!
//! Drive the paper's wCQ through the trait — any other implementor could be
//! substituted without touching the worker code:
//!
//! ```
//! use wcq_core::api::{QueueHandle, WaitFreeQueue};
//! use wcq_core::wcq::WcqQueue;
//!
//! fn pump(queue: &dyn WaitFreeQueue<u64>, items: u64) -> u64 {
//!     // `handle()` registers the calling thread (RAII: the slot is released
//!     // when the handle drops at the end of this scope).
//!     let mut h = queue.handle();
//!     for i in 0..items {
//!         h.enqueue(i); // retries internally while a bounded queue is full
//!     }
//!     let mut sum = 0;
//!     while let Some(v) = h.dequeue() {
//!         sum += v;
//!     }
//!     sum
//! }
//!
//! let queue: WcqQueue<u64> = WcqQueue::new(6, 4);
//! assert_eq!(pump(&queue, 10), 45);
//! ```
//!
//! Constructing queues goes through the `wcq` umbrella crate's
//! `QueueBuilder` (`wcq::builder()`), which replaces the per-crate
//! constructor zoo; this module only defines the operational surface.

use crate::scq::ScqQueue;
use crate::wcq::{CellFamily, LlscFamily, WcqQueue, WcqQueueHandle};

/// A per-thread, RAII handle to a [`WaitFreeQueue`].
///
/// A handle is obtained from [`WaitFreeQueue::handle`] /
/// [`WaitFreeQueue::try_handle`]; for registration-based queues it owns one
/// thread-record slot for its lifetime and releases it on drop.  Handles are
/// intentionally **not** [`Send`] for the registration-based queues: the
/// facade memoizes the thread → record-slot binding thread-locally, and the
/// unbounded queue's handle additionally pins its last-touched segment.
pub trait QueueHandle<T> {
    /// Attempts to enqueue `value` without waiting; a bounded queue that is
    /// full returns the value back in `Err`.  Unbounded implementations never
    /// fail.
    fn try_enqueue(&mut self, value: T) -> Result<(), T>;

    /// Dequeues a value, or `None` when the queue was observed empty.
    fn dequeue(&mut self) -> Option<T>;

    /// Enqueues `value`, retrying while a bounded queue is momentarily full:
    /// bounded-exponential spinning first (a full queue usually drains within
    /// a few hundred cycles under a live consumer), a scheduler yield per
    /// attempt once the spin cap is reached (so a descheduled consumer gets
    /// the CPU).  This is the blocking-ish convenience the workloads use;
    /// latency-sensitive callers should prefer [`QueueHandle::try_enqueue`]
    /// and their own backpressure policy.
    ///
    /// The spin phase is bounded by [`QueueHandle::spin_cap_hint`], so
    /// contention-aware handles reach the yield phase sooner when long spin
    /// bursts would only steal cycles from the consumers draining the queue.
    /// Each retry still passes through `Backoff::snooze_or_yield`'s
    /// `wcq-check` checkpoint seam regardless of the cap — the scheduler sees
    /// every wait iteration, capped or not, so schedule exploration is
    /// unaffected by the adaptive signal.
    fn enqueue(&mut self, value: T) {
        let mut item = value;
        let mut backoff = wcq_atomics::Backoff::with_max_shift(self.spin_cap_hint());
        while let Err(back) = self.try_enqueue(item) {
            item = back;
            backoff.snooze_or_yield();
        }
    }

    /// The spin-phase cap (a [`wcq_atomics::Backoff`] max shift) the blocking
    /// [`QueueHandle::enqueue`] retry loop should run with.  The default is
    /// the full [`wcq_atomics::Backoff::MAX_SHIFT`] (the historical
    /// behaviour); handles with a handle-local contention estimate override
    /// it to yield sooner under pressure.  Hint only — any value is safe, the
    /// backoff clamps it.
    fn spin_cap_hint(&self) -> u32 {
        wcq_atomics::Backoff::MAX_SHIFT
    }

    /// Enqueues a batch: accepts a prefix of `values` (removed from the
    /// front, in order) and returns the number accepted; the unaccepted
    /// remainder is left in `values`.
    ///
    /// **Partial-success contract.** A return value smaller than
    /// `values.len()` means the queue was full or a concurrent operation
    /// raced the batch reservation — both transient; callers that need the
    /// whole batch in retry the remainder (as [`QueueHandle::enqueue`] does
    /// per element).  A partial batch never reorders: the accepted prefix is
    /// enqueued in `values` order.
    ///
    /// **FIFO guarantee scope.** The batch preserves exactly the underlying
    /// queue's ordering guarantee — for FIFO queues, elements of one batch
    /// dequeue in batch order and batches from one handle dequeue in call
    /// order (per-producer FIFO); no ordering is added *across* concurrent
    /// producers, and a sharded backend keeps per-producer FIFO only under
    /// pinned routing, batch or not.
    ///
    /// The default walks [`QueueHandle::try_enqueue`]; implementations with
    /// a cheaper bulk path (one ticket-run reservation per batch, one
    /// segment bind per batch, one shard pick per batch) override it.
    fn enqueue_many(&mut self, values: &mut Vec<T>) -> usize {
        let mut rest = std::mem::take(values).into_iter();
        let mut accepted = 0;
        for value in rest.by_ref() {
            match self.try_enqueue(value) {
                Ok(()) => accepted += 1,
                Err(back) => {
                    values.push(back);
                    values.extend(rest);
                    break;
                }
            }
        }
        accepted
    }

    /// Dequeues a batch: appends up to `max` values to `out` and returns the
    /// number appended.  Like a single [`QueueHandle::dequeue`] returning
    /// `None`, a short batch is a *racy* emptiness observation — elements
    /// may remain (or arrive) concurrently; callers poll again.  Appended
    /// values follow the underlying queue's dequeue order.
    ///
    /// The default loops [`QueueHandle::dequeue`]; bulk implementations
    /// override it to reserve the whole run at once.
    fn dequeue_into(&mut self, out: &mut Vec<T>, max: usize) -> usize {
        let mut got = 0;
        while got < max {
            match self.dequeue() {
                Some(value) => {
                    out.push(value);
                    got += 1;
                }
                None => break,
            }
        }
        got
    }
}

/// A concurrent MPMC FIFO queue that threads operate on through registered
/// [`QueueHandle`]s.
///
/// The trait is object safe; `&dyn WaitFreeQueue<u64>` is the uniform type
/// the benchmark harness drives every algorithm of the paper through.
/// Progress guarantees differ per implementor (wCQ is wait-free, MSQueue is
/// lock-free, CCQueue is blocking) — the trait only fixes the usage model.
pub trait WaitFreeQueue<T>: Send + Sync {
    /// Display name matching the paper's figure legends (e.g. `"wCQ"`).
    fn name(&self) -> &'static str;

    /// Registers the calling thread and returns its handle, or `None` when
    /// all [`WaitFreeQueue::max_threads`] registration slots are taken.
    fn try_handle(&self) -> Option<Box<dyn QueueHandle<T> + '_>>;

    /// Registers the calling thread and returns its handle.
    ///
    /// # Panics
    /// Panics when all registration slots are taken; size `max_threads` for
    /// the peak number of concurrently registered threads, or use
    /// [`WaitFreeQueue::try_handle`] to handle exhaustion gracefully.
    fn handle(&self) -> Box<dyn QueueHandle<T> + '_> {
        self.try_handle().unwrap_or_else(|| {
            panic!(
                "all {} registration slots of this {} queue are in use",
                self.max_threads(),
                self.name()
            )
        })
    }

    /// Maximum number of simultaneously registered threads
    /// (`usize::MAX` for queues that need no registration).
    fn max_threads(&self) -> usize;

    /// Bytes of memory attributable to the queue itself — static structures
    /// plus any growth statistics the implementation tracks (Figure 10a).
    fn memory_footprint(&self) -> usize;

    /// Cheap, racy emptiness hint: `true` when the queue *looked* empty at
    /// some recent instant, `false` when it held elements or the
    /// implementation keeps no counter to tell (the conservative default).
    ///
    /// The hint is advisory only — schedulers and routers use it to order
    /// their polling, never to decide correctness: a `true` can race with a
    /// concurrent enqueue, and a `false` with the final dequeue.  The only
    /// authoritative emptiness observation remains a [`QueueHandle::dequeue`]
    /// that returns `None`.
    ///
    /// Callers that change behaviour on the hint (e.g. an async receiver
    /// deciding whether to spin before parking) must first check
    /// [`WaitFreeQueue::has_empty_hint`]: for a backend without a real hint,
    /// the constant `false` here means "don't know", **not** "non-empty".
    fn is_empty_hint(&self) -> bool {
        false
    }

    /// Whether [`WaitFreeQueue::is_empty_hint`] is backed by a real
    /// observation of this queue's state.  The default is `false`: a backend
    /// that does not override the hint returns a constant `false` from it,
    /// and treating that constant as "non-empty" would make pollers spin
    /// forever (see the async receiver's park path).  Every queue in this
    /// workspace overrides both methods; the default exists for third-party
    /// implementors.
    fn has_empty_hint(&self) -> bool {
        false
    }
}

// --------------------------------------------------------------------------
// Thread-local tid memo
// --------------------------------------------------------------------------

/// The facade's thread → record-slot memo.
///
/// Registration-based queues probe for a free record slot; under handle churn
/// (register, drop, register again — the common pattern when short-lived
/// workers attach to a long-lived queue) a plain scan is O(`max_threads`) per
/// registration.  The memo remembers, per *thread*, the slot index it last
/// held on a given queue; `register` retries that exact slot first with a
/// single CAS, making re-entry O(1).  Entries are hints only: a stale entry
/// (slot since taken by another thread, or the queue freed and its address
/// reused) simply misses and the caller falls back to the hinted scan.
pub mod tid_memo {
    use core::cell::RefCell;

    /// Remembered `(queue address, tid)` pairs per thread, most recent first.
    const MEMO_SLOTS: usize = 16;

    thread_local! {
        static MEMO: RefCell<[(usize, usize); MEMO_SLOTS]> =
            const { RefCell::new([(0, 0); MEMO_SLOTS]) };
    }

    /// Returns the record slot this thread last held on the queue identified
    /// by `queue_addr` (use the queue's address: `queue as *const _ as usize`).
    pub fn recall(queue_addr: usize) -> Option<usize> {
        if queue_addr == 0 {
            return None;
        }
        MEMO.with(|memo| {
            let memo = memo.borrow();
            memo.iter()
                .find(|(addr, _)| *addr == queue_addr)
                .map(|&(_, tid)| tid)
        })
    }

    /// Records that this thread holds record slot `tid` on the queue at
    /// `queue_addr`, displacing the least recently used entry when full.
    pub fn remember(queue_addr: usize, tid: usize) {
        if queue_addr == 0 {
            return;
        }
        MEMO.with(|memo| {
            let mut memo = memo.borrow_mut();
            // Move-to-front update; the array is tiny, so a rotate is cheap.
            let upto = memo
                .iter()
                .position(|(addr, _)| *addr == queue_addr)
                .unwrap_or(MEMO_SLOTS - 1);
            memo[..=upto].rotate_right(1);
            memo[0] = (queue_addr, tid);
        })
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn recall_returns_last_remembered_tid() {
            remember(0x1000, 3);
            remember(0x2000, 5);
            assert_eq!(recall(0x1000), Some(3));
            assert_eq!(recall(0x2000), Some(5));
            remember(0x1000, 7);
            assert_eq!(recall(0x1000), Some(7));
            assert_eq!(recall(0x3000), None);
        }

        #[test]
        fn memo_is_bounded_and_evicts_lru() {
            for i in 0..MEMO_SLOTS + 4 {
                remember(0x9000 + i, i);
            }
            // The oldest entries fell out; the newest survive.
            assert_eq!(recall(0x9000), None);
            assert_eq!(recall(0x9000 + MEMO_SLOTS + 3), Some(MEMO_SLOTS + 3));
        }

        #[test]
        fn zero_address_is_ignored() {
            remember(0, 9);
            assert_eq!(recall(0), None);
        }
    }
}

// --------------------------------------------------------------------------
// Trait impls for this crate's queues
// --------------------------------------------------------------------------

impl<T: Send, F: CellFamily> QueueHandle<T> for WcqQueueHandle<'_, T, F> {
    fn try_enqueue(&mut self, value: T) -> Result<(), T> {
        WcqQueueHandle::enqueue(self, value)
    }
    fn dequeue(&mut self) -> Option<T> {
        WcqQueueHandle::dequeue(self)
    }
    fn enqueue_many(&mut self, values: &mut Vec<T>) -> usize {
        WcqQueueHandle::enqueue_many(self, values)
    }
    fn dequeue_into(&mut self, out: &mut Vec<T>, max: usize) -> usize {
        WcqQueueHandle::dequeue_many(self, out, max)
    }
    fn spin_cap_hint(&self) -> u32 {
        self.pace().spin_cap()
    }
}

impl<T: Send, F: CellFamily> WaitFreeQueue<T> for WcqQueue<T, F> {
    fn name(&self) -> &'static str {
        if F::NAME == LlscFamily::NAME {
            "wCQ (LL/SC)"
        } else {
            "wCQ"
        }
    }
    fn try_handle(&self) -> Option<Box<dyn QueueHandle<T> + '_>> {
        self.register().map(|h| Box::new(h) as _)
    }
    fn max_threads(&self) -> usize {
        WcqQueue::max_threads(self)
    }
    fn memory_footprint(&self) -> usize {
        WcqQueue::memory_footprint(self)
    }
    fn is_empty_hint(&self) -> bool {
        // The data ring's tail−head distance.  Slow-path retries can inflate
        // it (a non-empty reading for an empty queue — the conservative
        // direction), so it is a scheduling hint, not a drain oracle like the
        // unbounded kinds' maintained counters.
        WcqQueue::is_empty_hint(self)
    }
    fn has_empty_hint(&self) -> bool {
        true
    }
}

impl<T: Send> QueueHandle<T> for &ScqQueue<T> {
    fn try_enqueue(&mut self, value: T) -> Result<(), T> {
        ScqQueue::enqueue(self, value)
    }
    fn dequeue(&mut self) -> Option<T> {
        ScqQueue::dequeue(self)
    }
}

impl<T: Send> WaitFreeQueue<T> for ScqQueue<T> {
    fn name(&self) -> &'static str {
        "SCQ"
    }
    fn try_handle(&self) -> Option<Box<dyn QueueHandle<T> + '_>> {
        // SCQ keeps no per-thread records; a "handle" is just shared access.
        Some(Box::new(self))
    }
    fn max_threads(&self) -> usize {
        usize::MAX
    }
    fn memory_footprint(&self) -> usize {
        ScqQueue::memory_footprint(self)
    }
    fn is_empty_hint(&self) -> bool {
        // Same caveat as wCQ's: retries inflate tail−head, so `false` can be
        // stale but `true` means a recent genuinely-empty observation.
        ScqQueue::is_empty_hint(self)
    }
    fn has_empty_hint(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wcq_round_trips_through_the_trait() {
        let q: WcqQueue<u64> = WcqQueue::new(4, 2);
        let dynq: &dyn WaitFreeQueue<u64> = &q;
        let mut h = dynq.handle();
        h.enqueue(1);
        assert_eq!(h.try_enqueue(2), Ok(()));
        assert_eq!(h.dequeue(), Some(1));
        assert_eq!(h.dequeue(), Some(2));
        assert_eq!(h.dequeue(), None);
        assert_eq!(dynq.name(), "wCQ");
        assert!(dynq.memory_footprint() > 0);
    }

    #[test]
    fn batch_defaults_and_overrides_agree_through_the_trait() {
        // The wCQ handle overrides the batch methods (ticket-run
        // reservation); SCQ's shared-access handle uses the trait defaults.
        // Both must show identical prefix-acceptance semantics.
        let wcq: WcqQueue<u64> = WcqQueue::new(2, 1); // capacity 4
        let scq: ScqQueue<u64> = ScqQueue::new(2); // capacity 4
        for dynq in [
            &wcq as &dyn WaitFreeQueue<u64>,
            &scq as &dyn WaitFreeQueue<u64>,
        ] {
            let mut h = dynq.handle();
            let mut batch: Vec<u64> = (0..6).collect();
            let accepted = h.enqueue_many(&mut batch);
            assert_eq!(accepted, 4, "{}", dynq.name());
            assert_eq!(batch, vec![4, 5], "{}", dynq.name());
            let mut out = Vec::new();
            assert_eq!(h.dequeue_into(&mut out, 10), 4, "{}", dynq.name());
            assert_eq!(out, vec![0, 1, 2, 3], "{}", dynq.name());
            assert_eq!(h.dequeue_into(&mut out, 1), 0, "{}", dynq.name());
        }
    }

    #[test]
    fn hint_presence_is_reported_per_backend() {
        let q: WcqQueue<u64> = WcqQueue::new(4, 2);
        let dynq: &dyn WaitFreeQueue<u64> = &q;
        assert!(dynq.has_empty_hint());
        assert!(dynq.is_empty_hint());
        let scq: ScqQueue<u64> = ScqQueue::new(4);
        assert!((&scq as &dyn WaitFreeQueue<u64>).has_empty_hint());
    }

    #[test]
    fn wcq_try_enqueue_reports_full_through_the_trait() {
        let q: WcqQueue<u64> = WcqQueue::new(1, 1); // capacity 2
        let mut h = q.handle();
        assert_eq!(h.try_enqueue(1), Ok(()));
        assert_eq!(h.try_enqueue(2), Ok(()));
        assert_eq!(h.try_enqueue(3), Err(3));
    }

    #[test]
    fn trait_handles_are_raii_registrations() {
        let q: WcqQueue<u64> = WcqQueue::new(4, 1);
        let dynq: &dyn WaitFreeQueue<u64> = &q;
        let h = dynq.try_handle().expect("one slot free");
        assert!(dynq.try_handle().is_none(), "max_threads = 1");
        drop(h);
        assert!(dynq.try_handle().is_some(), "drop released the slot");
    }

    #[test]
    fn scq_is_unregistered_through_the_trait() {
        let q: ScqQueue<u64> = ScqQueue::new(4);
        let dynq: &dyn WaitFreeQueue<u64> = &q;
        assert_eq!(dynq.max_threads(), usize::MAX);
        let mut a = dynq.handle();
        let mut b = dynq.handle();
        a.enqueue(7);
        assert_eq!(b.dequeue(), Some(7));
    }

    #[test]
    fn llsc_wcq_reports_its_legend_name() {
        wcq_atomics::llsc::set_spurious_failure_rate(0.0);
        let q: WcqQueue<u64, LlscFamily> = WcqQueue::new(4, 1);
        let dynq: &dyn WaitFreeQueue<u64> = &q;
        assert_eq!(dynq.name(), "wCQ (LL/SC)");
    }
}
