//! Bit-level layout shared by SCQ and wCQ: entry packing and `Cache_Remap`.
//!
//! Both queues index a physical array of `2n` entries, where `n = 2^order` is
//! the usable capacity (the paper doubles the physical capacity to retain
//! lock-freedom, §2 "Finite SCQ").  Every entry `Value` packs four fields into
//! one 64-bit word:
//!
//! ```text
//!  63                      idx_bits+2  idx_bits+1  idx_bits   idx_bits-1      0
//!  +--------------------------+-----------+-----------+----------------------+
//!  |          Cycle           |  IsSafe   |    Enq    |        Index         |
//!  +--------------------------+-----------+-----------+----------------------+
//! ```
//!
//! with `idx_bits = order + 1`, so an `Index` can address all `2n` physical
//! positions plus the two reserved values `⊥ = 2n − 2` and `⊥c = 2n − 1`.
//! `⊥c` is all-ones in the index field, which lets `consume` replace an index
//! by `⊥c` with a single atomic `OR` (paper, §2 "SCQ Algorithm").  The `Enq`
//! bit is wCQ's two-step insertion flag (Figure 4); SCQ always keeps it set.
//!
//! [`Layout::remap`] implements `Cache_Remap`: a bit rotation that places
//! logically adjacent ring positions on different cache lines while remaining
//! a permutation of `0..2n`.

/// Queue geometry plus entry packing / unpacking helpers.
///
/// A `Layout` is defined by `order`: the usable capacity is `n = 2^order`
/// elements and the physical ring holds `2n` entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Layout {
    order: u32,
    /// log2 of the number of entries that share one 64-byte cache line.
    line_shift: u32,
}

/// A decoded entry value (the paper's `{Cycle, IsSafe, Enq, Index}` tuple).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Entry {
    /// Recycling cycle of the slot.
    pub cycle: u64,
    /// The paper's `IsSafe` bit: cleared by dequeuers that had to skip the
    /// slot while it still held an old-cycle value.
    pub is_safe: bool,
    /// wCQ's two-step insertion flag; `false` only while a slow-path enqueuer
    /// has produced the entry but the help request is not yet finalized.
    pub enq: bool,
    /// The stored index, or [`Layout::bottom`] / [`Layout::bottom_c`].
    pub index: u64,
}

impl Layout {
    /// Maximum supported order.  Cycle counters must fit in the bits above the
    /// index/flag fields and stay clear of the `FIN`/`INC` record bits.
    pub const MAX_ORDER: u32 = 31;

    /// Creates the layout for a queue of usable capacity `2^order` with
    /// 8-byte entries (SCQ).
    pub fn new(order: u32) -> Self {
        Self::with_entry_size(order, 8)
    }

    /// Creates the layout for a queue of usable capacity `2^order` whose
    /// physical entries are `entry_size` bytes (8 for SCQ, 16 for wCQ pairs).
    /// The entry size only affects the cache-remap stride.
    pub fn with_entry_size(order: u32, entry_size: usize) -> Self {
        assert!(order >= 1, "order must be at least 1 (capacity 2)");
        assert!(order <= Self::MAX_ORDER, "order too large");
        assert!(
            entry_size.is_power_of_two() && entry_size <= 64,
            "entry size must be a power of two no larger than a cache line"
        );
        let per_line = (64 / entry_size).max(1) as u32;
        Self {
            order,
            line_shift: per_line.trailing_zeros(),
        }
    }

    /// The configured order (`log2` of the usable capacity).
    #[inline]
    pub fn order(&self) -> u32 {
        self.order
    }

    /// Usable capacity `n = 2^order`.
    #[inline]
    pub fn capacity(&self) -> u64 {
        1 << self.order
    }

    /// Physical ring size `2n`.
    #[inline]
    pub fn ring_size(&self) -> u64 {
        2 * self.capacity()
    }

    /// Number of bits used by the index field (`order + 1`).
    #[inline]
    pub fn idx_bits(&self) -> u32 {
        self.order + 1
    }

    /// Bit mask of the index field.
    #[inline]
    pub fn idx_mask(&self) -> u64 {
        self.ring_size() - 1
    }

    /// The reserved `⊥` index ("slot empty, never consumed this cycle").
    #[inline]
    pub fn bottom(&self) -> u64 {
        self.ring_size() - 2
    }

    /// The reserved `⊥c` index ("slot consumed this cycle").
    #[inline]
    pub fn bottom_c(&self) -> u64 {
        self.ring_size() - 1
    }

    /// `true` if `index` is one of the two reserved values.
    #[inline]
    pub fn is_reserved(&self, index: u64) -> bool {
        index == self.bottom() || index == self.bottom_c()
    }

    /// The `Enq` flag bit position within a packed entry.
    #[inline]
    pub fn enq_bit(&self) -> u64 {
        1 << self.idx_bits()
    }

    /// The `IsSafe` flag bit position within a packed entry.
    #[inline]
    pub fn safe_bit(&self) -> u64 {
        1 << (self.idx_bits() + 1)
    }

    /// Number of low bits below the cycle field.
    #[inline]
    pub fn cycle_shift(&self) -> u32 {
        self.idx_bits() + 2
    }

    /// The maximum threshold value, `3n − 1` (paper §2: the last dequeuer can
    /// be `2n` slots behind the last inserted entry, plus `n − 1` earlier
    /// dequeuers).
    #[inline]
    pub fn max_threshold(&self) -> i64 {
        3 * self.capacity() as i64 - 1
    }

    /// The cycle of a raw head/tail counter value `t` (`t ÷ 2n`).
    #[inline]
    pub fn cycle(&self, t: u64) -> u64 {
        t >> self.idx_bits()
    }

    /// The ring position of a raw head/tail counter value `t` (`t mod 2n`),
    /// before cache remapping.
    #[inline]
    pub fn position(&self, t: u64) -> u64 {
        t & self.idx_mask()
    }

    /// `Cache_Remap`: permutes positions so adjacent logical positions land on
    /// different cache lines.  Implemented as a bit rotation of the
    /// `idx_bits()`-bit position by `line_shift` bits, which is a bijection on
    /// `0..2n`.
    #[inline]
    pub fn remap(&self, pos: u64) -> u64 {
        let bits = self.idx_bits();
        let shift = self.line_shift.min(bits);
        if shift == 0 || shift == bits {
            return pos & self.idx_mask();
        }
        let pos = pos & self.idx_mask();
        ((pos << shift) | (pos >> (bits - shift))) & self.idx_mask()
    }

    /// Convenience: the physical slot for raw counter `t`
    /// (`Cache_Remap(t mod 2n)`).
    #[inline]
    pub fn slot(&self, t: u64) -> usize {
        self.remap(self.position(t)) as usize
    }

    /// Packs an entry into its 64-bit representation.
    #[inline]
    pub fn pack(&self, cycle: u64, is_safe: bool, enq: bool, index: u64) -> u64 {
        debug_assert!(index <= self.idx_mask());
        (cycle << self.cycle_shift())
            | if is_safe { self.safe_bit() } else { 0 }
            | if enq { self.enq_bit() } else { 0 }
            | index
    }

    /// Unpacks a 64-bit entry value.
    #[inline]
    pub fn unpack(&self, raw: u64) -> Entry {
        Entry {
            cycle: raw >> self.cycle_shift(),
            is_safe: raw & self.safe_bit() != 0,
            enq: raw & self.enq_bit() != 0,
            index: raw & self.idx_mask(),
        }
    }

    /// The value every slot is initialized to: `{Cycle 0, IsSafe 1, Enq 1, ⊥}`.
    #[inline]
    pub fn init_entry(&self) -> u64 {
        self.pack(0, true, true, self.bottom())
    }

    /// The initial head/tail counter.  The paper starts at `2n` so the first
    /// cycle in use is 1, which lets `Note = 0` act as "no note yet".
    #[inline]
    pub fn init_counter(&self) -> u64 {
        self.ring_size()
    }

    /// The OR mask used by `consume`: sets `Enq` and turns the index into
    /// `⊥c` while leaving `Cycle`/`IsSafe` intact (Figure 5, line 3).
    #[inline]
    pub fn consume_mask(&self) -> u64 {
        self.enq_bit() | self.bottom_c()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::xorshift;

    #[test]
    fn geometry_matches_paper_definitions() {
        let l = Layout::new(4); // n = 16
        assert_eq!(l.capacity(), 16);
        assert_eq!(l.ring_size(), 32);
        assert_eq!(l.bottom(), 30);
        assert_eq!(l.bottom_c(), 31);
        assert_eq!(l.max_threshold(), 47); // 3n - 1
        assert_eq!(l.init_counter(), 32); // 2n
        assert_eq!(l.cycle(32), 1);
        assert_eq!(l.cycle(63), 1);
        assert_eq!(l.cycle(64), 2);
        assert_eq!(l.position(33), 1);
    }

    #[test]
    fn reserved_indices_do_not_collide_with_real_ones() {
        let l = Layout::new(6);
        for idx in 0..l.capacity() {
            assert!(!l.is_reserved(idx));
        }
        assert!(l.is_reserved(l.bottom()));
        assert!(l.is_reserved(l.bottom_c()));
    }

    #[test]
    fn pack_unpack_roundtrip_specific_values() {
        let l = Layout::new(8);
        let raw = l.pack(12345, true, false, 77);
        let e = l.unpack(raw);
        assert_eq!(e.cycle, 12345);
        assert!(e.is_safe);
        assert!(!e.enq);
        assert_eq!(e.index, 77);
    }

    #[test]
    fn consume_mask_sets_enq_and_bottom_c() {
        let l = Layout::new(5);
        let raw = l.pack(9, true, false, 3);
        let consumed = raw | l.consume_mask();
        let e = l.unpack(consumed);
        assert_eq!(e.cycle, 9);
        assert!(e.is_safe);
        assert!(e.enq);
        assert_eq!(e.index, l.bottom_c());
    }

    #[test]
    fn init_entry_is_cycle_zero_safe_bottom() {
        let l = Layout::new(3);
        let e = l.unpack(l.init_entry());
        assert_eq!(e.cycle, 0);
        assert!(e.is_safe);
        assert!(e.enq);
        assert_eq!(e.index, l.bottom());
    }

    #[test]
    fn remap_is_a_permutation_for_all_small_orders() {
        for order in 1..=10 {
            for entry_size in [8usize, 16] {
                let l = Layout::with_entry_size(order, entry_size);
                let mut seen = vec![false; l.ring_size() as usize];
                for pos in 0..l.ring_size() {
                    let r = l.remap(pos) as usize;
                    assert!(
                        !seen[r],
                        "order {order} size {entry_size}: collision at {pos}"
                    );
                    seen[r] = true;
                }
                assert!(seen.iter().all(|&b| b));
            }
        }
    }

    #[test]
    fn remap_spreads_adjacent_positions_across_cache_lines() {
        // With 8-byte entries, 8 entries share a line; adjacent logical
        // positions must land in different lines once the ring is big enough.
        let l = Layout::new(8);
        let line = |slot: u64| slot / 8;
        let mut same_line_pairs = 0;
        for pos in 0..l.ring_size() - 1 {
            if line(l.remap(pos)) == line(l.remap(pos + 1)) {
                same_line_pairs += 1;
            }
        }
        assert_eq!(same_line_pairs, 0);
    }

    #[test]
    fn randomized_pack_unpack_roundtrip_all_orders() {
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        for order in 1..=16u32 {
            let l = Layout::new(order);
            for _ in 0..500 {
                let cycle = xorshift(&mut state) % 1_000_000;
                let is_safe = xorshift(&mut state) & 1 == 0;
                let enq = xorshift(&mut state) & 1 == 0;
                let index = xorshift(&mut state) % l.ring_size();
                let e = l.unpack(l.pack(cycle, is_safe, enq, index));
                assert_eq!(e.cycle, cycle, "order {order}");
                assert_eq!(e.is_safe, is_safe, "order {order}");
                assert_eq!(e.enq, enq, "order {order}");
                assert_eq!(e.index, index, "order {order}");
            }
        }
    }

    #[test]
    fn roundtrip_at_boundary_values() {
        // Satellite coverage: cycle wraparound and maximal index values for
        // the smallest, a middle, and the largest supported order.
        for order in [1u32, 16, Layout::MAX_ORDER] {
            let l = Layout::new(order);
            // Largest cycle that still fits below the FIN/INC record bits used
            // by `localTail`/`localHead` (bit 62 is INC).
            let max_cycle = (1u64 << (62 - l.cycle_shift())) - 1;
            for cycle in [0, 1, max_cycle - 1, max_cycle] {
                for index in [0, 1, l.capacity() - 1, l.bottom(), l.bottom_c()] {
                    for (is_safe, enq) in
                        [(false, false), (true, false), (false, true), (true, true)]
                    {
                        let e = l.unpack(l.pack(cycle, is_safe, enq, index));
                        assert_eq!(
                            (e.cycle, e.is_safe, e.enq, e.index),
                            (cycle, is_safe, enq, index),
                            "order {order} cycle {cycle} index {index}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn cycle_wraparound_of_counters_is_consistent() {
        // Head/tail counters wrap modulo 2^64; cycle() and position() must
        // keep reconstructing the counter right up to the edge.
        for order in [1u32, 8, 20] {
            let l = Layout::new(order);
            for t in [
                0,
                l.ring_size() - 1,
                l.ring_size(),
                u64::MAX - l.ring_size(),
                u64::MAX - 1,
                u64::MAX,
            ] {
                assert_eq!(
                    l.cycle(t).wrapping_mul(l.ring_size()) + l.position(t),
                    t,
                    "order {order} t {t}"
                );
            }
        }
    }

    #[test]
    fn max_order_geometry_does_not_overflow() {
        let l = Layout::new(Layout::MAX_ORDER);
        assert_eq!(l.capacity(), 1 << 31);
        assert_eq!(l.ring_size(), 1 << 32);
        assert_eq!(l.bottom(), (1u64 << 32) - 2);
        assert_eq!(l.bottom_c(), (1u64 << 32) - 1);
        assert!(l.max_threshold() > 0);
        // Packing the maximum index at max order must not clobber flag bits.
        let e = l.unpack(l.pack(3, true, false, l.bottom_c()));
        assert_eq!(e.cycle, 3);
        assert!(e.is_safe);
        assert!(!e.enq);
        assert_eq!(e.index, l.bottom_c());
    }

    #[test]
    fn randomized_remap_bijective_both_entry_sizes() {
        for order in 1..=12u32 {
            for entry_size in [8usize, 16] {
                let l = Layout::with_entry_size(order, entry_size);
                let mut seen = std::collections::HashSet::new();
                for pos in 0..l.ring_size() {
                    assert!(seen.insert(l.remap(pos)), "order {order} size {entry_size}");
                }
            }
        }
    }

    #[test]
    fn randomized_cycle_and_position_reconstruct_counter() {
        let mut state = 0xDEAD_BEEF_CAFE_F00Du64;
        for order in 1..=12u32 {
            let l = Layout::new(order);
            for _ in 0..1_000 {
                let t = xorshift(&mut state) % (u32::MAX as u64);
                assert_eq!(l.cycle(t) * l.ring_size() + l.position(t), t);
            }
        }
    }
}
