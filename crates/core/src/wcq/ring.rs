//! The wCQ ring algorithm: SCQ fast path + wait-free slow path (Figures 5–7).
//!
//! The implementation follows the paper's pseudo-code line by line; comments
//! reference the figure/line they reproduce.  Differences are limited to the
//! phase-2 reference encoding (thread index instead of a raw pointer — see
//! `cells.rs`) and the `⊥c` guard in the slow-path result gathering, both
//! documented in DESIGN.md.

use core::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering::SeqCst};
use std::sync::Arc;

use wcq_atomics::CachePadded;

use crate::adaptive::{AdaptivePatience, Adjustment, PatienceCell};
use crate::metrics::{Counter, CounterSet};
use crate::pack::Layout;

use super::cells::{CellFamily, EntryCell, GlobalCtr, NativeFamily};
use super::record::{counter, ThreadRecord, FIN, INC};

/// Tuning knobs of the wait-free machinery.
///
/// The defaults follow §6 of the paper: "we set MAX_PATIENCE to 16 for
/// Enqueue and 64 for Dequeue, which results in taking the slow path
/// relatively infrequently."
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WcqConfig {
    /// Fast-path attempts before an enqueue falls back to the slow path.
    pub max_patience_enqueue: u32,
    /// Fast-path attempts before a dequeue falls back to the slow path.
    pub max_patience_dequeue: u32,
    /// Operations between two helping checks (`HELP_DELAY`, Figure 6).
    pub help_delay: u64,
    /// Iteration bound of `catchup` (§3.2 "Bounding catchup").
    pub catchup_bound: u32,
    /// When `Some`, each handle self-tunes its patience bound within the
    /// given clamps from handle-local contention feedback, and
    /// `max_patience_enqueue` / `max_patience_dequeue` are ignored (see
    /// [`crate::adaptive`]).  `None` — the default — keeps the paper's static
    /// bounds.
    pub adaptive_patience: Option<AdaptivePatience>,
}

impl Default for WcqConfig {
    fn default() -> Self {
        Self {
            max_patience_enqueue: 16,
            max_patience_dequeue: 64,
            help_delay: 16,
            catchup_bound: 64,
            adaptive_patience: None,
        }
    }
}

/// Per-handle operation statistics, used to verify the paper's claim that the
/// slow path is taken "relatively infrequently" (EXPERIMENTS.md, E7).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct WcqStats {
    /// Enqueues completed on the fast path.
    pub fast_enqueues: u64,
    /// Enqueues that fell back to the slow path.
    pub slow_enqueues: u64,
    /// Dequeues completed on the fast path (including empty results).
    pub fast_dequeues: u64,
    /// Dequeues that fell back to the slow path.
    pub slow_dequeues: u64,
}

/// Result of one fast-path dequeue attempt.
enum FastDeq {
    Got(u64),
    Empty,
    Retry(u64),
}

/// The wait-free circular ring of *indices* (Figures 4–7).
///
/// Generic over the hardware model `F` ([`NativeFamily`] for machines with a
/// double-width CAS, [`super::LlscFamily`] for the §4 LL/SC construction).
/// Values must be in `[0, capacity)`; arbitrary payloads are stored through
/// [`super::WcqQueue`].
///
/// Threads must register (obtaining a [`WcqHandle`]) before operating on the
/// ring; the number of simultaneously registered threads is bounded by
/// `max_threads`, matching the paper's `k ≤ n` assumption.
pub struct WcqRing<F: CellFamily = NativeFamily> {
    layout: Layout,
    config: WcqConfig,
    threshold: CachePadded<AtomicI64>,
    tail: CachePadded<F::Ctr>,
    head: CachePadded<F::Ctr>,
    entries: Box<[F::Entry]>,
    records: Box<[CachePadded<ThreadRecord>]>,
    slots_taken: Box<[AtomicBool]>,
    counters: Option<Arc<CounterSet>>,
}

impl<F: CellFamily> std::fmt::Debug for WcqRing<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WcqRing")
            .field("family", &F::NAME)
            .field("capacity", &self.layout.capacity())
            .field("max_threads", &self.records.len())
            .field("head", &self.head.load_cnt())
            .field("tail", &self.tail.load_cnt())
            .field("threshold", &self.threshold.load(SeqCst))
            .finish()
    }
}

impl<F: CellFamily> WcqRing<F> {
    /// Creates an empty ring of capacity `2^order` usable by up to
    /// `max_threads` registered threads, with the default [`WcqConfig`].
    pub fn new(order: u32, max_threads: usize) -> Self {
        Self::with_config(order, max_threads, WcqConfig::default())
    }

    /// Creates an empty ring with an explicit configuration.
    pub fn with_config(order: u32, max_threads: usize, config: WcqConfig) -> Self {
        Self::with_config_counters(order, max_threads, config, None)
    }

    /// Creates an empty ring with an explicit configuration and an optional
    /// shared [`CounterSet`] into which the ring records contention telemetry
    /// (ring ops, helping entries, patience exhaustion, CAS failures).  With
    /// `None` — the default used by [`WcqRing::with_config`] — every recording
    /// site is a single predictable branch on a field of the ring itself.
    pub fn with_config_counters(
        order: u32,
        max_threads: usize,
        config: WcqConfig,
        counters: Option<Arc<CounterSet>>,
    ) -> Self {
        let layout = Layout::with_entry_size(order, 16);
        assert!(
            max_threads >= 1,
            "at least one thread must be able to register"
        );
        assert!(
            max_threads as u64 <= layout.capacity(),
            "the paper assumes k <= n (threads <= capacity)"
        );
        assert!(
            max_threads < (1 << 16),
            "help references are encoded in 16 bits"
        );
        let entries = (0..layout.ring_size())
            .map(|_| F::Entry::new(layout.init_entry(), 0))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        let records = (0..max_threads)
            .map(|tid| {
                CachePadded::new(ThreadRecord::new(
                    config.help_delay,
                    (tid + 1) % max_threads,
                ))
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        let slots_taken = (0..max_threads)
            .map(|_| AtomicBool::new(false))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Self {
            layout,
            config,
            threshold: CachePadded::new(AtomicI64::new(-1)),
            tail: CachePadded::new(F::Ctr::new(layout.init_counter())),
            head: CachePadded::new(F::Ctr::new(layout.init_counter())),
            entries,
            records,
            slots_taken,
            counters,
        }
    }

    /// Records `n` into `counter` when telemetry is attached; a no-op (one
    /// predictable branch) otherwise.
    #[inline]
    fn count(&self, counter: Counter, n: u64) {
        if let Some(set) = &self.counters {
            set.add(counter, n);
        }
    }

    /// Records a patience adjustment reported by a handle's controller.
    /// Adjustments are rare (at most one per sampling window), so this stays
    /// off the hot path even with telemetry attached.
    #[inline]
    fn note_pace(&self, adjustment: Option<Adjustment>) {
        match adjustment {
            Some(Adjustment::Raised) => self.count(Counter::PatienceRaised, 1),
            Some(Adjustment::Lowered) => self.count(Counter::PatienceLowered, 1),
            None => {}
        }
    }

    /// The attached telemetry counter set, if any.
    pub fn counter_set(&self) -> Option<&Arc<CounterSet>> {
        self.counters.as_ref()
    }

    /// The ring's geometry.
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// The active configuration.
    pub fn config(&self) -> &WcqConfig {
        &self.config
    }

    /// Usable capacity (`2^order`).
    pub fn capacity(&self) -> u64 {
        self.layout.capacity()
    }

    /// Maximum number of simultaneously registered threads.
    pub fn max_threads(&self) -> usize {
        self.records.len()
    }

    /// Current threshold value (test/benchmark introspection).
    pub fn threshold(&self) -> i64 {
        self.threshold.load(SeqCst)
    }

    /// Checker/debug introspection: a multi-line snapshot of the full ring
    /// state — head/tail tickets, threshold, every entry unpacked, and the
    /// per-thread record flags.  Racy outside a serialized scheduler; meant
    /// for `wcq-check` replay diagnostics, not production code.
    #[doc(hidden)]
    pub fn debug_dump(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let (h, hr) = self.head.load();
        let (t, tr) = self.tail.load();
        let _ = writeln!(
            out,
            "head={h} (ref {hr:#x}) tail={t} (ref {tr:#x}) threshold={} max={}",
            self.threshold.load(SeqCst),
            self.layout.max_threshold(),
        );
        for (j, cell) in self.entries.iter().enumerate() {
            let e = self.layout.unpack(cell.load_value());
            let _ = writeln!(
                out,
                "  entry[{j:2}] cycle={} safe={} enq={} index={}{}",
                e.cycle,
                e.is_safe,
                e.enq,
                e.index,
                if self.layout.is_reserved(e.index) {
                    " (bottom)"
                } else {
                    ""
                },
            );
        }
        for (tid, rec) in self.records.iter().enumerate() {
            if rec.pending.load(SeqCst) {
                let _ = writeln!(
                    out,
                    "  record[{tid}] pending enqueue={} local_tail={:#x} local_head={:#x} seq1={}",
                    rec.enqueue.load(SeqCst),
                    rec.local_tail.load(SeqCst),
                    rec.local_head.load(SeqCst),
                    rec.seq1.load(SeqCst),
                );
            }
        }
        out
    }

    /// Approximate number of stored values.
    pub fn len_hint(&self) -> u64 {
        self.tail.load_cnt().saturating_sub(self.head.load_cnt())
    }

    /// Bytes occupied by the ring, its entries and the thread records — the
    /// quantity plotted in Figure 10a for wCQ/SCQ.
    pub fn memory_footprint(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.entries.len() * std::mem::size_of::<F::Entry>()
            + self.records.len() * std::mem::size_of::<CachePadded<ThreadRecord>>()
            + self.slots_taken.len()
    }

    /// Registers the calling thread, returning a handle bound to a free
    /// thread-record slot, or `None` when `max_threads` handles are live.
    pub fn register(&self) -> Option<WcqHandle<'_, F>> {
        (0..self.slots_taken.len()).find_map(|tid| self.register_at(tid))
    }

    /// Registers the calling thread at a *specific* thread-record slot, or
    /// `None` when `tid` is out of range or the slot is already taken.
    ///
    /// Callers that already own a stable per-thread index (e.g. a hazard
    /// domain participant id) can use this to acquire a record with a single
    /// CAS instead of scanning.  The unbounded queue's segments build on the
    /// same slot-acquisition mechanism (via `WcqQueue::try_acquire_slot`),
    /// holding one persistent binding per handle and re-acquiring only when
    /// the handle crosses to a different segment.
    pub fn register_at(&self, tid: usize) -> Option<WcqHandle<'_, F>> {
        self.try_acquire_record(tid).then(|| WcqHandle {
            ring: self,
            tid,
            stats: WcqStats::default(),
            pace: PatienceCell::from_config(&self.config),
        })
    }

    /// Claims the thread-record slot `tid` with a single CAS, without
    /// constructing a handle.  The raw half of the registration split:
    /// [`super::WcqQueue`] builds its combined-slot acquisition (and the
    /// unbounded queue its memoized segment binding) on top of this.
    pub(crate) fn try_acquire_record(&self, tid: usize) -> bool {
        self.slots_taken
            .get(tid)
            .is_some_and(|slot| slot.compare_exchange(false, true, SeqCst, SeqCst).is_ok())
    }

    /// Releases a record slot previously claimed by
    /// [`WcqRing::try_acquire_record`].  Callers must own the slot.
    pub(crate) fn release_record(&self, tid: usize) {
        self.slots_taken[tid].store(false, SeqCst);
    }

    // ------------------------------------------------------------------
    // Fast path (identical to SCQ, Figure 3, over the Value half of pairs)
    // ------------------------------------------------------------------

    /// `catchup`, bounded per §3.2.
    fn catchup(&self, mut tail: u64, mut head: u64) {
        for _ in 0..self.config.catchup_bound {
            if self.tail.cas_cnt_weak(tail, head) {
                return;
            }
            head = self.head.load_cnt();
            tail = self.tail.load_cnt();
            if tail >= head {
                return;
            }
        }
    }

    /// Fast-path enqueue attempt (`try_enq`).  On failure returns the tail
    /// ticket, which seeds the slow path.
    fn try_enq_fast(&self, index: u64, spin: &mut u32) -> Result<(), u64> {
        let t = self.tail.fetch_add_cnt();
        self.try_enq_at(t, index, spin)
    }

    /// One insertion attempt at an already-reserved tail ticket `t` — the
    /// body of `try_enq` after the F&A.  Batch enqueues reserve a run of
    /// tickets with a single F&A and drive each through this.
    ///
    /// `spin` tallies the internal CAS re-read iterations.  They never leave
    /// this loop (the ticket is already reserved, so re-evaluating in place
    /// is the only correct move), which makes them invisible to the outer
    /// patience loop — yet on LL/SC hardware spurious store-conditional
    /// failures land exactly here.  Surfacing the tally lets the adaptive
    /// controller count them as the extra fast-path work they are.
    fn try_enq_at(&self, t: u64, index: u64, spin: &mut u32) -> Result<(), u64> {
        let l = &self.layout;
        let j = l.slot(t);
        let cell = &self.entries[j];
        loop {
            let raw = cell.load_value();
            let e = l.unpack(raw);
            if e.cycle < l.cycle(t)
                && (e.is_safe || self.head.load_cnt() <= t)
                && l.is_reserved(e.index)
            {
                let new = l.pack(l.cycle(t), true, true, index);
                if !cell.cas_value(raw, new) {
                    self.count(Counter::CasFailures, 1);
                    *spin = spin.saturating_add(1);
                    continue; // Figure 3, line 25: re-read and re-evaluate.
                }
                if self.threshold.load(SeqCst) != l.max_threshold() {
                    self.threshold.store(l.max_threshold(), SeqCst);
                }
                return Ok(());
            }
            return Err(t);
        }
    }

    /// Fast-path dequeue attempt (`try_deq`).
    fn try_deq_fast(&self, my_tid: usize, spin: &mut u32) -> FastDeq {
        let h = self.head.fetch_add_cnt();
        self.try_deq_at(my_tid, h, spin)
    }

    /// One consume attempt at an already-reserved head ticket `h` — the body
    /// of `try_deq` after the F&A.  Every reserved ticket MUST pass through
    /// here: a missed ticket still advances the slot's cycle so a straggling
    /// enqueuer with an older ticket cannot deposit into a slot no dequeuer
    /// will ever visit again.
    ///
    /// `spin` plays the same role as in [`WcqRing::try_enq_at`]: it surfaces
    /// the internal CAS re-read iterations to the adaptive controller.
    fn try_deq_at(&self, my_tid: usize, h: u64, spin: &mut u32) -> FastDeq {
        let l = &self.layout;
        let j = l.slot(h);
        let cell = &self.entries[j];
        loop {
            let raw = cell.load_value();
            let e = l.unpack(raw);
            if e.cycle == l.cycle(h) {
                self.consume(my_tid, h, j, raw);
                return FastDeq::Got(e.index);
            }
            let new = if l.is_reserved(e.index) {
                l.pack(l.cycle(h), e.is_safe, true, l.bottom())
            } else {
                // Keep the Enq bit: the entry may be a not-yet-finalized
                // slow-path insertion of an older cycle.
                l.pack(e.cycle, false, e.enq, e.index)
            };
            if e.cycle < l.cycle(h) && !cell.cas_value(raw, new) {
                self.count(Counter::CasFailures, 1);
                *spin = spin.saturating_add(1);
                continue;
            }
            let t = self.tail.load_cnt();
            if t <= h + 1 {
                self.catchup(t, h + 1);
                self.threshold.fetch_sub(1, SeqCst);
                return FastDeq::Empty;
            }
            if self.threshold.fetch_sub(1, SeqCst) <= 0 {
                return FastDeq::Empty;
            }
            return FastDeq::Retry(h);
        }
    }

    /// `consume` (Figure 5, lines 1–3): finalize a pending slow-path enqueue
    /// if the entry still has `Enq = 0`, then mark the slot consumed with one
    /// atomic OR.
    fn consume(&self, my_tid: usize, h: u64, j: usize, raw_value: u64) {
        let e = self.layout.unpack(raw_value);
        if !e.enq {
            self.finalize_request(my_tid, h);
        }
        self.entries[j].or_value(self.layout.consume_mask());
    }

    /// `finalize_request` (Figure 5, lines 4–11): find the enqueuer whose
    /// pending slow-path request produced the entry at ticket `h` and set its
    /// `FIN` flag so no helper re-inserts the element after the slot is
    /// recycled.
    fn finalize_request(&self, my_tid: usize, h: u64) {
        let n = self.records.len();
        let mut i = (my_tid + 1) % n;
        while i != my_tid {
            let tail = &self.records[i].local_tail;
            if counter(tail.load(SeqCst)) == h {
                let _ = tail.compare_exchange(h, h | FIN, SeqCst, SeqCst);
                return;
            }
            i = (i + 1) % n;
        }
    }

    // ------------------------------------------------------------------
    // Helping (Figure 6)
    // ------------------------------------------------------------------

    /// `help_threads`: every `help_delay` operations, check one other thread
    /// (round robin) for a pending request and help it to completion.
    /// Returns `true` if help was actually performed (statistics only).
    fn help_threads(&self, my_tid: usize) -> bool {
        let rec = &self.records[my_tid];
        let remaining = rec.next_check.load(SeqCst);
        if remaining > 1 {
            rec.next_check.store(remaining - 1, SeqCst);
            return false;
        }
        let target = rec.next_tid.load(SeqCst) % self.records.len();
        let mut helped = false;
        if target != my_tid {
            let thr = &self.records[target];
            if thr.pending.load(SeqCst) {
                if thr.enqueue.load(SeqCst) {
                    self.help_enqueue(my_tid, target);
                } else {
                    self.help_dequeue(my_tid, target);
                }
                helped = true;
            }
        }
        rec.next_check.store(self.config.help_delay.max(1), SeqCst);
        rec.next_tid
            .store((target + 1) % self.records.len(), SeqCst);
        helped
    }

    /// `help_enqueue`: atomically snapshot the request and run the slow path
    /// on the helpee's behalf.
    fn help_enqueue(&self, my_tid: usize, target: usize) {
        let thr = &self.records[target];
        let seq = thr.seq2.load(SeqCst);
        let enqueue = thr.enqueue.load(SeqCst);
        let idx = thr.index.load(SeqCst);
        let tail = thr.init_tail.load(SeqCst);
        if enqueue && thr.seq1.load(SeqCst) == seq {
            self.enqueue_slow(my_tid, target, tail, idx);
        }
    }

    /// `help_dequeue`: dequeue-side counterpart of [`Self::help_enqueue`].
    fn help_dequeue(&self, my_tid: usize, target: usize) {
        let thr = &self.records[target];
        let seq = thr.seq2.load(SeqCst);
        let enqueue = thr.enqueue.load(SeqCst);
        let head = thr.init_head.load(SeqCst);
        if !enqueue && thr.seq1.load(SeqCst) == seq {
            self.dequeue_slow(my_tid, target, head);
        }
    }

    // ------------------------------------------------------------------
    // Slow path (Figure 7)
    // ------------------------------------------------------------------

    /// `enqueue_slow` (Figure 7, lines 70–72).
    fn enqueue_slow(&self, my_tid: usize, helpee_tid: usize, mut t: u64, index: u64) {
        while self.slow_faa(my_tid, helpee_tid, true, &mut t) {
            if self.try_enq_slow(t, index, helpee_tid) {
                break;
            }
        }
    }

    /// `dequeue_slow` (Figure 7, lines 73–76).
    fn dequeue_slow(&self, my_tid: usize, helpee_tid: usize, mut h: u64) {
        while self.slow_faa(my_tid, helpee_tid, false, &mut h) {
            if self.try_deq_slow(h, helpee_tid) {
                break;
            }
        }
    }

    /// `slow_F&A` (Figure 7, lines 21–37): agree with all cooperative threads
    /// on the next ticket for the helpee's request, incrementing the global
    /// counter exactly once per ticket.
    ///
    /// `is_tail` selects Tail/`localTail` (enqueue) vs Head/`localHead`
    /// (dequeue); for the dequeue side the threshold is decremented once per
    /// successful global increment (Lemma 5.6).  Returns `false` when the
    /// request was finished (`FIN` observed) — the caller must stop.
    fn slow_faa(&self, my_tid: usize, helpee_tid: usize, is_tail: bool, v: &mut u64) -> bool {
        let global: &F::Ctr = if is_tail { &self.tail } else { &self.head };
        let helpee = &self.records[helpee_tid];
        let local: &AtomicU64 = if is_tail {
            &helpee.local_tail
        } else {
            &helpee.local_head
        };
        let cnt;
        loop {
            let loaded = self.load_global_help_phase2(global, local);
            // Phase 1 (line 25): move the helpee's local word from the ticket
            // we last observed (*v) to the fresh global value, flagged INC.
            let phase1 = match loaded {
                Some(c) => {
                    if local.compare_exchange(*v, c | INC, SeqCst, SeqCst).is_ok() {
                        *v = c | INC;
                        Some(c)
                    } else {
                        None
                    }
                }
                None => None,
            };
            let c = match phase1 {
                Some(c) => c,
                None => {
                    // Lines 26–29: somebody else moved the local word (or the
                    // request is finished).
                    *v = local.load(SeqCst);
                    if *v & FIN != 0 {
                        return false;
                    }
                    if *v & INC == 0 {
                        // The increment already completed; *v holds the agreed
                        // ticket for this round.
                        return true;
                    }
                    counter(*v)
                }
            };
            // Lines 31–32: publish the phase-2 request and increment the
            // global counter together (CAS2).
            self.records[my_tid].phase2.prepare(helpee_tid, is_tail, c);
            if global.cas((c, 0), (c + 1, my_tid as u64 + 1)) {
                cnt = c;
                break;
            }
            // A fast-path F&A or another cooperative thread advanced the
            // global counter first; run the body again (paper's do-while).
            self.count(Counter::CasFailures, 1);
        }
        // Line 33: the dequeue side pays its threshold decrement exactly once
        // per global head increment.
        if !is_tail {
            self.threshold.fetch_sub(1, SeqCst);
        }
        // Lines 34–36: phase 2 — clear INC on the local word, clear the
        // phase-2 reference on the global pair.
        let _ = local.compare_exchange(cnt | INC, cnt, SeqCst, SeqCst);
        let _ = global.cas((cnt + 1, my_tid as u64 + 1), (cnt + 1, 0));
        *v = cnt;
        true
    }

    /// `load_global_help_phase2` (Figure 7, lines 77–88): read the global
    /// counter, first helping to complete any phase-2 request published in its
    /// reference half.  Returns `None` when the helpee's request is finished.
    fn load_global_help_phase2(&self, global: &F::Ctr, mylocal: &AtomicU64) -> Option<u64> {
        loop {
            if mylocal.load(SeqCst) & FIN != 0 {
                return None;
            }
            let (cnt, help) = global.load();
            if help == 0 {
                return Some(cnt);
            }
            let owner = (help - 1) as usize;
            if owner < self.records.len() {
                if let Some((target_tid, is_tail, p2cnt)) = self.records[owner].phase2.snapshot() {
                    let rec = &self.records[target_tid % self.records.len()];
                    let target_local: &AtomicU64 = if is_tail {
                        &rec.local_tail
                    } else {
                        &rec.local_head
                    };
                    // Line 86: complete phase 1→2 for that request (no-op if
                    // already done).
                    let _ = target_local.compare_exchange(p2cnt | INC, p2cnt, SeqCst, SeqCst);
                }
            }
            // Line 87: clear the reference; monotone counters rule out ABA.
            if global.cas((cnt, help), (cnt, 0)) {
                return Some(cnt);
            }
        }
    }

    /// `try_enq_slow` (Figure 7, lines 1–20): attempt to insert `index` at
    /// ticket `t` on behalf of the request owned by `helpee_tid`.  Returns
    /// `true` when the request needs no further tickets.
    fn try_enq_slow(&self, t: u64, index: u64, helpee_tid: usize) -> bool {
        let l = &self.layout;
        let j = l.slot(t);
        let cell = &self.entries[j];
        loop {
            let pair = cell.load();
            let e = l.unpack(pair.0);
            let note = pair.1;
            if e.cycle < l.cycle(t) && note < l.cycle(t) {
                if !(e.is_safe || self.head.load_cnt() <= t) || !l.is_reserved(e.index) {
                    // Lines 6–10: the slot is unusable for this cycle; advance
                    // the Note so every other helper skips it too.
                    if !cell.cas2_note(pair, l.cycle(t)) {
                        continue;
                    }
                    return false;
                }
                // Lines 11–13: produce the entry with Enq = 0 (step one of the
                // two-step insertion).
                let produced = l.pack(l.cycle(t), true, false, index);
                if !cell.cas2_value(pair, produced) {
                    continue;
                }
                // Lines 14–17: finalize the help request; the winner of the
                // FIN CAS flips Enq to 1 (step two).
                let local_tail = &self.records[helpee_tid].local_tail;
                if local_tail
                    .compare_exchange(t, t | FIN, SeqCst, SeqCst)
                    .is_ok()
                {
                    let finalized = produced | l.enq_bit();
                    let _ = cell.cas2_value((produced, note), finalized);
                }
                // Line 18.
                if self.threshold.load(SeqCst) != l.max_threshold() {
                    self.threshold.store(l.max_threshold(), SeqCst);
                }
                return true;
            } else if e.cycle != l.cycle(t) {
                // Line 19: the slot moved to a different cycle and no
                // cooperative thread inserted for ticket `t`; grab a new one.
                return false;
            } else if e.index == l.bottom() {
                // e.cycle == cycle(t) but the slot holds `⊥`: a dequeuer burned
                // ticket `t` (advancing the slot's cycle with the empty marker)
                // before any cooperative thread deposited.  The element was
                // NOT inserted — treating this as success loses it, so grab a
                // new ticket.  Note `⊥c` (a consumed entry) must still land in
                // the success branch below: the element *was* inserted at `t`
                // and already dequeued.
                return false;
            }
            // Line 20: e.cycle == cycle(t) and the slot holds a real index (or
            // `⊥c`) — some cooperative thread already inserted the element for
            // this ticket.
            return true;
        }
    }

    /// `try_deq_slow` (Figure 7, lines 43–69): attempt to resolve the dequeue
    /// request of `helpee_tid` at ticket `h`.
    fn try_deq_slow(&self, h: u64, helpee_tid: usize) -> bool {
        let l = &self.layout;
        let j = l.slot(h);
        let cell = &self.entries[j];
        let local_head = &self.records[helpee_tid].local_head;
        loop {
            let pair = cell.load();
            let e = l.unpack(pair.0);
            let note = pair.1;
            // Lines 47–49: the slot holds this cycle's element (or it was
            // already consumed) — terminate all helpers; the owner gathers the
            // result afterwards.
            if e.cycle == l.cycle(h) && e.index != l.bottom() {
                let ok = local_head.compare_exchange(h, h | FIN, SeqCst, SeqCst);
                if ok.is_err() && local_head.load(SeqCst) & FIN == 0 {
                    // The CAS lost not to another finalizer but to `slow_faa`
                    // moving the request to a later ticket: the request is
                    // still live, so reporting `true` here would let the owner
                    // exit `dequeue_slow` and gather a stale ticket while an
                    // in-flight helper later finalizes the live request at a
                    // ticket nobody gathers — stranding that element forever.
                    // Keep helping until FIN is actually set.
                    return false;
                }
                return true;
            }
            let mut val = l.pack(l.cycle(h), e.is_safe, true, l.bottom());
            if !l.is_reserved(e.index) {
                if e.cycle < l.cycle(h) && note < l.cycle(h) {
                    // Lines 53–57: advance the Note so late helpers do not use
                    // a slot one of us already skipped, then re-read.
                    let _ = cell.cas2_note(pair, l.cycle(h));
                    continue;
                }
                // Line 58: old unconsumed value — only mark it unsafe.
                val = l.pack(e.cycle, false, e.enq, e.index);
            }
            // Lines 59–62.
            if e.cycle < l.cycle(h) && !cell.cas2_value(pair, val) {
                continue;
            }
            // Lines 63–68: empty detection.  The threshold was already
            // decremented by `slow_faa` for this ticket.
            let t = self.tail.load_cnt();
            if t <= h + 1 {
                self.catchup(t, h + 1);
            }
            if self.threshold.load(SeqCst) < 0 {
                let ok = local_head.compare_exchange(h, h | FIN, SeqCst, SeqCst);
                if ok.is_err() && local_head.load(SeqCst) & FIN == 0 {
                    // Same as the found-an-element case above: a failed FIN
                    // CAS with no FIN bit visible means the request advanced
                    // to a later ticket, not that it finished.
                    return false;
                }
                return true;
            }
            return false;
        }
    }

    // ------------------------------------------------------------------
    // Public operations (Figure 5), driven through handles.
    // ------------------------------------------------------------------

    /// Full enqueue operation for the thread owning record `tid`
    /// (`Enqueue_wCQ`).  Returns `true` if the slow path was taken.
    ///
    /// `pace` is the calling handle's patience cell: it supplies the
    /// fast-path attempt bound for this operation and absorbs the attempt
    /// tally as contention feedback.  Wait-freedom is untouched — the bound
    /// is always finite (clamped to `>= 1`) and the slow path below remains
    /// reachable regardless of what the controller does.
    pub(crate) fn enqueue_index(&self, tid: usize, index: u64, pace: &PatienceCell) -> bool {
        debug_assert!(index < self.layout.capacity());
        self.count(Counter::RingEnqueues, 1);
        if self.help_threads(tid) {
            self.count(Counter::HelpingEntries, 1);
        }
        // Fast path.  `spin` accumulates the in-slot CAS retries across the
        // attempts: on LL/SC hardware spurious SC failures show up there, not
        // as abandoned tickets, and the controller must see both.
        let mut tail = 0;
        let mut spin = 0;
        let patience = pace.enqueue_patience().max(1);
        for attempt in 0..patience {
            match self.try_enq_fast(index, &mut spin) {
                Ok(()) => {
                    self.note_pace(pace.observe_enqueue(attempt.saturating_add(spin), false));
                    return false;
                }
                Err(t) => tail = t,
            }
        }
        self.count(Counter::PatienceExhaustedEnqueues, 1);
        self.note_pace(pace.observe_enqueue(patience.saturating_add(spin), true));
        // Slow path: publish the request, then run it; helpers may finish it
        // for us.
        let rec = &self.records[tid];
        let seq = rec.seq1.load(SeqCst);
        rec.local_tail.store(tail, SeqCst);
        rec.init_tail.store(tail, SeqCst);
        rec.index.store(index, SeqCst);
        rec.enqueue.store(true, SeqCst);
        rec.seq2.store(seq, SeqCst);
        rec.pending.store(true, SeqCst);
        self.enqueue_slow(tid, tid, tail, index);
        rec.pending.store(false, SeqCst);
        rec.seq1.store(seq + 1, SeqCst);
        true
    }

    /// Full dequeue operation for the thread owning record `tid`
    /// (`Dequeue_wCQ`).  Returns `(value, took_slow_path)`.
    ///
    /// `pace` plays the same role as in [`WcqRing::enqueue_index`].  The
    /// empty early-exit still reports a zero-attempt observation so a handle
    /// polling an empty ring pulls its patience back down.
    pub(crate) fn dequeue_index(&self, tid: usize, pace: &PatienceCell) -> (Option<u64>, bool) {
        let l = &self.layout;
        self.count(Counter::RingDequeues, 1);
        if self.threshold.load(SeqCst) < 0 {
            self.note_pace(pace.observe_dequeue(0, false));
            return (None, false); // Line 30: empty.
        }
        if self.help_threads(tid) {
            self.count(Counter::HelpingEntries, 1);
        }
        // Fast path.  `spin` plays the same role as in `enqueue_index`.
        let mut head = 0;
        let mut spin = 0;
        let patience = pace.dequeue_patience().max(1);
        for attempt in 0..patience {
            match self.try_deq_fast(tid, &mut spin) {
                FastDeq::Got(idx) => {
                    self.note_pace(pace.observe_dequeue(attempt.saturating_add(spin), false));
                    return (Some(idx), false);
                }
                FastDeq::Empty => {
                    self.note_pace(pace.observe_dequeue(attempt.saturating_add(spin), false));
                    return (None, false);
                }
                FastDeq::Retry(h) => head = h,
            }
        }
        self.count(Counter::PatienceExhaustedDequeues, 1);
        self.note_pace(pace.observe_dequeue(patience.saturating_add(spin), true));
        // Slow path.
        let rec = &self.records[tid];
        let seq = rec.seq1.load(SeqCst);
        rec.local_head.store(head, SeqCst);
        rec.init_head.store(head, SeqCst);
        rec.enqueue.store(false, SeqCst);
        rec.seq2.store(seq, SeqCst);
        rec.pending.store(true, SeqCst);
        self.dequeue_slow(tid, tid, head);
        rec.pending.store(false, SeqCst);
        rec.seq1.store(seq + 1, SeqCst);
        // Gather the slow-path result (Figure 5, lines 48–54).
        let h = counter(rec.local_head.load(SeqCst));
        let j = l.slot(h);
        let raw = self.entries[j].load_value();
        let e = l.unpack(raw);
        if e.cycle == l.cycle(h) && !l.is_reserved(e.index) {
            self.consume(tid, h, j, raw);
            return (Some(e.index), true);
        }
        (None, true)
    }

    // ------------------------------------------------------------------
    // Batch operations: one F&A reserves a run of consecutive tickets.
    // ------------------------------------------------------------------

    /// Enqueues every index in `indices`, reserving `indices.len()`
    /// consecutive tail tickets with a single F&A (instead of one F&A per
    /// element).  Always accepts the whole batch — like
    /// [`WcqHandle::enqueue`], callers must respect the capacity discipline
    /// (at most `capacity` values in circulation).
    ///
    /// Elements whose reserved ticket lands on an unusable slot (stale cycle,
    /// unsafe bit, straddling the head) abandon that ticket — exactly what a
    /// failed fast-path attempt does — and fall back to the standard
    /// [`WcqRing::enqueue_index`] path, patience bound and slow-path helping
    /// included, so the wait-freedom argument is unchanged.  Returns the
    /// number of elements that used their batch ticket (statistics).
    pub(crate) fn enqueue_many(&self, tid: usize, indices: &[u64], pace: &PatienceCell) -> usize {
        if indices.is_empty() {
            return 0;
        }
        if self.help_threads(tid) {
            self.count(Counter::HelpingEntries, 1);
        }
        let base = self.tail.fetch_add_cnt_n(indices.len() as u64);
        let mut on_ticket = 0;
        // The whole run is one pooled observation: `spin` tallies the in-slot
        // retries across every batch ticket, and each abandoned ticket is
        // exactly one failed fast-path attempt.
        let mut spin: u32 = 0;
        let mut abandoned: u32 = 0;
        for (k, &index) in indices.iter().enumerate() {
            debug_assert!(index < self.layout.capacity());
            if self.try_enq_at(base + k as u64, index, &mut spin).is_ok() {
                on_ticket += 1;
            } else {
                abandoned += 1;
                // The fallback records its own RingEnqueues (and any further
                // helping entry), so only the on-ticket elements are counted
                // below — no double counting.  It also feeds `pace` with its
                // own attempts; the abandoned ticket itself is pooled into
                // the batch observation instead.
                self.enqueue_index(tid, index, pace);
            }
        }
        self.count(Counter::RingEnqueues, on_ticket as u64);
        self.note_pace(pace.observe_enqueue_batch(
            on_ticket as u32,
            spin.saturating_add(abandoned),
            false,
        ));
        on_ticket
    }

    /// Dequeues up to `max` indices into `out`, reserving the whole run of
    /// head tickets with a single F&A.  Returns the number of indices
    /// appended — possibly fewer than `max` (partial success): the run is
    /// clamped to the visible backlog, and a ticket raced by a concurrent
    /// consumer or a not-yet-visible slow-path insertion counts as a miss
    /// rather than being retried.
    ///
    /// A return of `0` is **authoritative**: when every reserved ticket
    /// misses (each miss is only a racy observation — elements may remain in
    /// slots whose tickets were abandoned), the call falls back to the
    /// standard [`WcqRing::dequeue_index`] path, so `0` carries exactly the
    /// emptiness verdict of a single dequeue returning `None` (patience,
    /// slow-path helping and the threshold check included).
    ///
    /// Every reserved ticket is inspected via `try_deq_at` even after a miss;
    /// skipping one would let a straggling enqueuer deposit into a slot no
    /// dequeuer revisits (lost element).  A missed ticket pays the same
    /// threshold decrement an individual failed dequeue would (Lemma 5.6).
    pub(crate) fn dequeue_many(
        &self,
        tid: usize,
        out: &mut Vec<u64>,
        max: usize,
        pace: &PatienceCell,
    ) -> usize {
        if max == 0 || self.threshold.load(SeqCst) < 0 {
            return 0;
        }
        if self.help_threads(tid) {
            self.count(Counter::HelpingEntries, 1);
        }
        // Clamp to the visible backlog so an oversized batch never burns a
        // run of guaranteed-empty tickets (each would cost a threshold
        // decrement and a catchup).
        let run = self.len_hint().min(max as u64);
        self.count(Counter::RingDequeues, run);
        let mut got = 0;
        if run > 0 {
            let base = self.head.fetch_add_cnt_n(run);
            // As in `enqueue_many`, the run is one pooled observation: the
            // in-slot retry tally plus one failed attempt per missed ticket.
            let mut spin: u32 = 0;
            for k in 0..run {
                match self.try_deq_at(tid, base + k, &mut spin) {
                    FastDeq::Got(index) => {
                        out.push(index);
                        got += 1;
                    }
                    FastDeq::Empty | FastDeq::Retry(_) => {}
                }
            }
            let misses = u32::try_from(run - got as u64).unwrap_or(u32::MAX);
            self.note_pace(pace.observe_dequeue_batch(
                u32::try_from(run).unwrap_or(u32::MAX),
                spin.saturating_add(misses),
                false,
            ));
        }
        if got == 0 {
            // Two ways to get here: the tail counter lags a slow-path
            // insertion's visibility (`run == 0`), or every ticket in the
            // run missed — a racy observation, since a dropped `Retry` can
            // leave elements behind (e.g. a hole-run longer than `max`).
            // Either way the standard path (patience + helping + threshold)
            // delivers the authoritative verdict.
            return match self.dequeue_index(tid, pace) {
                (Some(index), _) => {
                    out.push(index);
                    1
                }
                (None, _) => 0,
            };
        }
        got
    }
}

// SAFETY: every shared field is an atomic (or an atomic-only struct); the
// cell/counter types are Send + Sync by their trait bounds.
unsafe impl<F: CellFamily> Send for WcqRing<F> {}
unsafe impl<F: CellFamily> Sync for WcqRing<F> {}

/// A per-thread handle to a [`WcqRing`].
///
/// The handle owns one of the ring's thread records for its lifetime; dropping
/// it releases the slot for another thread.
pub struct WcqHandle<'q, F: CellFamily = NativeFamily> {
    ring: &'q WcqRing<F>,
    tid: usize,
    stats: WcqStats,
    pace: PatienceCell,
}

impl<'q, F: CellFamily> WcqHandle<'q, F> {
    /// The thread-record index owned by this handle.
    pub fn tid(&self) -> usize {
        self.tid
    }

    /// The ring this handle operates on.
    pub fn ring(&self) -> &'q WcqRing<F> {
        self.ring
    }

    /// Operation statistics accumulated by this handle.
    pub fn stats(&self) -> WcqStats {
        self.stats
    }

    /// The handle's patience cell (current bounds + contention estimate).
    pub fn pace(&self) -> &PatienceCell {
        &self.pace
    }

    /// Enqueues `index` (must be `< capacity`).  Always succeeds provided the
    /// capacity discipline is respected (at most `capacity` values circulate).
    pub fn enqueue(&mut self, index: u64) {
        if self.ring.enqueue_index(self.tid, index, &self.pace) {
            self.stats.slow_enqueues += 1;
        } else {
            self.stats.fast_enqueues += 1;
        }
    }

    /// Dequeues an index; `None` means the ring was empty.
    pub fn dequeue(&mut self) -> Option<u64> {
        let (value, slow) = self.ring.dequeue_index(self.tid, &self.pace);
        if slow {
            self.stats.slow_dequeues += 1;
        } else {
            self.stats.fast_dequeues += 1;
        }
        value
    }

    /// Enqueues every index in `indices` with one tail F&A for the whole run
    /// (see `WcqRing::enqueue_many`).  Elements that could not use their
    /// batch ticket fell back to the standard path and are counted as slow
    /// enqueues.
    pub fn enqueue_many(&mut self, indices: &[u64]) {
        let on_ticket = self.ring.enqueue_many(self.tid, indices, &self.pace) as u64;
        self.stats.fast_enqueues += on_ticket;
        self.stats.slow_enqueues += indices.len() as u64 - on_ticket;
    }

    /// Dequeues up to `max` indices into `out` with one head F&A for the
    /// whole run; returns the number appended (see
    /// `WcqRing::dequeue_many` for the partial-success contract).
    pub fn dequeue_many(&mut self, out: &mut Vec<u64>, max: usize) -> usize {
        let got = self.ring.dequeue_many(self.tid, out, max, &self.pace);
        self.stats.fast_dequeues += got as u64;
        got
    }
}

impl<'q, F: CellFamily> std::fmt::Debug for WcqHandle<'q, F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WcqHandle")
            .field("tid", &self.tid)
            .field("stats", &self.stats)
            .finish()
    }
}

impl<'q, F: CellFamily> Drop for WcqHandle<'q, F> {
    fn drop(&mut self) {
        self.ring.release_record(self.tid);
    }
}

#[cfg(test)]
mod tests {
    use super::super::cells::LlscFamily;
    use super::*;

    fn ring<F: CellFamily>(order: u32, threads: usize) -> WcqRing<F> {
        WcqRing::<F>::with_config(order, threads, WcqConfig::default())
    }

    fn fifo_single_thread<F: CellFamily>() {
        let r = ring::<F>(4, 2);
        let mut h = r.register().unwrap();
        assert_eq!(h.dequeue(), None);
        for i in 0..r.capacity() {
            h.enqueue(i);
        }
        for i in 0..r.capacity() {
            assert_eq!(h.dequeue(), Some(i));
        }
        assert_eq!(h.dequeue(), None);
    }

    #[test]
    fn fifo_single_thread_native() {
        fifo_single_thread::<NativeFamily>();
    }

    #[test]
    fn fifo_single_thread_llsc() {
        wcq_atomics::llsc::set_spurious_failure_rate(0.0);
        fifo_single_thread::<LlscFamily>();
    }

    #[test]
    fn wraparound_many_cycles() {
        let r = ring::<NativeFamily>(2, 2);
        let mut h = r.register().unwrap();
        for round in 0..500u64 {
            h.enqueue(round % 4);
            assert_eq!(h.dequeue(), Some(round % 4));
        }
        assert_eq!(h.dequeue(), None);
    }

    #[test]
    fn registration_respects_max_threads() {
        let r = ring::<NativeFamily>(4, 2);
        let h1 = r.register().unwrap();
        let h2 = r.register().unwrap();
        assert!(r.register().is_none());
        assert_ne!(h1.tid(), h2.tid());
        drop(h1);
        assert!(r.register().is_some());
        drop(h2);
    }

    #[test]
    fn forced_slow_path_still_fifo() {
        // MAX_PATIENCE = 1 forces (almost) every operation through the slow
        // path machinery even without contention.
        let cfg = WcqConfig {
            max_patience_enqueue: 1,
            max_patience_dequeue: 1,
            help_delay: 1,
            catchup_bound: 8,
            ..WcqConfig::default()
        };
        let r = WcqRing::<NativeFamily>::with_config(4, 2, cfg);
        let mut h = r.register().unwrap();
        for i in 0..r.capacity() {
            h.enqueue(i);
        }
        for i in 0..r.capacity() {
            assert_eq!(h.dequeue(), Some(i));
        }
        assert_eq!(h.dequeue(), None);
    }

    #[test]
    fn adaptive_patience_stays_clamped_and_fifo() {
        let cfg = WcqConfig {
            adaptive_patience: Some(AdaptivePatience {
                min: 1,
                max: 8,
                sample_every: 4,
            }),
            ..WcqConfig::default()
        };
        let r = WcqRing::<NativeFamily>::with_config(4, 2, cfg);
        let mut h = r.register().unwrap();
        for round in 0..300u64 {
            h.enqueue(round % r.capacity());
            assert_eq!(h.dequeue(), Some(round % r.capacity()));
            let p = h.pace();
            assert!((1..=8).contains(&p.enqueue_patience()));
            assert!((1..=8).contains(&p.dequeue_patience()));
        }
        assert_eq!(h.dequeue(), None);
    }

    #[test]
    fn stats_track_fast_and_slow_paths() {
        let r = ring::<NativeFamily>(4, 1);
        let mut h = r.register().unwrap();
        h.enqueue(1);
        assert_eq!(h.dequeue(), Some(1));
        let s = h.stats();
        assert_eq!(s.fast_enqueues + s.slow_enqueues, 1);
        assert_eq!(s.fast_dequeues + s.slow_dequeues, 1);
    }

    fn mpmc_stress<F: CellFamily>(producers: usize, consumers: usize, per_producer: u64) {
        use std::sync::atomic::{AtomicU64, Ordering};
        let order = 6;
        let r = ring::<F>(order, producers + consumers);
        let capacity = r.capacity();
        let consumed = AtomicU64::new(0);
        let sum = AtomicU64::new(0);
        let inflight = AtomicU64::new(0);

        std::thread::scope(|s| {
            for _ in 0..producers {
                let r = &r;
                let inflight = &inflight;
                s.spawn(move || {
                    let mut h = r.register().unwrap();
                    let mut sent = 0;
                    while sent < per_producer {
                        // Respect capacity discipline: never exceed `capacity`
                        // values in flight.
                        if inflight.fetch_add(1, Ordering::SeqCst) < capacity - 8 {
                            h.enqueue(sent % capacity);
                            sent += 1;
                        } else {
                            inflight.fetch_sub(1, Ordering::SeqCst);
                            std::thread::yield_now();
                        }
                    }
                });
            }
            for _ in 0..consumers {
                let r = &r;
                let consumed = &consumed;
                let sum = &sum;
                let inflight = &inflight;
                let total = producers as u64 * per_producer;
                s.spawn(move || {
                    let mut h = r.register().unwrap();
                    loop {
                        if consumed.load(Ordering::SeqCst) >= total {
                            break;
                        }
                        match h.dequeue() {
                            Some(v) => {
                                assert!(v < capacity);
                                sum.fetch_add(v, Ordering::SeqCst);
                                consumed.fetch_add(1, Ordering::SeqCst);
                                inflight.fetch_sub(1, Ordering::SeqCst);
                            }
                            None => std::thread::yield_now(),
                        }
                    }
                });
            }
        });

        assert_eq!(
            consumed.load(std::sync::atomic::Ordering::SeqCst),
            producers as u64 * per_producer
        );
        // Whatever remains in flight (none) — queue must now be empty.
        let mut h = r.register().unwrap();
        assert_eq!(h.dequeue(), None);
    }

    #[test]
    fn mpmc_stress_native() {
        mpmc_stress::<NativeFamily>(3, 3, 4_000);
    }

    fn batch_fifo_roundtrip<F: CellFamily>() {
        let r = ring::<F>(4, 2);
        let mut h = r.register().unwrap();
        let capacity = r.capacity();
        let all: Vec<u64> = (0..capacity).collect();
        h.enqueue_many(&all);
        let mut out = Vec::new();
        // Partial success: ask for more than is present.
        let got = h.dequeue_many(&mut out, capacity as usize + 8);
        assert_eq!(got, out.len());
        assert_eq!(out, all);
        assert_eq!(h.dequeue_many(&mut out, 4), 0);
        assert_eq!(h.dequeue(), None);
    }

    #[test]
    fn batch_fifo_roundtrip_native() {
        batch_fifo_roundtrip::<NativeFamily>();
    }

    #[test]
    fn batch_fifo_roundtrip_llsc() {
        wcq_atomics::llsc::set_spurious_failure_rate(0.0);
        batch_fifo_roundtrip::<LlscFamily>();
    }

    #[test]
    fn batch_wraparound_interleaved_with_singles() {
        let r = ring::<NativeFamily>(3, 2);
        let mut h = r.register().unwrap();
        let mut expected = std::collections::VecDeque::new();
        let mut next = 0u64;
        let mut out = Vec::new();
        for round in 0..200u64 {
            // Respect the ring's capacity discipline: a bare-ring enqueue on
            // a full ring spins (the fq/aq pairing in `WcqQueue` is what
            // rules that state out for real users).
            let room = (r.capacity() as usize).saturating_sub(expected.len());
            let batch: Vec<u64> = (0..((round % 5) as usize).min(room))
                .map(|_| {
                    let v = next % r.capacity();
                    next += 1;
                    expected.push_back(v);
                    v
                })
                .collect();
            h.enqueue_many(&batch);
            let want = (round % 3) as usize;
            out.clear();
            let got = h.dequeue_many(&mut out, want.min(expected.len()));
            for &v in &out {
                assert_eq!(Some(v), expected.pop_front());
            }
            assert_eq!(got, out.len());
        }
        out.clear();
        h.dequeue_many(&mut out, expected.len());
        for &v in &out {
            assert_eq!(Some(v), expected.pop_front());
        }
        assert!(expected.is_empty());
        assert_eq!(h.dequeue(), None);
    }

    #[test]
    fn batch_mpmc_no_loss_or_duplication() {
        use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
        // Capacity covers every value, so each enqueued index is unique and
        // the consumers can assert exactly-once delivery per element (a lost
        // element can no longer be masked by a duplicated one).  The
        // capacity discipline holds trivially: at most `total <= capacity`
        // values are ever in circulation.
        let order = 13;
        let r = ring::<NativeFamily>(order, 4);
        let per_producer = 4_000u64;
        let producers = 2u64;
        let total = producers * per_producer;
        assert!(total <= r.capacity());
        let batch = 8u64;
        let consumed = AtomicU64::new(0);
        let seen: Vec<AtomicBool> = (0..total).map(|_| AtomicBool::new(false)).collect();
        std::thread::scope(|s| {
            for p in 0..producers {
                let r = &r;
                s.spawn(move || {
                    let mut h = r.register().unwrap();
                    let mut sent = 0;
                    while sent < per_producer {
                        let base = p * per_producer + sent;
                        let run: Vec<u64> = (base..base + batch).collect();
                        h.enqueue_many(&run);
                        sent += batch;
                    }
                });
            }
            for _ in 0..2 {
                let r = &r;
                let consumed = &consumed;
                let seen = &seen;
                s.spawn(move || {
                    let mut h = r.register().unwrap();
                    let mut out = Vec::new();
                    while consumed.load(Ordering::SeqCst) < total {
                        out.clear();
                        let got = h.dequeue_many(&mut out, batch as usize) as u64;
                        if got > 0 {
                            for &v in &out {
                                assert!(v < total, "invented value {v}");
                                assert!(
                                    !seen[v as usize].swap(true, Ordering::SeqCst),
                                    "value {v} dequeued twice"
                                );
                            }
                            consumed.fetch_add(got, Ordering::SeqCst);
                        } else {
                            std::thread::yield_now();
                        }
                    }
                });
            }
        });
        assert_eq!(consumed.load(std::sync::atomic::Ordering::SeqCst), total);
        for (v, flag) in seen.iter().enumerate() {
            assert!(
                flag.load(std::sync::atomic::Ordering::SeqCst),
                "value {v} was never dequeued"
            );
        }
        let mut h = r.register().unwrap();
        assert_eq!(h.dequeue(), None);
    }

    #[test]
    fn mpmc_stress_llsc() {
        wcq_atomics::llsc::set_spurious_failure_rate(0.0);
        mpmc_stress::<LlscFamily>(2, 2, 2_000);
    }

    #[test]
    fn mpmc_stress_with_forced_slow_path() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let cfg = WcqConfig {
            max_patience_enqueue: 1,
            max_patience_dequeue: 1,
            help_delay: 1,
            catchup_bound: 8,
            ..WcqConfig::default()
        };
        let r = WcqRing::<NativeFamily>::with_config(5, 4, cfg);
        let capacity = r.capacity();
        let total = 8_000u64;
        let consumed = AtomicU64::new(0);
        let inflight = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..2 {
                let r = &r;
                let inflight = &inflight;
                s.spawn(move || {
                    let mut h = r.register().unwrap();
                    let mut sent = 0;
                    while sent < total / 2 {
                        if inflight.fetch_add(1, Ordering::SeqCst) < capacity - 4 {
                            h.enqueue(sent % capacity);
                            sent += 1;
                        } else {
                            inflight.fetch_sub(1, Ordering::SeqCst);
                            std::thread::yield_now();
                        }
                    }
                });
            }
            for _ in 0..2 {
                let r = &r;
                let consumed = &consumed;
                let inflight = &inflight;
                s.spawn(move || {
                    let mut h = r.register().unwrap();
                    while consumed.load(Ordering::SeqCst) < total {
                        if h.dequeue().is_some() {
                            consumed.fetch_add(1, Ordering::SeqCst);
                            inflight.fetch_sub(1, Ordering::SeqCst);
                        } else {
                            std::thread::yield_now();
                        }
                    }
                });
            }
        });
        assert_eq!(consumed.load(std::sync::atomic::Ordering::SeqCst), total);
    }
}
