//! wCQ — the wait-free circular queue (the paper's primary contribution).
//!
//! The module is split along the paper's structure:
//!
//! * [`cells`] — the hardware-model abstraction: native double-width CAS (§3)
//!   vs. emulated LL/SC (§4, Figure 9).
//! * [`record`] — per-thread helping records (`thrdrec_t`, `phase2rec_t`,
//!   Figure 4) and the `FIN`/`INC` flag bits.
//! * `ring` — the algorithm itself: SCQ fast path, `slow_F&A`, slow-path
//!   enqueue/dequeue and the helping scheme (Figures 5–7).
//! * `queue` — the user-facing bounded data queue built from two rings and
//!   a data array (Figure 2).

pub mod cells;
mod queue;
pub mod record;
mod ring;

pub use cells::{CellFamily, LlscFamily, NativeFamily};
pub use queue::{WcqQueue, WcqQueueHandle};
pub use ring::{WcqConfig, WcqHandle, WcqRing, WcqStats};
