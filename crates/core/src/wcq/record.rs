//! Per-thread helping records (`thrdrec_t` and `phase2rec_t`, Figure 4).
//!
//! wCQ avoids all dynamic allocation on the slow path: the only state a help
//! request needs is a fixed-size record per registered thread, stored inline
//! in the ring.  A record's *shared* fields describe an outstanding request
//! (enqueue or dequeue, the starting tail/head ticket, the value to insert)
//! and are double-checked with a `seq1`/`seq2` pair so helpers never act on a
//! torn snapshot.  The *private* fields drive the helping round-robin
//! (`nextCheck` / `nextTid`) and are only touched by the owning thread.
//!
//! The `localTail` / `localHead` words carry two flag bits above the counter:
//!
//! * [`FIN`] — the request is finished; any cooperative thread stuck in
//!   `slow_F&A` must exit (Lemma 5.4/5.5).
//! * [`INC`] — phase 1 of `slow_F&A` has stored the next counter value but the
//!   global counter has not been advanced/confirmed yet (phase 2 pending).

use core::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering::SeqCst};

/// "Request finished" flag bit within `localTail` / `localHead`.
pub const FIN: u64 = 1 << 63;
/// "Phase-1 increment pending" flag bit within `localTail` / `localHead`.
pub const INC: u64 = 1 << 62;
/// Mask extracting the counter below the flag bits (the paper's `Counter()`).
pub const COUNTER_MASK: u64 = INC - 1;

/// Extracts the counter portion of a local tail/head word.
#[inline]
pub fn counter(v: u64) -> u64 {
    v & COUNTER_MASK
}

/// The phase-2 help request (`phase2rec_t`): asks other threads to finish
/// clearing the [`INC`] flag after the global counter was advanced.
///
/// Instead of the paper's raw pointer to the target `local` word, the record
/// stores the *owning thread index* of that word plus which of its two words
/// (`localTail` or `localHead`) is meant; see `cells.rs` for the rationale.
#[derive(Debug)]
pub struct Phase2Rec {
    /// Sequence number incremented when a new request is prepared.
    pub seq1: AtomicU64,
    /// Thread index whose `localTail`/`localHead` should be completed.
    pub target_tid: AtomicUsize,
    /// `true` → the target word is `localTail`, `false` → `localHead`.
    pub is_tail: AtomicBool,
    /// The counter value whose `INC` flag should be cleared.
    pub cnt: AtomicU64,
    /// Mirror of `seq1` written last; a mismatch means the snapshot is torn.
    pub seq2: AtomicU64,
}

impl Default for Phase2Rec {
    fn default() -> Self {
        Self {
            seq1: AtomicU64::new(1),
            target_tid: AtomicUsize::new(0),
            is_tail: AtomicBool::new(false),
            cnt: AtomicU64::new(0),
            seq2: AtomicU64::new(0),
        }
    }
}

impl Phase2Rec {
    /// Publishes a new phase-2 request (`prepare_phase2`, Figure 7 lines
    /// 38–42).
    pub fn prepare(&self, target_tid: usize, is_tail: bool, cnt: u64) {
        let seq = self.seq1.load(SeqCst) + 1;
        self.seq1.store(seq, SeqCst);
        self.target_tid.store(target_tid, SeqCst);
        self.is_tail.store(is_tail, SeqCst);
        self.cnt.store(cnt, SeqCst);
        self.seq2.store(seq, SeqCst);
    }

    /// Reads a consistent snapshot of the request, or `None` if the record is
    /// being rewritten concurrently.
    pub fn snapshot(&self) -> Option<(usize, bool, u64)> {
        let seq = self.seq2.load(SeqCst);
        let target = self.target_tid.load(SeqCst);
        let is_tail = self.is_tail.load(SeqCst);
        let cnt = self.cnt.load(SeqCst);
        if self.seq1.load(SeqCst) == seq {
            Some((target, is_tail, cnt))
        } else {
            None
        }
    }
}

/// A per-thread helping record (`thrdrec_t`, Figure 4).
#[derive(Debug)]
pub struct ThreadRecord {
    // === Private fields (only the owner mutates them) ===
    /// Operations remaining before the next helping check (`nextCheck`).
    pub next_check: AtomicU64,
    /// Next thread index to inspect for pending requests (`nextTid`).
    pub next_tid: AtomicUsize,

    // === Shared fields (read by helpers) ===
    /// Phase-2 request owned by this thread (used when *it* helps or operates).
    pub phase2: Phase2Rec,
    /// Completed-request sequence number; incremented after each slow path.
    pub seq1: AtomicU64,
    /// `true` → the pending request is an enqueue, `false` → dequeue.
    pub enqueue: AtomicBool,
    /// `true` while a slow-path request is in flight.
    pub pending: AtomicBool,
    /// Last tail ticket tried (with `FIN`/`INC` flags); owned by enqueues.
    pub local_tail: AtomicU64,
    /// Starting tail ticket of the current enqueue request.
    pub init_tail: AtomicU64,
    /// Last head ticket tried (with `FIN`/`INC` flags); owned by dequeues.
    pub local_head: AtomicU64,
    /// Starting head ticket of the current dequeue request.
    pub init_head: AtomicU64,
    /// Index being inserted by the pending enqueue request.
    pub index: AtomicU64,
    /// Mirror of `seq1` written when a request is published.
    pub seq2: AtomicU64,
}

impl ThreadRecord {
    /// Creates an idle record for a thread whose helping scan starts at
    /// `first_check` remaining operations and inspects `start_tid` first.
    pub fn new(help_delay: u64, start_tid: usize) -> Self {
        Self {
            next_check: AtomicU64::new(help_delay.max(1)),
            next_tid: AtomicUsize::new(start_tid),
            phase2: Phase2Rec::default(),
            seq1: AtomicU64::new(1),
            enqueue: AtomicBool::new(false),
            pending: AtomicBool::new(false),
            local_tail: AtomicU64::new(0),
            init_tail: AtomicU64::new(0),
            local_head: AtomicU64::new(0),
            init_head: AtomicU64::new(0),
            index: AtomicU64::new(0),
            seq2: AtomicU64::new(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_bits_do_not_overlap_counters() {
        assert_eq!(FIN & INC, 0);
        assert_eq!(FIN & COUNTER_MASK, 0);
        assert_eq!(INC & COUNTER_MASK, 0);
        let ticket = 0x0123_4567_89ABu64;
        assert_eq!(counter(ticket | FIN), ticket);
        assert_eq!(counter(ticket | INC), ticket);
        assert_eq!(counter(ticket | FIN | INC), ticket);
    }

    #[test]
    fn phase2_snapshot_roundtrip() {
        let p = Phase2Rec::default();
        assert_eq!(
            p.snapshot(),
            None,
            "initial seq1=1 != seq2=0 means no request"
        );
        p.prepare(3, true, 77);
        assert_eq!(p.snapshot(), Some((3, true, 77)));
        p.prepare(5, false, 99);
        assert_eq!(p.snapshot(), Some((5, false, 99)));
    }

    #[test]
    fn phase2_torn_snapshot_detected() {
        let p = Phase2Rec::default();
        p.prepare(1, true, 10);
        // Simulate the start of a new request (seq1 bumped, seq2 not yet).
        p.seq1.store(p.seq1.load(SeqCst) + 1, SeqCst);
        assert_eq!(p.snapshot(), None);
    }

    #[test]
    fn thread_record_initial_state_is_idle() {
        let r = ThreadRecord::new(16, 2);
        assert!(!r.pending.load(SeqCst));
        assert_eq!(r.seq1.load(SeqCst), 1);
        assert_eq!(r.seq2.load(SeqCst), 0);
        assert_eq!(r.next_tid.load(SeqCst), 2);
        assert_eq!(r.next_check.load(SeqCst), 16);
    }
}
