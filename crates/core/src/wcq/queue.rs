//! The user-facing wCQ data queue: two wait-free index rings plus a data
//! array (the indirection scheme of Figure 2 applied to wCQ).

use core::cell::UnsafeCell;
use core::marker::PhantomData;
use core::mem::MaybeUninit;
use core::sync::atomic::{AtomicUsize, Ordering::Relaxed};
use std::collections::VecDeque;
use std::sync::Arc;

use crate::adaptive::PatienceCell;
use crate::api::tid_memo;
use crate::metrics::{Counter, CounterSet};

use super::cells::{CellFamily, NativeFamily};
use super::ring::{WcqConfig, WcqRing, WcqStats};

/// A bounded, wait-free MPMC FIFO queue of `T` with capacity `2^order`.
///
/// Values live in a data array; a `fq` ring circulates free slot indices and
/// an `aq` ring circulates allocated ones (`Enqueue_Ptr`/`Dequeue_Ptr`,
/// Figure 2).  Because wCQ is wait-free and statically allocated, the whole
/// queue is wait-free with bounded memory usage (Theorems 5.8–5.10): the only
/// memory ever used is the two rings, the data array and one record per
/// registered thread.
///
/// Threads operate through [`WcqQueueHandle`]s obtained from
/// [`WcqQueue::register`].
pub struct WcqQueue<T, F: CellFamily = NativeFamily> {
    aq: WcqRing<F>,
    fq: WcqRing<F>,
    data: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// Registration free-slot hint: the next record index worth probing.
    /// Updated on registration and release so [`WcqQueue::register`] is O(1)
    /// amortized under handle churn instead of scanning from slot 0.
    reg_hint: AtomicUsize,
}

// SAFETY: slot indices are handed between threads through the rings; the slot
// is exclusively owned by whoever holds its index, and sequentially consistent
// ring operations order the data accesses around the hand-off.
unsafe impl<T: Send, F: CellFamily> Send for WcqQueue<T, F> {}
unsafe impl<T: Send, F: CellFamily> Sync for WcqQueue<T, F> {}

impl<T, F: CellFamily> WcqQueue<T, F> {
    /// Creates a queue with capacity `2^order` usable by up to `max_threads`
    /// registered threads, with the default [`WcqConfig`].
    pub fn new(order: u32, max_threads: usize) -> Self {
        Self::with_config(order, max_threads, WcqConfig::default())
    }

    /// Creates a queue with an explicit wait-freedom configuration.
    pub fn with_config(order: u32, max_threads: usize, config: WcqConfig) -> Self {
        Self::with_config_counters(order, max_threads, config, None)
    }

    /// Creates a queue with an explicit configuration and an optional shared
    /// [`CounterSet`] receiving contention telemetry from both internal rings
    /// plus per-handle completion/batch tallies (flushed when handles drop).
    pub fn with_config_counters(
        order: u32,
        max_threads: usize,
        config: WcqConfig,
        counters: Option<Arc<CounterSet>>,
    ) -> Self {
        // One extra registration slot is used transiently to pre-fill `fq`.
        let aq = WcqRing::<F>::with_config_counters(order, max_threads, config, counters.clone());
        let fq = WcqRing::<F>::with_config_counters(order, max_threads, config, counters);
        {
            let mut init = fq.register().expect("fresh ring always has a free slot");
            for i in 0..fq.capacity() {
                init.enqueue(i);
            }
        }
        let capacity = aq.capacity() as usize;
        let data = (0..capacity)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Self {
            aq,
            fq,
            data,
            reg_hint: AtomicUsize::new(0),
        }
    }

    /// Maximum number of elements the queue can hold.
    pub fn capacity(&self) -> usize {
        self.data.len()
    }

    /// Maximum number of simultaneously registered threads.
    pub fn max_threads(&self) -> usize {
        self.aq.max_threads()
    }

    /// The wait-freedom configuration both internal rings run with.
    pub fn config(&self) -> &WcqConfig {
        self.aq.config()
    }

    /// The telemetry counter set shared by both internal rings, if attached.
    pub fn counter_set(&self) -> Option<&Arc<CounterSet>> {
        self.aq.counter_set()
    }

    /// Checker/test introspection: `(aq_threshold, fq_threshold, max)` where
    /// `max` is the §5 bound (`3n - 1`) both ring thresholds must never
    /// exceed.  Used by the `wcq-check` invariant probes; not part of the
    /// stable API.
    #[doc(hidden)]
    pub fn ring_thresholds(&self) -> (i64, i64, i64) {
        (
            self.aq.threshold(),
            self.fq.threshold(),
            self.aq.layout().max_threshold(),
        )
    }

    /// Checker/debug introspection: full-state dumps of the allocated and
    /// free rings (see [`WcqRing::debug_dump`]).  Not part of the stable API.
    #[doc(hidden)]
    pub fn debug_ring_state(&self) -> (String, String) {
        (self.aq.debug_dump(), self.fq.debug_dump())
    }

    /// Registers the calling thread with both internal rings, or `None` when
    /// `max_threads` handles are already live.
    ///
    /// Registration is O(1) amortized under handle churn: the slot this
    /// thread last held on this queue is memoized thread-locally
    /// ([`tid_memo`]) and retried first with a single CAS per ring; on a miss
    /// the probe starts from a shared free-slot hint instead of slot 0.
    pub fn register(&self) -> Option<WcqQueueHandle<'_, T, F>> {
        let key = self as *const Self as usize;
        if let Some(tid) = tid_memo::recall(key) {
            if let Some(handle) = self.register_at(tid) {
                // Re-front the LRU entry so a hot queue is not evicted by
                // colder registrations elsewhere.
                tid_memo::remember(key, tid);
                return Some(handle);
            }
        }
        let n = self.max_threads();
        // relaxed: pure probe-start hint — a stale read just means the scan
        // starts at a different slot and walks the same full circle.
        let start = self.reg_hint.load(Relaxed).min(n - 1);
        (0..n).find_map(|i| {
            let tid = (start + i) % n;
            let handle = self.register_at(tid)?;
            // relaxed: hint update; ordering-free by the same argument.
            self.reg_hint.store((tid + 1) % n, Relaxed);
            tid_memo::remember(key, tid);
            Some(handle)
        })
    }

    /// Registers the calling thread at a *specific* record slot of both
    /// internal rings (see [`WcqRing::register_at`]).  Returns `None` when the
    /// slot is taken or out of range.
    pub fn register_at(&self, tid: usize) -> Option<WcqQueueHandle<'_, T, F>> {
        self.try_acquire_slot(tid).then(|| WcqQueueHandle {
            queue: self,
            tid,
            aq_stats: WcqStats::default(),
            fq_stats: WcqStats::default(),
            tallies: OpTallies::default(),
            pace: PatienceCell::from_config(self.config()),
            _not_send: PhantomData,
        })
    }

    // ------------------------------------------------------------------
    // Raw registration split: slot acquisition and tid-keyed operations
    // without a borrowing handle.  `wcq-unbounded` builds its memoized
    // per-segment binding on these (a handle would be self-referential
    // through the hazard-protected segment pointer).
    // ------------------------------------------------------------------

    /// Claims record slot `tid` of *both* rings with one CAS each, without
    /// constructing a handle.  Returns `false` when the slot is taken or out
    /// of range.  A successful acquisition must be paired with
    /// [`WcqQueue::release_slot`].
    pub fn try_acquire_slot(&self, tid: usize) -> bool {
        if tid >= self.max_threads() || !self.aq.try_acquire_record(tid) {
            return false;
        }
        if !self.fq.try_acquire_record(tid) {
            self.aq.release_record(tid);
            return false;
        }
        true
    }

    /// Releases a record slot claimed by [`WcqQueue::try_acquire_slot`].
    ///
    /// # Safety
    /// The caller must currently own slot `tid` (i.e. this release pairs with
    /// exactly one successful `try_acquire_slot`) and must not use the slot
    /// afterwards.
    pub unsafe fn release_slot(&self, tid: usize) {
        self.aq.release_record(tid);
        self.fq.release_record(tid);
        // relaxed: probe-start hint only (see `register`); the record release
        // above carries the real synchronization.
        self.reg_hint.store(tid, Relaxed);
    }

    /// Attempts to enqueue `value` as the thread owning record slot `tid`;
    /// returns it back inside `Err` when the queue is full.
    ///
    /// `pace` is the caller's [`PatienceCell`] (see [`crate::adaptive`]);
    /// handle-based callers pass their own, raw callers keep one per slot
    /// binding (or a fresh fixed cell when off the hot path).
    ///
    /// # Safety
    /// The caller must own slot `tid` via [`WcqQueue::try_acquire_slot`] and
    /// no other thread may operate under the same `tid` concurrently.
    pub unsafe fn enqueue_at(&self, tid: usize, value: T, pace: &PatienceCell) -> Result<(), T> {
        let (index, _slow) = self.fq.dequeue_index(tid, pace);
        let Some(index) = index else {
            return Err(value);
        };
        // SAFETY: the free index came from `fq`; we own the slot until we
        // publish the index through `aq`.
        unsafe { (*self.data[index as usize].get()).write(value) };
        self.aq.enqueue_index(tid, index, pace);
        Ok(())
    }

    /// Attempts to dequeue an element as the thread owning record slot `tid`;
    /// `None` when the queue was observed empty.
    ///
    /// # Safety
    /// Same contract as [`WcqQueue::enqueue_at`].
    pub unsafe fn dequeue_at(&self, tid: usize, pace: &PatienceCell) -> Option<T> {
        let (index, _slow) = self.aq.dequeue_index(tid, pace);
        let index = index?;
        // SAFETY: the index came from `aq`; the matching enqueue fully
        // initialized the slot and nobody else touches it until we hand the
        // index back to `fq`.
        let value = unsafe { (*self.data[index as usize].get()).assume_init_read() };
        self.fq.enqueue_index(tid, index, pace);
        Some(value)
    }

    /// Attempts to enqueue a prefix of `values` as the thread owning record
    /// slot `tid`, with one free-ring F&A claiming the whole run of free
    /// slots and one data-ring F&A publishing it (instead of one pair per
    /// element).  Accepted elements are removed from the *front* of `values`
    /// in order, so the batch preserves per-producer FIFO; the remainder is
    /// left in `values` (partial success — the queue was full, or a
    /// concurrent producer raced the free-slot claim).  Returns the number
    /// of elements accepted.
    ///
    /// `values` is a `VecDeque` so the per-call front drain is O(accepted):
    /// batching layers that feed one buffer through many calls (the
    /// unbounded queue crossing segments) never pay a full front shift of
    /// the remainder.
    ///
    /// # Safety
    /// Same contract as [`WcqQueue::enqueue_at`].
    pub unsafe fn enqueue_many_at(
        &self,
        tid: usize,
        values: &mut VecDeque<T>,
        pace: &PatienceCell,
    ) -> usize {
        if values.is_empty() {
            return 0;
        }
        let mut free = Vec::with_capacity(values.len().min(self.capacity()));
        self.fq.dequeue_many(tid, &mut free, values.len(), pace);
        let accepted = free.len();
        for (&index, value) in free.iter().zip(values.drain(..accepted)) {
            // SAFETY: each free index came from `fq`; we own its slot until
            // the run is published through `aq`.
            unsafe { (*self.data[index as usize].get()).write(value) };
        }
        self.aq.enqueue_many(tid, &free, pace);
        accepted
    }

    /// Dequeues up to `max` elements into `out` as the thread owning record
    /// slot `tid`, with one data-ring F&A claiming the run and one free-ring
    /// F&A recycling the slot indices.  Returns the number appended —
    /// possibly fewer than `max` even while elements remain, but a `0` is
    /// authoritative (see `WcqRing::dequeue_many` for both halves of that
    /// contract).
    ///
    /// # Safety
    /// Same contract as [`WcqQueue::enqueue_at`].
    pub unsafe fn dequeue_many_at(
        &self,
        tid: usize,
        out: &mut Vec<T>,
        max: usize,
        pace: &PatienceCell,
    ) -> usize {
        if max == 0 {
            return 0;
        }
        let mut indices = Vec::with_capacity(max.min(self.capacity()));
        let got = self.aq.dequeue_many(tid, &mut indices, max, pace);
        for &index in &indices {
            // SAFETY: each index came from `aq`; the matching enqueue fully
            // initialized the slot and nobody else touches it until the run
            // is handed back to `fq`.
            out.push(unsafe { (*self.data[index as usize].get()).assume_init_read() });
        }
        self.fq.enqueue_many(tid, &indices, pace);
        got
    }

    /// Returns `true` if a dequeue would currently observe an empty queue
    /// (hint only under concurrency).
    pub fn is_empty_hint(&self) -> bool {
        self.aq.len_hint() == 0
    }

    /// Bytes occupied by the queue: both rings, thread records and the data
    /// array.  This is the flat line wCQ shows in Figure 10a.
    pub fn memory_footprint(&self) -> usize {
        self.aq.memory_footprint()
            + self.fq.memory_footprint()
            + self.data.len() * std::mem::size_of::<UnsafeCell<MaybeUninit<T>>>()
    }
}

impl<T, F: CellFamily> Drop for WcqQueue<T, F> {
    fn drop(&mut self) {
        // Drain and drop any remaining elements.  `&mut self` guarantees no
        // concurrent handles exist (they borrow the queue).
        let mut h = self
            .aq
            .register()
            .expect("no handles can outlive the queue");
        while let Some(index) = h.dequeue() {
            // SAFETY: the index was delivered by `aq`, so the slot holds an
            // initialized element that nobody else owns.
            unsafe { (*self.data[index as usize].get()).assume_init_drop() };
        }
    }
}

impl<T, F: CellFamily> std::fmt::Debug for WcqQueue<T, F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WcqQueue")
            .field("family", &F::NAME)
            .field("capacity", &self.capacity())
            .field("max_threads", &self.max_threads())
            .finish()
    }
}

/// A per-thread, RAII handle to a [`WcqQueue`].
///
/// The handle owns one record slot of both internal rings for its lifetime;
/// dropping it releases the slot for another thread.  Handles are `!Send`:
/// the registration facade memoizes the thread → slot binding thread-locally
/// (see [`tid_memo`]), so a handle is meaningful only on the thread that
/// acquired it.
///
/// ```compile_fail,E0277
/// use wcq_core::wcq::WcqQueue;
/// let q: WcqQueue<u64> = WcqQueue::new(4, 2);
/// std::thread::scope(|s| {
///     let h = q.register().unwrap();
///     s.spawn(move || drop(h)); // ERROR: `WcqQueueHandle` is `!Send`
/// });
/// ```
pub struct WcqQueueHandle<'q, T, F: CellFamily = NativeFamily> {
    queue: &'q WcqQueue<T, F>,
    tid: usize,
    aq_stats: WcqStats,
    fq_stats: WcqStats,
    tallies: OpTallies,
    /// Handle-local patience controller shared by both rings: ring enqueues
    /// feed its enqueue direction, ring dequeues its dequeue direction (a
    /// queue-level enqueue exercises both, via `fq` then `aq`).
    pace: PatienceCell,
    /// Pins the handle to its registering thread (`!Send`/`!Sync`).
    _not_send: PhantomData<*const ()>,
}

/// Plain per-handle operation tallies, accumulated without atomics on the hot
/// path and flushed into the queue's [`CounterSet`] (when one is attached)
/// exactly once, on handle drop.  Keeping these handle-local means the
/// instrumented build adds no shared-cache-line traffic per completed value —
/// only the rare events (helping, patience exhaustion, CAS failures) are
/// recorded immediately, inside the rings.
#[derive(Default)]
pub(crate) struct OpTallies {
    pub(crate) enqueues_completed: u64,
    pub(crate) dequeues_completed: u64,
    pub(crate) batch_values_requested: u64,
    pub(crate) batch_values_granted: u64,
}

impl OpTallies {
    /// Flushes the tallies into `set` and resets them to zero.
    pub(crate) fn flush(&mut self, set: &CounterSet) {
        set.add(Counter::EnqueuesCompleted, self.enqueues_completed);
        set.add(Counter::DequeuesCompleted, self.dequeues_completed);
        set.add(Counter::BatchValuesRequested, self.batch_values_requested);
        set.add(Counter::BatchValuesGranted, self.batch_values_granted);
        *self = Self::default();
    }
}

impl<'q, T, F: CellFamily> WcqQueueHandle<'q, T, F> {
    /// Attempts to enqueue `value`; returns it back inside `Err` when the
    /// queue is full (`Enqueue_Ptr`, Figure 2).
    pub fn enqueue(&mut self, value: T) -> Result<(), T> {
        let (index, slow) = self.queue.fq.dequeue_index(self.tid, &self.pace);
        if slow {
            self.fq_stats.slow_dequeues += 1;
        } else {
            self.fq_stats.fast_dequeues += 1;
        }
        let Some(index) = index else {
            return Err(value);
        };
        // SAFETY: the free index came from `fq`; we own the slot until we
        // publish the index through `aq`.
        unsafe { (*self.queue.data[index as usize].get()).write(value) };
        if self.queue.aq.enqueue_index(self.tid, index, &self.pace) {
            self.aq_stats.slow_enqueues += 1;
        } else {
            self.aq_stats.fast_enqueues += 1;
        }
        self.tallies.enqueues_completed += 1;
        Ok(())
    }

    /// Attempts to dequeue an element; returns `None` when the queue is empty
    /// (`Dequeue_Ptr`, Figure 2).
    pub fn dequeue(&mut self) -> Option<T> {
        let (index, slow) = self.queue.aq.dequeue_index(self.tid, &self.pace);
        if slow {
            self.aq_stats.slow_dequeues += 1;
        } else {
            self.aq_stats.fast_dequeues += 1;
        }
        let index = index?;
        // SAFETY: the index came from `aq`; the matching enqueue fully
        // initialized the slot and nobody else touches it until we hand the
        // index back to `fq`.
        let value = unsafe { (*self.queue.data[index as usize].get()).assume_init_read() };
        if self.queue.fq.enqueue_index(self.tid, index, &self.pace) {
            self.fq_stats.slow_enqueues += 1;
        } else {
            self.fq_stats.fast_enqueues += 1;
        }
        self.tallies.dequeues_completed += 1;
        Some(value)
    }

    /// Batch [`WcqQueueHandle::enqueue`]: accepts a FIFO prefix of `values`
    /// with one free-ring and one data-ring F&A for the whole run (see
    /// [`WcqQueue::enqueue_many_at`]); the unaccepted remainder stays in
    /// `values`.  Returns the number accepted.  Batch elements are counted
    /// as fast-path operations in [`WcqQueueHandle::stats`].
    pub fn enqueue_many(&mut self, values: &mut Vec<T>) -> usize {
        // The Vec ↔ VecDeque round-trip is one buffer reuse in and at most
        // one memmove out (when a prefix was drained).
        let requested = values.len() as u64;
        let mut pending: VecDeque<T> = std::mem::take(values).into();
        // SAFETY: the handle's existence proves ownership of slot `tid` on
        // the registering thread (`!Send`).
        let accepted = unsafe {
            self.queue
                .enqueue_many_at(self.tid, &mut pending, &self.pace)
        };
        *values = pending.into();
        self.fq_stats.fast_dequeues += accepted as u64;
        self.aq_stats.fast_enqueues += accepted as u64;
        self.tallies.enqueues_completed += accepted as u64;
        self.tallies.batch_values_requested += requested;
        self.tallies.batch_values_granted += accepted as u64;
        accepted
    }

    /// Batch [`WcqQueueHandle::dequeue`]: appends up to `max` elements to
    /// `out` with one data-ring and one free-ring F&A for the whole run (see
    /// [`WcqQueue::dequeue_many_at`] for the partial-success contract).
    pub fn dequeue_many(&mut self, out: &mut Vec<T>, max: usize) -> usize {
        // SAFETY: as in `enqueue_many`.
        let got = unsafe { self.queue.dequeue_many_at(self.tid, out, max, &self.pace) };
        self.aq_stats.fast_dequeues += got as u64;
        self.fq_stats.fast_enqueues += got as u64;
        self.tallies.dequeues_completed += got as u64;
        self.tallies.batch_values_requested += max as u64;
        self.tallies.batch_values_granted += got as u64;
        got
    }

    /// The queue this handle operates on.
    pub fn queue(&self) -> &'q WcqQueue<T, F> {
        self.queue
    }

    /// The record-slot index this handle owns in both rings.
    pub fn tid(&self) -> usize {
        self.tid
    }

    /// Combined fast/slow path statistics of the underlying `aq`/`fq` rings.
    ///
    /// The `aq` half counts this handle's data-ring operations (enqueues from
    /// [`WcqQueueHandle::enqueue`], dequeues from
    /// [`WcqQueueHandle::dequeue`]); the `fq` half the mirror-image free-ring
    /// operations, matching the pre-split per-ring handle statistics.
    pub fn stats(&self) -> (WcqStats, WcqStats) {
        (self.aq_stats, self.fq_stats)
    }

    /// The handle's patience cell (current bounds + contention estimate).
    pub fn pace(&self) -> &PatienceCell {
        &self.pace
    }
}

impl<'q, T, F: CellFamily> Drop for WcqQueueHandle<'q, T, F> {
    fn drop(&mut self) {
        if let Some(set) = self.queue.counter_set() {
            self.tallies.flush(set);
        }
        // SAFETY: the handle's existence proves slot ownership; this is the
        // unique release paired with the acquisition in `register_at`.
        unsafe { self.queue.release_slot(self.tid) };
    }
}

impl<'q, T, F: CellFamily> std::fmt::Debug for WcqQueueHandle<'q, T, F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WcqQueueHandle")
            .field("tid", &self.tid)
            .field("aq_stats", &self.aq_stats)
            .field("fq_stats", &self.fq_stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::super::cells::LlscFamily;
    use super::*;
    use crate::test_util::xorshift;
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Drives `q` through `len` random enqueue/dequeue operations mirrored
    /// against a VecDeque model, then drains and compares the remainder.
    fn check_against_model<F: CellFamily>(q: &WcqQueue<u64, F>, state: &mut u64, len: usize) {
        let mut h = q.register().unwrap();
        let mut model: VecDeque<u64> = VecDeque::new();
        let cap = q.capacity();
        let mut next = 0u64;
        for _ in 0..len {
            if xorshift(state) & 1 == 0 {
                let res = h.enqueue(next);
                if model.len() < cap {
                    assert!(res.is_ok());
                    model.push_back(next);
                } else {
                    assert_eq!(res, Err(next));
                }
                next += 1;
            } else {
                assert_eq!(h.dequeue(), model.pop_front());
            }
        }
        while let Some(expect) = model.pop_front() {
            assert_eq!(h.dequeue(), Some(expect));
        }
        assert_eq!(h.dequeue(), None);
    }

    #[test]
    fn enqueue_dequeue_roundtrip() {
        let q: WcqQueue<String> = WcqQueue::new(3, 2);
        let mut h = q.register().unwrap();
        h.enqueue("x".into()).unwrap();
        h.enqueue("y".into()).unwrap();
        assert_eq!(h.dequeue().as_deref(), Some("x"));
        assert_eq!(h.dequeue().as_deref(), Some("y"));
        assert_eq!(h.dequeue(), None);
    }

    #[test]
    fn full_queue_rejects_and_recovers() {
        let q: WcqQueue<u32> = WcqQueue::new(2, 1); // capacity 4
        let mut h = q.register().unwrap();
        for i in 0..4 {
            h.enqueue(i).unwrap();
        }
        assert_eq!(h.enqueue(99), Err(99));
        assert_eq!(h.dequeue(), Some(0));
        h.enqueue(99).unwrap();
        assert_eq!(h.dequeue(), Some(1));
    }

    #[test]
    fn registration_limit_enforced() {
        let q: WcqQueue<u8> = WcqQueue::new(3, 2);
        let h1 = q.register().unwrap();
        let h2 = q.register().unwrap();
        assert!(q.register().is_none());
        drop(h1);
        assert!(q.register().is_some());
        drop(h2);
    }

    #[test]
    fn register_reuses_the_memoized_tid_after_drop() {
        let q: WcqQueue<u8> = WcqQueue::new(4, 8);
        let first = q.register().unwrap();
        let tid = first.tid();
        drop(first);
        // Churn on the same thread must come back to the same record slot
        // (O(1) re-entry through the thread-local memo).
        for _ in 0..4 {
            let again = q.register().unwrap();
            assert_eq!(again.tid(), tid);
        }
    }

    #[test]
    fn register_at_targets_an_exact_slot() {
        let q: WcqQueue<u8> = WcqQueue::new(3, 4);
        let h = q.register_at(2).unwrap();
        assert_eq!(h.tid(), 2);
        assert!(q.register_at(2).is_none(), "slot 2 is taken");
        assert!(q.register_at(99).is_none(), "out of range");
        drop(h);
        assert!(q.register_at(2).is_some());
    }

    #[test]
    fn raw_slot_api_round_trips_without_a_handle() {
        let q: WcqQueue<u64> = WcqQueue::new(3, 2);
        assert!(q.try_acquire_slot(0));
        assert!(!q.try_acquire_slot(0), "double acquisition must fail");
        let pace = PatienceCell::from_config(q.config());
        // SAFETY: slot 0 acquired above; single-threaded use.
        unsafe {
            assert_eq!(q.enqueue_at(0, 41, &pace), Ok(()));
            assert_eq!(q.enqueue_at(0, 42, &pace), Ok(()));
            assert_eq!(q.dequeue_at(0, &pace), Some(41));
            assert_eq!(q.dequeue_at(0, &pace), Some(42));
            assert_eq!(q.dequeue_at(0, &pace), None);
            q.release_slot(0);
        }
        assert!(q.try_acquire_slot(0), "release frees the slot");
        // SAFETY: re-acquired just above.
        unsafe { q.release_slot(0) };
    }

    #[test]
    fn drop_releases_remaining_elements() {
        use std::sync::Arc;
        let probe = Arc::new(());
        {
            let q: WcqQueue<Arc<()>> = WcqQueue::new(3, 1);
            let mut h = q.register().unwrap();
            for _ in 0..5 {
                h.enqueue(Arc::clone(&probe)).unwrap();
            }
            assert_eq!(Arc::strong_count(&probe), 6);
            drop(h);
        }
        assert_eq!(Arc::strong_count(&probe), 1);
    }

    #[test]
    fn batch_accepts_a_fifo_prefix_when_full() {
        let q: WcqQueue<u64> = WcqQueue::new(2, 1); // capacity 4
        let mut h = q.register().unwrap();
        h.enqueue(0).unwrap();
        let mut rest: Vec<u64> = vec![1, 2, 3, 4, 5];
        // Only 3 free slots remain: the batch accepts exactly the prefix.
        assert_eq!(h.enqueue_many(&mut rest), 3);
        assert_eq!(rest, vec![4, 5]);
        let mut out = Vec::new();
        assert_eq!(h.dequeue_many(&mut out, 10), 4);
        assert_eq!(out, vec![0, 1, 2, 3]);
        assert_eq!(h.dequeue(), None);
        // The freed slots are recycled for the remainder.
        assert_eq!(h.enqueue_many(&mut rest), 2);
        assert!(rest.is_empty());
        out.clear();
        assert_eq!(h.dequeue_many(&mut out, 2), 2);
        assert_eq!(out, vec![4, 5]);
    }

    #[test]
    fn batch_roundtrip_drops_nothing() {
        use std::sync::Arc;
        let probe = Arc::new(());
        {
            let q: WcqQueue<Arc<()>> = WcqQueue::new(3, 1);
            let mut h = q.register().unwrap();
            let mut batch: Vec<Arc<()>> = (0..6).map(|_| Arc::clone(&probe)).collect();
            assert_eq!(h.enqueue_many(&mut batch), 6);
            let mut out = Vec::new();
            assert_eq!(h.dequeue_many(&mut out, 4), 4);
            drop(out);
            assert_eq!(Arc::strong_count(&probe), 3);
            drop(h);
            // Two elements left inside the queue; Drop must release them.
        }
        assert_eq!(Arc::strong_count(&probe), 1);
    }

    #[test]
    fn batch_matches_singles_under_forced_slow_path() {
        let cfg = WcqConfig {
            max_patience_enqueue: 1,
            max_patience_dequeue: 1,
            help_delay: 1,
            catchup_bound: 8,
            ..WcqConfig::default()
        };
        let q: WcqQueue<u64> = WcqQueue::with_config(4, 2, cfg);
        let mut h = q.register().unwrap();
        let mut expected = VecDeque::new();
        let mut next = 0u64;
        for round in 0..300u64 {
            let mut batch: Vec<u64> = (0..(round % 7))
                .map(|_| {
                    let v = next;
                    next += 1;
                    v
                })
                .collect();
            let accepted = h.enqueue_many(&mut batch);
            expected.extend((next - (round % 7))..(next - (round % 7) + accepted as u64));
            next = next - (round % 7) + accepted as u64;
            let mut out = Vec::new();
            h.dequeue_many(&mut out, (round % 5) as usize);
            for v in out {
                assert_eq!(Some(v), expected.pop_front());
            }
        }
        let mut out = Vec::new();
        while h.dequeue_many(&mut out, 8) > 0 {}
        for v in out {
            assert_eq!(Some(v), expected.pop_front());
        }
        assert!(expected.is_empty());
    }

    #[test]
    fn llsc_family_queue_works_end_to_end() {
        wcq_atomics::llsc::set_spurious_failure_rate(0.0);
        let q: WcqQueue<u64, LlscFamily> = WcqQueue::new(4, 2);
        let mut h = q.register().unwrap();
        for i in 0..10 {
            h.enqueue(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(h.dequeue(), Some(i));
        }
        assert_eq!(h.dequeue(), None);
    }

    #[test]
    fn mpmc_stress_sum_preserved() {
        const PRODUCERS: u64 = 3;
        const CONSUMERS: u64 = 3;
        const PER_PRODUCER: u64 = 8_000;
        let q: WcqQueue<u64> = WcqQueue::new(6, (PRODUCERS + CONSUMERS) as usize);
        let consumed_sum = AtomicU64::new(0);
        let consumed_cnt = AtomicU64::new(0);

        std::thread::scope(|s| {
            for p in 0..PRODUCERS {
                let q = &q;
                s.spawn(move || {
                    let mut h = q.register().unwrap();
                    for i in 0..PER_PRODUCER {
                        let mut v = p * PER_PRODUCER + i;
                        loop {
                            match h.enqueue(v) {
                                Ok(()) => break,
                                Err(back) => {
                                    v = back;
                                    std::thread::yield_now();
                                }
                            }
                        }
                    }
                });
            }
            for _ in 0..CONSUMERS {
                let q = &q;
                let consumed_sum = &consumed_sum;
                let consumed_cnt = &consumed_cnt;
                s.spawn(move || {
                    let mut h = q.register().unwrap();
                    loop {
                        if consumed_cnt.load(Ordering::Relaxed) >= PRODUCERS * PER_PRODUCER {
                            break;
                        }
                        match h.dequeue() {
                            Some(v) => {
                                consumed_sum.fetch_add(v, Ordering::Relaxed);
                                consumed_cnt.fetch_add(1, Ordering::Relaxed);
                            }
                            None => std::thread::yield_now(),
                        }
                    }
                });
            }
        });

        let n = PRODUCERS * PER_PRODUCER;
        assert_eq!(consumed_cnt.load(Ordering::Relaxed), n);
        assert_eq!(consumed_sum.load(Ordering::Relaxed), n * (n - 1) / 2);
        let mut h = q.register().unwrap();
        assert_eq!(h.dequeue(), None);
    }

    #[test]
    fn per_producer_order_preserved_under_forced_slow_path() {
        const PER_PRODUCER: u64 = 3_000;
        let cfg = WcqConfig {
            max_patience_enqueue: 1,
            max_patience_dequeue: 1,
            help_delay: 1,
            catchup_bound: 8,
            ..WcqConfig::default()
        };
        let q: WcqQueue<(u64, u64)> = WcqQueue::with_config(5, 3, cfg);

        std::thread::scope(|s| {
            for p in 0..2u64 {
                let q = &q;
                s.spawn(move || {
                    let mut h = q.register().unwrap();
                    for i in 1..=PER_PRODUCER {
                        let mut item = (p, i);
                        while let Err(back) = h.enqueue(item) {
                            item = back;
                            std::thread::yield_now();
                        }
                    }
                });
            }
            let q = &q;
            s.spawn(move || {
                let mut h = q.register().unwrap();
                let mut last_seen = [0u64; 2];
                let mut got = 0;
                while got < 2 * PER_PRODUCER {
                    if let Some((p, i)) = h.dequeue() {
                        assert!(i > last_seen[p as usize], "per-producer FIFO violated");
                        last_seen[p as usize] = i;
                        got += 1;
                    } else {
                        std::thread::yield_now();
                    }
                }
            });
        });
    }

    /// Sequential behaviour matches a VecDeque model for randomized operation
    /// sequences, on both hardware families, across many seeds and orders.
    #[test]
    fn sequential_matches_model_randomized_native() {
        for seed in 1..=48u64 {
            for order in 1..=3u32 {
                let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
                let len = 1 + (xorshift(&mut state) % 200) as usize;
                let q: WcqQueue<u64> = WcqQueue::new(order, 1);
                check_against_model(&q, &mut state, len);
            }
        }
    }

    #[test]
    fn sequential_matches_model_randomized_llsc() {
        wcq_atomics::llsc::set_spurious_failure_rate(0.0);
        for seed in 1..=24u64 {
            for order in 1..=3u32 {
                let mut state = seed.wrapping_mul(0xA24B_AED4_963E_E407) | 1;
                let len = 1 + (xorshift(&mut state) % 120) as usize;
                let q: WcqQueue<u64, LlscFamily> = WcqQueue::new(order, 1);
                check_against_model(&q, &mut state, len);
            }
        }
    }
}
