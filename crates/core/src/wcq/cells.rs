//! Hardware-model abstraction for wCQ's double-width memory cells.
//!
//! The paper presents wCQ for two classes of machines:
//!
//! * §3 — machines with a true double-width CAS (`CAS2`): x86-64 and AArch64.
//!   Entries are `(Value, Note)` pairs modified with `CAS2`, and the global
//!   `Head`/`Tail` are `(counter, phase-2 reference)` pairs whose counter is
//!   advanced with hardware F&A on the fast path.
//! * §4 — machines with only single-word LL/SC (PowerPC, MIPS): entry pairs
//!   share an LL/SC reservation granule and are updated with the `CAS2_Value`
//!   / `CAS2_Note` constructions of Figure 9; `Head`/`Tail` pack a small
//!   thread index next to a reduced-width counter in a single word, and F&A is
//!   emulated with an LL/SC (CAS) loop.
//!
//! Both models are captured by the [`CellFamily`] trait so that a single
//! implementation of the queue algorithm ([`super::WcqRing`]) covers both.
//! [`NativeFamily`] uses `wcq-atomics`' `lock cmpxchg16b` path;
//! [`LlscFamily`] uses the software LL/SC emulation (see DESIGN.md for why
//! this substitution preserves the Figure 12 experiment).
//!
//! One deliberate simplification relative to the paper: instead of storing a
//! raw `phase2rec_t*` pointer in the `Head`/`Tail` pair, both families store
//! the *owner thread index plus one* (0 = no request).  Thread records live in
//! a fixed array inside the ring, so the index identifies the same record the
//! pointer would, removes all raw-pointer handling from the slow path, and is
//! exactly the encoding §4 prescribes for LL/SC machines.  ABA on the
//! reference is prevented by the monotonically increasing counter, as in the
//! paper.

use core::sync::atomic::{AtomicU64, Ordering::SeqCst};

use wcq_atomics::llsc::Granule;
use wcq_atomics::AtomicDouble;

/// A 16-byte ring-entry cell holding the packed `Value` (low word) and the
/// `Note` (high word).
pub trait EntryCell: Send + Sync + Sized {
    /// Creates a cell initialized to `(value, note)`.
    fn new(value: u64, note: u64) -> Self;
    /// Atomic double-width load of `(value, note)`.
    fn load(&self) -> (u64, u64);
    /// Atomic load of the `Value` word only (fast path).
    fn load_value(&self) -> u64;
    /// Single-word CAS on the `Value` word (fast path insertion).
    fn cas_value(&self, expected: u64, new: u64) -> bool;
    /// Atomic OR on the `Value` word (`consume`), returning the old value.
    fn or_value(&self, bits: u64) -> u64;
    /// Double-width CAS replacing the `Value` word while requiring the whole
    /// `(value, note)` pair to match (`CAS2` / `CAS2_Value`).
    fn cas2_value(&self, expected: (u64, u64), new_value: u64) -> bool;
    /// Double-width CAS replacing the `Note` word while requiring the whole
    /// pair to match (`CAS2` / `CAS2_Note`).
    fn cas2_note(&self, expected: (u64, u64), new_note: u64) -> bool;
}

/// The global `Head` or `Tail` reference: a monotonically increasing counter
/// plus a phase-2 help reference (`tid + 1`, `0` = none).
pub trait GlobalCtr: Send + Sync + Sized {
    /// Creates a counter initialized to `init` with no help reference.
    fn new(init: u64) -> Self;
    /// Atomically loads `(counter, help_ref)`.
    fn load(&self) -> (u64, u64);
    /// Atomically loads the counter only.
    fn load_cnt(&self) -> u64;
    /// Fast-path fetch-and-add on the counter, returning the previous value.
    /// Leaves the help reference untouched.
    fn fetch_add_cnt(&self) -> u64;
    /// Fetch-and-add of `n` on the counter, returning the previous value —
    /// the batch-reservation primitive: one increment claims a run of `n`
    /// consecutive tickets.  Leaves the help reference untouched.
    fn fetch_add_cnt_n(&self, n: u64) -> u64;
    /// Double-width CAS on `(counter, help_ref)`.
    fn cas(&self, expected: (u64, u64), new: (u64, u64)) -> bool;
    /// Single attempt to move the counter from `expected_cnt` to `new_cnt`
    /// while preserving the help reference (used by the bounded `catchup`).
    fn cas_cnt_weak(&self, expected_cnt: u64, new_cnt: u64) -> bool;
}

/// Groups an [`EntryCell`] and a [`GlobalCtr`] implementation into one
/// hardware model.
pub trait CellFamily: 'static {
    /// Ring-entry cell type.
    type Entry: EntryCell;
    /// Head/Tail counter type.
    type Ctr: GlobalCtr;
    /// Human-readable name used by benchmarks ("native-cas2", "llsc-emu").
    const NAME: &'static str;
}

// ---------------------------------------------------------------------------
// Native double-width CAS family (§3).
// ---------------------------------------------------------------------------

/// Hardware model of §3: entries and Head/Tail are 16-byte pairs manipulated
/// with `lock cmpxchg16b`; the fast path uses hardware F&A and atomic OR.
pub struct NativeFamily;

/// Entry cell backed by [`AtomicDouble`].
pub struct NativeEntry(AtomicDouble);

impl EntryCell for NativeEntry {
    fn new(value: u64, note: u64) -> Self {
        Self(AtomicDouble::new(value, note))
    }
    #[inline]
    fn load(&self) -> (u64, u64) {
        self.0.load()
    }
    #[inline]
    fn load_value(&self) -> u64 {
        self.0.load_lo()
    }
    #[inline]
    fn cas_value(&self, expected: u64, new: u64) -> bool {
        self.0.cas_lo(expected, new)
    }
    #[inline]
    fn or_value(&self, bits: u64) -> u64 {
        self.0.fetch_or_lo(bits)
    }
    #[inline]
    fn cas2_value(&self, expected: (u64, u64), new_value: u64) -> bool {
        self.0.cas2_lo(expected, new_value)
    }
    #[inline]
    fn cas2_note(&self, expected: (u64, u64), new_note: u64) -> bool {
        self.0.cas2_hi(expected, new_note)
    }
}

/// Head/Tail counter backed by [`AtomicDouble`]: counter in the low word,
/// help reference in the high word.
pub struct NativeCtr(AtomicDouble);

impl GlobalCtr for NativeCtr {
    fn new(init: u64) -> Self {
        Self(AtomicDouble::new(init, 0))
    }
    #[inline]
    fn load(&self) -> (u64, u64) {
        self.0.load()
    }
    #[inline]
    fn load_cnt(&self) -> u64 {
        self.0.load_lo()
    }
    #[inline]
    fn fetch_add_cnt(&self) -> u64 {
        self.0.fetch_add_lo(1)
    }
    #[inline]
    fn fetch_add_cnt_n(&self, n: u64) -> u64 {
        self.0.fetch_add_lo(n)
    }
    #[inline]
    fn cas(&self, expected: (u64, u64), new: (u64, u64)) -> bool {
        self.0.cas2(expected, new)
    }
    #[inline]
    fn cas_cnt_weak(&self, expected_cnt: u64, new_cnt: u64) -> bool {
        self.0.cas_lo(expected_cnt, new_cnt)
    }
}

impl CellFamily for NativeFamily {
    type Entry = NativeEntry;
    type Ctr = NativeCtr;
    const NAME: &'static str = "native-cas2";
}

// ---------------------------------------------------------------------------
// Emulated LL/SC family (§4, Figure 9).
// ---------------------------------------------------------------------------

/// Hardware model of §4: no double-width CAS and no native F&A.  Entry pairs
/// live in one emulated LL/SC reservation granule; Head/Tail pack the help
/// reference into the top 16 bits of a single 64-bit word.
pub struct LlscFamily;

/// Entry cell backed by an emulated LL/SC [`Granule`]: word 0 is the `Value`,
/// word 1 the `Note`.
pub struct LlscEntry(Granule);

impl EntryCell for LlscEntry {
    fn new(value: u64, note: u64) -> Self {
        Self(Granule::new(value, note))
    }
    #[inline]
    fn load(&self) -> (u64, u64) {
        self.0.snapshot()
    }
    #[inline]
    fn load_value(&self) -> u64 {
        self.0.load(0)
    }
    #[inline]
    fn cas_value(&self, expected: u64, new: u64) -> bool {
        self.0.cas_word(0, expected, new)
    }
    #[inline]
    fn or_value(&self, bits: u64) -> u64 {
        self.0.fetch_or_word(0, bits)
    }
    #[inline]
    fn cas2_value(&self, expected: (u64, u64), new_value: u64) -> bool {
        self.0.cas2_word0(expected, new_value)
    }
    #[inline]
    fn cas2_note(&self, expected: (u64, u64), new_note: u64) -> bool {
        self.0.cas2_word1(expected, new_note)
    }
}

/// Head/Tail counter for LL/SC machines: a single 64-bit word with the
/// counter in the low 48 bits and the help reference (`tid + 1`) in the top
/// 16 bits, as §4 suggests ("packing a small thread index with a reduced
/// counter").  F&A is emulated with a CAS loop because PowerPC/MIPS have no
/// native wait-free F&A.
pub struct LlscCtr(AtomicU64);

impl LlscCtr {
    /// Number of bits reserved for the counter.
    pub const CNT_BITS: u32 = 48;
    const CNT_MASK: u64 = (1 << Self::CNT_BITS) - 1;

    #[inline]
    fn pack(cnt: u64, help: u64) -> u64 {
        debug_assert!(cnt <= Self::CNT_MASK, "counter exceeded 48 bits");
        debug_assert!(help < (1 << 16), "help reference exceeds 16 bits");
        (help << Self::CNT_BITS) | (cnt & Self::CNT_MASK)
    }

    #[inline]
    fn unpack(word: u64) -> (u64, u64) {
        (word & Self::CNT_MASK, word >> Self::CNT_BITS)
    }
}

impl GlobalCtr for LlscCtr {
    fn new(init: u64) -> Self {
        Self(AtomicU64::new(Self::pack(init, 0)))
    }
    #[inline]
    fn load(&self) -> (u64, u64) {
        Self::unpack(self.0.load(SeqCst))
    }
    #[inline]
    fn load_cnt(&self) -> u64 {
        Self::unpack(self.0.load(SeqCst)).0
    }
    #[inline]
    fn fetch_add_cnt(&self) -> u64 {
        self.fetch_add_cnt_n(1)
    }
    #[inline]
    fn fetch_add_cnt_n(&self, n: u64) -> u64 {
        // Emulated F&A: CAS loop preserving the help reference.  A batch
        // reservation is still one *successful* SC, so the amortization
        // carries over to the LL/SC model (n tickets per loop exit).
        loop {
            let cur = self.0.load(SeqCst);
            let (cnt, help) = Self::unpack(cur);
            let new = Self::pack(cnt + n, help);
            if self.0.compare_exchange(cur, new, SeqCst, SeqCst).is_ok() {
                return cnt;
            }
            core::hint::spin_loop();
        }
    }
    #[inline]
    fn cas(&self, expected: (u64, u64), new: (u64, u64)) -> bool {
        self.0
            .compare_exchange(
                Self::pack(expected.0, expected.1),
                Self::pack(new.0, new.1),
                SeqCst,
                SeqCst,
            )
            .is_ok()
    }
    #[inline]
    fn cas_cnt_weak(&self, expected_cnt: u64, new_cnt: u64) -> bool {
        let cur = self.0.load(SeqCst);
        let (cnt, help) = Self::unpack(cur);
        if cnt != expected_cnt {
            return false;
        }
        self.0
            .compare_exchange(cur, Self::pack(new_cnt, help), SeqCst, SeqCst)
            .is_ok()
    }
}

impl CellFamily for LlscFamily {
    type Entry = LlscEntry;
    type Ctr = LlscCtr;
    const NAME: &'static str = "llsc-emu";
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry_cell_contract<E: EntryCell>() {
        let c = E::new(5, 0);
        assert_eq!(c.load(), (5, 0));
        assert_eq!(c.load_value(), 5);
        assert!(c.cas_value(5, 6));
        assert!(!c.cas_value(5, 7));
        assert_eq!(c.or_value(0b1000), 6);
        assert_eq!(c.load_value(), 0b1110);
        // cas2_value requires both words to match and keeps the note.
        assert!(!c.cas2_value((0b1110, 99), 1));
        assert!(c.cas2_value((0b1110, 0), 1));
        assert_eq!(c.load(), (1, 0));
        // cas2_note requires both words to match and keeps the value.
        assert!(!c.cas2_note((2, 0), 7));
        assert!(c.cas2_note((1, 0), 7));
        assert_eq!(c.load(), (1, 7));
    }

    fn global_ctr_contract<C: GlobalCtr>() {
        let c = C::new(100);
        assert_eq!(c.load(), (100, 0));
        assert_eq!(c.load_cnt(), 100);
        assert_eq!(c.fetch_add_cnt(), 100);
        assert_eq!(c.fetch_add_cnt(), 101);
        assert_eq!(c.load_cnt(), 102);
        // Install a help reference, counter must advance together with it.
        assert!(c.cas((102, 0), (103, 5)));
        assert_eq!(c.load(), (103, 5));
        // Fast-path F&A leaves the help reference intact.
        assert_eq!(c.fetch_add_cnt(), 103);
        assert_eq!(c.load(), (104, 5));
        // Batch reservation: one F&A claims a run, reference still intact.
        assert_eq!(c.fetch_add_cnt_n(3), 104);
        assert_eq!(c.load(), (107, 5));
        assert!(c.cas((107, 5), (104, 5)));
        // Clearing the reference needs the exact pair.
        assert!(!c.cas((103, 5), (103, 0)));
        assert!(c.cas((104, 5), (104, 0)));
        // catchup-style weak counter CAS preserves the reference field.
        assert!(c.cas((104, 0), (104, 3)));
        assert!(c.cas_cnt_weak(104, 110));
        assert_eq!(c.load(), (110, 3));
        assert!(!c.cas_cnt_weak(104, 120));
    }

    #[test]
    fn native_entry_contract() {
        entry_cell_contract::<NativeEntry>();
    }

    #[test]
    fn llsc_entry_contract() {
        wcq_atomics::llsc::set_spurious_failure_rate(0.0);
        entry_cell_contract::<LlscEntry>();
    }

    #[test]
    fn native_ctr_contract() {
        global_ctr_contract::<NativeCtr>();
    }

    #[test]
    fn llsc_ctr_contract() {
        global_ctr_contract::<LlscCtr>();
    }

    #[test]
    fn llsc_ctr_packing_bounds() {
        let c = LlscCtr::new((1 << LlscCtr::CNT_BITS) - 2);
        assert_eq!(c.load_cnt(), (1 << LlscCtr::CNT_BITS) - 2);
        assert_eq!(c.fetch_add_cnt(), (1 << LlscCtr::CNT_BITS) - 2);
    }
}
