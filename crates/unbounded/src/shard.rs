//! The sharded unbounded queue: N independent wLSCQ shards behind one facade.
//!
//! A single [`UnboundedWcq`] funnels every thread through one head/tail pair;
//! past a handful of cores those two cache lines are the whole bottleneck.
//! [`ShardedWcq`] breaks them into `N` independent [`UnboundedWcq`] shards
//! and routes operations:
//!
//! * **enqueue** goes to the shard a [`ShardPolicy`] picks — round-robin
//!   (spread blindly), least-loaded (spread by the shards' approximate
//!   length counters, sampled two at a time), pinned (always the handle's
//!   home shard) or adaptive (a handle-local *active prefix* of the shard
//!   set that grows under contention and shrinks when load is light);
//! * **dequeue** drains the handle's *home shard* first and falls back to
//!   scanning the other shards (work stealing), so consumers stay on their
//!   local shard — and its memoized segment binding — until it runs dry.
//!
//! ## What sharding keeps, and what it trades
//!
//! Each shard is a full wLSCQ: wait-freedom within segments, hazard-pointer
//! retirement and the bounded recycling cache are all preserved per shard, so
//! total memory stays bounded by the backlog plus `N` caches (the composition
//! argument of the memory-bounds literature: bounded queues compose without
//! losing the bound).  What is traded is the *global* FIFO order: elements
//! routed to different shards can be dequeued in either order.  Per-producer
//! FIFO — the order the stress oracle checks — survives exactly when each
//! producer's values all land on one shard, i.e. under
//! [`ShardPolicy::Pinned`]; the spreading policies trade that order for
//! throughput, which is the usual sharded-queue contract.
//!
//! Emptiness is also per-shard: a dequeue returns `None` after every shard
//! answered empty once, which (as for any scan of independent queues) is a
//! racy observation, not a linearizable global-emptiness check.

use std::sync::Arc;

use wcq_core::adaptive::{LOWER_LEVEL, RAISE_LEVEL};
use wcq_core::api::{QueueHandle, WaitFreeQueue};
use wcq_core::metrics::{Counter, CounterSet};
use wcq_core::wcq::{CellFamily, LlscFamily, NativeFamily, WcqConfig};

use crate::queue::{SegmentStats, UnboundedWcq, UnboundedWcqHandle, DEFAULT_SEGMENT_CACHE};

/// How a [`ShardedWcq`] routes enqueues to its shards.
///
/// Dequeue routing is fixed (home shard first, then steal) — the policy only
/// decides where new elements land, which is where the order/throughput trade
/// lives (see [`ShardedWcq`]'s docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ShardPolicy {
    /// Each handle cycles through the shards, one per enqueue.  Uniform by
    /// construction, no shared state, no counter reads — the default.
    #[default]
    RoundRobin,
    /// Each enqueue samples **two** shards (power-of-two-choices, from a
    /// handle-local seeded generator) and goes to the one with the smaller
    /// approximate length ([`UnboundedWcq::len_hint`]).  Two-choice sampling
    /// keeps the classic load-balance guarantee while paying two counter
    /// reads per enqueue instead of a full `N`-shard scan; with two shards
    /// it degenerates to comparing both, i.e. the exact least-loaded pick.
    LeastLoaded,
    /// Every enqueue goes to the handle's home shard.  Keeps each handle's
    /// values in one FIFO stream, so per-producer order is preserved for the
    /// lifetime of the producer's handle (a dropped-and-reacquired handle
    /// may land on a different home shard), at the cost of no load spreading
    /// from a single producer.
    Pinned,
    /// Handle-local adaptive routing: enqueues round-robin over an *active
    /// prefix* of the shard set that starts at one shard, doubles when the
    /// prefix shows ring contention or backlog, and halves when both are
    /// low — so a lightly loaded queue gets the single-shard fast path and
    /// a contended one spreads like [`ShardPolicy::RoundRobin`].  Once every
    /// shard is active, routing switches to the home shard (the
    /// [`ShardPolicy::Pinned`] cache pattern) because spreading can no
    /// longer help.  Dequeues still scan the **full** shard set home-first,
    /// so a shrink of the active prefix never strands elements on a
    /// deactivated shard.
    Adaptive,
}

impl ShardPolicy {
    /// Short policy name for reports and `Debug` output.
    pub fn name(&self) -> &'static str {
        match self {
            ShardPolicy::RoundRobin => "round-robin",
            ShardPolicy::LeastLoaded => "least-loaded",
            ShardPolicy::Pinned => "pinned",
            ShardPolicy::Adaptive => "adaptive",
        }
    }
}

/// An unbounded MPMC queue of `N` independent [`UnboundedWcq`] shards behind
/// the one [`WaitFreeQueue`] facade.
///
/// Construct through `wcq::builder().shards(n).build_sharded()`; threads
/// operate through [`ShardedWcqHandle`]s, which register on *every* shard
/// (one record slot each) so any shard can be enqueued to or stolen from
/// without a registration on the hot path.
pub struct ShardedWcq<T, F: CellFamily = NativeFamily> {
    shards: Box<[UnboundedWcq<T, F>]>,
    policy: ShardPolicy,
    max_threads: usize,
}

impl<T, F: CellFamily> ShardedWcq<T, F> {
    /// Creates `shards` shards whose segments hold `2^seg_order` elements,
    /// each usable by up to `max_threads` registered threads, with the
    /// default [`WcqConfig`] and segment-cache size.
    pub fn new(shards: usize, seg_order: u32, max_threads: usize, policy: ShardPolicy) -> Self {
        Self::with_config_and_cache(
            shards,
            seg_order,
            max_threads,
            WcqConfig::default(),
            DEFAULT_SEGMENT_CACHE,
            policy,
        )
    }

    /// Fully explicit constructor; every shard shares the same geometry,
    /// wait-freedom configuration and cache bound.
    pub fn with_config_and_cache(
        shards: usize,
        seg_order: u32,
        max_threads: usize,
        config: WcqConfig,
        cache_limit: usize,
        policy: ShardPolicy,
    ) -> Self {
        Self::with_config_cache_counters(
            shards,
            seg_order,
            max_threads,
            config,
            cache_limit,
            policy,
            None,
        )
    }

    /// Like [`ShardedWcq::with_config_and_cache`] with an optional shared
    /// [`CounterSet`]: every shard records into the same set, and routing
    /// decisions (routes vs steals) are tallied per handle and flushed on
    /// handle drop.
    pub fn with_config_cache_counters(
        shards: usize,
        seg_order: u32,
        max_threads: usize,
        config: WcqConfig,
        cache_limit: usize,
        policy: ShardPolicy,
        counters: Option<Arc<CounterSet>>,
    ) -> Self {
        assert!(shards >= 1, "a sharded queue needs at least one shard");
        let shards: Box<[UnboundedWcq<T, F>]> = (0..shards)
            .map(|_| {
                UnboundedWcq::with_config_cache_counters(
                    seg_order,
                    max_threads,
                    config,
                    cache_limit,
                    counters.clone(),
                )
            })
            .collect();
        Self {
            shards,
            policy,
            max_threads,
        }
    }

    /// The telemetry counter set shared by every shard, if attached.
    pub fn counter_set(&self) -> Option<&Arc<CounterSet>> {
        self.shards[0].counter_set()
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The enqueue-routing policy this queue was built with.
    pub fn policy(&self) -> ShardPolicy {
        self.policy
    }

    /// Maximum number of simultaneously registered threads (per shard, and
    /// therefore for the queue as a whole — every handle occupies one slot on
    /// every shard).
    pub fn max_threads(&self) -> usize {
        self.max_threads
    }

    /// The underlying shards, for statistics and memory accounting (each is a
    /// full [`UnboundedWcq`] with its own segment stats and cache stats).
    pub fn shards(&self) -> &[UnboundedWcq<T, F>] {
        &self.shards
    }

    /// Approximate total element count: the sum of the shards'
    /// [`UnboundedWcq::len_hint`]s.  A hint, not a linearizable size.
    pub fn len_hint(&self) -> usize {
        self.shards.iter().map(|s| s.len_hint()).sum()
    }

    /// Aggregated segment statistics across all shards.
    pub fn segment_stats(&self) -> SegmentStats {
        let mut total = SegmentStats {
            live: 0,
            cached: 0,
            retired_pending: 0,
            allocated_total: 0,
            reused_total: 0,
        };
        for stats in self.shards.iter().map(|s| s.segment_stats()) {
            total.live += stats.live;
            total.cached += stats.cached;
            total.retired_pending += stats.retired_pending;
            total.allocated_total += stats.allocated_total;
            total.reused_total += stats.reused_total;
        }
        total
    }

    /// Registers the calling thread on every shard, or `None` when any shard
    /// has all `max_threads` slots taken (partially acquired slots are
    /// released again).  Re-registration is O(shards) single-CAS re-entries
    /// through the per-shard tid memo.
    pub fn register(&self) -> Option<ShardedWcqHandle<'_, T, F>> {
        let mut handles = Vec::with_capacity(self.shards.len());
        for shard in self.shards.iter() {
            match shard.register() {
                Some(h) => handles.push(h),
                // Dropping the partial vec releases the slots already taken.
                None => return None,
            }
        }
        // The home shard is derived from the shard-0 tid: fixed for the
        // handle's lifetime (pinned routing feeds one FIFO stream per
        // handle), and usually stable across re-registration too because the
        // tid memo hands the same slot back — but the memo is best-effort,
        // so pinned-order guarantees are scoped to one handle's lifetime.
        let home = handles[0].tid() % self.shards.len();
        let tid = handles[0].tid() as u64;
        Some(ShardedWcqHandle {
            queue: self,
            handles,
            home,
            cursor: home,
            active: 1,
            window: 0,
            // Seeded from the tid so two-choice sampling is deterministic
            // under the harness's pinned-tid stress plans.
            rng: (tid + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            routes: 0,
            steals: 0,
            grown: 0,
            shrunk: 0,
        })
    }

    /// Registers the calling thread, panicking when any shard's registration
    /// slots are exhausted ([`ShardedWcq::register`] is the fallible variant).
    pub fn handle(&self) -> ShardedWcqHandle<'_, T, F> {
        self.register().unwrap_or_else(|| {
            panic!(
                "all {} registration slots of this sharded wLSCQ queue are in use",
                self.max_threads
            )
        })
    }
}

impl<T, F: CellFamily> std::fmt::Debug for ShardedWcq<T, F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedWcq")
            .field("family", &F::NAME)
            .field("shards", &self.shards.len())
            .field("policy", &self.policy.name())
            .field("max_threads", &self.max_threads)
            .field("len_hint", &self.len_hint())
            .finish()
    }
}

/// A per-thread handle to a [`ShardedWcq`]: one [`UnboundedWcqHandle`] per
/// shard, so each shard keeps its own memoized segment binding — a consumer
/// that stays on its home shard touches exactly one binding, and a stolen-from
/// shard's binding is memoized for the next steal.
///
/// Like the handles it is built from, a sharded handle is `!Send`:
///
/// ```compile_fail,E0277
/// use wcq_unbounded::{ShardPolicy, ShardedWcq};
/// let q: ShardedWcq<u64> = ShardedWcq::new(2, 4, 2, ShardPolicy::RoundRobin);
/// std::thread::scope(|s| {
///     let h = q.register().unwrap();
///     s.spawn(move || drop(h)); // ERROR: `ShardedWcqHandle` is `!Send`
/// });
/// ```
pub struct ShardedWcqHandle<'q, T, F: CellFamily = NativeFamily> {
    queue: &'q ShardedWcq<T, F>,
    handles: Vec<UnboundedWcqHandle<'q, T, F>>,
    /// This handle's local shard: where pinned enqueues land and where every
    /// dequeue scan starts.
    home: usize,
    /// Rotating cursor for round-robin routing and least-loaded tie-breaks.
    cursor: usize,
    /// Size of this handle's active shard prefix under
    /// [`ShardPolicy::Adaptive`] (`1..=shards`); unused by the other
    /// policies.  Handle-local on purpose: no shared routing state to
    /// contend on, at the cost of each handle learning the load level
    /// independently.
    active: usize,
    /// Routes since the last adaptive retune.
    window: u32,
    /// Handle-local xorshift state for two-choice sampling.
    rng: u64,
    /// Enqueue routing decisions made by this handle (plain tallies, flushed
    /// into the shared counter set on drop).
    routes: u64,
    /// Dequeues satisfied by a *non-home* shard (work stealing).
    steals: u64,
    /// Adaptive active-prefix growth events (flushed on drop).
    grown: u64,
    /// Adaptive active-prefix shrink events (flushed on drop).
    shrunk: u64,
}

/// Routes between adaptive retunes: small enough to react within one stress
/// round, large enough that the per-retune length-hint reads amortize to
/// noise on the enqueue path.
const ADAPT_WINDOW: u32 = 32;

/// Per-active-shard backlog (length hint) above which the adaptive prefix
/// widens even without ring contention: a deep backlog means consumers are
/// behind, and spreading gives them independent shards to drain.
const GROW_BACKLOG: usize = 64;

impl<'q, T, F: CellFamily> ShardedWcqHandle<'q, T, F> {
    /// The queue this handle operates on.
    pub fn queue(&self) -> &'q ShardedWcq<T, F> {
        self.queue
    }

    /// The shard pinned enqueues land on and dequeue scans start from.
    pub fn home_shard(&self) -> usize {
        self.home
    }

    /// Segment-binding switches performed on shard `shard` (see
    /// [`UnboundedWcqHandle::segment_rebinds`]).
    #[deprecated(
        since = "0.2.0",
        note = "attach a `CountingInstrument` via `builder().instrument(...)` and read \
                `MetricsSnapshot` (segment_rebinds) instead"
    )]
    pub fn shard_rebinds(&self, shard: usize) -> u64 {
        #[allow(deprecated)]
        self.handles[shard].segment_rebinds()
    }

    /// Total segment-binding switches across all shards.
    #[deprecated(
        since = "0.2.0",
        note = "attach a `CountingInstrument` via `builder().instrument(...)` and read \
                `MetricsSnapshot` (segment_rebinds) instead"
    )]
    pub fn segment_rebinds(&self) -> u64 {
        #[allow(deprecated)]
        self.handles.iter().map(|h| h.segment_rebinds()).sum()
    }

    /// Picks the target shard for one enqueue under the queue's policy.
    fn route(&mut self) -> usize {
        self.routes += 1;
        let n = self.handles.len();
        match self.queue.policy {
            ShardPolicy::Pinned => self.home,
            ShardPolicy::RoundRobin => {
                let pick = self.cursor % n;
                self.cursor = self.cursor.wrapping_add(1);
                pick
            }
            ShardPolicy::LeastLoaded => {
                if n == 1 {
                    return 0;
                }
                // Power-of-two-choices: sample two distinct shards and take
                // the shorter, rather than scanning all `n` length counters.
                // With n == 2 the "sample" is both shards, so the pick is
                // exactly least-loaded; ties go to `a`, which rotates with
                // the cursor so tied shards still share the load.
                let (a, b) = if n == 2 {
                    let start = self.cursor % 2;
                    self.cursor = self.cursor.wrapping_add(1);
                    (start, 1 - start)
                } else {
                    let a = self.next_rand() % n;
                    let b = (a + 1 + self.next_rand() % (n - 1)) % n;
                    (a, b)
                };
                if self.queue.shards[b].len_hint() < self.queue.shards[a].len_hint() {
                    b
                } else {
                    a
                }
            }
            ShardPolicy::Adaptive => {
                self.window += 1;
                if self.window >= ADAPT_WINDOW {
                    self.window = 0;
                    self.retune();
                }
                if self.active >= n {
                    // Every shard is active: spreading cannot reduce
                    // contention further, so take the pinned cache pattern.
                    self.home
                } else {
                    let pick = self.cursor % self.active;
                    self.cursor = self.cursor.wrapping_add(1);
                    pick
                }
            }
        }
    }

    /// Handle-local xorshift64 step (two-choice sampling).
    #[inline]
    fn next_rand(&mut self) -> usize {
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x as usize
    }

    /// Re-sizes the adaptive active prefix from what this handle can see:
    /// its own per-shard contention EWMAs (handle-local, free to read) and
    /// the active shards' length hints (one relaxed atomic read per active
    /// shard, paid once per [`ADAPT_WINDOW`] routes — never per enqueue).
    fn retune(&mut self) {
        let n = self.handles.len();
        let contention = self.handles[..self.active]
            .iter()
            .map(|h| h.contention_level())
            .max()
            .unwrap_or(0);
        let backlog: usize = self.queue.shards[..self.active]
            .iter()
            .map(|s| s.len_hint())
            .sum();
        if self.active < n && (contention >= RAISE_LEVEL || backlog > self.active * GROW_BACKLOG) {
            self.active = (self.active * 2).min(n);
            self.grown += 1;
        } else if self.active > 1
            && contention < LOWER_LEVEL
            && backlog <= self.active.div_ceil(2) * (GROW_BACKLOG / 2)
        {
            // Only shrink when the remaining backlog comfortably fits the
            // halved prefix, so the shrink itself cannot create a hot spot.
            self.active = self.active.div_ceil(2);
            self.shrunk += 1;
        }
    }

    /// Current size of the adaptive active prefix (always `1` until the
    /// first retune; equal to the shard count once fully widened).  Only
    /// meaningful under [`ShardPolicy::Adaptive`].
    pub fn active_shards(&self) -> usize {
        self.active
    }

    /// Checker seam: pins the adaptive active prefix to `n` shards (clamped
    /// to `1..=shards`) and restarts the retune window.  The schedule
    /// explorer uses this to place a prefix shrink at an exact point in an
    /// interleaving — shrink safety must hold wherever the retune lands, so
    /// forcing the transition is sound.  Not meant for applications.
    #[doc(hidden)]
    pub fn debug_set_active(&mut self, n: usize) {
        self.active = n.clamp(1, self.handles.len());
        self.window = 0;
    }

    /// Enqueues `value` on the shard the policy picks.  Never fails: each
    /// shard is unbounded.
    pub fn enqueue(&mut self, value: T) {
        let shard = self.route();
        self.handles[shard].enqueue(value);
    }

    /// Dequeues an element: the home shard first, then every other shard in
    /// ring order (work stealing).  `None` means each shard was observed
    /// empty once during the scan — a racy observation, as for any sharded
    /// queue, not a linearizable global-emptiness check.
    pub fn dequeue(&mut self) -> Option<T> {
        let n = self.handles.len();
        for k in 0..n {
            let shard = (self.home + k) % n;
            if let Some(v) = self.handles[shard].dequeue() {
                self.steals += (k > 0) as u64;
                return Some(v);
            }
        }
        None
    }

    /// Enqueues every element of `values` (draining it) onto **one** shard
    /// picked by a single policy decision, so the batch pays one route — one
    /// cursor bump or one length scan — instead of one per element.  Returns
    /// the number enqueued (always the original `values.len()`; each shard is
    /// unbounded).
    ///
    /// Routing whole batches is the sharded FIFO contract at batch
    /// granularity: a pinned producer's batches all land on its home shard in
    /// order, while the spreading policies spread batch-by-batch rather than
    /// element-by-element.
    pub fn enqueue_many(&mut self, values: &mut Vec<T>) -> usize {
        if values.is_empty() {
            return 0;
        }
        let shard = self.route();
        self.handles[shard].enqueue_many(values)
    }

    /// Dequeues up to `max` elements into `out`: the home shard is drained
    /// first, and only if it yields nothing does the scan steal from the
    /// other shards in ring order — the batch analogue of
    /// [`ShardedWcqHandle::dequeue`]'s routing.  Returns the number appended;
    /// `0` means every shard was observed empty once during the scan.
    pub fn dequeue_many(&mut self, out: &mut Vec<T>, max: usize) -> usize {
        if max == 0 {
            return 0;
        }
        let n = self.handles.len();
        for k in 0..n {
            let shard = (self.home + k) % n;
            let got = self.handles[shard].dequeue_many(out, max);
            if got > 0 {
                self.steals += (k > 0) as u64;
                return got;
            }
        }
        0
    }

    /// Forces a hazard-pointer scan of the retired segments of every shard
    /// (used by tests to make recycling deterministic).
    pub fn flush_reclamation(&mut self) {
        for h in &mut self.handles {
            h.flush_reclamation();
        }
    }
}

impl<'q, T, F: CellFamily> Drop for ShardedWcqHandle<'q, T, F> {
    fn drop(&mut self) {
        if let Some(set) = self.queue.counter_set() {
            set.add(Counter::ShardRoutes, self.routes);
            set.add(Counter::ShardSteals, self.steals);
            set.add(Counter::ShardSetGrown, self.grown);
            set.add(Counter::ShardSetShrunk, self.shrunk);
        }
    }
}

impl<'q, T, F: CellFamily> std::fmt::Debug for ShardedWcqHandle<'q, T, F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        #[allow(deprecated)]
        let rebinds = self.segment_rebinds();
        f.debug_struct("ShardedWcqHandle")
            .field("shards", &self.handles.len())
            .field("home", &self.home)
            .field("rebinds", &rebinds)
            .finish()
    }
}

impl<T: Send, F: CellFamily> QueueHandle<T> for ShardedWcqHandle<'_, T, F> {
    fn try_enqueue(&mut self, value: T) -> Result<(), T> {
        ShardedWcqHandle::enqueue(self, value);
        Ok(())
    }
    fn dequeue(&mut self) -> Option<T> {
        ShardedWcqHandle::dequeue(self)
    }
    fn enqueue(&mut self, value: T) {
        // Unbounded: no full state to retry around.
        ShardedWcqHandle::enqueue(self, value);
    }
    fn enqueue_many(&mut self, values: &mut Vec<T>) -> usize {
        ShardedWcqHandle::enqueue_many(self, values)
    }
    fn dequeue_into(&mut self, out: &mut Vec<T>, max: usize) -> usize {
        ShardedWcqHandle::dequeue_many(self, out, max)
    }
}

impl<T: Send, F: CellFamily> WaitFreeQueue<T> for ShardedWcq<T, F> {
    fn name(&self) -> &'static str {
        match (F::NAME == LlscFamily::NAME, self.policy) {
            (false, ShardPolicy::Adaptive) => "Sharded wLSCQ (adaptive)",
            (true, ShardPolicy::Adaptive) => "Sharded wLSCQ (LL/SC, adaptive)",
            (true, _) => "Sharded wLSCQ (LL/SC)",
            (false, _) => "Sharded wLSCQ",
        }
    }
    fn try_handle(&self) -> Option<Box<dyn QueueHandle<T> + '_>> {
        self.register().map(|h| Box::new(h) as _)
    }
    fn max_threads(&self) -> usize {
        ShardedWcq::max_threads(self)
    }
    fn memory_footprint(&self) -> usize {
        std::mem::size_of::<Self>()
            + self
                .shards
                .iter()
                .map(|s| s.memory_footprint())
                .sum::<usize>()
    }
    fn is_empty_hint(&self) -> bool {
        self.shards.iter().all(|s| s.len_hint() == 0)
    }
    fn has_empty_hint(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn round_robin_spreads_one_producer_across_all_shards() {
        let q: ShardedWcq<u64> = ShardedWcq::new(4, 6, 2, ShardPolicy::RoundRobin);
        let mut h = q.handle();
        for i in 0..40 {
            h.enqueue(i);
        }
        for shard in q.shards() {
            assert_eq!(shard.len_hint(), 10, "{q:?}");
        }
    }

    #[test]
    fn pinned_keeps_one_producer_on_its_home_shard() {
        let q: ShardedWcq<u64> = ShardedWcq::new(4, 6, 2, ShardPolicy::Pinned);
        let mut h = q.handle();
        for i in 0..40 {
            h.enqueue(i);
        }
        assert_eq!(q.shards()[h.home_shard()].len_hint(), 40);
        assert_eq!(q.len_hint(), 40);
        // And a pinned stream preserves FIFO end to end.
        for i in 0..40 {
            assert_eq!(h.dequeue(), Some(i));
        }
        assert_eq!(h.dequeue(), None);
    }

    #[test]
    fn least_loaded_balances_against_a_preloaded_shard() {
        let q: ShardedWcq<u64> = ShardedWcq::new(2, 6, 2, ShardPolicy::LeastLoaded);
        let mut h = q.handle();
        // Preload one shard through the round-robin-free path: pin by hand.
        // 20 least-loaded enqueues must all prefer the empty shard until the
        // lengths equalize, then alternate.
        for i in 0..10 {
            h.handles[0].enqueue(1000 + i);
        }
        for i in 0..20 {
            h.enqueue(i);
        }
        let (a, b) = (q.shards()[0].len_hint(), q.shards()[1].len_hint());
        assert_eq!(a + b, 30);
        assert!(a.abs_diff(b) <= 1, "least-loaded must equalize: {a} vs {b}");
    }

    #[test]
    fn dequeue_steals_from_every_shard() {
        let q: ShardedWcq<u64> = ShardedWcq::new(4, 6, 2, ShardPolicy::RoundRobin);
        let mut producer = q.handle();
        for i in 0..100 {
            producer.enqueue(i);
        }
        drop(producer);
        // A single consumer must recover all values even though they live on
        // four different shards.
        let mut consumer = q.handle();
        let mut seen = HashSet::new();
        while let Some(v) = consumer.dequeue() {
            assert!(seen.insert(v), "duplicated {v}");
        }
        assert_eq!(seen.len(), 100);
        assert_eq!(q.len_hint(), 0);
    }

    #[test]
    fn one_shard_behaves_like_plain_wlscq() {
        let q: ShardedWcq<u64> = ShardedWcq::new(1, 3, 2, ShardPolicy::LeastLoaded);
        let mut h = q.handle();
        for i in 0..100 {
            h.enqueue(i); // forces segment growth inside the single shard
        }
        for i in 0..100 {
            assert_eq!(h.dequeue(), Some(i), "single shard is plain FIFO");
        }
        assert_eq!(h.dequeue(), None);
    }

    #[test]
    fn registration_exhaustion_releases_partial_slots() {
        let q: ShardedWcq<u8> = ShardedWcq::new(2, 4, 2, ShardPolicy::RoundRobin);
        let h1 = q.register().unwrap();
        let h2 = q.register().unwrap();
        assert!(q.register().is_none(), "both slots taken on every shard");
        drop(h1);
        let h3 = q.register();
        assert!(h3.is_some(), "drop must release one slot per shard");
        drop(h2);
        drop(h3);
        // After all drops every shard accepts registrations again.
        for shard in q.shards() {
            assert!(shard.register().is_some());
        }
    }

    #[test]
    fn trait_facade_round_trips() {
        let q: ShardedWcq<u64> = ShardedWcq::new(4, 4, 2, ShardPolicy::RoundRobin);
        let dynq: &dyn WaitFreeQueue<u64> = &q;
        assert_eq!(dynq.name(), "Sharded wLSCQ");
        assert!(dynq.is_empty_hint());
        let mut h = dynq.handle();
        for i in 0..200 {
            h.enqueue(i);
        }
        assert!(!dynq.is_empty_hint());
        let mut seen = HashSet::new();
        while let Some(v) = h.dequeue() {
            assert!(seen.insert(v));
        }
        assert_eq!(seen.len(), 200);
        assert!(dynq.memory_footprint() > 0);
        assert_eq!(dynq.max_threads(), 2);
    }

    #[test]
    fn llsc_family_round_trips_and_reports_its_name() {
        wcq_atomics::llsc::set_spurious_failure_rate(0.0);
        let q: ShardedWcq<u64, LlscFamily> = ShardedWcq::new(2, 4, 2, ShardPolicy::Pinned);
        assert_eq!(WaitFreeQueue::<u64>::name(&q), "Sharded wLSCQ (LL/SC)");
        let mut h = q.handle();
        for i in 0..50 {
            h.enqueue(i);
        }
        for i in 0..50 {
            assert_eq!(h.dequeue(), Some(i));
        }
    }

    #[test]
    fn mpmc_stress_sum_preserved_across_shards_and_growth() {
        const THREADS: u64 = 4;
        const PER_THREAD: u64 = 4_000;
        // Tiny 16-slot segments on every shard guarantee constant churn.
        let q: ShardedWcq<u64> = ShardedWcq::new(4, 4, THREADS as usize, ShardPolicy::RoundRobin);
        let sum = AtomicU64::new(0);
        let count = AtomicU64::new(0);
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let q = &q;
                let sum = &sum;
                let count = &count;
                s.spawn(move || {
                    let mut h = q.handle();
                    for i in 0..PER_THREAD {
                        h.enqueue(t * PER_THREAD + i);
                        if let Some(v) = h.dequeue() {
                            sum.fetch_add(v, Ordering::Relaxed);
                            count.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    while let Some(v) = h.dequeue() {
                        sum.fetch_add(v, Ordering::Relaxed);
                        count.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        let n = THREADS * PER_THREAD;
        assert_eq!(count.load(Ordering::Relaxed), n);
        assert_eq!(sum.load(Ordering::Relaxed), n * (n - 1) / 2);
    }

    #[test]
    fn batch_enqueue_routes_once_per_batch() {
        let q: ShardedWcq<u64> = ShardedWcq::new(4, 6, 2, ShardPolicy::RoundRobin);
        let mut h = q.handle();
        // Four batches of 10 must land on four different shards whole, not be
        // sprayed element-wise (which would put 10 on every shard anyway but
        // interleave streams).
        for b in 0..4u64 {
            let mut batch: Vec<u64> = (b * 10..(b + 1) * 10).collect();
            assert_eq!(h.enqueue_many(&mut batch), 10);
        }
        for shard in q.shards() {
            assert_eq!(shard.len_hint(), 10, "whole batches spread round-robin");
        }
        // Each shard holds one contiguous FIFO batch.
        for shard in q.shards() {
            let mut sh = shard.register().unwrap();
            let first = sh.dequeue().unwrap();
            assert_eq!(first % 10, 0, "batches were not split across shards");
            for offset in 1..10 {
                assert_eq!(sh.dequeue(), Some(first + offset));
            }
        }
    }

    #[test]
    fn batch_dequeue_drains_home_then_steals() {
        let q: ShardedWcq<u64> = ShardedWcq::new(2, 6, 2, ShardPolicy::Pinned);
        let mut h = q.handle();
        let mut batch: Vec<u64> = (0..20).collect();
        h.enqueue_many(&mut batch);
        // Park 5 values on the non-home shard by hand to force a steal later.
        let other = (h.home_shard() + 1) % 2;
        for i in 100..105 {
            h.handles[other].enqueue(i);
        }
        let mut out = Vec::new();
        let mut drained = 0;
        while drained < 20 {
            let got = h.dequeue_many(&mut out, 8);
            assert!(got > 0);
            drained += got;
        }
        assert_eq!(out, (0..20).collect::<Vec<_>>(), "home FIFO drained first");
        out.clear();
        let mut stolen = 0;
        while stolen < 5 {
            let got = h.dequeue_many(&mut out, 8);
            assert!(got > 0, "steal scan must reach the other shard");
            stolen += got;
        }
        assert_eq!(out, (100..105).collect::<Vec<_>>());
        assert_eq!(h.dequeue_many(&mut out, 8), 0);
    }

    #[test]
    fn batch_trait_impls_delegate_and_hint_is_advertised() {
        let q: ShardedWcq<u64> = ShardedWcq::new(2, 4, 2, ShardPolicy::RoundRobin);
        let dynq: &dyn WaitFreeQueue<u64> = &q;
        assert!(dynq.has_empty_hint());
        let mut h = dynq.handle();
        let mut batch: Vec<u64> = (0..30).collect();
        assert_eq!(h.enqueue_many(&mut batch), 30);
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        loop {
            out.clear();
            if h.dequeue_into(&mut out, 7) == 0 {
                break;
            }
            for v in &out {
                assert!(seen.insert(*v));
            }
        }
        assert_eq!(seen.len(), 30);
    }

    #[test]
    fn least_loaded_p2c_avoids_a_heavily_preloaded_shard() {
        let q: ShardedWcq<u64> = ShardedWcq::new(4, 6, 2, ShardPolicy::LeastLoaded);
        let mut h = q.handle();
        // 100 values parked on shard 0 by hand.  Every two-choice sample
        // that includes shard 0 pairs it with a strictly shorter shard (the
        // others never exceed 200/3 < 100), so shard 0 must receive none of
        // the 200 routed enqueues.
        for i in 0..100 {
            h.handles[0].enqueue(10_000 + i);
        }
        for i in 0..200 {
            h.enqueue(i);
        }
        assert_eq!(
            q.shards()[0].len_hint(),
            100,
            "two-choice sampling kept routing away from the loaded shard"
        );
        assert_eq!(q.len_hint(), 300);
        // And nothing is stranded: one consumer recovers everything.
        let mut seen = HashSet::new();
        while let Some(v) = h.dequeue() {
            assert!(seen.insert(v));
        }
        assert_eq!(seen.len(), 300);
    }

    #[test]
    fn adaptive_starts_on_a_single_shard() {
        let q: ShardedWcq<u64> = ShardedWcq::new(4, 6, 2, ShardPolicy::Adaptive);
        let mut h = q.handle();
        assert_eq!(h.active_shards(), 1);
        // Below both the contention and backlog thresholds the prefix stays
        // at one shard, i.e. the single-shard fast path: everything lands on
        // shard 0 and per-producer FIFO is preserved end to end.
        for i in 0..30 {
            h.enqueue(i);
        }
        assert_eq!(h.active_shards(), 1);
        assert_eq!(q.shards()[0].len_hint(), 30);
        for i in 0..30 {
            assert_eq!(h.dequeue(), Some(i));
        }
    }

    #[test]
    fn adaptive_widens_under_backlog_then_shrinks_when_drained() {
        let q: ShardedWcq<u64> = ShardedWcq::new(4, 6, 2, ShardPolicy::Adaptive);
        let mut h = q.handle();
        // An undrained producer builds backlog past GROW_BACKLOG per active
        // shard; successive retunes must widen the prefix to the full set.
        for i in 0..2_000u64 {
            h.enqueue(i);
        }
        assert_eq!(h.active_shards(), 4, "backlog must widen the prefix");
        // Drain everything; with an empty queue and an idle ring the next
        // retunes must walk the prefix back down to one shard.
        let mut seen = HashSet::new();
        while let Some(v) = h.dequeue() {
            assert!(seen.insert(v));
        }
        assert_eq!(seen.len(), 2_000, "widening and shrinking lose nothing");
        for i in 0..200 {
            h.enqueue(i);
            assert!(h.dequeue().is_some());
        }
        assert_eq!(h.active_shards(), 1, "drained queue shrinks back");
    }

    #[test]
    fn adaptive_shrink_strands_nothing_behind_the_prefix() {
        let q: ShardedWcq<u64> = ShardedWcq::new(4, 6, 2, ShardPolicy::Adaptive);
        let mut h = q.handle();
        // Force the prefix wide (once it covers the full set, routing goes
        // home, so widening alone leaves the tail shards empty)...
        for i in 0..1_000u64 {
            h.enqueue(i);
        }
        assert_eq!(h.active_shards(), 4);
        // ...and park values on *every* shard directly, so that when the
        // prefix shrinks there is data sitting behind it.
        for shard in 0..4u64 {
            for j in 0..50 {
                h.handles[shard as usize].enqueue(10_000 + shard * 50 + j);
            }
        }
        // Drain with light interleaved traffic: the prefix shrinks while
        // elements still sit on deactivated shards, and the full-set
        // home-first dequeue scan must recover every value anyway.
        let mut seen = HashSet::new();
        let mut next = 20_000u64;
        while let Some(v) = h.dequeue() {
            assert!(seen.insert(v), "duplicated {v}");
            if next < 20_400 {
                h.enqueue(next);
                next += 1;
            }
        }
        assert_eq!(
            seen.len() as u64,
            1_000 + 200 + (next - 20_000),
            "shrink must not strand elements"
        );
        assert_eq!(q.len_hint(), 0);
        // A calm phase (retunes only run on routes, and the drain tail above
        // is dequeue-only) walks the prefix back down.
        for i in 0..200 {
            h.enqueue(i);
            assert!(h.dequeue().is_some());
        }
        assert_eq!(h.active_shards(), 1, "drained queue shrinks the prefix");
    }

    #[test]
    fn adaptive_name_is_policy_aware() {
        let q: ShardedWcq<u64> = ShardedWcq::new(2, 4, 1, ShardPolicy::Adaptive);
        assert_eq!(WaitFreeQueue::<u64>::name(&q), "Sharded wLSCQ (adaptive)");
        let q: ShardedWcq<u64, LlscFamily> = ShardedWcq::new(2, 4, 1, ShardPolicy::Adaptive);
        assert_eq!(
            WaitFreeQueue::<u64>::name(&q),
            "Sharded wLSCQ (LL/SC, adaptive)"
        );
    }

    #[test]
    fn aggregated_segment_stats_sum_over_shards() {
        let q: ShardedWcq<u64> = ShardedWcq::new(3, 3, 1, ShardPolicy::RoundRobin);
        let mut h = q.handle();
        for i in 0..90 {
            h.enqueue(i); // 30 values per 8-slot-segment shard: growth everywhere
        }
        let stats = q.segment_stats();
        assert!(
            stats.live >= 3,
            "every shard keeps at least one live segment"
        );
        assert_eq!(
            stats.live,
            q.shards().iter().map(|s| s.segments_live()).sum::<usize>()
        );
    }
}
