//! The unbounded queue: a Michael–Scott-style outer list of wCQ segments.

use std::collections::VecDeque;
use std::ptr;
use std::sync::atomic::{
    AtomicIsize, AtomicPtr, AtomicUsize,
    Ordering::{Relaxed, SeqCst},
};
use std::sync::Arc;

use wcq_atomics::{Backoff, CachePadded};
use wcq_core::adaptive::PatienceCell;
use wcq_core::api::{tid_memo, QueueHandle, WaitFreeQueue};
use wcq_core::metrics::{Counter, CounterSet};
use wcq_core::wcq::{CellFamily, LlscFamily, NativeFamily, WcqConfig};
use wcq_reclaim::{HazardDomain, HazardHandle};

use crate::segment::{recycle_segment, Segment, SegmentCache};

/// Default number of drained segments kept for reuse.
pub const DEFAULT_SEGMENT_CACHE: usize = 4;

/// Live/allocated/cached segment counts of an [`UnboundedWcq`] (statistics
/// for the memory tests and the bench JSON output).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentStats {
    /// Segments currently linked into the queue (always >= 1).
    pub live: usize,
    /// Drained segments parked in the reuse cache.
    pub cached: usize,
    /// Retired segments awaiting hazard-pointer reclamation.
    pub retired_pending: usize,
    /// Segments ever obtained from the allocator (not from the cache).
    pub allocated_total: usize,
    /// Appends served from the cache instead of the allocator.
    pub reused_total: usize,
}

impl SegmentStats {
    /// Segments currently occupying memory, whatever their role.
    pub fn resident(&self) -> usize {
        self.live + self.cached + self.retired_pending
    }
}

/// Hit/miss statistics of an [`UnboundedWcq`]'s segment-recycling cache.
///
/// A *hit* is a segment append served from the cache, a *miss* one that had
/// to go to the allocator; at steady state (bursts that drain) every append
/// after warm-up should hit.  `recycled`/`reused` count the other direction
/// and the link-race-adjusted reuse (see `SegmentCache` internals).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Cache lookups that found a recycled segment.
    pub hits: usize,
    /// Cache lookups that fell through to the allocator.
    pub misses: usize,
    /// Segments accepted back into the cache after retirement.
    pub recycled: usize,
    /// Cache-served segments that actually won their link race.
    pub reused: usize,
    /// Segments currently parked in the cache.
    pub len: usize,
}

/// An unbounded MPMC FIFO queue of `T`: fixed-capacity wait-free wCQ ring
/// segments linked into a Michael–Scott-style outer list (the paper's LSCQ
/// construction, §2.3, with wCQ rings — "wLSCQ").
///
/// * **Within a segment** every operation is wait-free (the wCQ guarantee).
/// * **Across segments** appending and retiring uses the MS-queue CAS
///   discipline (lock-free: some thread always makes progress, an individual
///   append can be delayed).  Additionally, a dequeuer advancing the head
///   past a drained segment first waits for enqueuers that obtained a slot
///   credit before the segment closed; that wait is bounded by one inner
///   *wait-free* enqueue per straggler, so it is finite whenever the
///   stragglers are scheduled, but it is not a lock-free step — the same
///   trade LSCQ makes when the ring cannot atomically reject late enqueuers.
/// * **Memory usage** is bounded by the traffic's actual backlog: drained
///   segments are retired through a [`HazardDomain`] and recycled via a
///   bounded segment cache, so steady-state operation performs no
///   per-operation allocation (the bounded-memory property of the paper,
///   amortized to O(segments in flight)).
///
/// Generic over the same hardware families as [`wcq_core::wcq::WcqQueue`]:
/// [`NativeFamily`] (double-width CAS) and [`wcq_core::wcq::LlscFamily`].
///
/// Threads operate through [`UnboundedWcqHandle`]s obtained from
/// [`UnboundedWcq::register`]; at most `max_threads` handles can be live.
pub struct UnboundedWcq<T, F: CellFamily = NativeFamily> {
    head: CachePadded<AtomicPtr<Segment<T, F>>>,
    tail: CachePadded<AtomicPtr<Segment<T, F>>>,
    domain: HazardDomain,
    /// Must be declared after `domain`: dropping the domain reclaims orphans
    /// through `recycle_segment`, which dereferences the cache.
    cache: Box<SegmentCache<T, F>>,
    seg_order: u32,
    max_threads: usize,
    config: WcqConfig,
    per_segment_bytes: usize,
    segments_live: AtomicUsize,
    segments_allocated: AtomicUsize,
    /// Approximate element count: incremented after a completed enqueue,
    /// decremented after a successful dequeue.  Deliberately decoupled from
    /// the queue's linearization points — it is a *routing hint* (the sharded
    /// queue's least-loaded policy and `is_empty_hint` read it), never a
    /// correctness input, so relaxed ordering suffices.  The relaxed RMW on
    /// this dedicated padded line is the price every operation pays for the
    /// hint; the warn-only bench differ tracks it against the pre-counter
    /// baselines.
    len_hint: CachePadded<AtomicIsize>,
    /// Optional telemetry counter set, shared with every segment's inner
    /// rings; segment-lifecycle events are recorded here too.
    counters: Option<Arc<CounterSet>>,
}

// SAFETY: segments are shared through hazard-protected atomic pointers; the
// cache and domain are Sync; `T: Send` values cross threads through the
// inner wait-free queues.
unsafe impl<T: Send, F: CellFamily> Send for UnboundedWcq<T, F> {}
unsafe impl<T: Send, F: CellFamily> Sync for UnboundedWcq<T, F> {}

impl<T, F: CellFamily> UnboundedWcq<T, F> {
    /// Creates a queue whose segments hold `2^seg_order` elements, usable by
    /// up to `max_threads` registered threads, with the default [`WcqConfig`]
    /// and segment-cache size.
    pub fn new(seg_order: u32, max_threads: usize) -> Self {
        Self::with_config(seg_order, max_threads, WcqConfig::default())
    }

    /// Like [`UnboundedWcq::new`] with an explicit wait-freedom
    /// configuration for the inner rings.
    pub fn with_config(seg_order: u32, max_threads: usize, config: WcqConfig) -> Self {
        Self::with_config_and_cache(seg_order, max_threads, config, DEFAULT_SEGMENT_CACHE)
    }

    /// Fully explicit constructor: `cache_limit` bounds how many drained
    /// segments are kept for reuse instead of being freed.
    pub fn with_config_and_cache(
        seg_order: u32,
        max_threads: usize,
        config: WcqConfig,
        cache_limit: usize,
    ) -> Self {
        Self::with_config_cache_counters(seg_order, max_threads, config, cache_limit, None)
    }

    /// Like [`UnboundedWcq::with_config_and_cache`] with an optional shared
    /// [`CounterSet`] receiving telemetry from every segment's inner rings
    /// plus segment-lifecycle events (allocs, cache hits/misses, reuse,
    /// retirement) and per-handle completion tallies.
    pub fn with_config_cache_counters(
        seg_order: u32,
        max_threads: usize,
        config: WcqConfig,
        cache_limit: usize,
        counters: Option<Arc<CounterSet>>,
    ) -> Self {
        assert!(max_threads >= 1, "at least one thread must register");
        assert!(
            max_threads as u64 <= (1u64 << seg_order),
            "segment capacity must be >= max_threads (the paper's k <= n)"
        );
        let cache = Box::new(SegmentCache::new(cache_limit));
        let cache_ptr: *const SegmentCache<T, F> = &*cache;
        let first = Box::into_raw(Box::new(Segment::new(
            seg_order,
            max_threads,
            config,
            cache_ptr,
            counters.clone(),
        )));
        // SAFETY: freshly allocated, exclusively owned.
        let per_segment_bytes = unsafe { (*first).footprint() };
        Self {
            head: CachePadded::new(AtomicPtr::new(first)),
            tail: CachePadded::new(AtomicPtr::new(first)),
            // Slot 0 protects the segment of the operation in flight; slot 1
            // pins the handle's memoized segment binding between operations.
            domain: HazardDomain::new(max_threads, 2),
            cache,
            seg_order,
            max_threads,
            config,
            per_segment_bytes,
            segments_live: AtomicUsize::new(1),
            segments_allocated: AtomicUsize::new(1),
            len_hint: CachePadded::new(AtomicIsize::new(0)),
            counters,
        }
    }

    /// Records `n` into `counter` when telemetry is attached.
    #[inline]
    fn count(&self, counter: Counter, n: u64) {
        if let Some(set) = &self.counters {
            set.add(counter, n);
        }
    }

    /// The telemetry counter set shared with every segment, if attached.
    pub fn counter_set(&self) -> Option<&Arc<CounterSet>> {
        self.counters.as_ref()
    }

    /// Capacity of a single segment (`2^seg_order`).
    pub fn segment_capacity(&self) -> usize {
        1 << self.seg_order
    }

    /// Maximum number of simultaneously registered threads.
    pub fn max_threads(&self) -> usize {
        self.max_threads
    }

    /// Registers the calling thread, or `None` when `max_threads` handles
    /// are already live.
    ///
    /// Like [`wcq_core::wcq::WcqQueue::register`], re-registration by a
    /// thread that held a handle before is O(1) through the facade's
    /// thread-local tid memo.
    pub fn register(&self) -> Option<UnboundedWcqHandle<'_, T, F>> {
        let key = self as *const Self as usize;
        let hp = tid_memo::recall(key)
            .and_then(|tid| self.domain.register_at(tid))
            .or_else(|| self.domain.register())?;
        tid_memo::remember(key, hp.tid());
        Some(UnboundedWcqHandle {
            queue: self,
            hp,
            bound: ptr::null_mut(),
            pace: PatienceCell::from_config(&self.config),
            rebinds: 0,
            enqueues_completed: 0,
            dequeues_completed: 0,
            batch_values_requested: 0,
            batch_values_granted: 0,
        })
    }

    /// Registers the calling thread, panicking when all `max_threads`
    /// registration slots are in use (the RAII-facade convenience;
    /// [`UnboundedWcq::register`] is the fallible variant).
    pub fn handle(&self) -> UnboundedWcqHandle<'_, T, F> {
        self.register().unwrap_or_else(|| {
            panic!(
                "all {} registration slots of this wLSCQ queue are in use",
                self.max_threads
            )
        })
    }

    /// Current segment statistics.
    pub fn segment_stats(&self) -> SegmentStats {
        SegmentStats {
            live: self.segments_live.load(SeqCst),
            cached: self.cache.len(),
            retired_pending: self.domain.pending(),
            allocated_total: self.segments_allocated.load(SeqCst),
            reused_total: self.cache.reused_total(),
        }
    }

    /// Hit/miss statistics of the segment-recycling cache.
    #[deprecated(
        since = "0.2.0",
        note = "attach a `CountingInstrument` via `builder().instrument(...)` and read \
                `MetricsSnapshot` (segment_cache_hits / segment_cache_misses / \
                segments_reused) instead"
    )]
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            hits: self.cache.hits_total(),
            misses: self.cache.misses_total(),
            recycled: self.cache.recycled_total(),
            reused: self.cache.reused_total(),
            len: self.cache.len(),
        }
    }

    /// Approximate number of elements currently queued.
    ///
    /// Maintained as a side counter next to the real operations, so it can
    /// transiently lag both ways under concurrency; transient negatives clamp
    /// to zero.  Use it for load-balancing decisions (the sharded queue's
    /// least-loaded routing) and freshness hints — never as an emptiness
    /// proof; only a dequeue that returns `None` is authoritative.
    pub fn len_hint(&self) -> usize {
        // relaxed: advisory snapshot; the doc contract above says a stale
        // or torn read is acceptable.
        self.len_hint.load(Relaxed).max(0) as usize
    }

    /// Segments currently linked into the queue.
    pub fn segments_live(&self) -> usize {
        self.segments_live.load(SeqCst)
    }

    /// Segments ever obtained from the allocator.
    pub fn segments_allocated(&self) -> usize {
        self.segments_allocated.load(SeqCst)
    }

    /// Segments recycled through the cache so far.
    pub fn segments_recycled(&self) -> usize {
        self.cache.recycled_total()
    }

    /// Approximate bytes currently held: every resident segment (live,
    /// cached or awaiting reclamation) plus the queue header.
    pub fn memory_footprint(&self) -> usize {
        std::mem::size_of::<Self>() + self.segment_stats().resident() * self.per_segment_bytes
    }

    /// Obtains a fresh tail segment — from the cache when possible — already
    /// holding `value` as its first element, ready to be linked.  The `bool`
    /// reports whether the segment came from the cache (the reuse statistic
    /// is only recorded once the link race is won).
    fn fresh_segment_with(&self, tid: usize, value: T) -> (*mut Segment<T, F>, bool) {
        let cached = self.cache.take();
        let from_cache = cached.is_some();
        self.count(
            if from_cache {
                Counter::SegmentCacheHits
            } else {
                Counter::SegmentCacheMisses
            },
            1,
        );
        let seg = cached.unwrap_or_else(|| {
            self.segments_allocated.fetch_add(1, SeqCst);
            self.count(Counter::SegmentAllocs, 1);
            Box::into_raw(Box::new(Segment::new(
                self.seg_order,
                self.max_threads,
                self.config,
                &*self.cache,
                self.counters.clone(),
            )))
        });
        self.segments_live.fetch_add(1, SeqCst);
        // SAFETY: unpublished, exclusively owned by this thread.
        let seg_ref = unsafe { &*seg };
        if seg_ref.try_enqueue(tid, value).is_err() {
            unreachable!("a fresh segment must accept its first element");
        }
        (seg, from_cache)
    }

    /// Takes back the pre-loaded value from an unpublished segment (another
    /// thread won the append race) and parks the segment in the cache.
    fn abandon_fresh(&self, tid: usize, seg: *mut Segment<T, F>) -> T {
        // SAFETY: unpublished, exclusively owned by this thread.
        let seg_ref = unsafe { &*seg };
        let value = seg_ref
            .try_dequeue(tid)
            .expect("unpublished segment holds exactly the pre-loaded element");
        self.segments_live.fetch_sub(1, SeqCst);
        // SAFETY: still exclusively owned; never linked, so no hazard can
        // point at it.
        unsafe { SegmentCache::give_back(&*self.cache, seg) };
        value
    }
}

impl<T, F: CellFamily> Drop for UnboundedWcq<T, F> {
    fn drop(&mut self) {
        // Free every segment still linked; the inner `WcqQueue` drops drain
        // remaining elements.  Retired-but-unreclaimed segments are owned by
        // `domain` (dropped next), which recycles them into `cache` (dropped
        // last) — field order in the struct enforces this.
        let mut cur = self.head.load(SeqCst);
        while !cur.is_null() {
            // SAFETY: `&mut self` means no handles are live; the list is ours.
            let boxed = unsafe { Box::from_raw(cur) };
            cur = boxed.next.load(SeqCst);
        }
    }
}

impl<T, F: CellFamily> std::fmt::Debug for UnboundedWcq<T, F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UnboundedWcq")
            .field("family", &F::NAME)
            .field("segment_capacity", &self.segment_capacity())
            .field("max_threads", &self.max_threads)
            .field("segments", &self.segment_stats())
            .finish()
    }
}

/// A per-thread handle to an [`UnboundedWcq`].
///
/// The handle owns one hazard-domain participant slot; its participant id
/// doubles as the thread-record index inside every segment, so binding to a
/// segment is a single CAS per ring.
///
/// The handle additionally **memoizes the last segment it touched**: the
/// segment stays bound (record slots held, hazard slot 1 pinning it) between
/// operations, so the common stay-in-one-segment case skips the per-operation
/// acquire/release round trip entirely — two CASes and two releases per ring
/// amortize to zero (the ROADMAP's "cheaper per-operation segment binding").
/// A bound segment cannot be recycled until the handle rebinds or drops, so
/// at most one extra segment per registered handle can linger in the retired
/// state — the memory bound stays O(backlog + threads).
///
/// Handles are `!Send` (they hold the raw memoized segment pointer and the
/// thread-local tid memo assumes thread affinity):
///
/// ```compile_fail,E0277
/// use wcq_unbounded::UnboundedWcq;
/// let q: UnboundedWcq<u64> = UnboundedWcq::new(4, 2);
/// std::thread::scope(|s| {
///     let h = q.register().unwrap();
///     s.spawn(move || drop(h)); // ERROR: `UnboundedWcqHandle` is `!Send`
/// });
/// ```
pub struct UnboundedWcqHandle<'q, T, F: CellFamily = NativeFamily> {
    queue: &'q UnboundedWcq<T, F>,
    hp: HazardHandle<'q>,
    /// The memoized segment this handle is currently bound to (null when
    /// unbound).  Kept alive by hazard slot 1 for as long as it is set.
    bound: *mut Segment<T, F>,
    /// Handle-local patience controller, carried *across* segments: the
    /// contention a handle sees is a property of the workload, not of which
    /// segment currently holds the backlog, so rebinding must not reset it.
    pace: PatienceCell,
    /// How many times the memo missed and the binding moved to a different
    /// segment (statistics; lets tests assert the memo actually hits).
    rebinds: u64,
    /// Plain per-handle completion/batch tallies, flushed into the queue's
    /// counter set (when attached) once, on drop — no shared-cache-line
    /// traffic per completed value.
    enqueues_completed: u64,
    dequeues_completed: u64,
    batch_values_requested: u64,
    batch_values_granted: u64,
}

impl<'q, T, F: CellFamily> UnboundedWcqHandle<'q, T, F> {
    /// The stable per-thread index of this handle.
    pub fn tid(&self) -> usize {
        self.hp.tid()
    }

    /// The queue this handle operates on.
    pub fn queue(&self) -> &'q UnboundedWcq<T, F> {
        self.queue
    }

    /// Number of segment-binding switches this handle has performed.  Stays
    /// at 1 while all operations land in one segment (the memoized fast
    /// case); grows by at least one per segment the handle crosses.
    #[deprecated(
        since = "0.2.0",
        note = "attach a `CountingInstrument` via `builder().instrument(...)` and read \
                `MetricsSnapshot` (segment_rebinds) instead"
    )]
    pub fn segment_rebinds(&self) -> u64 {
        self.rebinds
    }

    /// Points the memoized binding at `seg`, releasing the previous one.
    ///
    /// # Safety
    /// `seg` must be protected by hazard slot 0 (it cannot be reclaimed while
    /// we move hazard slot 1 onto it).
    unsafe fn rebind(&mut self, seg: *mut Segment<T, F>) {
        if self.bound == seg {
            return;
        }
        self.unbind();
        self.hp.protect_raw(1, seg);
        // SAFETY: protected via slot 0 per the function contract.
        let bound = unsafe { (*seg).bind(self.hp.tid()) };
        debug_assert!(bound, "the outer tid is exclusive to this handle");
        self.bound = seg;
        self.rebinds += 1;
    }

    /// Releases the memoized binding, if any.
    fn unbind(&mut self) {
        if !self.bound.is_null() {
            // SAFETY: hazard slot 1 kept the segment alive since `rebind`,
            // and the bind it pairs with was taken there.
            unsafe { (*self.bound).unbind(self.hp.tid()) };
            self.bound = ptr::null_mut();
            self.hp.clear_one(1);
        }
    }

    /// Enqueues `value`.  Never fails: when the tail segment is full it is
    /// closed and a new segment (pre-loaded with `value`) is appended.
    pub fn enqueue(&mut self, value: T) {
        let tid = self.hp.tid();
        let mut value = value;
        loop {
            let tailp = self.hp.protect(0, &self.queue.tail);
            // SAFETY: protected by hazard slot 0; segments are retired only
            // after becoming unreachable and unprotected.
            let seg = unsafe { &*tailp };
            let next = seg.next.load(SeqCst);
            if !next.is_null() {
                // Help swing the lagging outer tail, as in MSQueue.
                let _ = self
                    .queue
                    .tail
                    .compare_exchange(tailp, next, SeqCst, SeqCst);
                continue;
            }
            // SAFETY: `tailp` is protected by slot 0 (rebind contract), and
            // the bound op runs under the binding established here.
            let attempt = unsafe {
                self.rebind(tailp);
                seg.try_enqueue_bound(tid, value, &self.pace)
            };
            match attempt {
                Ok(()) => {
                    // relaxed: advisory length hint — monotonicity errors only skew
                    // load-balance/freshness decisions, never correctness (see `len_hint`).
                    self.queue.len_hint.fetch_add(1, Relaxed);
                    self.enqueues_completed += 1;
                    self.hp.clear_one(0);
                    return;
                }
                Err(back) => {
                    value = back;
                    // Full: close so no later enqueue can land (the LSCQ
                    // discipline — a segment is closed before it gains a
                    // successor), then append a fresh segment carrying the
                    // value, so winning the link race completes the enqueue.
                    seg.close();
                    let (fresh, from_cache) = self.queue.fresh_segment_with(tid, value);
                    if seg
                        .next
                        .compare_exchange(ptr::null_mut(), fresh, SeqCst, SeqCst)
                        .is_ok()
                    {
                        if from_cache {
                            self.queue.cache.note_reused();
                            self.queue.count(Counter::SegmentsReused, 1);
                        }
                        let _ = self
                            .queue
                            .tail
                            .compare_exchange(tailp, fresh, SeqCst, SeqCst);
                        // The pre-loaded value became reachable when the link
                        // CAS published the segment.
                        // relaxed: advisory length hint — monotonicity errors only skew
                        // load-balance/freshness decisions, never correctness (see `len_hint`).
                        self.queue.len_hint.fetch_add(1, Relaxed);
                        self.enqueues_completed += 1;
                        self.hp.clear_one(0);
                        return;
                    }
                    // Lost the race: reclaim the value and retry on the
                    // now-extended list.
                    value = self.queue.abandon_fresh(tid, fresh);
                }
            }
        }
    }

    /// Dequeues an element; `None` when the whole queue was observed empty.
    pub fn dequeue(&mut self) -> Option<T> {
        let tid = self.hp.tid();
        // Contention-capped: under pressure the straggling enqueuer we may
        // wait on below needs the CPU more than we need a long spin phase.
        let mut backoff = Backoff::with_max_shift(self.pace.spin_cap());
        loop {
            let headp = self.hp.protect(0, &self.queue.head);
            // SAFETY: protected by hazard slot 0; the bound ops below run
            // under the binding established by `rebind`.
            let seg = unsafe {
                self.rebind(headp);
                &*headp
            };
            // SAFETY: bound just above.
            if let Some(v) = unsafe { seg.try_dequeue_bound(tid, &self.pace) } {
                // relaxed: advisory length hint — monotonicity errors only skew
                // load-balance/freshness decisions, never correctness (see `len_hint`).
                self.queue.len_hint.fetch_sub(1, Relaxed);
                self.dequeues_completed += 1;
                self.hp.clear_one(0);
                return Some(v);
            }
            let next = seg.next.load(SeqCst);
            if next.is_null() {
                // Empty head segment with no successor: the queue was empty
                // at the inner dequeue's linearization point.
                self.hp.clear_one(0);
                return None;
            }
            // The segment is closed (it has a successor).  Before advancing,
            // wait out enqueuers that hold a pre-close credit, then re-check
            // emptiness: after that, the segment is permanently empty.
            if seg.inflight() != 0 {
                // Bounded exponential backoff, then yield: the straggler
                // completes a *wait-free* inner enqueue as soon as it gets
                // CPU, so giving it the core beats burning ours.
                backoff.snooze_or_yield();
                continue;
            }
            // SAFETY: still bound to `headp`.
            if let Some(v) = unsafe { seg.try_dequeue_bound(tid, &self.pace) } {
                // relaxed: advisory length hint — monotonicity errors only skew
                // load-balance/freshness decisions, never correctness (see `len_hint`).
                self.queue.len_hint.fetch_sub(1, Relaxed);
                self.dequeues_completed += 1;
                self.hp.clear_one(0);
                return Some(v);
            }
            // Help a lagging tail past the segment we are about to retire
            // (MS-queue discipline).  The appender's hazard pins the segment
            // until its own tail swing, so this is not needed for safety, but
            // it keeps `head` from ever overtaking `tail`.
            let _ = self
                .queue
                .tail
                .compare_exchange(headp, next, SeqCst, SeqCst);
            if self
                .queue
                .head
                .compare_exchange(headp, next, SeqCst, SeqCst)
                .is_ok()
            {
                self.queue.segments_live.fetch_sub(1, SeqCst);
                // Release our own memoized binding before retiring the
                // segment, or our hazard slot 1 would keep it pending until
                // the next rebind.
                self.unbind();
                self.hp.clear_one(0);
                self.queue.count(Counter::SegmentsRetired, 1);
                // SAFETY: the CAS winner is the unique retirer of the now
                // unreachable segment; `recycle_segment` matches `T, F`.
                unsafe { self.hp.retire_with(headp, recycle_segment::<T, F>) };
            }
        }
    }

    /// Enqueues every element of `values` (draining it), paying the tail
    /// protection, memo rebind, close-check, and `len_hint` update **once per
    /// segment run** instead of once per element.  Returns the number
    /// enqueued, which — the queue being unbounded — is always the original
    /// `values.len()`.
    ///
    /// Elements that straddle a segment boundary fall back to the single-op
    /// close-and-append path for one element, then resume batching into the
    /// fresh tail, so the wait-freedom and exact-close arguments of
    /// [`UnboundedWcqHandle::enqueue`] carry over unchanged.
    pub fn enqueue_many(&mut self, values: &mut Vec<T>) -> usize {
        let tid = self.hp.tid();
        // A `VecDeque` makes every front removal along the segment walk O(1)
        // (a batch crossing many full segments would otherwise pay a front
        // shift of the whole remainder per segment); the queue is unbounded,
        // so the buffer always drains and nothing is moved back at the end.
        self.batch_values_requested += values.len() as u64;
        let mut pending: VecDeque<T> = std::mem::take(values).into();
        let mut total = 0;
        while !pending.is_empty() {
            let tailp = self.hp.protect(0, &self.queue.tail);
            // SAFETY: protected by hazard slot 0; segments are retired only
            // after becoming unreachable and unprotected.
            let seg = unsafe { &*tailp };
            let next = seg.next.load(SeqCst);
            if !next.is_null() {
                let _ = self
                    .queue
                    .tail
                    .compare_exchange(tailp, next, SeqCst, SeqCst);
                continue;
            }
            // SAFETY: `tailp` is protected by slot 0 (rebind contract), and
            // the bound op runs under the binding established here.
            let accepted = unsafe {
                self.rebind(tailp);
                seg.try_enqueue_many_bound(tid, &mut pending, &self.pace)
            };
            if accepted > 0 {
                // relaxed: advisory length hint — monotonicity errors only skew
                // load-balance/freshness decisions, never correctness (see `len_hint`).
                self.queue.len_hint.fetch_add(accepted as isize, Relaxed);
                self.enqueues_completed += accepted as u64;
                total += accepted;
                continue;
            }
            // Full or closed with nothing accepted: push one element through
            // the single-op path (which closes the tail and appends a fresh
            // segment), then resume batching into the new tail.
            let value = pending.pop_front().expect("loop guard: non-empty");
            // `enqueue` tallies its own completion.
            self.enqueue(value);
            total += 1;
        }
        self.hp.clear_one(0);
        self.batch_values_granted += total as u64;
        total
    }

    /// Dequeues up to `max` elements into `out` with one head protection,
    /// memo rebind, and `len_hint` update per call.  Returns the number
    /// appended; `0` means the whole queue was observed empty.
    ///
    /// A call never straddles a segment boundary: the first segment that
    /// yields anything ends the call, so fewer than `max` elements returned
    /// does **not** imply the queue is empty.
    pub fn dequeue_many(&mut self, out: &mut Vec<T>, max: usize) -> usize {
        if max == 0 {
            return 0;
        }
        self.batch_values_requested += max as u64;
        let tid = self.hp.tid();
        // Contention-capped, as in `dequeue`.
        let mut backoff = Backoff::with_max_shift(self.pace.spin_cap());
        loop {
            let headp = self.hp.protect(0, &self.queue.head);
            // SAFETY: protected by hazard slot 0; the bound ops below run
            // under the binding established by `rebind`.
            let seg = unsafe {
                self.rebind(headp);
                &*headp
            };
            // SAFETY: bound just above.
            let got = unsafe { seg.try_dequeue_many_bound(tid, out, max, &self.pace) };
            if got > 0 {
                // relaxed: advisory length hint — monotonicity errors only skew
                // load-balance/freshness decisions, never correctness (see `len_hint`).
                self.queue.len_hint.fetch_sub(got as isize, Relaxed);
                self.dequeues_completed += got as u64;
                self.batch_values_granted += got as u64;
                self.hp.clear_one(0);
                return got;
            }
            let next = seg.next.load(SeqCst);
            if next.is_null() {
                self.hp.clear_one(0);
                return 0;
            }
            if seg.inflight() != 0 {
                backoff.snooze_or_yield();
                continue;
            }
            // SAFETY: still bound to `headp`.
            let got = unsafe { seg.try_dequeue_many_bound(tid, out, max, &self.pace) };
            if got > 0 {
                // relaxed: advisory length hint — monotonicity errors only skew
                // load-balance/freshness decisions, never correctness (see `len_hint`).
                self.queue.len_hint.fetch_sub(got as isize, Relaxed);
                self.dequeues_completed += got as u64;
                self.batch_values_granted += got as u64;
                self.hp.clear_one(0);
                return got;
            }
            let _ = self
                .queue
                .tail
                .compare_exchange(headp, next, SeqCst, SeqCst);
            if self
                .queue
                .head
                .compare_exchange(headp, next, SeqCst, SeqCst)
                .is_ok()
            {
                self.queue.segments_live.fetch_sub(1, SeqCst);
                self.unbind();
                self.hp.clear_one(0);
                self.queue.count(Counter::SegmentsRetired, 1);
                // SAFETY: the CAS winner is the unique retirer of the now
                // unreachable segment; `recycle_segment` matches `T, F`.
                unsafe { self.hp.retire_with(headp, recycle_segment::<T, F>) };
            }
        }
    }

    /// Forces a hazard-pointer scan of this handle's retired segments right
    /// now (used by tests to make recycling deterministic).
    pub fn flush_reclamation(&mut self) {
        self.hp.flush();
    }

    /// The handle's patience cell (current bounds + contention estimate).
    pub fn pace(&self) -> &PatienceCell {
        &self.pace
    }

    /// The handle's current contention estimate (fixed point,
    /// `wcq_core::adaptive::EWMA_ONE` = one extra fast-path attempt per ring
    /// operation).  Handle-local — reading it touches no shared memory.  The
    /// sharded front-end's adaptive router feeds on this.
    pub fn contention_level(&self) -> u32 {
        self.pace.contention_level()
    }
}

impl<'q, T, F: CellFamily> Drop for UnboundedWcqHandle<'q, T, F> {
    fn drop(&mut self) {
        if let Some(set) = self.queue.counter_set() {
            set.add(Counter::EnqueuesCompleted, self.enqueues_completed);
            set.add(Counter::DequeuesCompleted, self.dequeues_completed);
            set.add(Counter::BatchValuesRequested, self.batch_values_requested);
            set.add(Counter::BatchValuesGranted, self.batch_values_granted);
            set.add(Counter::SegmentRebinds, self.rebinds);
        }
        // Release the memoized binding so the segment can be recycled; the
        // hazard handle then releases the participant slot itself.
        self.unbind();
    }
}

impl<'q, T, F: CellFamily> std::fmt::Debug for UnboundedWcqHandle<'q, T, F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UnboundedWcqHandle")
            .field("tid", &self.hp.tid())
            .field("rebinds", &self.rebinds)
            .finish()
    }
}

impl<T: Send, F: CellFamily> QueueHandle<T> for UnboundedWcqHandle<'_, T, F> {
    fn try_enqueue(&mut self, value: T) -> Result<(), T> {
        UnboundedWcqHandle::enqueue(self, value);
        Ok(())
    }
    fn dequeue(&mut self) -> Option<T> {
        UnboundedWcqHandle::dequeue(self)
    }
    fn enqueue(&mut self, value: T) {
        // Unbounded: no full state to retry around.
        UnboundedWcqHandle::enqueue(self, value);
    }
    fn enqueue_many(&mut self, values: &mut Vec<T>) -> usize {
        UnboundedWcqHandle::enqueue_many(self, values)
    }
    fn dequeue_into(&mut self, out: &mut Vec<T>, max: usize) -> usize {
        UnboundedWcqHandle::dequeue_many(self, out, max)
    }
    fn spin_cap_hint(&self) -> u32 {
        self.pace.spin_cap()
    }
}

impl<T: Send, F: CellFamily> WaitFreeQueue<T> for UnboundedWcq<T, F> {
    fn name(&self) -> &'static str {
        if F::NAME == LlscFamily::NAME {
            "wLSCQ (LL/SC)"
        } else {
            "wLSCQ"
        }
    }
    fn try_handle(&self) -> Option<Box<dyn QueueHandle<T> + '_>> {
        self.register().map(|h| Box::new(h) as _)
    }
    fn max_threads(&self) -> usize {
        UnboundedWcq::max_threads(self)
    }
    fn memory_footprint(&self) -> usize {
        UnboundedWcq::memory_footprint(self)
    }
    fn is_empty_hint(&self) -> bool {
        self.len_hint() == 0
    }
    fn has_empty_hint(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    // The deprecated ad-hoc accessors stay covered until they are removed.
    #![allow(deprecated)]
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    use wcq_core::wcq::LlscFamily;

    #[test]
    fn fifo_single_thread_within_one_segment() {
        let q: UnboundedWcq<u64> = UnboundedWcq::new(6, 2);
        let mut h = q.register().unwrap();
        assert_eq!(h.dequeue(), None);
        for i in 0..32 {
            h.enqueue(i);
        }
        for i in 0..32 {
            assert_eq!(h.dequeue(), Some(i));
        }
        assert_eq!(h.dequeue(), None);
        assert_eq!(q.segments_live(), 1);
    }

    #[test]
    fn bursts_grow_segments_and_preserve_fifo() {
        // 8-slot segments, 100 elements: growth is forced.
        let q: UnboundedWcq<u64> = UnboundedWcq::new(3, 2);
        let mut h = q.register().unwrap();
        for i in 0..100 {
            h.enqueue(i);
        }
        assert!(
            q.segments_live() > 1,
            "a burst beyond one segment must link new segments: {:?}",
            q.segment_stats()
        );
        for i in 0..100 {
            assert_eq!(h.dequeue(), Some(i));
        }
        assert_eq!(h.dequeue(), None);
    }

    #[test]
    fn drained_segments_are_retired_and_recycled() {
        let q: UnboundedWcq<u64> = UnboundedWcq::new(3, 1);
        let mut h = q.register().unwrap();
        for round in 0..4 {
            for i in 0..64 {
                h.enqueue(round * 64 + i);
            }
            for i in 0..64 {
                assert_eq!(h.dequeue(), Some(round * 64 + i));
            }
            h.flush_reclamation();
            assert_eq!(
                q.segments_live(),
                1,
                "after a full drain only the tail segment stays live"
            );
        }
        let stats = q.segment_stats();
        assert!(
            stats.reused_total > 0,
            "later bursts must reuse cached segments: {stats:?}"
        );
        assert!(
            stats.allocated_total < 4 * (64 / 8),
            "the cache must cap allocations across rounds: {stats:?}"
        );
    }

    #[test]
    fn memoized_binding_stays_on_one_segment() {
        let q: UnboundedWcq<u64> = UnboundedWcq::new(6, 2);
        let mut h = q.register().unwrap();
        for round in 0..10 {
            for i in 0..30 {
                h.enqueue(round * 30 + i);
            }
            for i in 0..30 {
                assert_eq!(h.dequeue(), Some(round * 30 + i));
            }
        }
        // 600 operations never left the first segment: the binding was
        // established once and memoized for every later operation.
        assert_eq!(h.segment_rebinds(), 1, "{h:?}");
    }

    #[test]
    fn memoized_binding_follows_segment_growth_without_losing_values() {
        // 16-slot segments with interleaved enqueue/dequeue force the memo
        // to chase head and tail across many segment transitions.
        let q: UnboundedWcq<u64> = UnboundedWcq::new(4, 1);
        let mut h = q.register().unwrap();
        let mut next_out = 0u64;
        for i in 0..500u64 {
            h.enqueue(i);
            if i % 3 == 0 {
                assert_eq!(h.dequeue(), Some(next_out));
                next_out += 1;
            }
        }
        while let Some(v) = h.dequeue() {
            assert_eq!(v, next_out);
            next_out += 1;
        }
        assert_eq!(next_out, 500, "every value crossed the segment chain");
        assert!(h.segment_rebinds() > 1, "growth must move the binding");
        h.flush_reclamation();
        assert_eq!(q.segments_live(), 1);
    }

    #[test]
    fn register_reuses_the_memoized_participant_slot() {
        let q: UnboundedWcq<u64> = UnboundedWcq::new(4, 4);
        let h = q.register().unwrap();
        let tid = h.tid();
        drop(h);
        for _ in 0..3 {
            let again = q.register().unwrap();
            assert_eq!(again.tid(), tid);
        }
    }

    #[test]
    fn trait_facade_round_trips_with_growth() {
        use wcq_core::api::WaitFreeQueue;
        let q: UnboundedWcq<u64> = UnboundedWcq::new(3, 2);
        let dynq: &dyn WaitFreeQueue<u64> = &q;
        assert_eq!(dynq.name(), "wLSCQ");
        let mut h = dynq.handle();
        for i in 0..100 {
            h.enqueue(i);
        }
        for i in 0..100 {
            assert_eq!(h.dequeue(), Some(i));
        }
        assert_eq!(h.dequeue(), None);
    }

    #[test]
    fn batch_roundtrip_across_segment_boundaries() {
        // 8-slot segments, batches of 30: every batch straddles boundaries,
        // exercising the close-and-append fallback inside `enqueue_many`.
        let q: UnboundedWcq<u64> = UnboundedWcq::new(3, 2);
        let mut h = q.register().unwrap();
        let mut next_in = 0u64;
        let mut next_out = 0u64;
        for _ in 0..10 {
            let mut batch: Vec<u64> = (next_in..next_in + 30).collect();
            next_in += 30;
            assert_eq!(h.enqueue_many(&mut batch), 30, "unbounded accepts all");
            assert!(batch.is_empty());
            let mut out = Vec::new();
            while out.len() < 30 {
                let want = 30 - out.len();
                let got = h.dequeue_many(&mut out, want);
                assert!(got > 0, "queue holds undelivered elements");
            }
            for v in out {
                assert_eq!(v, next_out);
                next_out += 1;
            }
        }
        assert_eq!(h.dequeue(), None);
        assert_eq!(q.len_hint(), 0, "batch ops keep the hint balanced");
    }

    #[test]
    fn batch_amortizes_the_memo_within_one_segment() {
        // Large segment: batches must not rebind more than the single op
        // would (one initial bind, no churn).
        let q: UnboundedWcq<u64> = UnboundedWcq::new(8, 2);
        let mut h = q.register().unwrap();
        for round in 0..8u64 {
            let mut batch: Vec<u64> = (round * 16..(round + 1) * 16).collect();
            h.enqueue_many(&mut batch);
            let mut out = Vec::new();
            assert_eq!(h.dequeue_many(&mut out, 16), 16);
            assert_eq!(out, ((round * 16)..(round + 1) * 16).collect::<Vec<_>>());
        }
        assert_eq!(h.segment_rebinds(), 1, "{h:?}");
    }

    #[test]
    fn batch_trait_impls_delegate_to_the_specialized_paths() {
        use wcq_core::api::WaitFreeQueue;
        let q: UnboundedWcq<u64> = UnboundedWcq::new(3, 2);
        assert!(
            (&q as &dyn WaitFreeQueue<u64>).has_empty_hint(),
            "wLSCQ advertises its truthful emptiness hint"
        );
        let mut h = q.register().unwrap();
        let mut batch: Vec<u64> = (0..40).collect();
        assert_eq!(QueueHandle::enqueue_many(&mut h, &mut batch), 40);
        let mut out = Vec::new();
        let mut got = 0;
        while got < 40 {
            let n = QueueHandle::dequeue_into(&mut h, &mut out, 40 - got);
            assert!(n > 0);
            got += n;
        }
        assert_eq!(out, (0..40).collect::<Vec<_>>());
    }

    #[test]
    fn llsc_family_roundtrip_with_growth() {
        wcq_atomics::llsc::set_spurious_failure_rate(0.0);
        let q: UnboundedWcq<u64, LlscFamily> = UnboundedWcq::new(3, 2);
        let mut h = q.register().unwrap();
        for i in 0..50 {
            h.enqueue(i);
        }
        for i in 0..50 {
            assert_eq!(h.dequeue(), Some(i));
        }
        assert_eq!(h.dequeue(), None);
    }

    #[test]
    fn registration_limit_enforced() {
        let q: UnboundedWcq<u8> = UnboundedWcq::new(4, 2);
        let h1 = q.register().unwrap();
        let h2 = q.register().unwrap();
        assert!(q.register().is_none());
        drop(h1);
        assert!(q.register().is_some());
        drop(h2);
    }

    #[test]
    fn drop_releases_elements_across_segments() {
        let probe = Arc::new(());
        {
            let q: UnboundedWcq<Arc<()>> = UnboundedWcq::new(3, 1);
            let mut h = q.register().unwrap();
            for _ in 0..50 {
                h.enqueue(Arc::clone(&probe));
            }
            assert!(q.segments_live() > 1);
            assert_eq!(Arc::strong_count(&probe), 51);
            drop(h);
        }
        assert_eq!(Arc::strong_count(&probe), 1);
    }

    #[test]
    fn mpmc_stress_sum_preserved_across_growth() {
        const THREADS: u64 = 4;
        const PER_THREAD: u64 = 5_000;
        // Tiny 16-slot segments guarantee constant segment churn.
        let q: UnboundedWcq<u64> = UnboundedWcq::new(4, THREADS as usize);
        let sum = AtomicU64::new(0);
        let count = AtomicU64::new(0);
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let q = &q;
                let sum = &sum;
                let count = &count;
                s.spawn(move || {
                    let mut h = q.register().unwrap();
                    for i in 0..PER_THREAD {
                        h.enqueue(t * PER_THREAD + i);
                        if let Some(v) = h.dequeue() {
                            sum.fetch_add(v, Ordering::Relaxed);
                            count.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    while let Some(v) = h.dequeue() {
                        sum.fetch_add(v, Ordering::Relaxed);
                        count.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        let n = THREADS * PER_THREAD;
        assert_eq!(count.load(Ordering::Relaxed), n);
        assert_eq!(sum.load(Ordering::Relaxed), n * (n - 1) / 2);
    }

    #[test]
    fn len_hint_tracks_quiescent_length_and_empty_hint() {
        use wcq_core::api::WaitFreeQueue;
        let q: UnboundedWcq<u64> = UnboundedWcq::new(3, 1);
        assert_eq!(q.len_hint(), 0);
        assert!(WaitFreeQueue::is_empty_hint(&q));
        let mut h = q.register().unwrap();
        for i in 0..100 {
            h.enqueue(i); // crosses several 8-slot segments
        }
        assert_eq!(q.len_hint(), 100, "quiescent hint is exact");
        assert!(!WaitFreeQueue::is_empty_hint(&q));
        for _ in 0..60 {
            assert!(h.dequeue().is_some());
        }
        assert_eq!(q.len_hint(), 40);
        while h.dequeue().is_some() {}
        assert_eq!(q.len_hint(), 0);
        assert!(WaitFreeQueue::is_empty_hint(&q));
    }

    #[test]
    fn cache_stats_count_hits_and_misses() {
        let q: UnboundedWcq<u64> = UnboundedWcq::new(3, 1);
        let mut h = q.register().unwrap();
        // Warm-up burst: every append misses (the cache starts empty).
        for i in 0..64 {
            h.enqueue(i);
        }
        for i in 0..64 {
            assert_eq!(h.dequeue(), Some(i));
        }
        h.flush_reclamation();
        let warm = q.cache_stats();
        assert!(warm.misses > 0, "cold appends must miss: {warm:?}");
        assert_eq!(warm.hits, 0, "{warm:?}");
        // Second, smaller burst (3 appends on top of the live tail — within
        // the 4-segment cache): recycled segments answer from the cache.
        for i in 0..32 {
            h.enqueue(i);
        }
        let hot = q.cache_stats();
        assert!(hot.hits > 0, "warm appends must hit: {hot:?}");
        assert_eq!(hot.misses, warm.misses, "no new allocator trips: {hot:?}");
    }

    #[test]
    fn memory_footprint_tracks_resident_segments() {
        let q: UnboundedWcq<u64> = UnboundedWcq::new(3, 1);
        let empty_footprint = q.memory_footprint();
        let mut h = q.register().unwrap();
        for i in 0..200 {
            h.enqueue(i);
        }
        assert!(q.memory_footprint() > empty_footprint);
        for i in 0..200 {
            assert_eq!(h.dequeue(), Some(i));
        }
        h.flush_reclamation();
        let stats = q.segment_stats();
        assert_eq!(stats.live, 1, "{stats:?}");
        assert!(
            stats.resident() <= 1 + DEFAULT_SEGMENT_CACHE,
            "resident segments bounded by live + cache: {stats:?}"
        );
    }
}
